//! End-to-end benchmarks: complete analyses on the paper's benchmarks with
//! reduced budgets (the per-table experiments, timed).

use criterion::{criterion_group, criterion_main, Criterion};
use mini_gsl::hyperg::Hyperg2F0;
use mini_gsl::toy::Fig2Program;
use std::hint::black_box;
use wdm_core::boundary::BoundaryAnalysis;
use wdm_core::driver::AnalysisConfig;
use wdm_core::overflow::OverflowDetector;
use wdm_core::path::PathAnalysis;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);

    group.bench_function("boundary/fig2_find_any", |b| {
        let analysis = BoundaryAnalysis::new(Fig2Program::new());
        b.iter(|| black_box(analysis.find_any(&AnalysisConfig::quick(3).with_max_evals(5_000))))
    });

    group.bench_function("path/fig2_both_branches", |b| {
        let analysis = PathAnalysis::new(Fig2Program::new());
        let path = vec![
            (fp_runtime::BranchId(0), true),
            (fp_runtime::BranchId(1), true),
        ];
        b.iter(|| black_box(analysis.reach(&path, &AnalysisConfig::quick(3).with_max_evals(5_000))))
    });

    group.bench_function("overflow/hyperg_algorithm3", |b| {
        let detector = OverflowDetector::new(Hyperg2F0::new());
        b.iter(|| {
            black_box(detector.run(
                &AnalysisConfig::quick(3).with_rounds(1).with_max_evals(4_000),
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
