//! Micro-benchmarks: cost of one weak-distance evaluation for each analysis
//! instance (the inner loop of every experiment).

use criterion::{criterion_group, criterion_main, Criterion};
use mini_gsl::bessel::BesselKnuScaled;
use mini_gsl::glibc_sin::GlibcSin;
use mini_gsl::toy::Fig2Program;
use std::collections::BTreeSet;
use std::hint::black_box;
use wdm_core::boundary::{BoundaryMode, BoundaryWeakDistance};
use wdm_core::overflow::OverflowWeakDistance;
use wdm_core::path::PathWeakDistance;
use wdm_core::weak_distance::WeakDistance;

fn bench_weak_distances(c: &mut Criterion) {
    let mut group = c.benchmark_group("weak_distance_eval");
    group.sample_size(30);

    let boundary = BoundaryWeakDistance::new(Fig2Program::new());
    group.bench_function("boundary/fig2", |b| {
        b.iter(|| black_box(boundary.eval(black_box(&[0.37]))))
    });

    let characteristic =
        BoundaryWeakDistance::new(Fig2Program::new()).with_mode(BoundaryMode::Characteristic);
    group.bench_function("boundary/fig2_characteristic", |b| {
        b.iter(|| black_box(characteristic.eval(black_box(&[0.37]))))
    });

    let sin_boundary = BoundaryWeakDistance::new(GlibcSin::new());
    group.bench_function("boundary/glibc_sin", |b| {
        b.iter(|| black_box(sin_boundary.eval(black_box(&[1.234]))))
    });

    let path = PathWeakDistance::new(
        Fig2Program::new(),
        vec![
            (fp_runtime::BranchId(0), true),
            (fp_runtime::BranchId(1), true),
        ],
    );
    group.bench_function("path/fig2", |b| {
        b.iter(|| black_box(path.eval(black_box(&[2.5]))))
    });

    let overflow = OverflowWeakDistance::new(BesselKnuScaled::new(), BTreeSet::new());
    group.bench_function("overflow/bessel", |b| {
        b.iter(|| black_box(overflow.eval(black_box(&[1.5, 20.0]))))
    });

    group.finish();
}

criterion_group!(benches, bench_weak_distances);
criterion_main!(benches);
