//! Criterion benches of the parallel execution engine: campaign mode and
//! restart sharding at 1 vs 4 workers on down-scaled workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wdm_core::driver::minimize_weak_distance;
use wdm_core::weak_distance::FnWeakDistance;
use wdm_core::AnalysisConfig;
use wdm_engine::gsl_suite;

fn bench_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_campaign");
    group.sample_size(10);
    let config = AnalysisConfig::quick(3).with_rounds(1).with_max_evals(1_500);

    group.bench_function("gsl_suite/1_thread", |b| {
        b.iter(|| black_box(gsl_suite(&config).run(1)))
    });
    group.bench_function("gsl_suite/4_threads", |b| {
        b.iter(|| black_box(gsl_suite(&config).run(4)))
    });
    group.finish();
}

fn bench_sharding(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_sharding");
    group.sample_size(10);
    // Zero-free distance: every round runs its full budget.
    let wd = FnWeakDistance::new(1, vec![fp_runtime::Interval::symmetric(1.0e4)], |x: &[f64]| {
        (x[0] - 1.0).abs() * (x[0] + 3.0).abs() + 0.5
    });
    let config = AnalysisConfig::quick(5).with_rounds(8).with_max_evals(2_000);

    group.bench_function("restart_rounds/sequential", |b| {
        b.iter(|| black_box(minimize_weak_distance(&wd, &config)))
    });
    group.bench_function("restart_rounds/4_threads", |b| {
        b.iter(|| {
            black_box(minimize_weak_distance(
                &wd,
                &config.clone().with_parallelism(4),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_campaign, bench_sharding);
criterion_main!(benches);
