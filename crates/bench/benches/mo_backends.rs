//! Micro-benchmarks: throughput of the MO backends on a weak-distance-shaped
//! objective (Table 1's backends compared head to head).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wdm_mo::{
    BasinHopping, Bounds, DifferentialEvolution, FnObjective, GlobalMinimizer, NoTrace, Powell,
    Problem,
};

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("mo_backends");
    group.sample_size(10);

    let objective = FnObjective::new(1, |x: &[f64]| (x[0] - 1.0).abs() * (x[0] + 3.0).abs());

    group.bench_function("basinhopping/two_zero_product", |b| {
        b.iter(|| {
            let problem = Problem::new(&objective, Bounds::symmetric(1, 1.0e4))
                .with_target(0.0)
                .with_max_evals(5_000);
            black_box(BasinHopping::default().with_hops(20).minimize(&problem, 7, &mut NoTrace))
        })
    });

    group.bench_function("differential_evolution/two_zero_product", |b| {
        b.iter(|| {
            let problem = Problem::new(&objective, Bounds::symmetric(1, 1.0e4))
                .with_target(0.0)
                .with_max_evals(5_000);
            black_box(
                DifferentialEvolution::default()
                    .with_max_generations(50)
                    .minimize(&problem, 7, &mut NoTrace),
            )
        })
    });

    group.bench_function("powell/two_zero_product", |b| {
        b.iter(|| {
            let problem = Problem::new(&objective, Bounds::symmetric(1, 1.0e4))
                .with_target(0.0)
                .with_max_evals(5_000);
            black_box(Powell::default().minimize(&problem, 7, &mut NoTrace))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
