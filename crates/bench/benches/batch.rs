//! Criterion benches of the batched-evaluation stack: scalar `eval` loops
//! vs `eval_batch` on an fpir-interpreted weak distance, and a whole
//! Differential Evolution run (whose generations are evaluated as batches)
//! over the same objective.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wdm_core::boundary::BoundaryWeakDistance;
use wdm_core::weak_distance::{WeakDistance, WeakDistanceObjective};
use wdm_mo::{Bounds, DifferentialEvolution, GlobalMinimizer, NoTrace, Problem};

fn fig2_wd() -> impl WeakDistance {
    BoundaryWeakDistance::new(
        fpir::interp::ModuleProgram::new(fpir::programs::fig2_program(), "prog")
            .expect("fig2 entry"),
    )
}

fn bench_eval_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_eval");
    let wd = fig2_wd();
    let xs: Vec<Vec<f64>> = (0..1_024).map(|i| vec![i as f64 * 0.07 - 35.0]).collect();

    group.bench_function("fpir_fig2/scalar_loop", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(xs.len());
            for x in &xs {
                out.push(wd.eval(x));
            }
            black_box(out)
        })
    });
    group.bench_function("fpir_fig2/eval_batch", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            wd.eval_batch(&xs, &mut out);
            black_box(out)
        })
    });
    group.finish();
}

fn bench_diffevo_generations(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_diffevo");
    group.sample_size(10);
    let wd = fig2_wd();
    let objective = WeakDistanceObjective::new(&wd);
    let bounds = Bounds::symmetric(1, 100.0);

    group.bench_function("fpir_fig2/de_batched_generations", |b| {
        b.iter(|| {
            let p = Problem::new(&objective, bounds.clone()).with_max_evals(2_000);
            black_box(
                DifferentialEvolution::default()
                    .with_max_generations(40)
                    .minimize(&p, 7, &mut NoTrace),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_eval_batch, bench_diffevo_generations);
criterion_main!(benches);
