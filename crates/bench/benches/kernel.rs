//! Criterion benches of the lanewise SoA kernel backend against the batch
//! interpreter: the same boundary weak distance evaluated through
//! `eval_batch` under `KernelPolicy::Never` (per-input interpreter
//! session) and `KernelPolicy::Always` (lockstep wave), on a straight-line
//! module (no divergence — the kernel's best case) and on the branchy
//! Fig. 2 program (lanes diverge and finish on the scalar resume path).

use criterion::{criterion_group, criterion_main, Criterion};
use fp_runtime::KernelPolicy;
use std::hint::black_box;
use wdm_core::boundary::BoundaryWeakDistance;
use wdm_core::weak_distance::WeakDistance;

fn wd(module: fpir::Module, policy: KernelPolicy) -> impl WeakDistance {
    BoundaryWeakDistance::new(fpir::ModuleProgram::new(module, "prog").expect("entry exists"))
        .with_kernel_policy(policy)
}

fn bench_kernel_vs_interp(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel");
    let xs: Vec<Vec<f64>> = (0..1_024).map(|i| vec![i as f64 * 0.003 - 1.5]).collect();

    let horner_interp = wd(fpir::programs::horner_program(24), KernelPolicy::Never);
    let horner_kernel = wd(fpir::programs::horner_program(24), KernelPolicy::Always);
    group.bench_function("horner24/interp_batch", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            horner_interp.eval_batch(&xs, &mut out);
            black_box(out)
        })
    });
    group.bench_function("horner24/lanewise_kernel", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            horner_kernel.eval_batch(&xs, &mut out);
            black_box(out)
        })
    });

    let fig2_interp = wd(fpir::programs::fig2_program(), KernelPolicy::Never);
    let fig2_kernel = wd(fpir::programs::fig2_program(), KernelPolicy::Always);
    let wide: Vec<Vec<f64>> = (0..1_024).map(|i| vec![i as f64 * 0.07 - 35.0]).collect();
    group.bench_function("fig2/interp_batch", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            fig2_interp.eval_batch(&wide, &mut out);
            black_box(out)
        })
    });
    group.bench_function("fig2/lanewise_kernel", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            fig2_kernel.eval_batch(&wide, &mut out);
            black_box(out)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernel_vs_interp);
criterion_main!(benches);
