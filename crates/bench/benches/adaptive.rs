//! Criterion benches of the adaptive portfolio scheduler vs. race mode on
//! down-scaled workloads: a zero-free closure distance (both policies
//! spend their whole budget — measures scheduling overhead per evaluation)
//! and the fig2 boundary problem (early-hit behavior).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wdm_core::boundary::BoundaryWeakDistance;
use wdm_core::driver::{minimize_weak_distance_portfolio, PortfolioPolicy};
use wdm_core::weak_distance::FnWeakDistance;
use wdm_core::{AnalysisConfig, BackendKind};

fn policy_config(policy: PortfolioPolicy) -> AnalysisConfig {
    AnalysisConfig::quick(5)
        .with_rounds(1)
        .with_max_evals(1_500)
        .with_portfolio_policy(policy)
}

fn bench_zero_free(c: &mut Criterion) {
    let mut group = c.benchmark_group("portfolio_policy");
    group.sample_size(10);
    // Zero-free: no early hit, so race burns 5 budgets and adaptive 1.
    let wd = FnWeakDistance::new(1, vec![fp_runtime::Interval::symmetric(1.0e4)], |x: &[f64]| {
        (x[0] - 1.0).abs() * (x[0] + 3.0).abs() + 0.5
    });
    group.bench_function("race/zero_free", |b| {
        b.iter(|| {
            black_box(minimize_weak_distance_portfolio(
                &wd,
                &policy_config(PortfolioPolicy::Race),
                &BackendKind::all(),
            ))
        })
    });
    group.bench_function("adaptive/zero_free", |b| {
        b.iter(|| {
            black_box(minimize_weak_distance_portfolio(
                &wd,
                &policy_config(PortfolioPolicy::Adaptive),
                &BackendKind::all(),
            ))
        })
    });
    group.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("portfolio_policy_fig2");
    group.sample_size(10);
    let wd = || {
        BoundaryWeakDistance::new(
            fpir::ModuleProgram::new(fpir::programs::fig2_program(), "prog")
                .expect("fig2 entry"),
        )
    };
    group.bench_function("race/fig2_boundary", |b| {
        let wd = wd();
        b.iter(|| {
            black_box(minimize_weak_distance_portfolio(
                &wd,
                &policy_config(PortfolioPolicy::Race),
                &BackendKind::all(),
            ))
        })
    });
    group.bench_function("adaptive/fig2_boundary", |b| {
        let wd = wd();
        b.iter(|| {
            black_box(minimize_weak_distance_portfolio(
                &wd,
                &policy_config(PortfolioPolicy::Adaptive),
                &BackendKind::all(),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_zero_free, bench_fig2);
criterion_main!(benches);
