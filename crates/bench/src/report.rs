//! JSON report output shared by the experiment binaries.
//!
//! Every experiment binary accepts `--json <path>`: the machine-readable
//! result is then written to `<path>` (or to `<path>/BENCH_<name>.json`
//! when `<path>` is an existing directory) *in addition to* the default
//! `target/experiments/<name>.json`, so harnesses can collect `BENCH_*.json`
//! artifacts without parsing stdout tables.

use serde::Serialize;
use std::path::{Path, PathBuf};

/// Writes `value` as pretty JSON under `target/experiments/<name>.json` and
/// returns the path written. Failures are reported but not fatal (the text
/// table on stdout is the primary output).
pub fn write_json<T: Serialize>(name: &str, value: &T) -> Option<PathBuf> {
    let dir = Path::new("target").join("experiments");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
                return None;
            }
            Some(path)
        }
        Err(e) => {
            eprintln!("warning: cannot serialize {name}: {e}");
            None
        }
    }
}

/// Extracts the value of `--json <path>` from an argument list
/// (`--json=path` also accepted). Returns `None` when the flag is absent
/// or has no value.
pub fn json_arg_from<I: IntoIterator<Item = String>>(args: I) -> Option<PathBuf> {
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        if arg == "--json" {
            return args.next().map(PathBuf::from);
        }
        if let Some(path) = arg.strip_prefix("--json=") {
            return Some(PathBuf::from(path));
        }
    }
    None
}

/// [`json_arg_from`] over the process arguments.
pub fn json_arg() -> Option<PathBuf> {
    json_arg_from(std::env::args().skip(1))
}

/// Writes `value` to an explicit path (creating parent directories). A
/// directory target — an existing directory, or a path without a file
/// extension, which is created — receives `BENCH_<name>.json` inside;
/// anything with an extension is treated as the literal output file.
pub fn write_json_at<T: Serialize>(path: &Path, name: &str, value: &T) -> Option<PathBuf> {
    let is_dir_target = path.is_dir() || path.extension().is_none();
    let path = if is_dir_target {
        path.join(format!("BENCH_{name}.json"))
    } else {
        path.to_path_buf()
    };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("warning: cannot create {}: {e}", parent.display());
                return None;
            }
        }
    }
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
                return None;
            }
            Some(path)
        }
        Err(e) => {
            eprintln!("warning: cannot serialize {name}: {e}");
            None
        }
    }
}

/// The shared exit path of every experiment binary: writes the default
/// `target/experiments/<name>.json` and honours `--json <path>` from the
/// process arguments. Returns every path written.
pub fn emit_json<T: Serialize>(name: &str, value: &T) -> Vec<PathBuf> {
    let mut written = Vec::new();
    if let Some(path) = write_json(name, value) {
        written.push(path);
    }
    if let Some(path) = json_arg() {
        if let Some(path) = write_json_at(&path, name, value) {
            println!("json report written to {}", path.display());
            written.push(path);
        }
    }
    written
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Dummy {
        value: f64,
    }

    #[test]
    fn writes_json_file() {
        let path = write_json("unit_test_dummy", &Dummy { value: 1.5 }).expect("written");
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("1.5"));
    }

    #[test]
    fn json_arg_parses_both_forms() {
        let args = |list: &[&str]| list.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(
            json_arg_from(args(&["--smoke", "--json", "out.json"])),
            Some(PathBuf::from("out.json"))
        );
        assert_eq!(
            json_arg_from(args(&["--json=x/y.json"])),
            Some(PathBuf::from("x/y.json"))
        );
        assert_eq!(json_arg_from(args(&["--smoke"])), None);
        assert_eq!(json_arg_from(args(&["--json"])), None);
    }

    #[test]
    fn write_json_at_treats_directories_as_bench_prefix() {
        let dir = Path::new("target").join("experiments");
        std::fs::create_dir_all(&dir).unwrap();
        let path = write_json_at(&dir, "unit_test_dir", &Dummy { value: 2.5 }).expect("written");
        assert!(path.ends_with("BENCH_unit_test_dir.json"), "{}", path.display());
        assert!(std::fs::read_to_string(&path).unwrap().contains("2.5"));
        let explicit = dir.join("explicit_name.json");
        let path = write_json_at(&explicit, "ignored", &Dummy { value: 3.5 }).expect("written");
        assert_eq!(path, explicit);
    }

    #[test]
    fn write_json_at_creates_nonexistent_extensionless_paths_as_directories() {
        let dir = Path::new("target")
            .join("experiments")
            .join("unit_test_fresh_dir");
        let _ = std::fs::remove_dir_all(&dir);
        let path = write_json_at(&dir, "fresh", &Dummy { value: 4.5 }).expect("written");
        assert_eq!(path, dir.join("BENCH_fresh.json"));
        assert!(std::fs::read_to_string(&path).unwrap().contains("4.5"));
    }
}
