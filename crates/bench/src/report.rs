//! JSON report output shared by the experiment binaries.

use serde::Serialize;
use std::path::{Path, PathBuf};

/// Writes `value` as pretty JSON under `target/experiments/<name>.json` and
/// returns the path written. Failures are reported but not fatal (the text
/// table on stdout is the primary output).
pub fn write_json<T: Serialize>(name: &str, value: &T) -> Option<PathBuf> {
    let dir = Path::new("target").join("experiments");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
                return None;
            }
            Some(path)
        }
        Err(e) => {
            eprintln!("warning: cannot serialize {name}: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Dummy {
        value: f64,
    }

    #[test]
    fn writes_json_file() {
        let path = write_json("unit_test_dummy", &Dummy { value: 1.5 }).expect("written");
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("1.5"));
    }
}
