//! Measures the per-evaluation overhead saved by the batched-evaluation
//! stack, and verifies that batching never changes results.
//!
//! Three workloads, each evaluated over the same point set twice — once
//! through the scalar `eval` loop, once through `eval_batch` — asserting
//! the values are bit-identical:
//!
//! * **fpir/fig2** and **fpir/fig1b** — boundary weak distances of
//!   fpir-*interpreted* programs: the batch path runs the interpreter's
//!   batch mode (register frames and globals buffers reused across the
//!   batch), which is where batching pays most;
//! * **gsl/glibc_sin** — the hand-instrumented Glibc `sin` port: no
//!   interpreter, so the remaining gains come from the chunked evaluator
//!   path alone (a lower bound for native programs);
//! * **pooled/fig2** — the fpir fig2 batch spread over worker threads via
//!   `wdm_engine::PooledObjective` (order-preserving, so still
//!   bit-identical; wall-clock gains need real cores).
//!
//! Usage: `batch_speedup [--smoke] [--threads N] [--json <path>]`
//! (`--smoke` shrinks the point count for CI; the JSON report is
//! `BENCH_batch.json` when `--json` targets a directory).

use serde::Serialize;
use std::time::Instant;
use wdm_core::boundary::BoundaryWeakDistance;
use wdm_core::weak_distance::{WeakDistance, WeakDistanceObjective};
use wdm_engine::PooledObjective;
use wdm_mo::Objective;

#[derive(Debug, Clone, Serialize)]
struct WorkloadReport {
    workload: String,
    points: usize,
    scalar_seconds: f64,
    batch_seconds: f64,
    speedup: f64,
    scalar_ns_per_eval: f64,
    batch_ns_per_eval: f64,
    identical: bool,
}

#[derive(Debug, Clone, Serialize)]
struct BatchReport {
    smoke: bool,
    threads: usize,
    workloads: Vec<WorkloadReport>,
}

/// A deterministic point grid over `[lo, hi]` (no RNG needed — we time
/// evaluation, not search).
fn grid(n: usize, lo: f64, hi: f64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| vec![lo + (hi - lo) * (i as f64 + 0.5) / n as f64])
        .collect()
}

fn time_workload(
    name: &str,
    xs: &[Vec<f64>],
    scalar: impl Fn(&[f64]) -> f64,
    batch: impl Fn(&[Vec<f64>], &mut Vec<f64>),
) -> WorkloadReport {
    let started = Instant::now();
    let scalar_values: Vec<f64> = xs.iter().map(|x| scalar(x)).collect();
    let scalar_seconds = started.elapsed().as_secs_f64();

    let mut batch_values = Vec::new();
    let started = Instant::now();
    batch(xs, &mut batch_values);
    let batch_seconds = started.elapsed().as_secs_f64();

    let identical = scalar_values.len() == batch_values.len()
        && scalar_values
            .iter()
            .zip(&batch_values)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    let per_eval = |seconds: f64| seconds * 1.0e9 / xs.len().max(1) as f64;
    WorkloadReport {
        workload: name.to_string(),
        points: xs.len(),
        scalar_seconds,
        batch_seconds,
        speedup: scalar_seconds / batch_seconds.max(1e-12),
        scalar_ns_per_eval: per_eval(scalar_seconds),
        batch_ns_per_eval: per_eval(batch_seconds),
        identical,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::env::var("WDM_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or(4)
        });
    let n = if smoke { 20_000 } else { 400_000 };

    println!(
        "Batched-evaluation speedup experiment ({} mode, {n} points, {threads} workers)",
        if smoke { "smoke" } else { "full" }
    );

    let fig2 = BoundaryWeakDistance::new(
        fpir::interp::ModuleProgram::new(fpir::programs::fig2_program(), "prog")
            .expect("fig2 entry"),
    );
    let fig1b = BoundaryWeakDistance::new(
        fpir::interp::ModuleProgram::new(fpir::programs::fig1b_program(), "prog")
            .expect("fig1b entry"),
    );
    let glibc_sin = BoundaryWeakDistance::new(mini_gsl::glibc_sin::GlibcSin::new());

    let xs = grid(n, -50.0, 50.0);
    let mut workloads = vec![
        time_workload(
            "fpir/fig2",
            &xs,
            |x| fig2.eval(x),
            |xs, out| fig2.eval_batch(xs, out),
        ),
        time_workload(
            "fpir/fig1b",
            &xs,
            |x| fig1b.eval(x),
            |xs, out| fig1b.eval_batch(xs, out),
        ),
        time_workload(
            "gsl/glibc_sin",
            &xs,
            |x| glibc_sin.eval(x),
            |xs, out| glibc_sin.eval_batch(xs, out),
        ),
    ];

    let fig2_objective = WeakDistanceObjective::new(&fig2);
    let pooled = PooledObjective::new(&fig2_objective, threads);
    workloads.push(time_workload(
        "pooled/fig2",
        &xs,
        |x| fig2_objective.eval(x),
        |xs, out| pooled.eval_batch(xs, out),
    ));

    println!(
        "{:<16} {:>9} {:>12} {:>12} {:>8}  identical",
        "workload", "points", "scalar ns/e", "batch ns/e", "speedup"
    );
    for w in &workloads {
        println!(
            "{:<16} {:>9} {:>12.1} {:>12.1} {:>7.2}x  {}",
            w.workload,
            w.points,
            w.scalar_ns_per_eval,
            w.batch_ns_per_eval,
            w.speedup,
            if w.identical { "yes" } else { "NO" }
        );
    }

    let report = BatchReport {
        smoke,
        threads,
        workloads,
    };
    wdm_bench::emit_json("batch", &report);

    if report.workloads.iter().any(|w| !w.identical) {
        eprintln!("error: batched values diverged from the scalar path");
        std::process::exit(1);
    }
}
