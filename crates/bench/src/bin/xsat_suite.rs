//! Runs the XSat (Instance 5) sanity suite: small QF-FP formulas solved via
//! weak-distance minimization.

fn main() {
    let cases = wdm_bench::xsat_suite(42);
    println!("XSat instance: quantifier-free FP satisfiability via weak-distance minimization");
    println!("{:<45} {:>9} {:>9}  model", "formula", "expected", "found");
    for case in &cases {
        let model = case
            .model
            .as_ref()
            .map(|m| format!("{m:?}"))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:<45} {:>9} {:>9}  {}",
            case.formula,
            if case.expected_sat { "sat" } else { "unsat" },
            if case.found_sat { "sat" } else { "unknown" },
            model
        );
    }
    wdm_bench::emit_json("xsat_suite", &cases);
}
