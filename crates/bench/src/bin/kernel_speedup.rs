//! Measures the per-evaluation overhead the lanewise SoA kernel backend
//! saves over the PR 3 batch interpreter, and verifies that the kernel
//! never changes results.
//!
//! Each workload evaluates the same point grid twice through the analysis
//! stack's `eval_batch` — once with [`KernelPolicy::Never`] (the
//! per-input batch-interpret session) and once with
//! [`KernelPolicy::Always`] (the lanewise kernel) — asserting bitwise
//! identical values:
//!
//! * **kernel/horner24** — the boundary weak distance of a straight-line
//!   24-term Horner chain: no divergence, so every lane stays in the
//!   lockstep wave; this is where the kernel pays most and the workload
//!   behind the "lower per-eval overhead on straight-line modules"
//!   acceptance gate;
//! * **kernel/fig2**, **kernel/fig1b** — the paper's branchy example
//!   programs: lanes diverge at the conditional branches and finish on
//!   the scalar resume path, so these measure the kernel under
//!   control-flow divergence;
//! * **pooled/horner24** — the kernel batch spread over worker threads via
//!   `wdm_engine::PooledObjective` (threads × lanes; order-preserving, so
//!   still bit-identical — wall-clock gains need real cores).
//!
//! Usage: `kernel_speedup [--smoke] [--threads N] [--json <path>]`
//! (`--smoke` shrinks the point count for CI; the JSON report is
//! `BENCH_kernel.json` when `--json` targets a directory).

use fp_runtime::KernelPolicy;
use serde::Serialize;
use std::time::Instant;
use wdm_core::boundary::BoundaryWeakDistance;
use wdm_core::weak_distance::{WeakDistance, WeakDistanceObjective};
use wdm_engine::PooledObjective;
use wdm_mo::Objective;

#[derive(Debug, Clone, Serialize)]
struct WorkloadReport {
    workload: String,
    points: usize,
    straightline: bool,
    interp_seconds: f64,
    kernel_seconds: f64,
    speedup: f64,
    interp_ns_per_eval: f64,
    kernel_ns_per_eval: f64,
    identical: bool,
}

#[derive(Debug, Clone, Serialize)]
struct KernelReport {
    smoke: bool,
    threads: usize,
    /// The acceptance gate: on straight-line modules the kernel must beat
    /// the batch interpreter's per-eval overhead.
    kernel_faster_on_straightline: bool,
    workloads: Vec<WorkloadReport>,
}

/// A deterministic point grid over `[lo, hi]` (no RNG needed — we time
/// evaluation, not search).
fn grid(n: usize, lo: f64, hi: f64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| vec![lo + (hi - lo) * (i as f64 + 0.5) / n as f64])
        .collect()
}

fn boundary_wd(module: fpir::Module, policy: KernelPolicy) -> BoundaryWeakDistance<fpir::ModuleProgram> {
    BoundaryWeakDistance::new(
        fpir::ModuleProgram::new(module, "prog").expect("entry exists"),
    )
    .with_kernel_policy(policy)
}

fn time_workload(
    name: &str,
    straightline: bool,
    xs: &[Vec<f64>],
    interp: impl Fn(&[Vec<f64>], &mut Vec<f64>),
    kernel: impl Fn(&[Vec<f64>], &mut Vec<f64>),
) -> WorkloadReport {
    let mut interp_values = Vec::new();
    let started = Instant::now();
    interp(xs, &mut interp_values);
    let interp_seconds = started.elapsed().as_secs_f64();

    let mut kernel_values = Vec::new();
    let started = Instant::now();
    kernel(xs, &mut kernel_values);
    let kernel_seconds = started.elapsed().as_secs_f64();

    let identical = interp_values.len() == kernel_values.len()
        && interp_values
            .iter()
            .zip(&kernel_values)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    let per_eval = |seconds: f64| seconds * 1.0e9 / xs.len().max(1) as f64;
    WorkloadReport {
        workload: name.to_string(),
        points: xs.len(),
        straightline,
        interp_seconds,
        kernel_seconds,
        speedup: interp_seconds / kernel_seconds.max(1e-12),
        interp_ns_per_eval: per_eval(interp_seconds),
        kernel_ns_per_eval: per_eval(kernel_seconds),
        identical,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::env::var("WDM_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or(4)
        });
    let n = if smoke { 20_000 } else { 400_000 };

    println!(
        "Lanewise-kernel speedup experiment ({} mode, {n} points, {threads} workers)",
        if smoke { "smoke" } else { "full" }
    );

    let horner_interp = boundary_wd(fpir::programs::horner_program(24), KernelPolicy::Never);
    let horner_kernel = boundary_wd(fpir::programs::horner_program(24), KernelPolicy::Always);
    let fig2_interp = boundary_wd(fpir::programs::fig2_program(), KernelPolicy::Never);
    let fig2_kernel = boundary_wd(fpir::programs::fig2_program(), KernelPolicy::Always);
    let fig1b_interp = boundary_wd(fpir::programs::fig1b_program(), KernelPolicy::Never);
    let fig1b_kernel = boundary_wd(fpir::programs::fig1b_program(), KernelPolicy::Always);

    let narrow = grid(n, -2.0, 2.0);
    let wide = grid(n, -50.0, 50.0);
    let mut workloads = vec![
        time_workload(
            "kernel/horner24",
            true,
            &narrow,
            |xs, out| horner_interp.eval_batch(xs, out),
            |xs, out| horner_kernel.eval_batch(xs, out),
        ),
        time_workload(
            "kernel/fig2",
            false,
            &wide,
            |xs, out| fig2_interp.eval_batch(xs, out),
            |xs, out| fig2_kernel.eval_batch(xs, out),
        ),
        time_workload(
            "kernel/fig1b",
            false,
            &wide,
            |xs, out| fig1b_interp.eval_batch(xs, out),
            |xs, out| fig1b_kernel.eval_batch(xs, out),
        ),
    ];

    let interp_objective = WeakDistanceObjective::new(&horner_interp);
    let kernel_objective = WeakDistanceObjective::new(&horner_kernel);
    let pooled = PooledObjective::new(&kernel_objective, threads);
    workloads.push(time_workload(
        "pooled/horner24",
        true,
        &narrow,
        |xs, out| interp_objective.eval_batch(xs, out),
        |xs, out| pooled.eval_batch(xs, out),
    ));

    println!(
        "{:<16} {:>9} {:>12} {:>12} {:>8}  identical",
        "workload", "points", "interp ns/e", "kernel ns/e", "speedup"
    );
    for w in &workloads {
        println!(
            "{:<16} {:>9} {:>12.1} {:>12.1} {:>7.2}x  {}",
            w.workload,
            w.points,
            w.interp_ns_per_eval,
            w.kernel_ns_per_eval,
            w.speedup,
            if w.identical { "yes" } else { "NO" }
        );
    }

    let kernel_faster_on_straightline = workloads
        .iter()
        .filter(|w| w.straightline)
        .all(|w| w.kernel_ns_per_eval < w.interp_ns_per_eval);
    let report = KernelReport {
        smoke,
        threads,
        kernel_faster_on_straightline,
        workloads,
    };
    wdm_bench::emit_json("kernel", &report);

    if report.workloads.iter().any(|w| !w.identical) {
        eprintln!("error: kernel values diverged from the interpreter path");
        std::process::exit(1);
    }
    if !report.kernel_faster_on_straightline {
        eprintln!(
            "warning: kernel did not beat the batch interpreter on the \
             straight-line workload in this run"
        );
    }
}
