//! Static-analysis audit of the shipped fpir module suite.
//!
//! Three things happen, mirroring what `wdm_core` now gets for free from
//! `fpir::analysis`:
//!
//! 1. **Strict verification** — every shipped program (and its
//!    boundary-instrumented `W` variant) must pass `fpir::validate`; a
//!    verifier error in a shipped module is a bug and exits non-zero.
//! 2. **Structural audit** — per-module CFG/liveness/eligibility stats:
//!    block counts, wave-safe functions, liveness-compacted frame layouts
//!    (and the register slots they save), and whether the entry is
//!    kernel-eligible under `KernelPolicy::Auto`. At least one
//!    instrumented-`W` module must be eligible — that is the acceptance
//!    gate the new call-aware eligibility analysis exists for.
//! 3. **Static pruning demo** — a crafted module guards a branch with the
//!    provably-false `|x| + 1 < 0`; boundary analysis must prune that
//!    target at **zero** evaluations while the sibling feasible target
//!    still minimizes normally.
//!
//! Usage: `analyze [--smoke] [--json <path>]` (the JSON report is
//! `BENCH_analysis.json` when `--json` targets a directory).

use fpir::instrument;
use fpir::ir::{BinOp, UnOp};
use serde::Serialize;
use wdm_core::boundary::BoundaryAnalysis;
use wdm_core::driver::AnalysisConfig;

#[derive(Debug, Clone, Serialize)]
struct ModuleReport {
    module: String,
    functions: usize,
    blocks: usize,
    reachable_blocks: usize,
    wave_safe_functions: usize,
    kernel_eligible: bool,
    compacted_frames: usize,
    register_slots: usize,
    register_slots_saved: usize,
    branch_sites: usize,
    op_sites: usize,
    unreachable_branch_sides: usize,
    unreachable_boundaries: usize,
    unreachable_op_sites: usize,
    validated: bool,
    /// Target-directed specialization under an events-only observation
    /// (every branch site kept, return value and globals unobserved) —
    /// `None` when translation validation rejected the specialized module.
    opt_insts_removed: Option<usize>,
    opt_branches_folded: Option<usize>,
    opt_slice_ratio: Option<f64>,
}

#[derive(Debug, Clone, Serialize)]
struct PruneReport {
    target: String,
    statically_pruned: bool,
    evals: usize,
    found: bool,
}

#[derive(Debug, Clone, Serialize)]
struct AnalysisReport {
    smoke: bool,
    modules: Vec<ModuleReport>,
    /// The eligibility acceptance gate: some instrumented `W` driver module
    /// runs on the lanewise kernel under `KernelPolicy::Auto`.
    instrumented_w_kernel_eligible: bool,
    pruned_targets: Vec<PruneReport>,
    statically_pruned_count: usize,
}

fn audit(name: &str, program: &fpir::ModuleProgram) -> ModuleReport {
    let info = program.static_info();
    let module = program.module();
    let analysis = &info.analysis;
    let (mut blocks, mut reachable) = (0usize, 0usize);
    for cfg in &analysis.cfgs {
        blocks += cfg.num_blocks();
        reachable += cfg.num_reachable();
    }
    let mut slots = 0usize;
    let mut saved = 0usize;
    let mut compacted = 0usize;
    for (func, layout) in module.functions.iter().zip(&analysis.layouts) {
        slots += layout.num_slots;
        saved += func.num_regs - layout.num_slots;
        compacted += layout.compacted as usize;
    }
    let mut dead_sides = 0usize;
    let mut dead_boundaries = 0usize;
    for b in info.reach.branches.values() {
        dead_sides += b.then_reach.is_unreachable() as usize;
        dead_sides += b.else_reach.is_unreachable() as usize;
        dead_boundaries += b.boundary_reach.is_unreachable() as usize;
    }
    let dead_ops = info
        .reach
        .ops
        .values()
        .filter(|o| o.reach.is_unreachable())
        .count();
    let opt_stats = program
        .specialized_with_stats(
            &fp_runtime::ObservationSpec::branches(fp_runtime::SiteSet::All),
            fp_runtime::OptPolicy::Always,
        )
        .map(|(_, stats)| stats);
    ModuleReport {
        module: name.to_string(),
        functions: module.functions.len(),
        blocks,
        reachable_blocks: reachable,
        wave_safe_functions: analysis.wave_safe.iter().filter(|&&w| w).count(),
        kernel_eligible: program.kernel_eligible(),
        compacted_frames: compacted,
        register_slots: slots,
        register_slots_saved: saved,
        branch_sites: info.reach.branches.len(),
        op_sites: info.reach.ops.len(),
        unreachable_branch_sides: dead_sides,
        unreachable_boundaries: dead_boundaries,
        unreachable_op_sites: dead_ops,
        validated: info.validated,
        opt_insts_removed: opt_stats.as_ref().map(|s| s.insts_removed()),
        opt_branches_folded: opt_stats.as_ref().map(|s| s.branches_folded),
        opt_slice_ratio: opt_stats.as_ref().map(|s| s.slice_ratio()),
    }
}

/// The shipped module suite: base programs plus their
/// boundary-instrumented `W` drivers (the modules minimizers actually run).
fn suite() -> Vec<(String, fpir::ModuleProgram)> {
    let base: Vec<(&str, fpir::Module)> = vec![
        ("fig2", fpir::programs::fig2_program()),
        ("fig1a", fpir::programs::fig1a_program()),
        ("fig1b", fpir::programs::fig1b_program()),
        ("eq_zero", fpir::programs::eq_zero_program()),
        ("horner24", fpir::programs::horner_program(24)),
    ];
    let mut out = Vec::new();
    for (name, module) in base {
        let entry = module.function_by_name("prog").expect("entry exists");
        let w = instrument::instrument_boundary(&module, entry);
        out.push((
            name.to_string(),
            fpir::ModuleProgram::new(module, "prog").expect("entry exists"),
        ));
        out.push((
            format!("{name}/W"),
            fpir::ModuleProgram::new(w, instrument::W_FUNCTION).expect("driver W exists"),
        ));
    }
    out
}

/// A module whose first branch (`|x| + 1 < 0`) is provably untakeable on
/// every domain input, next to a feasible one (`x < 0`): the pruning
/// workload of the report.
fn guarded_program() -> fpir::ModuleProgram {
    let mut mb = fpir::ModuleBuilder::new();
    let mut f = mb.function("guarded", 1);
    let x = f.param(0);
    let one = f.constant(1.0);
    let zero = f.constant(0.0);
    let a = f.un(UnOp::Abs, x, None);
    let y = f.bin(BinOp::Add, a, one, None);
    let dead = f.new_block();
    let live = f.new_block();
    f.cond_br(Some(0), y, fp_runtime::Cmp::Lt, zero, dead, live);
    f.switch_to(dead);
    f.ret(Some(y));
    f.switch_to(live);
    let neg = f.new_block();
    let pos = f.new_block();
    f.cond_br(Some(1), x, fp_runtime::Cmp::Lt, zero, neg, pos);
    f.switch_to(neg);
    let n = f.bin(BinOp::Sub, zero, x, None);
    f.ret(Some(n));
    f.switch_to(pos);
    f.ret(Some(x));
    f.finish();
    fpir::ModuleProgram::new(mb.build(), "guarded")
        .expect("entry exists")
        .with_domain(vec![fp_runtime::Interval::symmetric(1.0e3)])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    println!(
        "Static-analysis audit ({} mode)",
        if smoke { "smoke" } else { "full" }
    );

    let mut failed = false;
    let mut modules = Vec::new();
    for (name, program) in suite() {
        let report = audit(&name, &program);
        if !report.validated {
            eprintln!("error: shipped module {name} fails the strict verifier");
            failed = true;
        }
        modules.push(report);
    }
    let instrumented_w_kernel_eligible = modules
        .iter()
        .any(|m| m.module.ends_with("/W") && m.kernel_eligible);

    println!(
        "{:<12} {:>5} {:>7} {:>6} {:>9} {:>11} {:>10} {:>9}  eligible",
        "module", "funcs", "blocks", "sites", "compacted", "slots saved", "dead sides", "opt -insts"
    );
    for m in &modules {
        println!(
            "{:<12} {:>5} {:>7} {:>6} {:>9} {:>11} {:>10} {:>9}  {}",
            m.module,
            m.functions,
            m.blocks,
            m.branch_sites + m.op_sites,
            m.compacted_frames,
            m.register_slots_saved,
            m.unreachable_branch_sides,
            m.opt_insts_removed
                .map_or_else(|| "-".to_string(), |n| n.to_string()),
            if m.kernel_eligible { "yes" } else { "no" }
        );
    }

    // The pruning workload: boundary analysis over the guarded module.
    // Site 0's boundary (`|x| + 1 == 0`) is provably unreachable and must
    // cost zero evaluations; site 1's boundary (`x == 0`) is feasible and
    // must still be found by ordinary minimization.
    let analysis = BoundaryAnalysis::new(guarded_program());
    let config = if smoke {
        AnalysisConfig::quick(11)
    } else {
        AnalysisConfig::quick(11).with_max_evals(50_000)
    };
    let mut pruned_targets = Vec::new();
    for site in [fp_runtime::BranchId(0), fp_runtime::BranchId(1)] {
        let run = analysis.find_condition_run(site, &config);
        let report = PruneReport {
            target: format!("guarded/branch{}", site.0),
            statically_pruned: run.statically_pruned(),
            evals: run.outcome.evals(),
            found: run.outcome.is_found(),
        };
        println!(
            "{:<16} pruned={} evals={} found={}",
            report.target, report.statically_pruned, report.evals, report.found
        );
        pruned_targets.push(report);
    }
    let statically_pruned_count = pruned_targets
        .iter()
        .filter(|t| t.statically_pruned)
        .count();

    let report = AnalysisReport {
        smoke,
        modules,
        instrumented_w_kernel_eligible,
        pruned_targets,
        statically_pruned_count,
    };
    wdm_bench::emit_json("analysis", &report);

    if !report.instrumented_w_kernel_eligible {
        eprintln!("error: no instrumented W module is kernel-eligible under Auto");
        failed = true;
    }
    if report.statically_pruned_count == 0
        || report
            .pruned_targets
            .iter()
            .any(|t| t.statically_pruned && t.evals != 0)
    {
        eprintln!("error: static pruning did not retire a target at zero evaluations");
        failed = true;
    }
    if report.pruned_targets.iter().all(|t| !t.found) {
        eprintln!("error: the feasible boundary target was not found");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
