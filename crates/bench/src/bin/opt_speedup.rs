//! Measures what target-directed specialization (`fpir::opt`) saves per
//! evaluation, and verifies that it never changes results.
//!
//! Each workload evaluates the same point grid twice through the analysis
//! stack's `eval_batch` — once with [`OptPolicy::Never`] (the unoptimized
//! module) and once with [`OptPolicy::Always`] (the translation-validated
//! specialized module) — asserting bitwise identical values. Alongside
//! wall-clock, it reports the *instruction counts* the interpreter
//! actually executes per evaluation (the machine-independent number the
//! optimizer is accountable for):
//!
//! * **opt/W-driver(fig2)**, **opt/W-driver(fig1b)** — the boundary weak
//!   distance over the paper's arithmetic `W` drivers: the driver's `w`
//!   bookkeeping (global stores, products of branch distances) is
//!   invisible to the event-folding observer, so slicing removes it
//!   wholesale; this is the workload behind the "fewer instructions per
//!   eval at unchanged bits" acceptance gate;
//! * **opt/single-branch(fig2)** — a single-site boundary target: the
//!   untargeted site's event plus the return-value chain are pruned.
//!
//! Usage: `opt_speedup [--smoke] [--json <path>]` (`--smoke` shrinks the
//! point count for CI; the JSON report is `BENCH_opt.json` when `--json`
//! targets a directory).

use fp_runtime::{BranchId, ObservationSpec, OptPolicy, SiteSet};
use fpir::ModuleProgram;
use serde::Serialize;
use std::time::Instant;
use wdm_core::boundary::{BoundaryMode, BoundaryWeakDistance};
use wdm_core::weak_distance::WeakDistance;

#[derive(Debug, Clone, Serialize)]
struct WorkloadReport {
    workload: String,
    points: usize,
    /// Static shrinkage: instruction counts of the module before/after
    /// specialization, and what each pass contributed.
    original_insts: usize,
    optimized_insts: usize,
    branches_folded: usize,
    sites_stripped: usize,
    slice_ratio: f64,
    /// Dynamic shrinkage: mean interpreter instructions per evaluation.
    baseline_insts_per_eval: f64,
    opt_insts_per_eval: f64,
    insts_reduction: f64,
    baseline_ns_per_eval: f64,
    opt_ns_per_eval: f64,
    speedup: f64,
    identical: bool,
}

#[derive(Debug, Clone, Serialize)]
struct OptReport {
    smoke: bool,
    /// The acceptance gate: every workload must execute fewer interpreter
    /// instructions per evaluation after specialization, at identical bits.
    fewer_instructions_everywhere: bool,
    workloads: Vec<WorkloadReport>,
}

/// A deterministic point grid over `[lo, hi]`.
fn grid(n: usize, lo: f64, hi: f64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| vec![lo + (hi - lo) * (i as f64 + 0.5) / n as f64])
        .collect()
}

/// The arithmetic `W` driver of `module`'s boundary instance.
fn w_driver(module: &fpir::Module, entry: &str) -> ModuleProgram {
    let id = module.function_by_name(entry).expect("entry exists");
    let w = fpir::instrument::instrument_boundary(module, id);
    ModuleProgram::new(w, fpir::instrument::W_FUNCTION).expect("driver W exists")
}

/// Mean interpreter instructions per evaluation over a subsample of `xs`.
fn insts_per_eval(prog: &ModuleProgram, xs: &[Vec<f64>]) -> f64 {
    let stride = (xs.len() / 512).max(1);
    let sample: Vec<&Vec<f64>> = xs.iter().step_by(stride).collect();
    let total: u64 = sample
        .iter()
        .map(|x| prog.instructions_executed(x).expect("evaluation succeeds"))
        .sum();
    total as f64 / sample.len().max(1) as f64
}

#[allow(clippy::too_many_arguments)]
fn run_workload(
    name: &str,
    prog: ModuleProgram,
    mode: BoundaryMode,
    spec: &ObservationSpec,
    xs: &[Vec<f64>],
) -> WorkloadReport {
    let (opt_prog, stats) = prog
        .specialized_with_stats(spec, OptPolicy::Always)
        .expect("specialization validates");

    let baseline_insts_per_eval = insts_per_eval(&prog, xs);
    let opt_insts_per_eval = insts_per_eval(&opt_prog, xs);

    let baseline = BoundaryWeakDistance::new(prog)
        .with_mode(mode)
        .with_opt_policy(OptPolicy::Never);
    let optimized = baseline.clone().with_opt_policy(OptPolicy::Always);

    let mut baseline_values = Vec::new();
    let started = Instant::now();
    baseline.eval_batch(xs, &mut baseline_values);
    let baseline_seconds = started.elapsed().as_secs_f64();

    let mut opt_values = Vec::new();
    let started = Instant::now();
    optimized.eval_batch(xs, &mut opt_values);
    let opt_seconds = started.elapsed().as_secs_f64();

    let identical = baseline_values.len() == opt_values.len()
        && baseline_values
            .iter()
            .zip(&opt_values)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    let per_eval = |seconds: f64| seconds * 1.0e9 / xs.len().max(1) as f64;
    WorkloadReport {
        workload: name.to_string(),
        points: xs.len(),
        original_insts: stats.original_insts,
        optimized_insts: stats.optimized_insts,
        branches_folded: stats.branches_folded,
        sites_stripped: stats.sites_stripped,
        slice_ratio: stats.slice_ratio(),
        baseline_insts_per_eval,
        opt_insts_per_eval,
        insts_reduction: 1.0 - opt_insts_per_eval / baseline_insts_per_eval.max(1.0),
        baseline_ns_per_eval: per_eval(baseline_seconds),
        opt_ns_per_eval: per_eval(opt_seconds),
        speedup: baseline_seconds / opt_seconds.max(1e-12),
        identical,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let n = if smoke { 20_000 } else { 400_000 };

    println!(
        "Target-directed specialization experiment ({} mode, {n} points)",
        if smoke { "smoke" } else { "full" }
    );

    let xs = grid(n, -50.0, 50.0);
    let everything = ObservationSpec::branches(SiteSet::All);
    let single = ObservationSpec::branches(SiteSet::Only([0].into_iter().collect()));
    let workloads = vec![
        run_workload(
            "opt/W-driver(fig2)",
            w_driver(&fpir::programs::fig2_program(), "prog"),
            BoundaryMode::Product,
            &everything,
            &xs,
        ),
        run_workload(
            "opt/W-driver(fig1b)",
            w_driver(&fpir::programs::fig1b_program(), "prog"),
            BoundaryMode::Product,
            &everything,
            &xs,
        ),
        run_workload(
            "opt/single-branch(fig2)",
            ModuleProgram::new(fpir::programs::fig2_program(), "prog").expect("entry exists"),
            BoundaryMode::Single(BranchId(0)),
            &single,
            &xs,
        ),
    ];

    println!(
        "{:<24} {:>7} {:>7} {:>11} {:>11} {:>8} {:>8}  identical",
        "workload", "insts", "opt", "base i/e", "opt i/e", "reduced", "speedup"
    );
    for w in &workloads {
        println!(
            "{:<24} {:>7} {:>7} {:>11.1} {:>11.1} {:>7.1}% {:>7.2}x  {}",
            w.workload,
            w.original_insts,
            w.optimized_insts,
            w.baseline_insts_per_eval,
            w.opt_insts_per_eval,
            w.insts_reduction * 100.0,
            w.speedup,
            if w.identical { "yes" } else { "NO" }
        );
    }

    let fewer_instructions_everywhere = workloads
        .iter()
        .all(|w| w.opt_insts_per_eval < w.baseline_insts_per_eval);
    let report = OptReport {
        smoke,
        fewer_instructions_everywhere,
        workloads,
    };
    wdm_bench::emit_json("opt", &report);

    if report.workloads.iter().any(|w| !w.identical) {
        eprintln!("error: specialized values diverged from the unoptimized path");
        std::process::exit(1);
    }
    if !report.fewer_instructions_everywhere {
        eprintln!("error: specialization failed to reduce per-eval instruction counts");
        std::process::exit(1);
    }
}
