//! Regenerates Table 2 and Fig. 9: boundary value analysis of the Glibc
//! `sin` port (8 reachable boundary conditions out of 10).

fn main() {
    let budget: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40_000);
    let study = wdm_bench::table2_fig9(42, budget);
    println!("Table 2. Case study with Glibc sin: boundary value analysis.");
    println!(
        "{:<20} {:>4} {:>14} {:>14} {:>14} {:>6} {:>10}",
        "branch", "sign", "ref |x|", "min found", "max found", "hits", "reachable"
    );
    for c in &study.conditions {
        println!(
            "{:<20} {:>4} {:>14.6e} {:>14} {:>14} {:>6} {:>10}",
            c.label,
            c.sign,
            c.reference,
            c.min_found.map(|v| format!("{v:.6e}")).unwrap_or_else(|| "-".into()),
            c.max_found.map(|v| format!("{v:.6e}")).unwrap_or_else(|| "-".into()),
            c.hits,
            c.reachable
        );
    }
    println!(
        "\nFigure 9: {} reachable boundary conditions triggered with {} samples in {:.1} s",
        study.triggered, study.total_samples, study.seconds
    );
    for (samples, conditions) in &study.progress {
        println!("  after {samples:>9} samples: {conditions} conditions triggered");
    }
    wdm_bench::emit_json("table2_fig9", &study);
}
