//! Regenerates Table 5: inconsistencies detected in the three GSL
//! benchmarks and their classified root causes.

use wdm_bench::{run_fpod, GslBenchmark};
use wdm_core::driver::AnalysisConfig;

fn main() {
    let budget: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    println!("Table 5. Inconsistencies detected and their root causes.");
    println!(
        "{:<12} {:<40} {:>6} {:>12} {:>12}  root cause",
        "benchmark", "input", "status", "val", "err"
    );
    let mut serializable = Vec::new();
    for benchmark in GslBenchmark::all() {
        let config = AnalysisConfig::thorough(42).with_max_evals(budget).with_rounds(3);
        let result = run_fpod(benchmark, &config);
        for inc in result.distinct_causes() {
            let input: Vec<String> = inc.input.iter().map(|v| format!("{v:.3e}")).collect();
            let val = inc.outcome.values.first().map(|(_, v)| *v).unwrap_or(f64::NAN);
            let err = inc.outcome.values.get(1).map(|(_, v)| *v).unwrap_or(f64::NAN);
            println!(
                "{:<12} {:<40} {:>6} {:>12.3e} {:>12.3e}  {}",
                result.benchmark.function_name().split('_').next_back().unwrap_or("?"),
                input.join(", "),
                0,
                val,
                err,
                inc.cause
            );
            serializable.push((
                result.benchmark.function_name().to_string(),
                inc.input.clone(),
                val,
                err,
                inc.cause.to_string(),
            ));
        }
    }
    wdm_bench::emit_json("table5", &serializable);
}
