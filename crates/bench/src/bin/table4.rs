//! Regenerates Table 4: per-operation overflows in the Bessel benchmark
//! with the inputs that trigger them.

use wdm_bench::{run_fpod, GslBenchmark};
use wdm_core::driver::AnalysisConfig;

fn main() {
    let budget: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let config = AnalysisConfig::thorough(42).with_max_evals(budget).with_rounds(3);
    let result = run_fpod(GslBenchmark::Bessel, &config);
    println!("Table 4. Floating-point overflow detected in Bessel.");
    println!("{:<58} nu*, x*", "floating-point operation");
    for op in &result.overflow.operations {
        match &op.witness {
            Some(w) => println!("{:<58} {:.2e}, {:.2e}", op.site.label, w[0], w[1]),
            None => println!("{:<58} missed", op.site.label),
        }
    }
    println!(
        "\n{} of {} operations overflowed in {} rounds ({} evaluations)",
        result.overflow.num_overflows(),
        result.overflow.num_ops(),
        result.overflow.rounds,
        result.overflow.evals
    );
    let rows: Vec<(String, Option<Vec<f64>>)> = result
        .overflow
        .operations
        .iter()
        .map(|o| (o.site.label.clone(), o.witness.clone()))
        .collect();
    wdm_bench::emit_json("table4", &rows);
}
