//! Measures the wall-clock speedup of the `wdm_engine` parallel paths over
//! the sequential driver, and verifies that parallelism never changes
//! results.
//!
//! Two workloads are measured:
//!
//! * **campaign** — the full GSL benchmark suite (`wdm_engine::gsl_suite`)
//!   on 1 worker vs N workers, asserting the deterministic job results are
//!   bit-identical;
//! * **shard** — one hard weak-distance minimization with the restart
//!   rounds sharded (`AnalysisConfig::parallelism`) at 1 vs N threads,
//!   asserting the merged outcome is bit-identical.
//!
//! Usage: `parallel_speedup [--smoke] [--threads N] [--json <path>]`
//! (`--smoke` shrinks the budgets for CI; `--threads` defaults to 4 or
//! `WDM_THREADS`).

use serde::Serialize;
use std::time::Instant;
use wdm_core::driver::minimize_weak_distance;
use wdm_core::weak_distance::FnWeakDistance;
use wdm_core::AnalysisConfig;
use wdm_engine::gsl_suite;

#[derive(Debug, Clone, Serialize)]
struct WorkloadReport {
    workload: String,
    threads: usize,
    sequential_seconds: f64,
    parallel_seconds: f64,
    speedup: f64,
    deterministic_match: bool,
    total_evals: usize,
}

#[derive(Debug, Clone, Serialize)]
struct SpeedupReport {
    smoke: bool,
    threads: usize,
    workloads: Vec<WorkloadReport>,
}

fn campaign_workload(config: &AnalysisConfig, threads: usize) -> WorkloadReport {
    let sequential = gsl_suite(config).run(1);
    let parallel = gsl_suite(config).run(threads);
    let deterministic_match =
        sequential.deterministic_results() == parallel.deterministic_results();
    WorkloadReport {
        workload: "campaign/gsl_suite".to_string(),
        threads,
        sequential_seconds: sequential.wall_seconds,
        parallel_seconds: parallel.wall_seconds,
        speedup: sequential.wall_seconds / parallel.wall_seconds.max(1e-9),
        deterministic_match,
        total_evals: parallel.total_evals,
    }
}

fn shard_workload(config: &AnalysisConfig, threads: usize) -> WorkloadReport {
    // A zero-free weak distance: every restart round runs its full budget,
    // which is the worst case for the sequential driver and the best case
    // for sharding.
    let wd = FnWeakDistance::new(
        2,
        vec![fp_runtime::Interval::symmetric(1.0e6); 2],
        |x: &[f64]| {
            let a = (x[0] - 1.0).abs();
            let b = (x[1] + 2.0).abs();
            a * b + (a + b).sqrt() + 0.25
        },
    )
    .with_description("zero-free product distance");

    let started = Instant::now();
    let sequential = minimize_weak_distance(&wd, config);
    let sequential_seconds = started.elapsed().as_secs_f64();

    let started = Instant::now();
    let parallel = minimize_weak_distance(&wd, &config.clone().with_parallelism(threads));
    let parallel_seconds = started.elapsed().as_secs_f64();

    WorkloadReport {
        workload: "shard/restart_rounds".to_string(),
        threads,
        sequential_seconds,
        parallel_seconds,
        speedup: sequential_seconds / parallel_seconds.max(1e-9),
        deterministic_match: sequential.outcome == parallel.outcome
            && sequential.best == parallel.best,
        total_evals: parallel.outcome.evals(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::env::var("WDM_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(4));

    let (campaign_config, shard_config) = if smoke {
        (
            AnalysisConfig::quick(11).with_rounds(1).with_max_evals(2_000),
            AnalysisConfig::quick(11).with_rounds(8).with_max_evals(4_000),
        )
    } else {
        (
            AnalysisConfig::quick(11).with_rounds(2).with_max_evals(20_000),
            AnalysisConfig::quick(11).with_rounds(16).with_max_evals(60_000),
        )
    };

    println!(
        "Parallel speedup experiment ({} mode, {} workers)",
        if smoke { "smoke" } else { "full" },
        threads
    );
    let workloads = vec![
        campaign_workload(&campaign_config, threads),
        shard_workload(&shard_config, threads),
    ];

    println!(
        "{:<24} {:>10} {:>10} {:>8}  deterministic",
        "workload", "seq (s)", "par (s)", "speedup"
    );
    for w in &workloads {
        println!(
            "{:<24} {:>10.3} {:>10.3} {:>7.2}x  {}",
            w.workload,
            w.sequential_seconds,
            w.parallel_seconds,
            w.speedup,
            if w.deterministic_match { "yes" } else { "NO" }
        );
    }

    let report = SpeedupReport {
        smoke,
        threads,
        workloads,
    };
    wdm_bench::emit_json("parallel_speedup", &report);

    if report.workloads.iter().any(|w| !w.deterministic_match) {
        eprintln!("error: parallel results diverged from sequential results");
        std::process::exit(1);
    }
}
