//! Measures what plateau-triggered escalation buys the adaptive
//! portfolio: a family of shelf workloads whose reward signal flatlines
//! (a huge log-sampled domain, a flat shelf around an off-center
//! magnitude, and a narrow zero basin hidden inside the shelf) is run
//! once with the pure adaptive policy and once with escalation enabled,
//! from the same seeds.
//!
//! On the shelf the bandit's per-slice improvements go quiet, so the
//! pure policy strands at the shelf value unless a backend stumbles
//! into the basin; the escalated runs detect the plateau, tighten the
//! box around the incumbent and spawn polish + uniform-restart arms
//! that sweep the shelf. The headline is how many instances escalation
//! rescues (solves where pure missed) and at what evaluation spend. A
//! zero-free control shelf checks that the detector does not regress
//! workloads with nothing to find.
//!
//! Usage: `escalation_speedup [--smoke] [--threads N] [--json <path>]`
//! (the JSON report is `BENCH_escalation.json` when `--json` targets a
//! directory).

use serde::Serialize;
use std::time::Instant;
use wdm_core::adaptive::minimize_weak_distance_adaptive;
use wdm_core::weak_distance::FnWeakDistance;
use wdm_core::{AnalysisConfig, BackendKind, EscalationConfig, WeakDistance};

/// Shelf center: an awkward magnitude the log-uniform domain sampling
/// rarely lands on, far from the domain center the descent backends
/// polish toward.
const CENTER: f64 = 8.765_432_1e6;
/// Flat-shelf radius around the center.
const SHELF: f64 = 500.0;
/// Zero-basin radius; the basin hides off-center inside the shelf.
const BASIN: f64 = 1.0;

/// The plateau workload: flat shelf in a huge domain, with (or, for the
/// control, without) a hidden zero basin.
fn plateau(with_basin: bool) -> FnWeakDistance<impl Fn(&[f64]) -> f64> {
    FnWeakDistance::new(
        1,
        vec![fp_runtime::Interval::symmetric(1.0e8)],
        move |x: &[f64]| {
            let d = (x[0] - CENTER).abs();
            if with_basin && (x[0] - (CENTER + 0.8 * SHELF)).abs() <= BASIN {
                0.0
            } else if d <= SHELF {
                0.5
            } else {
                0.5 + (d - SHELF) / 1.0e8
            }
        },
    )
}

#[derive(Debug, Clone, Serialize)]
struct PolicyResult {
    found: bool,
    evals: usize,
    /// Escalation events, counted off the portfolio report (spawned
    /// arms beyond the base backends, two per event).
    escalations: usize,
    seconds: f64,
}

#[derive(Debug, Clone, Serialize)]
struct InstanceReport {
    seed: u64,
    pure: PolicyResult,
    escalated: PolicyResult,
}

#[derive(Debug, Clone, Serialize)]
struct EscalationReport {
    smoke: bool,
    threads: usize,
    rounds: usize,
    max_evals: usize,
    instances: Vec<InstanceReport>,
    control: Vec<InstanceReport>,
    /// The headline counts over the basin instances.
    pure_found: usize,
    escalated_found: usize,
    /// Instances escalation solved that the pure policy missed.
    rescued: usize,
    /// Instances the pure policy solved that escalation missed.
    lost: usize,
    /// Control (zero-free) evaluation spend, escalated over pure.
    control_eval_ratio: f64,
}

fn run(wd: &dyn WeakDistance, config: &AnalysisConfig, base_arms: usize) -> PolicyResult {
    let started = Instant::now();
    let run = minimize_weak_distance_adaptive(wd, config, &BackendKind::all());
    let seconds = started.elapsed().as_secs_f64();
    PolicyResult {
        found: run.outcome().is_found(),
        evals: run.outcome().evals(),
        escalations: run.entries.len().saturating_sub(base_arms) / 2,
        seconds,
    }
}

fn compare(seed: u64, with_basin: bool, threads: usize, rounds: usize, max_evals: usize) -> InstanceReport {
    let wd = plateau(with_basin);
    let base_arms = BackendKind::all().len();
    let pure_config = AnalysisConfig::quick(seed)
        .with_rounds(rounds)
        .with_max_evals(max_evals)
        .with_parallelism(threads);
    let escalated_config = pure_config.clone().with_escalation(
        EscalationConfig::default()
            .with_threshold(0.25)
            .with_patience(2)
            .with_tighten(1.5e-5),
    );
    InstanceReport {
        seed,
        pure: run(&wd, &pure_config, base_arms),
        escalated: run(&wd, &escalated_config, base_arms),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::env::var("WDM_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or(4)
        });
    // The budget shapes the plateau: two restart rounds of 6k keep the
    // shelf discoverable but the basin out of the pure policy's reach
    // on most seeds. Smoke mode trims the seed count, not the budget —
    // a smaller pool would change what "plateau" means.
    let (rounds, max_evals) = (2, 6_000);
    let seeds: Vec<u64> = if smoke { (40..46).collect() } else { (40..70).collect() };
    let control_seeds: Vec<u64> = if smoke {
        (40..43).collect()
    } else {
        (40..50).collect()
    };

    println!(
        "Plateau-escalation experiment ({} mode, {} instances, {rounds} rounds x {max_evals} \
         evals, {threads} workers)",
        if smoke { "smoke" } else { "full" },
        seeds.len(),
    );
    println!(
        "{:<6} {:>6} {:>12} | {:>6} {:>12} {:>12}",
        "seed", "pure", "pure evals", "esc", "esc evals", "escalations"
    );

    let instances: Vec<InstanceReport> = seeds
        .iter()
        .map(|&seed| {
            let r = compare(seed, true, threads, rounds, max_evals);
            println!(
                "{:<6} {:>6} {:>12} | {:>6} {:>12} {:>12}",
                r.seed,
                if r.pure.found { "hit" } else { "miss" },
                r.pure.evals,
                if r.escalated.found { "hit" } else { "miss" },
                r.escalated.evals,
                r.escalated.escalations,
            );
            r
        })
        .collect();
    let control: Vec<InstanceReport> = control_seeds
        .iter()
        .map(|&seed| compare(seed, false, threads, rounds, max_evals))
        .collect();

    let pure_found = instances.iter().filter(|r| r.pure.found).count();
    let escalated_found = instances.iter().filter(|r| r.escalated.found).count();
    let rescued = instances
        .iter()
        .filter(|r| r.escalated.found && !r.pure.found)
        .count();
    let lost = instances
        .iter()
        .filter(|r| r.pure.found && !r.escalated.found)
        .count();
    let (control_pure, control_esc) = control.iter().fold((0usize, 0usize), |acc, r| {
        (acc.0 + r.pure.evals, acc.1 + r.escalated.evals)
    });
    let report = EscalationReport {
        smoke,
        threads,
        rounds,
        max_evals,
        pure_found,
        escalated_found,
        rescued,
        lost,
        control_eval_ratio: control_esc as f64 / control_pure.max(1) as f64,
        instances,
        control,
    };
    println!(
        "escalation solved {escalated_found}/{} instances (pure policy: {pure_found}; rescued \
         {rescued}, lost {lost}); control eval ratio {:.2}x",
        report.instances.len(),
        report.control_eval_ratio
    );
    wdm_bench::emit_json("escalation", &report);
}
