//! Regenerates Table 1: three MO backends on the boundary-value and
//! path-reachability weak distances of the Fig. 2 program.

fn main() {
    let rows = wdm_bench::table1(42, 20_000);
    println!("Table 1. Different MO backends applied on two weak distances.");
    println!("{:<18} {:<26} {:>12}  minima", "backend", "analysis", "W*");
    for row in &rows {
        let minima: Vec<String> = row.minima.iter().map(|m| format!("{m}")).collect();
        println!(
            "{:<18} {:<26} {:>12.3e}  [{}]",
            row.backend,
            row.analysis,
            row.w_star,
            minima.join(", ")
        );
    }
    wdm_bench::emit_json("table1", &rows);
}
