//! The analysis service's TCP front-end: serves the line-delimited JSON
//! protocol of `wdm_service::wire` over a catalog of named problems (the
//! paper's boundary benchmarks plus a zero-free synthetic), with optional
//! durable checkpointing.
//!
//! Usage: `serve [--addr HOST:PORT] [--threads N] [--checkpoint-dir DIR]
//! [--smoke]`
//!
//! `--smoke` runs the end-to-end durability drill instead of serving:
//! submit over TCP → stream progress until a durable checkpoint → kill
//! the server mid-run → start a fresh server over the same checkpoint
//! directory → resume → assert the final report is bit-identical to an
//! uninterrupted in-process run. CI runs this under both thread counts
//! of the test matrix; it exits non-zero on any mismatch.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use wdm_core::adaptive::minimize_weak_distance_adaptive;
use wdm_core::boundary::BoundaryWeakDistance;
use wdm_core::weak_distance::FnWeakDistance;
use wdm_core::{AnalysisConfig, BackendKind};
use wdm_service::wire::outcome_json;
use wdm_service::{serve, AnalysisService, Catalog, JobId, JobOutcome, ServiceConfig};

/// The problems a client can submit against.
fn catalog() -> Catalog {
    Catalog::new()
        .register(
            "boundary/fig2",
            Arc::new(BoundaryWeakDistance::new(mini_gsl::toy::Fig2Program::new())),
        )
        .register(
            "boundary/eq_zero",
            Arc::new(BoundaryWeakDistance::new(mini_gsl::toy::EqZeroProgram::new())),
        )
        .register(
            "boundary/glibc_sin",
            Arc::new(BoundaryWeakDistance::new(
                mini_gsl::glibc_sin::GlibcSin::new(),
            )),
        )
        .register(
            "zero_free/needle",
            Arc::new(FnWeakDistance::new(
                1,
                vec![fp_runtime::Interval::symmetric(1.0e4)],
                |x: &[f64]| (x[0] - 1.0).abs() * (x[0] + 3.0).abs() + 0.5,
            )),
        )
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// One line-delimited JSON client connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to server");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .expect("socket timeout");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read server line");
        assert!(n > 0, "server closed the connection unexpectedly");
        line.trim_end().to_string()
    }

    fn send(&mut self, request: &str) -> String {
        writeln!(self.writer, "{request}").expect("write request");
        self.read_line()
    }
}

/// Starts a server over an ephemeral port and returns its address plus
/// the thread running it.
fn spawn_server(
    threads: usize,
    checkpoint_dir: Option<&std::path::Path>,
) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let mut config = ServiceConfig::new(threads).with_rounds_per_turn(1);
    if let Some(dir) = checkpoint_dir {
        config = config.with_checkpoint_dir(dir);
    }
    let service = AnalysisService::start(config);
    let thread = std::thread::spawn(move || serve(listener, service, catalog()));
    (addr, thread)
}

/// The `--smoke` drill: submit → stream → kill → resume → identical report.
fn smoke(threads: usize) {
    const PROBLEM: &str = "zero_free/needle";
    const SEED: u64 = 11;
    const ROUNDS: u64 = 2;
    const MAX_EVALS: u64 = 2_500;

    // The uninterrupted reference, in-process: what the whole drill must
    // reproduce bit for bit.
    let config = AnalysisConfig::quick(SEED)
        .with_rounds(ROUNDS as usize)
        .with_max_evals(MAX_EVALS as usize);
    let wd = catalog().resolve(PROBLEM).expect("catalog problem");
    let reference = minimize_weak_distance_adaptive(&*wd, &config, &BackendKind::all());
    let expected = serde_json::to_string(&outcome_json(
        JobId(0),
        &JobOutcome {
            name: PROBLEM.to_string(),
            run: reference,
        },
    ))
    .expect("render reference outcome");

    let dir = std::env::temp_dir().join(format!("wdm-serve-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let submit = format!(
        "{{\"cmd\":\"submit\",\"problem\":\"{PROBLEM}\",\"seed\":{SEED},\
         \"rounds\":{ROUNDS},\"max_evals\":{MAX_EVALS}}}"
    );

    // Phase 1: submit over TCP, stream until a durable checkpoint, then
    // kill the server mid-run.
    {
        let (addr, server) = spawn_server(threads, Some(&dir));
        let mut control = Client::connect(addr);
        assert!(control.send("{\"cmd\":\"ping\"}").contains("true"), "ping");
        let mut stream = Client::connect(addr);
        let ack = stream.send("{\"cmd\":\"subscribe\"}");
        assert!(ack.contains("true"), "subscribe ack: {ack}");
        let reply = control.send(&submit);
        assert!(reply.contains("\"id\":0"), "submit reply: {reply}");
        loop {
            let event = stream.read_line();
            if event.contains("\"checkpointed\"") {
                break;
            }
            assert!(
                !event.contains("\"finished\""),
                "zero-free job finished before the kill: {event}"
            );
        }
        control.send("{\"cmd\":\"shutdown\"}");
        server.join().expect("server thread");
        println!("smoke: killed the server mid-run after a durable checkpoint");
    }

    // Phase 2: a fresh server over the same directory resumes the
    // re-submitted job and replays to the identical final report.
    {
        let (addr, server) = spawn_server(threads, Some(&dir));
        let mut stream = Client::connect(addr);
        stream.send("{\"cmd\":\"subscribe\"}");
        let mut control = Client::connect(addr);
        let reply = control.send(&submit);
        assert!(reply.contains("\"id\":0"), "resubmit reply: {reply}");
        let admitted = stream.read_line();
        assert!(
            admitted.contains("\"admitted\"") && !admitted.contains("\"resumed_at_turn\":0"),
            "job resumed from disk: {admitted}"
        );
        let outcome = control.send("{\"cmd\":\"wait\",\"id\":0}");
        assert_eq!(
            outcome, expected,
            "resumed report differs from the uninterrupted run"
        );
        let report = control.send("{\"cmd\":\"report\"}");
        assert!(report.contains("zero_free/needle"), "report: {report}");
        control.send("{\"cmd\":\"shutdown\"}");
        server.join().expect("server thread");
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!("smoke: kill+resume replayed the identical report ({threads} threads) -- OK");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threads = flag_value(&args, "--threads")
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::env::var("WDM_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or(4)
        });

    if args.iter().any(|a| a == "--smoke") {
        smoke(threads);
        return;
    }

    let addr = flag_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:4127".to_string());
    let listener = TcpListener::bind(&addr).expect("bind address");
    let mut config = ServiceConfig::new(threads);
    if let Some(dir) = flag_value(&args, "--checkpoint-dir") {
        config = config.with_checkpoint_dir(dir);
    }
    let service = AnalysisService::start(config);
    let catalog = catalog();
    println!(
        "analysis service on {addr} ({threads} workers); problems: {}",
        catalog.names().join(", ")
    );
    println!("protocol: one JSON object per line; send {{\"cmd\":\"shutdown\"}} to stop");
    serve(listener, service, catalog);
}
