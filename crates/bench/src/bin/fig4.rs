//! Regenerates Fig. 4(b,c): the path-reachability weak distance (both
//! branches of the Fig. 2 program) and the sampling sequence.

fn main() {
    let fig = wdm_bench::fig4(42);
    println!("Figure 4(b): W(x) on a grid over [-6, 6] (zero on the solution space [-3, 1])");
    for (x, w) in fig.graph.x.iter().zip(&fig.graph.w).step_by(8) {
        println!("  W({x:>6.2}) = {w:.4}");
    }
    let inside = fig
        .samples
        .iter()
        .filter(|&&x| (-3.0..=1.0).contains(&x))
        .count();
    println!(
        "Figure 4(c): {} samples recorded, {} inside the solution space, {} with W = 0",
        fig.samples.len(),
        inside,
        fig.zero_hits
    );
    wdm_bench::emit_json("fig4", &fig);
}
