//! Throughput of the multi-tenant analysis service: N concurrent
//! synthetic jobs time-sliced over one shared pool, measured twice —
//! without and with durable checkpointing — to price the fair-share
//! scheduler and the checkpoint cadence.
//!
//! Reported (and written to `BENCH_service.json`):
//!
//! * jobs per second over the whole tenant mix;
//! * p50/p99 slice latency: the time between consecutive progress
//!   events of one job, i.e. how long a tenant waits for (and then
//!   spends in) its next turn;
//! * checkpoint overhead: the wall-clock cost of persisting every
//!   job's snapshot each turn, as a fraction of the plain run.
//!
//! The two runs must also produce bit-identical outcomes per job — the
//! determinism contract — which this binary asserts as a side effect.
//!
//! Usage: `service_throughput [--smoke] [--threads N] [--jobs N]
//! [--json <path>]`

use serde::Serialize;
use std::sync::Arc;
use std::time::{Duration, Instant};

use wdm_core::weak_distance::FnWeakDistance;
use wdm_core::AnalysisConfig;
use wdm_service::{AnalysisService, EventKind, JobSpec, ServiceConfig};

#[derive(Debug, Clone, Serialize)]
struct RunStats {
    checkpointed: bool,
    wall_seconds: f64,
    jobs_per_second: f64,
    slices: usize,
    slice_latency_ms_p50: f64,
    slice_latency_ms_p99: f64,
    checkpoints_written: usize,
}

#[derive(Debug, Clone, Serialize)]
struct ServiceReport {
    smoke: bool,
    threads: usize,
    jobs: usize,
    rounds_per_turn: usize,
    max_evals: usize,
    plain: RunStats,
    durable: RunStats,
    /// Durable wall clock as a fraction over the plain run's
    /// (0.07 = checkpointing cost 7%).
    checkpoint_overhead_fraction: f64,
    /// Every job's outcome was bit-identical across the two runs.
    outcomes_identical: bool,
}

/// Zero-free synthetic tenant `i`: every job spends its whole budget, so
/// the two runs are comparable slice for slice.
fn tenant(i: usize) -> Arc<dyn wdm_core::WeakDistance> {
    let a = i as f64 * 1.7 - 3.0;
    Arc::new(FnWeakDistance::new(
        1,
        vec![fp_runtime::Interval::symmetric(1.0e3)],
        move |x: &[f64]| (x[0] - a).abs() + 0.5 + (i % 3) as f64,
    ))
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs `jobs` tenants to completion and collects slice-latency samples
/// from the progress stream. Returns the stats and each job's terminal
/// (outcome-evals, best-value-bits) pair for the determinism check.
fn run_workload(
    threads: usize,
    jobs: usize,
    rounds_per_turn: usize,
    config: &AnalysisConfig,
    checkpoint_dir: Option<&std::path::Path>,
) -> (RunStats, Vec<(usize, u64)>) {
    let mut service_config = ServiceConfig::new(threads).with_rounds_per_turn(rounds_per_turn);
    if let Some(dir) = checkpoint_dir {
        service_config = service_config.with_checkpoint_dir(dir);
    }
    let started = Instant::now();
    let service = AnalysisService::start(service_config);
    let handle = service.handle();
    let events = handle.subscribe();
    let ids: Vec<_> = (0..jobs)
        .map(|i| {
            handle
                .submit(JobSpec::new(
                    format!("tenant-{i}"),
                    tenant(i),
                    config.clone().with_seed_offset(i as u64),
                ))
                .expect("service accepts submissions")
        })
        .collect();

    let mut last_seen: Vec<Instant> = vec![started; jobs];
    let mut latencies: Vec<f64> = Vec::new();
    let mut checkpoints = 0usize;
    let mut finished = 0usize;
    while finished < jobs {
        let event = events
            .recv_timeout(Duration::from_secs(600))
            .expect("service makes progress");
        match event.kind {
            EventKind::Progress { .. } => {
                let now = Instant::now();
                latencies.push(now.duration_since(last_seen[event.job.0]).as_secs_f64());
                last_seen[event.job.0] = now;
            }
            EventKind::Checkpointed { .. } => checkpoints += 1,
            EventKind::Finished { .. } | EventKind::Cancelled => finished += 1,
            EventKind::Admitted { .. } | EventKind::Escalated { .. } => {}
        }
    }
    let signatures: Vec<(usize, u64)> = ids
        .into_iter()
        .map(|id| {
            let run = handle.wait(id).run;
            let outcome = run.outcome();
            let best = match outcome {
                wdm_core::Outcome::Found { .. } => 0u64,
                wdm_core::Outcome::NotFound { best_value, .. } => best_value.to_bits(),
            };
            (outcome.evals(), best)
        })
        .collect();
    service.shutdown();
    let wall = started.elapsed().as_secs_f64();

    latencies.sort_by(f64::total_cmp);
    let stats = RunStats {
        checkpointed: checkpoint_dir.is_some(),
        wall_seconds: wall,
        jobs_per_second: jobs as f64 / wall.max(1.0e-9),
        slices: latencies.len(),
        slice_latency_ms_p50: percentile(&latencies, 0.50) * 1.0e3,
        slice_latency_ms_p99: percentile(&latencies, 0.99) * 1.0e3,
        checkpoints_written: checkpoints,
    };
    (stats, signatures)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
    };
    let threads = flag("--threads").unwrap_or_else(|| {
        std::env::var("WDM_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(4)
    });
    let jobs = flag("--jobs").unwrap_or(if smoke { 6 } else { 24 });
    let (rounds_per_turn, max_evals) = if smoke { (1, 1_200) } else { (2, 8_000) };
    let config = AnalysisConfig::quick(23)
        .with_rounds(1)
        .with_max_evals(max_evals);

    println!(
        "Service throughput ({} mode): {jobs} tenants x {max_evals} evals, {threads} workers, \
         {rounds_per_turn} rounds/turn",
        if smoke { "smoke" } else { "full" }
    );

    let (plain, plain_sig) = run_workload(threads, jobs, rounds_per_turn, &config, None);
    let dir = std::env::temp_dir().join(format!("wdm-throughput-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (durable, durable_sig) = run_workload(threads, jobs, rounds_per_turn, &config, Some(&dir));
    let _ = std::fs::remove_dir_all(&dir);

    let outcomes_identical = plain_sig == durable_sig;
    assert!(
        outcomes_identical,
        "determinism violation: checkpointing changed an outcome\nplain:   {plain_sig:?}\n\
         durable: {durable_sig:?}"
    );
    let checkpoint_overhead_fraction =
        (durable.wall_seconds - plain.wall_seconds) / plain.wall_seconds.max(1.0e-9);

    for stats in [&plain, &durable] {
        println!(
            "{:<8} {:>7.2} jobs/s over {:.2}s, {} slices, slice latency p50 {:.2}ms / p99 \
             {:.2}ms, {} checkpoints",
            if stats.checkpointed { "durable" } else { "plain" },
            stats.jobs_per_second,
            stats.wall_seconds,
            stats.slices,
            stats.slice_latency_ms_p50,
            stats.slice_latency_ms_p99,
            stats.checkpoints_written,
        );
    }
    println!(
        "checkpoint overhead: {:+.1}% wall clock; outcomes bit-identical: {outcomes_identical}",
        checkpoint_overhead_fraction * 100.0
    );

    let report = ServiceReport {
        smoke,
        threads,
        jobs,
        rounds_per_turn,
        max_evals,
        plain,
        durable,
        checkpoint_overhead_fraction,
        outcomes_identical,
    };
    wdm_bench::emit_json("service", &report);
}
