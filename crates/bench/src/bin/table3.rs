//! Regenerates Table 3: overflow-detection summary on the three GSL
//! benchmarks (|Op|, |O|, |I|, |B|, time).

use wdm_bench::{run_fpod, GslBenchmark};
use wdm_core::driver::AnalysisConfig;

fn main() {
    let budget: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let mut rows = Vec::new();
    println!("Table 3. Result summary: floating-point overflow detection.");
    println!(
        "{:<30} {:>5} {:>5} {:>5} {:>5} {:>9}",
        "function", "|Op|", "|O|", "|I|", "|B|", "T (sec)"
    );
    for benchmark in GslBenchmark::all() {
        let config = AnalysisConfig::thorough(42).with_max_evals(budget).with_rounds(3);
        let result = run_fpod(benchmark, &config);
        let row = result.table3_row();
        println!(
            "{:<30} {:>5} {:>5} {:>5} {:>5} {:>9.1}",
            row.function, row.ops, row.overflows, row.inconsistencies, row.bugs, row.seconds
        );
        rows.push(row);
    }
    wdm_bench::emit_json("table3", &rows);
}
