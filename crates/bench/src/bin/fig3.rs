//! Regenerates Fig. 3(b,c): the boundary-value weak distance of the Fig. 2
//! program and the Basinhopping sampling sequence.

fn main() {
    let fig = wdm_bench::fig3(42);
    println!("Figure 3(b): W(x) on a grid over [-6, 6] (zeros are boundary values)");
    for (x, w) in fig.graph.x.iter().zip(&fig.graph.w).step_by(8) {
        println!("  W({x:>6.2}) = {w:.4}");
    }
    println!(
        "Figure 3(c): {} samples recorded, {} of them hit W = 0 (expected boundary values: {:?})",
        fig.samples.len(),
        fig.zero_hits,
        fig.expected_solutions
    );
    wdm_bench::emit_json("fig3", &fig);
}
