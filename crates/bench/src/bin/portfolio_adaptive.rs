//! Compares the two portfolio policies — racing every backend to the end
//! vs. adaptive bandit-driven budget reallocation — on the paper's example
//! programs and the GSL portfolio suite.
//!
//! For each workload both policies run the same five-backend portfolio
//! from the same seed:
//!
//! * **Race** gives every backend the full round/budget configuration (up
//!   to 5× the budget) and cancels the losers at the first zero;
//! * **Adaptive** spends *one* run's budget (`rounds × max_evals`) total,
//!   reallocated each scheduler round toward the backend with the best
//!   residual trajectory (deterministic UCB on per-slice improvement).
//!
//! The interesting questions the JSON answers: how often does adaptive
//! still solve the problem, and at what fraction of the race's
//! evaluations. The suite rows run the same comparison through campaign
//! mode (`gsl_portfolio_suite`) on a worker pool.
//!
//! Usage: `portfolio_adaptive [--smoke] [--threads N] [--json <path>]`
//! (the JSON report is `BENCH_adaptive.json` when `--json` targets a
//! directory).

use serde::Serialize;
use std::time::Instant;
use wdm_core::boundary::BoundaryWeakDistance;
use wdm_core::driver::{minimize_weak_distance_portfolio, PortfolioPolicy};
use wdm_core::{AnalysisConfig, BackendKind, WeakDistance};
use wdm_engine::gsl_portfolio_suite;

#[derive(Debug, Clone, Serialize)]
struct PolicyResult {
    policy: String,
    found: bool,
    winner: String,
    evals: usize,
    seconds: f64,
}

#[derive(Debug, Clone, Serialize)]
struct WorkloadReport {
    workload: String,
    race: PolicyResult,
    adaptive: PolicyResult,
    /// Adaptive evaluations as a fraction of the race's.
    adaptive_eval_fraction: f64,
}

#[derive(Debug, Clone, Serialize)]
struct SuiteReport {
    policy: String,
    jobs: usize,
    jobs_fully_solved: usize,
    total_evals: usize,
    wall_seconds: f64,
}

#[derive(Debug, Clone, Serialize)]
struct AdaptiveReport {
    smoke: bool,
    threads: usize,
    rounds: usize,
    max_evals: usize,
    workloads: Vec<WorkloadReport>,
    suite: Vec<SuiteReport>,
    /// The headline: adaptive solved this many workloads at this fraction
    /// of the race's total evaluations.
    adaptive_found: usize,
    race_found: usize,
    adaptive_total_eval_fraction: f64,
}

fn run_policy(
    wd: &dyn WeakDistance,
    config: &AnalysisConfig,
    policy: PortfolioPolicy,
) -> PolicyResult {
    let config = config.clone().with_portfolio_policy(policy);
    let started = Instant::now();
    let run = minimize_weak_distance_portfolio(wd, &config, &BackendKind::all());
    let seconds = started.elapsed().as_secs_f64();
    PolicyResult {
        policy: format!("{policy:?}"),
        found: run.outcome().is_found(),
        winner: run.winning_backend().name().to_string(),
        evals: run.outcome().evals(),
        seconds,
    }
}

fn compare(name: &str, wd: &dyn WeakDistance, config: &AnalysisConfig) -> WorkloadReport {
    let race = run_policy(wd, config, PortfolioPolicy::Race);
    let adaptive = run_policy(wd, config, PortfolioPolicy::Adaptive);
    let adaptive_eval_fraction = adaptive.evals as f64 / race.evals.max(1) as f64;
    WorkloadReport {
        workload: name.to_string(),
        race,
        adaptive,
        adaptive_eval_fraction,
    }
}

fn fpir_boundary(module: fpir::Module) -> BoundaryWeakDistance<fpir::ModuleProgram> {
    BoundaryWeakDistance::new(fpir::ModuleProgram::new(module, "prog").expect("entry exists"))
}

fn run_suite(config: &AnalysisConfig, policy: PortfolioPolicy, threads: usize) -> SuiteReport {
    let config = config.clone().with_portfolio_policy(policy);
    let report = gsl_portfolio_suite(&config, &BackendKind::all()).run(threads);
    SuiteReport {
        policy: format!("{policy:?}"),
        jobs: report.jobs.len(),
        jobs_fully_solved: report.jobs_fully_solved,
        total_evals: report.total_evals,
        wall_seconds: report.wall_seconds,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::env::var("WDM_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or(4)
        });
    let (rounds, max_evals) = if smoke { (2, 4_000) } else { (3, 20_000) };
    let config = AnalysisConfig::quick(7)
        .with_rounds(rounds)
        .with_max_evals(max_evals)
        .with_parallelism(threads);

    println!(
        "Adaptive-portfolio experiment ({} mode, {rounds} rounds x {max_evals} evals, \
         {threads} workers)",
        if smoke { "smoke" } else { "full" }
    );

    let workloads = vec![
        compare(
            "boundary/fig2",
            &fpir_boundary(fpir::programs::fig2_program()),
            &config,
        ),
        compare(
            "boundary/fig1b",
            &fpir_boundary(fpir::programs::fig1b_program()),
            &config,
        ),
        compare(
            "boundary/eq_zero",
            &fpir_boundary(fpir::programs::eq_zero_program()),
            &config,
        ),
        compare(
            "boundary/glibc_sin",
            &BoundaryWeakDistance::new(mini_gsl::glibc_sin::GlibcSin::new()),
            &config,
        ),
        // The regime adaptive mode exists for: no zero to find, so race
        // mode runs every backend to budget exhaustion (~5x) while the
        // adaptive pool stays at ~1x.
        compare(
            "zero_free/needle",
            &wdm_core::weak_distance::FnWeakDistance::new(
                1,
                vec![fp_runtime::Interval::symmetric(1.0e4)],
                |x: &[f64]| (x[0] - 1.0).abs() * (x[0] + 3.0).abs() + 0.5,
            ),
            &config,
        ),
    ];

    println!(
        "{:<20} {:>6} {:>12} {:>16} | {:>6} {:>12} {:>16} {:>9}",
        "workload", "race", "race evals", "race winner", "adapt", "adapt evals", "adapt winner",
        "fraction"
    );
    for w in &workloads {
        println!(
            "{:<20} {:>6} {:>12} {:>16} | {:>6} {:>12} {:>16} {:>8.2}x",
            w.workload,
            if w.race.found { "hit" } else { "miss" },
            w.race.evals,
            w.race.winner,
            if w.adaptive.found { "hit" } else { "miss" },
            w.adaptive.evals,
            w.adaptive.winner,
            w.adaptive_eval_fraction,
        );
    }

    let suite = vec![
        run_suite(&config, PortfolioPolicy::Race, threads),
        run_suite(&config, PortfolioPolicy::Adaptive, threads),
    ];
    for s in &suite {
        println!(
            "suite/{:<10} solved {}/{} jobs, {} evals, {:.2}s",
            s.policy, s.jobs_fully_solved, s.jobs, s.total_evals, s.wall_seconds
        );
    }

    let adaptive_found = workloads.iter().filter(|w| w.adaptive.found).count();
    let race_found = workloads.iter().filter(|w| w.race.found).count();
    let (race_total, adaptive_total) = workloads.iter().fold((0usize, 0usize), |acc, w| {
        (acc.0 + w.race.evals, acc.1 + w.adaptive.evals)
    });
    let report = AdaptiveReport {
        smoke,
        threads,
        rounds,
        max_evals,
        workloads,
        suite,
        adaptive_found,
        race_found,
        adaptive_total_eval_fraction: adaptive_total as f64 / race_total.max(1) as f64,
    };
    println!(
        "adaptive solved {adaptive_found}/{race_found} of the race's workloads at {:.2}x of \
         its evaluations",
        report.adaptive_total_eval_fraction
    );
    wdm_bench::emit_json("adaptive", &report);
}
