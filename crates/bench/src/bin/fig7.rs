//! Regenerates Fig. 7: the characteristic-function weak distance, flat
//! almost everywhere, whose minimization degenerates to random testing.

fn main() {
    let fig = wdm_bench::fig7(42);
    let flat = fig.graph.w.iter().filter(|&&w| w == 1.0).count();
    println!(
        "Figure 7: characteristic weak distance is flat at 1.0 on {}/{} grid points",
        flat,
        fig.graph.w.len()
    );
    println!(
        "Minimizing it recorded {} samples and found {} zeros (expected: almost never)",
        fig.samples.len(),
        fig.zero_hits
    );
    wdm_bench::emit_json("fig7", &fig);
}
