//! A wrapper restricting the search domain of a benchmark program.

use fp_runtime::{Analyzable, BranchSite, Ctx, Interval, OpSite};

/// Wraps an [`Analyzable`] program, overriding its search domain (used by
/// the GNU `sin` study to search the positive and negative half-lines
/// separately, which is how Table 2 distinguishes the `+` and `-` boundary
/// values of each condition).
#[derive(Debug, Clone)]
pub struct Restricted<P> {
    inner: P,
    domain: Vec<Interval>,
}

impl<P: Analyzable> Restricted<P> {
    /// Restricts `inner` to the given box.
    ///
    /// # Panics
    ///
    /// Panics if the arity does not match.
    pub fn new(inner: P, domain: Vec<Interval>) -> Self {
        assert_eq!(domain.len(), inner.num_inputs(), "domain arity mismatch");
        Restricted { inner, domain }
    }
}

impl<P: Analyzable> Analyzable for Restricted<P> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn num_inputs(&self) -> usize {
        self.inner.num_inputs()
    }

    fn search_domain(&self) -> Vec<Interval> {
        self.domain.clone()
    }

    fn op_sites(&self) -> Vec<OpSite> {
        self.inner.op_sites()
    }

    fn branch_sites(&self) -> Vec<BranchSite> {
        self.inner.branch_sites()
    }

    fn execute(&self, input: &[f64], ctx: &mut Ctx<'_>) -> Option<f64> {
        self.inner.execute(input, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_runtime::NullObserver;
    use mini_gsl::toy::Fig2Program;

    #[test]
    fn overrides_domain_only() {
        let r = Restricted::new(Fig2Program::new(), vec![Interval::new(0.0, 5.0)]);
        assert_eq!(r.search_domain()[0].lo(), 0.0);
        assert_eq!(r.num_inputs(), 1);
        assert_eq!(r.branch_sites().len(), 2);
        assert_eq!(r.run(&[0.5], &mut NullObserver), Some(0.5));
    }
}
