//! The experiment implementations, one function per table/figure.

use crate::restricted::Restricted;
use fp_runtime::Interval;
use mini_gsl::airy::{airy_outcome, AiryAi};
use mini_gsl::bessel::{bessel_outcome, BesselKnuScaled};
use mini_gsl::glibc_sin::{GlibcSin, K_THRESHOLDS, REFERENCE_BOUNDS};
use mini_gsl::hyperg::{hyperg_outcome, Hyperg2F0};
use mini_gsl::result::SfOutcome;
use serde::Serialize;
use std::time::Instant;
use wdm_core::boundary::{BoundaryAnalysis, BoundaryMode, BoundaryWeakDistance};
use wdm_core::driver::{minimize_weak_distance, AnalysisConfig, BackendKind, Outcome};
use wdm_core::inconsistency::{find_inconsistencies, Inconsistency, StatusOutcome};
use wdm_core::overflow::{OverflowDetector, OverflowReport};
use wdm_core::path::{PathAnalysis, PathWeakDistance};
use wdm_core::weak_distance::WeakDistance;
use wdm_xsat::{Atom, Clause, Cnf, Expr, Solver, Verdict};

/// One row of Table 1: a backend applied to one weak distance.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Backend name.
    pub backend: String,
    /// The analysis ("Boundary Value Analysis" or "Path Reachability").
    pub analysis: String,
    /// Best weak-distance value found.
    pub w_star: f64,
    /// Minimum point(s) found (boundary values, or a path witness).
    pub minima: Vec<f64>,
    /// Objective evaluations spent.
    pub evals: usize,
}

/// Table 1: three MO backends on the boundary-value and path-reachability
/// weak distances of the Fig. 2 program.
pub fn table1(seed: u64, max_evals: usize) -> Vec<Table1Row> {
    let backends = [
        BackendKind::BasinHopping,
        BackendKind::DifferentialEvolution,
        BackendKind::Powell,
    ];
    let mut rows = Vec::new();
    for backend in backends {
        // Boundary value analysis: collect the distinct boundary values found
        // over a handful of seeds (the paper reports every minimum point).
        let analysis = BoundaryAnalysis::new(mini_gsl::toy::Fig2Program::new());
        let mut minima = Vec::new();
        let mut best = f64::INFINITY;
        let mut evals = 0usize;
        for round in 0..6u64 {
            let config = AnalysisConfig::quick(seed + round)
                .with_backend(backend)
                .with_max_evals(max_evals)
                .with_rounds(2);
            match analysis.find_any(&config) {
                Outcome::Found { input, evals: e } => {
                    best = 0.0;
                    evals += e;
                    if !minima.iter().any(|m: &f64| m == &input[0]) {
                        minima.push(input[0]);
                    }
                }
                Outcome::NotFound {
                    best_value,
                    evals: e,
                    ..
                } => {
                    best = best.min(best_value);
                    evals += e;
                }
            }
        }
        minima.sort_by(|a, b| a.partial_cmp(b).unwrap());
        rows.push(Table1Row {
            backend: backend.name().to_string(),
            analysis: "Boundary Value Analysis".to_string(),
            w_star: if best.is_finite() { best } else { f64::INFINITY },
            minima,
            evals,
        });

        // Path reachability: both branches of Fig. 2 (solution space [-3, 1]).
        let path_analysis = PathAnalysis::new(mini_gsl::toy::Fig2Program::new());
        let path = vec![
            (fp_runtime::BranchId(0), true),
            (fp_runtime::BranchId(1), true),
        ];
        let config = AnalysisConfig::quick(seed)
            .with_backend(backend)
            .with_max_evals(max_evals)
            .with_rounds(3);
        let (w_star, minima, evals) = match path_analysis.reach(&path, &config) {
            Outcome::Found { input, evals } => (0.0, vec![input[0]], evals),
            Outcome::NotFound {
                best_value,
                best_input,
                evals,
            } => (best_value, vec![best_input[0]], evals),
        };
        rows.push(Table1Row {
            backend: backend.name().to_string(),
            analysis: "Path Reachability".to_string(),
            w_star,
            minima,
            evals,
        });
    }
    rows
}

/// A sampled curve: x positions and the weak-distance value at each.
#[derive(Debug, Clone, Serialize)]
pub struct Curve {
    /// Sampled x values.
    pub x: Vec<f64>,
    /// Weak-distance value at each x.
    pub w: Vec<f64>,
}

/// Figures 3(b), 4(b), 7(b): the weak-distance graphs over `[-6, 6]`, plus
/// the MO sampling sequences of Figures 3(c)/4(c).
#[derive(Debug, Clone, Serialize)]
pub struct FigureReport {
    /// Which figure this is ("fig3", "fig4", "fig7").
    pub figure: String,
    /// The weak-distance graph.
    pub graph: Curve,
    /// The sampled inputs of the minimization run, in order (the y-axis of
    /// Fig. 3(c)/4(c)).
    pub samples: Vec<f64>,
    /// The known solutions the samples should reach.
    pub expected_solutions: Vec<f64>,
    /// How many samples hit a solution exactly (weak distance 0).
    pub zero_hits: usize,
}

fn graph_of(wd: &dyn WeakDistance, lo: f64, hi: f64, n: usize) -> Curve {
    let mut x = Vec::with_capacity(n);
    let mut w = Vec::with_capacity(n);
    for i in 0..n {
        let xi = lo + (hi - lo) * i as f64 / (n - 1) as f64;
        x.push(xi);
        w.push(wd.eval(&[xi]));
    }
    Curve { x, w }
}

/// Figure 3: boundary value analysis of the Fig. 2 program.
pub fn fig3(seed: u64) -> FigureReport {
    let wd = BoundaryWeakDistance::new(mini_gsl::toy::Fig2Program::new());
    let graph = graph_of(&wd, -6.0, 6.0, 241);
    let run = minimize_weak_distance(
        &wd,
        &AnalysisConfig::quick(seed).with_rounds(4).recording(1),
    );
    let samples: Vec<f64> = run.trace.samples().iter().map(|s| s.x[0]).collect();
    let zero_hits = run.trace.below(0.0).len();
    FigureReport {
        figure: "fig3".to_string(),
        graph,
        samples,
        expected_solutions: vec![-3.0, 1.0, 2.0],
        zero_hits,
    }
}

/// Figure 4: path reachability (both branches) of the Fig. 2 program.
pub fn fig4(seed: u64) -> FigureReport {
    let path = vec![
        (fp_runtime::BranchId(0), true),
        (fp_runtime::BranchId(1), true),
    ];
    let wd = PathWeakDistance::new(mini_gsl::toy::Fig2Program::new(), path);
    let graph = graph_of(&wd, -6.0, 6.0, 241);
    let run = minimize_weak_distance(
        &wd,
        &AnalysisConfig::quick(seed).with_rounds(4).recording(1),
    );
    let samples: Vec<f64> = run.trace.samples().iter().map(|s| s.x[0]).collect();
    let zero_hits = run.trace.below(0.0).len();
    FigureReport {
        figure: "fig4".to_string(),
        graph,
        samples,
        expected_solutions: vec![-3.0, 1.0],
        zero_hits,
    }
}

/// Figure 7: the characteristic-function weak distance — flat almost
/// everywhere, so minimization degenerates to random testing.
pub fn fig7(seed: u64) -> FigureReport {
    let wd = BoundaryWeakDistance::new(mini_gsl::toy::Fig2Program::new())
        .with_mode(BoundaryMode::Characteristic);
    let graph = graph_of(&wd, -6.0, 6.0, 241);
    let run = minimize_weak_distance(
        &wd,
        &AnalysisConfig::quick(seed)
            .with_rounds(2)
            .with_max_evals(5_000)
            .recording(1),
    );
    let samples: Vec<f64> = run.trace.samples().iter().map(|s| s.x[0]).collect();
    let zero_hits = run.trace.below(0.0).len();
    FigureReport {
        figure: "fig7".to_string(),
        graph,
        samples,
        expected_solutions: vec![-3.0, 1.0, 2.0],
        zero_hits,
    }
}

/// One boundary condition of the GNU `sin` study (a row group of Table 2).
#[derive(Debug, Clone, Serialize)]
pub struct SinCondition {
    /// The branch label (`k < 0x…`).
    pub label: String,
    /// The sign of the inputs searched (`+` or `-`).
    pub sign: char,
    /// The developer-suggested |x| bound (Table 2's `ref` row).
    pub reference: f64,
    /// Smallest boundary value found (absolute value), if any.
    pub min_found: Option<f64>,
    /// Largest boundary value found (absolute value), if any.
    pub max_found: Option<f64>,
    /// Number of confirmed boundary hits for this condition.
    pub hits: u64,
    /// Whether the condition is reachable at all.
    pub reachable: bool,
}

/// The GNU `sin` boundary value study (Table 2 and Fig. 9).
#[derive(Debug, Clone, Serialize)]
pub struct SinStudy {
    /// Per-condition results (5 thresholds × 2 signs).
    pub conditions: Vec<SinCondition>,
    /// Cumulative (samples, conditions triggered) checkpoints — the Fig. 9
    /// curve.
    pub progress: Vec<(usize, usize)>,
    /// Total objective evaluations.
    pub total_samples: usize,
    /// Number of reachable conditions triggered.
    pub triggered: usize,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// Table 2 / Fig. 9: boundary value analysis of the Glibc `sin` port.
pub fn table2_fig9(seed: u64, max_evals: usize) -> SinStudy {
    let start = Instant::now();
    let mut conditions = Vec::new();
    let mut progress = Vec::new();
    let mut total_samples = 0usize;
    let mut triggered = 0usize;

    for (i, &threshold) in K_THRESHOLDS.iter().enumerate() {
        for (sign, domain) in [
            ('+', Interval::new(0.0, f64::MAX)),
            ('-', Interval::new(-f64::MAX, 0.0)),
        ] {
            let program = Restricted::new(GlibcSin::new(), vec![domain]);
            let analysis = BoundaryAnalysis::new(program);
            let config = AnalysisConfig::quick(seed + i as u64 * 2 + (sign == '-') as u64)
                .with_max_evals(max_evals)
                .with_rounds(4);
            let outcome = analysis.find_condition(fp_runtime::BranchId(i as u32), &config);
            total_samples += outcome.evals();
            // The last threshold (2^1024) is unreachable for finite doubles.
            let reachable = i < 4;
            let mut condition = SinCondition {
                label: format!("k < {threshold:#010x}"),
                sign,
                reference: REFERENCE_BOUNDS[i],
                min_found: None,
                max_found: None,
                hits: 0,
                reachable,
            };
            if let Outcome::Found { input, .. } = outcome {
                // Soundness: confirm the hit and count it.
                let hits = analysis.triggered_conditions(&input);
                if hits.contains(&fp_runtime::BranchId(i as u32)) {
                    triggered += 1;
                    condition.hits = 1;
                    condition.min_found = Some(input[0].abs());
                    condition.max_found = Some(input[0].abs());
                }
            }
            progress.push((total_samples, triggered));
            conditions.push(condition);
        }
    }
    SinStudy {
        conditions,
        progress,
        total_samples,
        triggered,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// A benchmark of the overflow study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum GslBenchmark {
    /// `gsl_sf_bessel_Knu_scaled_asympx_e`.
    Bessel,
    /// `gsl_sf_hyperg_2F0_e`.
    Hyperg,
    /// `gsl_sf_airy_Ai_e`.
    Airy,
}

impl GslBenchmark {
    /// All three benchmarks of Table 3.
    pub fn all() -> [GslBenchmark; 3] {
        [GslBenchmark::Bessel, GslBenchmark::Hyperg, GslBenchmark::Airy]
    }

    /// The function name as reported in Table 3.
    pub fn function_name(self) -> &'static str {
        match self {
            GslBenchmark::Bessel => "bessel_Knu_scaled_asympx_e",
            GslBenchmark::Hyperg => "gsl_sf_hyperg_2F0_e",
            GslBenchmark::Airy => "gsl_sf_airy_Ai_e",
        }
    }

    fn status_outcome(self, input: &[f64]) -> StatusOutcome {
        let (r, status): SfOutcome = match self {
            GslBenchmark::Bessel => bessel_outcome(input),
            GslBenchmark::Hyperg => hyperg_outcome(input),
            GslBenchmark::Airy => airy_outcome(input),
        };
        StatusOutcome::new(
            status.is_success(),
            vec![("val".to_string(), r.val), ("err".to_string(), r.err)],
        )
    }
}

/// Result of running `fpod` (Algorithm 3) plus the inconsistency replay on
/// one benchmark — one row of Table 3, expanded.
#[derive(Debug, Clone)]
pub struct FpodResult {
    /// Which benchmark.
    pub benchmark: GslBenchmark,
    /// The overflow report (Table 4 for Bessel).
    pub overflow: OverflowReport,
    /// The detected inconsistencies (Table 5).
    pub inconsistencies: Vec<Inconsistency>,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// Serializable summary row of Table 3.
#[derive(Debug, Clone, Serialize)]
pub struct Table3Row {
    /// Function name.
    pub function: String,
    /// Number of floating-point operations `|Op|`.
    pub ops: usize,
    /// Number of operations with a triggered overflow `|O|`.
    pub overflows: usize,
    /// Number of inconsistencies `|I|`.
    pub inconsistencies: usize,
    /// Number of confirmed-bug-class root causes `|B|` (division by zero or
    /// inaccurate trigonometric kernel).
    pub bugs: usize,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// Runs Algorithm 3 plus the inconsistency replay on one benchmark.
pub fn run_fpod(benchmark: GslBenchmark, config: &AnalysisConfig) -> FpodResult {
    let start = Instant::now();
    let (overflow, inconsistencies) = match benchmark {
        GslBenchmark::Bessel => {
            let program = BesselKnuScaled::new();
            let report = OverflowDetector::new(program).run(config);
            let inputs = report.inputs.clone();
            let found = find_inconsistencies(&program, |x| benchmark.status_outcome(x), &inputs);
            (report, found)
        }
        GslBenchmark::Hyperg => {
            let program = Hyperg2F0::new();
            let report = OverflowDetector::new(program).run(config);
            let inputs = report.inputs.clone();
            let found = find_inconsistencies(&program, |x| benchmark.status_outcome(x), &inputs);
            (report, found)
        }
        GslBenchmark::Airy => {
            let program = AiryAi::new();
            let report = OverflowDetector::new(program).run(config);
            let inputs = report.inputs.clone();
            let found = find_inconsistencies(&program, |x| benchmark.status_outcome(x), &inputs);
            (report, found)
        }
    };
    FpodResult {
        benchmark,
        overflow,
        inconsistencies,
        seconds: start.elapsed().as_secs_f64(),
    }
}

impl FpodResult {
    /// Deduplicated inconsistencies (one representative per root cause).
    pub fn distinct_causes(&self) -> Vec<&Inconsistency> {
        let mut seen = Vec::new();
        let mut out = Vec::new();
        for inc in &self.inconsistencies {
            if !seen.contains(&inc.cause) {
                seen.push(inc.cause);
                out.push(inc);
            }
        }
        out
    }

    /// The Table 3 summary row of this result.
    pub fn table3_row(&self) -> Table3Row {
        use wdm_core::inconsistency::RootCause;
        let bugs = self
            .distinct_causes()
            .iter()
            .filter(|i| matches!(i.cause, RootCause::DivisionByZero | RootCause::InaccurateTrig))
            .count();
        Table3Row {
            function: self.benchmark.function_name().to_string(),
            ops: self.overflow.num_ops(),
            overflows: self.overflow.num_overflows(),
            inconsistencies: self.inconsistencies.len(),
            bugs,
            seconds: self.seconds,
        }
    }
}

/// One entry of the XSat sanity suite.
#[derive(Debug, Clone, Serialize)]
pub struct XsatCase {
    /// Description of the formula.
    pub formula: String,
    /// Whether the formula is expected to be satisfiable.
    pub expected_sat: bool,
    /// Whether a model was found.
    pub found_sat: bool,
    /// The model, if any.
    pub model: Option<Vec<f64>>,
}

/// A small QF-FP satisfiability suite exercising the XSat instance.
pub fn xsat_suite(seed: u64) -> Vec<XsatCase> {
    let x = Expr::var(0);
    let y = Expr::var(1);
    let cases: Vec<(String, Cnf, bool, Vec<Interval>)> = vec![
        (
            "x < 1 ∧ x + 1 >= 2 (round-to-nearest)".to_string(),
            Cnf::new(1)
                .and(Clause::from(Atom::lt(x.clone(), Expr::constant(1.0))))
                .and(Clause::from(Atom::ge(
                    x.clone() + Expr::constant(1.0),
                    Expr::constant(2.0),
                ))),
            true,
            vec![Interval::symmetric(10.0)],
        ),
        (
            "x*x == 4".to_string(),
            Cnf::new(1).and(Clause::from(Atom::eq(
                x.clone() * x.clone(),
                Expr::constant(4.0),
            ))),
            true,
            vec![Interval::symmetric(100.0)],
        ),
        (
            "x*x == 2 (unsat in binary64, sat over the reals)".to_string(),
            Cnf::new(1).and(Clause::from(Atom::eq(
                x.clone() * x.clone(),
                Expr::constant(2.0),
            ))),
            false,
            vec![Interval::symmetric(100.0)],
        ),
        (
            "x + y == 10 ∧ x - y == 4".to_string(),
            Cnf::new(2)
                .and(Clause::from(Atom::eq(
                    x.clone() + y.clone(),
                    Expr::constant(10.0),
                )))
                .and(Clause::from(Atom::eq(
                    x.clone() - y.clone(),
                    Expr::constant(4.0),
                ))),
            true,
            vec![Interval::symmetric(100.0); 2],
        ),
        (
            "x*x == -1 (unsat)".to_string(),
            Cnf::new(1).and(Clause::from(Atom::eq(
                x.clone() * x.clone(),
                Expr::constant(-1.0),
            ))),
            false,
            vec![Interval::symmetric(100.0)],
        ),
        (
            "sin(x) <= -0.99 ∧ x >= 3 (transcendental)".to_string(),
            Cnf::new(1)
                .and(Clause::from(Atom::le(
                    x.clone().sin(),
                    Expr::constant(-0.99),
                )))
                .and(Clause::from(Atom::ge(x.clone(), Expr::constant(3.0)))),
            true,
            vec![Interval::new(0.0, 100.0)],
        ),
    ];
    cases
        .into_iter()
        .map(|(formula, cnf, expected_sat, domain)| {
            let verdict = Solver::new(cnf)
                .with_domain(domain)
                .solve(&AnalysisConfig::quick(seed).with_rounds(6));
            let (found_sat, model) = match verdict {
                Verdict::Sat(m) => (true, Some(m)),
                Verdict::Unknown { .. } => (false, None),
            };
            XsatCase {
                formula,
                expected_sat,
                found_sat,
                model,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_six_rows_and_basinhopping_succeeds() {
        let rows = table1(3, 10_000);
        assert_eq!(rows.len(), 6);
        let bh_boundary = &rows[0];
        assert_eq!(bh_boundary.backend, "Basinhopping");
        assert_eq!(bh_boundary.w_star, 0.0);
        assert!(!bh_boundary.minima.is_empty());
        let bh_path = &rows[1];
        assert_eq!(bh_path.w_star, 0.0);
        assert!((-3.0..=1.0).contains(&bh_path.minima[0]));
    }

    #[test]
    fn fig3_graph_touches_zero_at_known_boundaries() {
        let fig = fig3(1);
        assert_eq!(fig.graph.x.len(), 241);
        // The grid contains -3, 1 and 2 exactly (step 0.05 over [-6, 6]).
        for target in [-3.0, 1.0, 2.0] {
            let idx = fig
                .graph
                .x
                .iter()
                .position(|&x| (x - target).abs() < 1e-9)
                .expect("grid point");
            assert_eq!(fig.graph.w[idx], 0.0, "W({target})");
        }
        assert!(fig.zero_hits > 0);
    }

    #[test]
    fn fig4_solution_interval_is_flat_zero() {
        let fig = fig4(2);
        for (x, w) in fig.graph.x.iter().zip(&fig.graph.w) {
            if (-3.0..=1.0).contains(x) {
                assert_eq!(*w, 0.0, "W({x})");
            } else if *x > 1.05 || *x < -3.05 {
                assert!(*w > 0.0, "W({x})");
            }
        }
    }

    #[test]
    fn xsat_suite_matches_expected_satisfiability() {
        for case in xsat_suite(5) {
            assert_eq!(
                case.found_sat, case.expected_sat,
                "formula {} expected sat={}",
                case.formula, case.expected_sat
            );
        }
    }

    #[test]
    fn fpod_on_hyperg_is_quick_and_finds_overflows() {
        let config = AnalysisConfig::quick(9).with_rounds(2).with_max_evals(8_000);
        let result = run_fpod(GslBenchmark::Hyperg, &config);
        assert_eq!(result.overflow.num_ops(), 8);
        assert!(result.overflow.num_overflows() >= 2);
        let row = result.table3_row();
        assert_eq!(row.function, "gsl_sf_hyperg_2F0_e");
        assert!(row.seconds >= 0.0);
    }
}
