//! Experiment harness regenerating the tables and figures of the paper.
//!
//! Each public function corresponds to one experiment of Section 6; the
//! binaries in `src/bin/` are thin wrappers that run them and print the
//! resulting tables (and write a JSON record next to the text output).
//! Absolute numbers differ from the paper (different machine, pure-Rust
//! substrate), but the qualitative shape — which backend finds what, which
//! operations overflow, which inconsistencies appear — is the reproduction
//! target; see `EXPERIMENTS.md`.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod report;
pub mod restricted;

pub use experiments::*;
pub use report::{emit_json, json_arg, write_json, write_json_at};
pub use restricted::Restricted;
