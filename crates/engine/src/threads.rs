//! Thread-count selection.

/// Picks a worker count: the `WDM_THREADS` environment variable when set to
/// a positive integer, otherwise the machine's available parallelism
/// (falling back to 1 when that is unknown).
///
/// Determinism note: thread count never changes analysis results (see the
/// driver docs), so this is purely a throughput knob.
pub fn suggested_parallelism() -> usize {
    std::env::var("WDM_THREADS")
        .ok()
        .and_then(|value| value.trim().parse::<usize>().ok())
        .filter(|&threads| threads > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|threads| threads.get())
                .unwrap_or(1)
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suggested_parallelism_is_positive() {
        // Whatever the environment says, the answer is a usable count.
        assert!(suggested_parallelism() >= 1);
    }
}
