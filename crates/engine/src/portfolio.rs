//! Portfolio-mode conveniences on top of the core driver's racer.
//!
//! The paper treats the MO backend as an interchangeable black box
//! (Section 4.1) and compares three of them in Table 1 — which one wins
//! depends on the weak distance's shape. Portfolio mode stops choosing:
//! run them all, keep the first solution, cancel the rest.

pub use wdm_core::driver::{minimize_weak_distance_portfolio, PortfolioEntry, PortfolioRun};
use wdm_core::{AnalysisConfig, BackendKind, WeakDistance};

/// Races every [`BackendKind`] on `wd` with first-hit cancellation,
/// regardless of the configured
/// [`portfolio_policy`](AnalysisConfig::portfolio_policy) — the mirror of
/// [`adaptive_all`](crate::adaptive_all); use
/// [`minimize_weak_distance_portfolio`] to dispatch on the config.
///
/// # Example
///
/// ```
/// use fp_runtime::Interval;
/// use wdm_core::weak_distance::FnWeakDistance;
/// use wdm_core::AnalysisConfig;
///
/// let wd = FnWeakDistance::new(1, vec![Interval::symmetric(100.0)], |x: &[f64]| {
///     (x[0] - 4.0).abs()
/// });
/// let run = wdm_engine::race_all(&wd, &AnalysisConfig::quick(1).with_rounds(2));
/// assert!(run.outcome().is_found());
/// ```
pub fn race_all(wd: &dyn WeakDistance, config: &AnalysisConfig) -> PortfolioRun {
    let config = config
        .clone()
        .with_portfolio_policy(wdm_core::PortfolioPolicy::Race);
    minimize_weak_distance_portfolio(wd, &config, &BackendKind::all())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_runtime::Interval;
    use wdm_core::weak_distance::FnWeakDistance;

    #[test]
    fn race_all_runs_every_backend() {
        let wd = FnWeakDistance::new(1, vec![Interval::symmetric(10.0)], |x: &[f64]| {
            (x[0] - 1.0).abs()
        });
        let run = race_all(&wd, &AnalysisConfig::quick(5).with_rounds(1).with_max_evals(5_000));
        assert_eq!(run.entries.len(), BackendKind::all().len());
        assert!(run.outcome().is_found());
        // Losing backends were either cancelled or finished on their own;
        // every entry still carries a well-formed result.
        for entry in &run.entries {
            assert!(entry.run.outcome.evals() <= 5 * 5_000 + 10_000);
        }
    }
}
