//! Adaptive portfolio scheduling at the engine level.
//!
//! The scheduler itself lives in [`wdm_core::adaptive`] (the policy seam
//! must sit below
//! [`minimize_weak_distance_portfolio`](wdm_core::minimize_weak_distance_portfolio),
//! which dispatches on [`PortfolioPolicy`](wdm_core::PortfolioPolicy));
//! this module is the engine surface: the full-suite convenience
//! [`adaptive_all`] mirroring [`race_all`](crate::race_all), the
//! re-exports, and the engine-level guarantees.
//!
//! # Race vs. Adaptive
//!
//! | | `PortfolioPolicy::Race` | `PortfolioPolicy::Adaptive` |
//! |---|---|---|
//! | budget | up to N full runs | one full run, reallocated |
//! | winner | timing-dependent | deterministic |
//! | thread count | changes who wins | bit-identical outcome |
//! | first hit | cancels losers instantly | cancels at slice granularity |
//!
//! Adaptive mode steps every backend in eval-budget slices
//! ([`wdm_mo::SteppedMinimizer`]) and reallocates the remaining budget each
//! scheduler round with a deterministic UCB bandit on per-slice
//! best-residual improvement. Slices of one scheduler round run on scoped
//! workers ([`AnalysisConfig::parallelism`]); the arms are independent
//! state machines, so the outcome is bit-identical at any thread count.

pub use wdm_core::adaptive::{
    minimize_weak_distance_adaptive, minimize_weak_distance_adaptive_cancellable, SteppedAnalysis,
};
use wdm_core::driver::PortfolioRun;
use wdm_core::{AnalysisConfig, BackendKind, WeakDistance};

/// Runs every [`BackendKind`] on `wd` under the adaptive scheduler
/// (regardless of the configured policy — use
/// [`minimize_weak_distance_portfolio`](wdm_core::minimize_weak_distance_portfolio)
/// to dispatch on [`AnalysisConfig::portfolio_policy`]).
///
/// # Example
///
/// ```
/// use fp_runtime::Interval;
/// use wdm_core::weak_distance::FnWeakDistance;
/// use wdm_core::AnalysisConfig;
///
/// let wd = FnWeakDistance::new(1, vec![Interval::symmetric(100.0)], |x: &[f64]| {
///     (x[0] - 4.0).abs()
/// });
/// let run = wdm_engine::adaptive_all(&wd, &AnalysisConfig::quick(1).with_rounds(2));
/// assert!(run.outcome().is_found());
/// ```
pub fn adaptive_all(wd: &dyn WeakDistance, config: &AnalysisConfig) -> PortfolioRun {
    minimize_weak_distance_adaptive(wd, config, &BackendKind::all())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpir::{programs, ModuleProgram};
    use wdm_core::boundary::BoundaryWeakDistance;

    fn fig2_wd() -> BoundaryWeakDistance<ModuleProgram> {
        BoundaryWeakDistance::new(
            ModuleProgram::new(programs::fig2_program(), "prog").expect("fig2 entry"),
        )
    }

    #[test]
    fn adaptive_all_solves_fig2_boundary() {
        let run = adaptive_all(
            &fig2_wd(),
            &AnalysisConfig::quick(7).with_rounds(2).with_max_evals(8_000),
        );
        assert_eq!(run.entries.len(), BackendKind::all().len());
        assert!(run.outcome().is_found());
        assert!(run.entries[run.winner].run.outcome.is_found());
    }

    #[test]
    fn adaptive_on_interpreted_program_is_thread_count_invariant() {
        // The full stack under the scheduler: fpir-interpreted weak
        // distance, batched sessions, kernel policy — bit-identical
        // entries at every worker count.
        let base = AnalysisConfig::quick(17).with_rounds(1).with_max_evals(3_000);
        let reference = adaptive_all(&fig2_wd(), &base);
        for threads in [2usize, 8] {
            let run = adaptive_all(&fig2_wd(), &base.clone().with_parallelism(threads));
            assert_eq!(run.winner, reference.winner, "threads = {threads}");
            for (a, b) in run.entries.iter().zip(&reference.entries) {
                assert_eq!(a.run.outcome, b.run.outcome, "threads = {threads}");
                assert_eq!(a.run.best, b.run.best, "threads = {threads}");
            }
        }
    }
}
