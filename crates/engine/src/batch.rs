//! Pooled batched evaluation: fan one `eval_batch` call out over worker
//! threads.
//!
//! The batched-evaluation seam ([`Objective::eval_batch`]) hands whole
//! candidate groups — a Differential Evolution generation, a random-search
//! chunk — to the objective in one call. [`PooledObjective`] splits such a
//! batch into contiguous slices, evaluates the slices on scoped worker
//! threads, and reassembles the values in input order. Because each value
//! depends only on its own input point, the result is **bit-identical** to
//! the scalar path for every thread count — the same guarantee the
//! engine's restart sharding gives, extended to the inside of a single
//! backend run.
//!
//! This is the engine-level plug for the batch seam: the campaign runner
//! (or any caller) wraps an expensive objective in a [`PooledObjective`]
//! before building the [`Problem`](wdm_mo::Problem), and every generation
//! the population backends evaluate then spreads across the pool.

use wdm_mo::{scoped_map, Objective};

/// Minimum number of points a worker slice should carry; below this, the
/// spawn overhead outweighs the work and the batch is evaluated inline.
const MIN_SLICE: usize = 8;

/// An [`Objective`] adapter that evaluates batches on a pool of scoped
/// worker threads, preserving input order (and therefore bit-identical
/// results at any thread count).
///
/// # Example
///
/// ```
/// use wdm_engine::PooledObjective;
/// use wdm_mo::{FnObjective, Objective};
///
/// let slow = FnObjective::new(1, |x: &[f64]| x[0].sin().abs());
/// let pooled = PooledObjective::new(&slow, 4);
/// let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
/// let mut par = Vec::new();
/// pooled.eval_batch(&xs, &mut par);
/// let mut seq = Vec::new();
/// slow.eval_batch(&xs, &mut seq);
/// assert_eq!(par, seq);
/// ```
pub struct PooledObjective<'a> {
    inner: &'a dyn Objective,
    threads: usize,
}

impl<'a> PooledObjective<'a> {
    /// Wraps `inner`, spreading each batch over up to `threads` workers
    /// (`<= 1` evaluates inline).
    pub fn new(inner: &'a dyn Objective, threads: usize) -> Self {
        PooledObjective {
            inner,
            threads: threads.max(1),
        }
    }
}

impl Objective for PooledObjective<'_> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn eval(&self, x: &[f64]) -> f64 {
        self.inner.eval(x)
    }

    fn eval_batch(&self, xs: &[Vec<f64>], out: &mut Vec<f64>) {
        // One contiguous slice per worker; slices smaller than MIN_SLICE
        // are not worth a thread.
        let slices = self
            .threads
            .min(xs.len() / MIN_SLICE.max(1))
            .max(1);
        if slices <= 1 {
            self.inner.eval_batch(xs, out);
            return;
        }
        let per_slice = xs.len().div_ceil(slices);
        let parts: Vec<Vec<f64>> = scoped_map(slices, slices, |i| {
            let start = i * per_slice;
            let end = (start + per_slice).min(xs.len());
            let mut values = Vec::new();
            if start < end {
                self.inner.eval_batch(&xs[start..end], &mut values);
            }
            values
        });
        out.clear();
        out.reserve(xs.len());
        for part in parts {
            out.extend(part);
        }
    }
}

impl std::fmt::Debug for PooledObjective<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledObjective")
            .field("dim", &self.inner.dim())
            .field("threads", &self.threads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdm_mo::{
        Bounds, DifferentialEvolution, FnObjective, GlobalMinimizer, NoTrace, Problem,
        SamplingTrace,
    };

    fn rastriginish(x: &[f64]) -> f64 {
        x.iter()
            .map(|&v| v * v - 10.0 * (2.0 * std::f64::consts::PI * v).cos() + 10.0)
            .sum()
    }

    #[test]
    fn pooled_batches_match_sequential_for_every_thread_count() {
        let f = FnObjective::new(2, rastriginish);
        let xs: Vec<Vec<f64>> = (0..203)
            .map(|i| vec![(i as f64) * 0.05 - 5.0, (i as f64) * -0.03 + 3.0])
            .collect();
        let mut expected = Vec::new();
        f.eval_batch(&xs, &mut expected);
        for threads in [1, 2, 3, 8, 64] {
            let pooled = PooledObjective::new(&f, threads);
            let mut out = Vec::new();
            pooled.eval_batch(&xs, &mut out);
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn small_batches_run_inline() {
        let f = FnObjective::new(1, |x: &[f64]| x[0] + 1.0);
        let pooled = PooledObjective::new(&f, 8);
        let xs = vec![vec![1.0], vec![2.0]];
        let mut out = Vec::new();
        pooled.eval_batch(&xs, &mut out);
        assert_eq!(out, vec![2.0, 3.0]);
        assert_eq!(pooled.eval(&[5.0]), 6.0);
        assert_eq!(pooled.dim(), 1);
    }

    #[test]
    fn pooled_kernel_backed_weak_distance_is_thread_count_invariant() {
        // Threads × lanes: each worker slice reaches the weak distance's
        // `eval_batch`, which runs the fpir lanewise kernel — so the wave
        // executes under every thread count and must stay bit-identical to
        // the sequential interpreter path.
        use fp_runtime::KernelPolicy;
        use wdm_core::boundary::BoundaryWeakDistance;
        use wdm_core::weak_distance::{WeakDistance, WeakDistanceObjective};

        let program = fpir::interp::ModuleProgram::new(fpir::programs::fig2_program(), "prog")
            .expect("entry exists");
        assert!(program.kernel_eligible());
        let kernel_wd =
            BoundaryWeakDistance::new(program).with_kernel_policy(KernelPolicy::Always);
        let xs: Vec<Vec<f64>> = (0..500).map(|i| vec![i as f64 * 0.11 - 27.0]).collect();

        // Reference: interpreter session, sequential.
        let scalar_program =
            fpir::interp::ModuleProgram::new(fpir::programs::fig2_program(), "prog")
                .expect("entry exists");
        let scalar_wd =
            BoundaryWeakDistance::new(scalar_program).with_kernel_policy(KernelPolicy::Never);
        let mut expected = Vec::new();
        scalar_wd.eval_batch(&xs, &mut expected);

        let objective = WeakDistanceObjective::new(&kernel_wd);
        for threads in [1, 2, 8] {
            let pooled = PooledObjective::new(&objective, threads);
            let mut out = Vec::new();
            pooled.eval_batch(&xs, &mut out);
            assert_eq!(out.len(), expected.len());
            for (i, (a, b)) in out.iter().zip(&expected).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "threads = {threads}, point {i}");
            }
        }
    }

    #[test]
    fn diffevo_over_a_pooled_objective_is_thread_count_invariant() {
        // A whole backend run through the pooled objective: generation
        // batches spread over workers, results bit-identical to 1 thread.
        let f = FnObjective::new(2, rastriginish);
        let run = |threads: usize| {
            let pooled = PooledObjective::new(&f, threads);
            let p = Problem::new(&pooled, Bounds::symmetric(2, 5.12)).with_max_evals(4_000);
            let mut trace = SamplingTrace::new();
            let r = DifferentialEvolution::default()
                .with_max_generations(30)
                .minimize(&p, 11, &mut trace);
            (r, trace.samples().to_vec())
        };
        let (r1, t1) = run(1);
        for threads in [2, 8] {
            let (rn, tn) = run(threads);
            assert_eq!(rn.x, r1.x, "threads = {threads}");
            assert_eq!(rn.value.to_bits(), r1.value.to_bits(), "threads = {threads}");
            assert_eq!(rn.evals, r1.evals, "threads = {threads}");
            assert_eq!(tn, t1, "threads = {threads}");
        }
        let _ = DifferentialEvolution::default().minimize(
            &Problem::new(&f, Bounds::symmetric(2, 5.12)).with_max_evals(100),
            11,
            &mut NoTrace,
        );
    }
}
