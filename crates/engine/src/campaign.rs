//! Campaign mode: batch whole benchmark suites through the worker pool and
//! reduce the per-job results into a single JSON-serializable report.
//!
//! A campaign is a queue of named, self-contained jobs (one analysis of one
//! program — a boundary condition of the Glibc `sin` port, the overflow
//! study of one GSL special function, ...). Jobs are independent, so the
//! pool runs them embarrassingly parallel; each job is internally
//! sequential with a fixed per-job seed derived from its queue position, so
//! the *deterministic* part of the report (what was found, at which inputs,
//! after how many evaluations) is bit-identical for every thread count —
//! only the timing fields change.

use serde::Serialize;
use std::sync::mpsc;
use std::time::Instant;
use wdm_service::{AnalysisService, ServiceConfig, ServiceHandle};
use wdm_core::boundary::{BoundaryAnalysis, BoundaryWeakDistance};
use wdm_core::driver::{derive_round_seed, minimize_weak_distance_portfolio};
use wdm_core::overflow::OverflowDetector;
use wdm_core::{AnalysisConfig, BackendKind, Outcome};

/// The deterministic result of one campaign job.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JobResult {
    /// Job name, e.g. `"boundary/glibc_sin/k3"`.
    pub job: String,
    /// The analysis family (`"boundary"`, `"overflow"`).
    pub analysis: String,
    /// The program under analysis.
    pub program: String,
    /// How many targets (conditions, operation sites) were triggered.
    pub found: usize,
    /// How many targets were considered.
    pub total: usize,
    /// Best residual weak-distance value when a target was missed
    /// (0 when everything was found; capped to `f64::MAX` for JSON).
    pub best_value: f64,
    /// Objective evaluations spent.
    pub evals: usize,
    /// How many targets static analysis proved unreachable over the search
    /// domain and pruned before any minimizer ran (each charged zero
    /// evaluations).
    pub static_pruned: usize,
}

/// One finished job: the deterministic result plus its (nondeterministic)
/// wall-clock time.
#[derive(Debug, Clone, Serialize)]
pub struct JobReport {
    /// The deterministic result.
    pub result: JobResult,
    /// Wall-clock seconds this job took on its worker.
    pub seconds: f64,
}

/// The reduced result of a whole campaign.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignReport {
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall-clock seconds.
    pub wall_seconds: f64,
    /// Sum of per-job wall-clock seconds (the sequential-equivalent time).
    pub cpu_seconds: f64,
    /// Total objective evaluations across every job.
    pub total_evals: usize,
    /// Number of jobs in which every target was triggered.
    pub jobs_fully_solved: usize,
    /// Per-job reports, in submission order regardless of scheduling.
    pub jobs: Vec<JobReport>,
}

impl CampaignReport {
    /// The deterministic portion of the report (everything except timing),
    /// in submission order — bit-identical across thread counts, which the
    /// determinism tests and the speedup experiment assert.
    pub fn deterministic_results(&self) -> Vec<JobResult> {
        self.jobs.iter().map(|j| j.result.clone()).collect()
    }

    /// Reduces a job list (in its given order) into a report.
    fn reduced(threads: usize, wall_seconds: f64, jobs: Vec<JobReport>) -> CampaignReport {
        let cpu_seconds = jobs.iter().map(|j| j.seconds).sum();
        let total_evals = jobs.iter().map(|j| j.result.evals).sum();
        let jobs_fully_solved = jobs
            .iter()
            .filter(|j| j.result.found == j.result.total)
            .count();
        CampaignReport {
            threads,
            wall_seconds,
            cpu_seconds,
            total_evals,
            jobs_fully_solved,
            jobs,
        }
    }

    /// Combines two reports — e.g. shards of one suite run on different
    /// machines, or a suite report with a follow-up rerun — into one.
    ///
    /// Merging is associative and order-insensitive: the combined job
    /// list is sorted by job name and every aggregate (including the
    /// floating-point `cpu_seconds` sum, whose summation order is the
    /// sorted job order) is recomputed from it, while `threads` and
    /// `wall_seconds` take the maximum. Any parenthesization of any
    /// permutation of the same reports therefore serializes to the
    /// identical JSON, which the campaign property tests pin down.
    pub fn merge(self, other: CampaignReport) -> CampaignReport {
        let threads = self.threads.max(other.threads);
        let wall_seconds = self.wall_seconds.max(other.wall_seconds);
        let mut jobs: Vec<JobReport> = self.jobs;
        jobs.extend(other.jobs);
        // The key is total over every field (floats by bit pattern), so
        // even reports with duplicate job names merge commutatively.
        let key = |j: &JobReport| {
            (
                j.result.job.clone(),
                j.result.analysis.clone(),
                j.result.program.clone(),
                j.result.found,
                j.result.total,
                j.result.best_value.to_bits(),
                j.result.evals,
                j.result.static_pruned,
                j.seconds.to_bits(),
            )
        };
        jobs.sort_by_key(key);
        CampaignReport::reduced(threads, wall_seconds, jobs)
    }
}

type JobFn = Box<dyn FnOnce(&AnalysisConfig) -> JobResult + Send + 'static>;

/// A named, self-contained unit of campaign work.
pub struct CampaignJob {
    name: String,
    run: JobFn,
}

impl CampaignJob {
    /// Wraps a closure as a campaign job.
    pub fn new(
        name: impl Into<String>,
        run: impl FnOnce(&AnalysisConfig) -> JobResult + Send + 'static,
    ) -> Self {
        CampaignJob {
            name: name.into(),
            run: Box::new(run),
        }
    }

    /// The job name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl std::fmt::Debug for CampaignJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignJob").field("name", &self.name).finish_non_exhaustive()
    }
}

/// A batch of analysis jobs sharing one base configuration.
#[derive(Debug)]
pub struct Campaign {
    config: AnalysisConfig,
    jobs: Vec<CampaignJob>,
}

impl Campaign {
    /// Creates an empty campaign. Each job will run with `config`, except
    /// that its seed is re-derived per job (from the campaign seed and the
    /// job's queue position) so jobs are decorrelated yet scheduling-free.
    pub fn new(config: AnalysisConfig) -> Self {
        Campaign {
            config,
            jobs: Vec::new(),
        }
    }

    /// Appends a job to the queue.
    pub fn push(&mut self, job: CampaignJob) {
        self.jobs.push(job);
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Returns `true` if no job is queued.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The queued job names, in order.
    pub fn job_names(&self) -> Vec<&str> {
        self.jobs.iter().map(|j| j.name()).collect()
    }

    /// Runs every job on a private, short-lived analysis service of
    /// `threads` workers and reduces the results into one report (jobs
    /// ordered as submitted). Campaign mode is "submit suite, await
    /// report": to batch onto a shared long-running service instead,
    /// use [`Campaign::run_on`].
    pub fn run(self, threads: usize) -> CampaignReport {
        let service = AnalysisService::start(ServiceConfig::new(threads.max(1)));
        let report = self.run_on(&service.handle());
        service.shutdown();
        report
    }

    /// Submits every job to an already-running analysis service and
    /// blocks until the reduced report is in. Campaign jobs are opaque
    /// closures, so they ride the service's task lane: they run FIFO on
    /// the shared pool, interleaved with (but invisible to) the
    /// fair-share analysis tenants.
    pub fn run_on(self, handle: &ServiceHandle) -> CampaignReport {
        let started = Instant::now();
        let threads = handle.threads();
        let n = self.jobs.len();
        let (sender, receiver) = mpsc::channel::<(usize, JobReport)>();
        for (index, job) in self.jobs.into_iter().enumerate() {
            let sender = sender.clone();
            // Per-job seed: decorrelated, independent of scheduling.
            let config = AnalysisConfig {
                seed: derive_round_seed(self.config.seed, 0x00C0_FFEE_0000_0000 | index as u64),
                ..self.config.clone()
            };
            handle
                .submit_task(move || {
                    let job_started = Instant::now();
                    let result = (job.run)(&config);
                    let report = JobReport {
                        result,
                        seconds: job_started.elapsed().as_secs_f64(),
                    };
                    // The receiver only disappears if the campaign itself
                    // panicked; nothing useful to do with the result then.
                    let _ = sender.send((index, report));
                })
                .expect("analysis service accepts campaign jobs");
        }
        drop(sender);

        let mut slots: Vec<Option<JobReport>> = (0..n).map(|_| None).collect();
        for (index, report) in receiver.iter() {
            slots[index] = Some(report);
        }

        let jobs: Vec<JobReport> = slots
            .into_iter()
            .map(|s| s.expect("every job reports exactly once"))
            .collect();
        CampaignReport::reduced(threads, started.elapsed().as_secs_f64(), jobs)
    }
}

fn finite(value: f64) -> f64 {
    if value.is_nan() {
        f64::MAX
    } else {
        value.clamp(f64::MIN, f64::MAX)
    }
}

/// A job triggering one specific boundary condition of `program`.
fn boundary_condition_job<P>(name: String, program: P, site: fp_runtime::BranchId) -> CampaignJob
where
    P: fp_runtime::Analyzable + 'static,
{
    CampaignJob::new(name.clone(), move |config| {
        let analysis = BoundaryAnalysis::new(program);
        let run = analysis.find_condition_run(site, config);
        let static_pruned = run.statically_pruned() as usize;
        let (found, best_value, evals) = match run.outcome {
            Outcome::Found { evals, .. } => (1, 0.0, evals),
            Outcome::NotFound {
                best_value, evals, ..
            } => (0, finite(best_value), evals),
        };
        JobResult {
            job: name,
            analysis: "boundary".to_string(),
            program: analysis.program().name().to_string(),
            found,
            total: 1,
            best_value,
            evals,
            static_pruned,
        }
    })
}

/// A job finding *any* boundary value of `program`.
fn boundary_any_job<P>(name: String, program: P) -> CampaignJob
where
    P: fp_runtime::Analyzable + 'static,
{
    CampaignJob::new(name.clone(), move |config| {
        let analysis = BoundaryAnalysis::new(program);
        let (found, best_value, evals) = match analysis.find_any(config) {
            Outcome::Found { evals, .. } => (1, 0.0, evals),
            Outcome::NotFound {
                best_value, evals, ..
            } => (0, finite(best_value), evals),
        };
        JobResult {
            job: name,
            analysis: "boundary".to_string(),
            program: analysis.program().name().to_string(),
            found,
            total: 1,
            best_value,
            evals,
            static_pruned: 0,
        }
    })
}

/// A job running the Algorithm 3 overflow study of `program`.
fn overflow_job<P>(name: String, program: P) -> CampaignJob
where
    P: fp_runtime::Analyzable + 'static,
{
    CampaignJob::new(name.clone(), move |config| {
        let detector = OverflowDetector::new(program);
        let report = detector.run(config);
        JobResult {
            job: name,
            analysis: "overflow".to_string(),
            program: detector.program().name().to_string(),
            found: report.num_overflows(),
            total: report.num_ops(),
            best_value: 0.0,
            evals: report.evals,
            static_pruned: report.statically_pruned,
        }
    })
}

/// A job running a backend *portfolio* on the boundary weak distance of
/// `program`, under the campaign configuration's
/// [`PortfolioPolicy`](wdm_core::PortfolioPolicy) — racing or adaptively
/// reallocating budget across `backends`. The winning backend's name is
/// recorded in the `analysis` field so reports show who solved what.
fn boundary_portfolio_job<P>(
    name: String,
    program: P,
    backends: Vec<BackendKind>,
) -> CampaignJob
where
    P: fp_runtime::Analyzable + 'static,
{
    CampaignJob::new(name.clone(), move |config| {
        let wd = BoundaryWeakDistance::new(program).with_kernel_policy(config.kernel_policy);
        let program_name = wd.program().name().to_string();
        let run = minimize_weak_distance_portfolio(&wd, config, &backends);
        let (found, best_value, evals) = match run.outcome() {
            Outcome::Found { evals, .. } => (1, 0.0, evals),
            Outcome::NotFound {
                best_value, evals, ..
            } => (0, finite(best_value), evals),
        };
        JobResult {
            job: name,
            analysis: format!("portfolio/{}", run.winning_backend().name()),
            program: program_name,
            found,
            total: 1,
            best_value,
            evals,
            static_pruned: 0,
        }
    })
}

/// Builds a portfolio campaign over the boundary problems of the GSL
/// suite's programs: each job runs `backends` under the configuration's
/// [`PortfolioPolicy`](wdm_core::PortfolioPolicy) — so one campaign can be
/// raced and another adaptively scheduled, and their reports compared.
pub fn gsl_portfolio_suite(config: &AnalysisConfig, backends: &[BackendKind]) -> Campaign {
    use mini_gsl::glibc_sin::GlibcSin;
    use mini_gsl::toy::{EqZeroProgram, Fig2Program};

    let mut campaign = Campaign::new(config.clone());
    campaign.push(boundary_portfolio_job(
        "portfolio/boundary/fig2".to_string(),
        Fig2Program::new(),
        backends.to_vec(),
    ));
    campaign.push(boundary_portfolio_job(
        "portfolio/boundary/eq_zero".to_string(),
        EqZeroProgram::new(),
        backends.to_vec(),
    ));
    campaign.push(boundary_portfolio_job(
        "portfolio/boundary/glibc_sin".to_string(),
        GlibcSin::new(),
        backends.to_vec(),
    ));
    campaign
}

/// Builds the full GSL benchmark campaign: every boundary condition of the
/// Glibc `sin` port, any-boundary analyses of the toy programs, and the
/// overflow studies of the three Table 3 special functions.
pub fn gsl_suite(config: &AnalysisConfig) -> Campaign {
    use mini_gsl::airy::AiryAi;
    use mini_gsl::bessel::BesselKnuScaled;
    use mini_gsl::glibc_sin::{GlibcSin, K_THRESHOLDS};
    use mini_gsl::hyperg::Hyperg2F0;
    use mini_gsl::toy::{EqZeroProgram, Fig2Program};

    let mut campaign = Campaign::new(config.clone());
    campaign.push(boundary_any_job("boundary/fig2".to_string(), Fig2Program::new()));
    campaign.push(boundary_any_job(
        "boundary/eq_zero".to_string(),
        EqZeroProgram::new(),
    ));
    for (i, threshold) in K_THRESHOLDS.iter().enumerate() {
        campaign.push(boundary_condition_job(
            format!("boundary/glibc_sin/k_lt_{threshold:#010x}"),
            GlibcSin::new(),
            fp_runtime::BranchId(i as u32),
        ));
    }
    campaign.push(overflow_job(
        "overflow/bessel_Knu_scaled_asympx_e".to_string(),
        BesselKnuScaled::new(),
    ));
    campaign.push(overflow_job(
        "overflow/gsl_sf_hyperg_2F0_e".to_string(),
        Hyperg2F0::new(),
    ));
    campaign.push(overflow_job(
        "overflow/gsl_sf_airy_Ai_e".to_string(),
        AiryAi::new(),
    ));
    campaign
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> AnalysisConfig {
        AnalysisConfig::quick(3).with_rounds(1).with_max_evals(2_000)
    }

    #[test]
    fn suite_has_the_expected_shape() {
        let campaign = gsl_suite(&quick_config());
        assert_eq!(campaign.len(), 10);
        assert!(!campaign.is_empty());
        let names = campaign.job_names();
        assert!(names[0].starts_with("boundary/"));
        assert!(names[9].starts_with("overflow/"));
    }

    #[test]
    fn campaign_results_are_ordered_and_deterministic_across_threads() {
        let one = gsl_suite(&quick_config()).run(1);
        let four = gsl_suite(&quick_config()).run(4);
        assert_eq!(one.jobs.len(), 10);
        assert_eq!(one.deterministic_results(), four.deterministic_results());
        assert_eq!(one.total_evals, four.total_evals);
        // Jobs come back in submission order regardless of scheduling.
        assert_eq!(one.jobs[0].result.job, "boundary/fig2");
        assert!(one.jobs_fully_solved >= 1);
    }

    #[test]
    fn campaign_report_serializes() {
        let mut campaign = Campaign::new(quick_config());
        campaign.push(boundary_any_job(
            "boundary/fig2".to_string(),
            mini_gsl::toy::Fig2Program::new(),
        ));
        let report = campaign.run(2);
        let json = serde_json::to_string_pretty(&report).expect("serialize");
        assert!(json.contains("boundary/fig2"));
        assert!(json.contains("total_evals"));
    }

    #[test]
    fn adaptive_portfolio_campaign_is_deterministic_across_threads() {
        // Race-mode portfolio jobs are timing-dependent by design; under
        // the adaptive policy the whole campaign report (including which
        // backend won each job) is bit-identical at any thread count.
        let config = quick_config()
            .with_portfolio_policy(wdm_core::PortfolioPolicy::Adaptive);
        let backends = [BackendKind::BasinHopping, BackendKind::RandomSearch];
        let one = gsl_portfolio_suite(&config, &backends).run(1);
        let four = gsl_portfolio_suite(&config, &backends).run(4);
        assert_eq!(one.jobs.len(), 3);
        assert_eq!(one.deterministic_results(), four.deterministic_results());
        assert!(one.jobs[0].result.analysis.starts_with("portfolio/"));
        // The boundary problems of the toy programs are easy: the
        // portfolio should solve at least one of them.
        assert!(one.jobs_fully_solved >= 1, "report: {:?}", one.jobs);
    }

    #[test]
    fn race_portfolio_campaign_runs_and_reports() {
        let backends = [BackendKind::BasinHopping, BackendKind::RandomSearch];
        let report = gsl_portfolio_suite(&quick_config(), &backends).run(2);
        assert_eq!(report.jobs.len(), 3);
        for job in &report.jobs {
            assert!(job.result.analysis.starts_with("portfolio/"), "{:?}", job.result);
            assert!(job.result.evals > 0);
        }
    }

    #[test]
    fn empty_campaign_runs() {
        let report = Campaign::new(quick_config()).run(3);
        assert!(report.jobs.is_empty());
        assert_eq!(report.total_evals, 0);
    }
}
