//! # wdm_engine — parallel portfolio execution engine
//!
//! The paper's search is dominated by independent restarts and treats the
//! MO backend as an interchangeable black box — an embarrassingly parallel
//! workload that the core pipeline runs single-threaded. This crate is the
//! scheduling layer that exploits it, std-only (the build environment is
//! offline), at three levels:
//!
//! 1. **Portfolio mode** ([`race_all`],
//!    [`minimize_weak_distance_portfolio`]) — every [`BackendKind`] races
//!    on one problem; the first backend to find a zero cancels the rest
//!    through a shared [`CancelToken`]. Under
//!    [`PortfolioPolicy::Adaptive`] ([`adaptive_all`]) the race is
//!    replaced by a deterministic bandit scheduler that reallocates one
//!    run's budget across resumable backends each round.
//! 2. **Restart sharding** ([`AnalysisConfig::with_parallelism`]) — the
//!    Algorithm-3 rounds are split across workers with deterministic
//!    per-shard seeds ([`derive_round_seed`], a SplitMix64-style bijective
//!    mix), so the merged outcome is bit-identical for any thread count.
//! 3. **Campaign mode** ([`Campaign`], [`gsl_suite`]) — a job queue over a
//!    [`WorkerPool`] that batches whole benchmark suites and reduces the
//!    results into a single JSON report.
//! 4. **Pooled batch evaluation** ([`PooledObjective`]) — the
//!    batched-evaluation seam (`Objective::eval_batch`) spread over scoped
//!    workers: a Differential Evolution generation or random-search chunk
//!    is split into contiguous slices, evaluated in parallel and
//!    reassembled in input order, bit-identical at any thread count.
//!
//! Levels 1–2 live in `wdm_core::driver` (they need nothing but scoped
//! threads) and are re-exported here; this crate adds the pool, the
//! campaign layer and thread-count policy.
//!
//! # Example: campaign over the GSL suite
//!
//! ```
//! use wdm_core::AnalysisConfig;
//! use wdm_engine::{gsl_suite, suggested_parallelism};
//!
//! let config = AnalysisConfig::quick(7).with_rounds(1).with_max_evals(500);
//! let report = gsl_suite(&config).run(suggested_parallelism());
//! assert_eq!(report.jobs.len(), 10);
//! // The deterministic part of the report is independent of the
//! // thread count; only the timing fields vary.
//! let again = gsl_suite(&config).run(1);
//! assert_eq!(report.deterministic_results(), again.deterministic_results());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod batch;
pub mod campaign;
pub mod portfolio;
pub mod threads;

pub use adaptive::{adaptive_all, minimize_weak_distance_adaptive, SteppedAnalysis};
pub use batch::PooledObjective;
pub use campaign::{
    gsl_portfolio_suite, gsl_suite, Campaign, CampaignJob, CampaignReport, JobReport, JobResult,
};
pub use portfolio::{minimize_weak_distance_portfolio, race_all, PortfolioEntry, PortfolioRun};
pub use threads::suggested_parallelism;

// Re-exported so engine users have the whole parallel surface in one place.
pub use wdm_core::driver::derive_round_seed;
pub use wdm_core::{AnalysisConfig, BackendKind, PortfolioPolicy};
pub use wdm_mo::{scoped_map, CancelToken, WorkerPool};
