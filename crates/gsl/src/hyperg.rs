//! Port of `gsl_sf_hyperg_2F0_e` (GSL `hyperg_2F0.c`), the second benchmark
//! of the overflow study (Tables 3 and 5).
//!
//! GSL computes `2F0(a, b, x)` for `x < 0` through the confluent
//! hypergeometric function of the second kind:
//! `2F0(a,b,x) = (-1/x)^a U(a, 1+a-b, -1/x)`. The full `gsl_sf_hyperg_U_e`
//! is a very large routine; this port substitutes a truncated asymptotic
//! series for `U` (see `DESIGN.md`), which preserves the operation and
//! error-propagation structure of `2F0` itself — the part the paper's
//! analyses exercise.

use crate::machine::GSL_DBL_EPSILON;
use crate::result::{SfOutcome, SfResult, Status};
use fp_runtime::{Analyzable, BranchSite, Cmp, Ctx, FpOp, Interval, NullObserver, OpSite};

/// Truncated asymptotic series for `U(a, b, x) ≈ x^-a Σ (a)_k (a-b+1)_k / (k! (-x)^k)`.
///
/// Returns value and a crude error estimate (the magnitude of the last term).
fn hyperg_u_series(a: f64, b: f64, x: f64) -> SfResult {
    let xa = x.powf(-a);
    let mut sum = 1.0;
    let mut term = 1.0;
    let mut last = 1.0_f64;
    for k in 0..15 {
        let kf = k as f64;
        term *= (a + kf) * (a - b + 1.0 + kf) / ((kf + 1.0) * (-x));
        // An asymptotic series: stop when the terms start growing.
        if term.abs() > last.abs() {
            break;
        }
        sum += term;
        last = term;
    }
    SfResult::new(xa * sum, (xa * last).abs() + GSL_DBL_EPSILON * (xa * sum).abs())
}

/// Probed body of `gsl_sf_hyperg_2F0_e(a, b, x, result)`.
pub fn hyperg_2f0_probed(a: f64, b: f64, x: f64, ctx: &mut Ctx<'_>) -> SfOutcome {
    if ctx.branch(0, x, Cmp::Lt, 0.0) {
        // 2F0(a,b,x) = (-1/x)^a U(a, 1+a-b, -1/x)
        let mxi = ctx.op(0, FpOp::Div, -1.0 / x);
        let pre = ctx.op(1, FpOp::Pow, mxi.powf(a));
        let ap1 = ctx.op(2, FpOp::Add, 1.0 + a);
        let bu = ctx.op(3, FpOp::Sub, ap1 - b);
        let u = hyperg_u_series(a, bu, mxi);
        let val = ctx.op(4, FpOp::Mul, pre * u.val);
        let e1 = ctx.op(5, FpOp::Mul, GSL_DBL_EPSILON * val.abs());
        let e2 = ctx.op(6, FpOp::Mul, pre * u.err);
        let err = ctx.op(7, FpOp::Add, e1 + e2);
        (SfResult::new(val, err), Status::Success)
    } else if ctx.branch(1, x, Cmp::Eq, 0.0) {
        (SfResult::new(1.0, 0.0), Status::Success)
    } else {
        // x > 0 is a domain error in GSL.
        (SfResult::new(f64::NAN, f64::NAN), Status::Domain)
    }
}

/// Plain GSL-convention entry point.
///
/// # Example
///
/// ```
/// use mini_gsl::hyperg::hyperg_2f0_e;
/// let (r, status) = hyperg_2f0_e(0.5, 1.5, -0.01);
/// assert!(status.is_success());
/// assert!(r.val.is_finite());
/// ```
pub fn hyperg_2f0_e(a: f64, b: f64, x: f64) -> SfOutcome {
    let mut obs = NullObserver;
    let mut ctx = Ctx::new(&mut obs);
    hyperg_2f0_probed(a, b, x, &mut ctx)
}

/// Invokes the plain function on a 3-element slice (Table 5 replay).
pub fn hyperg_outcome(input: &[f64]) -> SfOutcome {
    hyperg_2f0_e(input[0], input[1], input[2])
}

/// The probed Hypergeometric benchmark.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hyperg2F0;

impl Hyperg2F0 {
    /// Creates the benchmark.
    pub fn new() -> Self {
        Hyperg2F0
    }

    /// Number of labelled floating-point operation sites (the paper's 8).
    pub const NUM_OPS: u32 = 8;
}

impl Analyzable for Hyperg2F0 {
    fn name(&self) -> &str {
        "gsl_sf_hyperg_2F0_e"
    }

    fn num_inputs(&self) -> usize {
        3
    }

    fn search_domain(&self) -> Vec<Interval> {
        vec![Interval::whole(), Interval::whole(), Interval::whole()]
    }

    fn op_sites(&self) -> Vec<OpSite> {
        vec![
            OpSite::new(0, FpOp::Div, "double pre = pow(-1.0/x, a): -1.0/x"),
            OpSite::new(1, FpOp::Pow, "double pre = pow (-1.0/x, a)"),
            OpSite::new(2, FpOp::Add, "1.0 + a"),
            OpSite::new(3, FpOp::Sub, "(1.0 + a) - b"),
            OpSite::new(4, FpOp::Mul, "result->val = pre * U.val"),
            OpSite::new(5, FpOp::Mul, "err = GSL_DBL_EPSILON * fabs(val) + ..."),
            OpSite::new(6, FpOp::Mul, "err = ... + pre * U.err"),
            OpSite::new(7, FpOp::Add, "err = EPSILON*fabs(val) + pre*U.err"),
        ]
    }

    fn branch_sites(&self) -> Vec<BranchSite> {
        vec![
            BranchSite::new(0, Cmp::Lt, "x < 0.0"),
            BranchSite::new(1, Cmp::Eq, "x == 0.0"),
        ]
    }

    fn execute(&self, input: &[f64], ctx: &mut Ctx<'_>) -> Option<f64> {
        let (r, _) = hyperg_2f0_probed(input[0], input[1], input[2], ctx);
        Some(r.val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_runtime::TraceRecorder;

    #[test]
    fn small_negative_argument_is_near_one() {
        // 2F0(a, b, x) = 1 + a*b*x + O(x^2) for x -> 0^-.
        let (r, status) = hyperg_2f0_e(0.5, 1.5, -1.0e-4);
        assert!(status.is_success());
        let expected = 1.0 + 0.5 * 1.5 * (-1.0e-4);
        assert!((r.val - expected).abs() < 1e-4, "val = {}", r.val);
    }

    #[test]
    fn zero_argument_is_exactly_one() {
        let (r, status) = hyperg_2f0_e(2.0, 3.0, 0.0);
        assert!(status.is_success());
        assert_eq!(r.val, 1.0);
    }

    #[test]
    fn positive_argument_is_domain_error() {
        let (_, status) = hyperg_2f0_e(1.0, 1.0, 0.5);
        assert_eq!(status, Status::Domain);
    }

    #[test]
    fn table5_inconsistencies_reproduce() {
        // Table 5: large exponent of pow — (-1/x)^a overflows.
        let (r, status) = hyperg_outcome(&[-6.2e2, -3.7e2, -1.5e2]);
        assert!(status.is_success());
        assert!(r.is_exceptional(), "val = {}, err = {}", r.val, r.err);
        // Table 5: large operands — a denormal x overflows -1.0/x, which then
        // propagates through pow and the final multiplication while the
        // status stays SUCCESS.
        let (r, status) = hyperg_outcome(&[2.0, 1.0, -1.0e-320]);
        assert!(status.is_success());
        assert!(r.is_exceptional(), "val = {}, err = {}", r.val, r.err);
    }

    #[test]
    fn probed_benchmark_reports_eight_ops() {
        let h = Hyperg2F0::new();
        assert_eq!(h.op_sites().len(), 8);
        assert_eq!(h.num_inputs(), 3);
        let mut rec = TraceRecorder::new();
        h.run(&[0.5, 1.5, -2.0], &mut rec);
        assert_eq!(rec.ops().count(), 8);
        assert_eq!(rec.branches().count(), 1);
    }

    #[test]
    fn probed_and_plain_agree() {
        let h = Hyperg2F0::new();
        let mut rec = TraceRecorder::new();
        let probed = h.run(&[0.5, 1.5, -2.0], &mut rec).unwrap();
        let (plain, _) = hyperg_2f0_e(0.5, 1.5, -2.0);
        assert_eq!(probed.to_bits(), plain.val.to_bits());
    }
}
