//! The GSL result and error-status convention.
//!
//! GSL special functions return an error code and fill in a
//! `gsl_sf_result { double val; double err; }`. The paper's "inconsistency"
//! notion (Section 6.3.2) is defined against exactly this convention:
//! `status == GSL_SUCCESS` while `val` or `err` is `±inf` or NaN.

use std::fmt;

/// The GSL computation result: a value and an error estimate.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SfResult {
    /// Computed value (`result->val`).
    pub val: f64,
    /// Absolute error estimate (`result->err`).
    pub err: f64,
}

impl SfResult {
    /// Creates a result.
    pub fn new(val: f64, err: f64) -> Self {
        SfResult { val, err }
    }

    /// Returns `true` if either the value or the error estimate is
    /// non-finite — the observable symptom of the paper's inconsistencies.
    pub fn is_exceptional(&self) -> bool {
        !self.val.is_finite() || !self.err.is_finite()
    }
}

impl fmt::Display for SfResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ± {}", self.val, self.err)
    }
}

/// GSL error codes (the subset used by the ported functions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// `GSL_SUCCESS` (0).
    Success,
    /// `GSL_EDOM`: input domain error.
    Domain,
    /// `GSL_ERANGE`: output range error.
    Range,
    /// `GSL_EOVRFLW`: overflow.
    Overflow,
    /// `GSL_EUNDRFLW`: underflow.
    Underflow,
}

impl Status {
    /// Returns `true` for `GSL_SUCCESS`.
    pub fn is_success(self) -> bool {
        self == Status::Success
    }

    /// The numeric error code, matching GSL's values.
    pub fn code(self) -> i32 {
        match self {
            Status::Success => 0,
            Status::Domain => 1,
            Status::Range => 2,
            Status::Overflow => 16,
            Status::Underflow => 15,
        }
    }

    /// GSL's `GSL_ERROR_SELECT_2`: the first non-success status wins.
    pub fn select(self, other: Status) -> Status {
        if self.is_success() {
            other
        } else {
            self
        }
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Status::Success => "GSL_SUCCESS",
            Status::Domain => "GSL_EDOM",
            Status::Range => "GSL_ERANGE",
            Status::Overflow => "GSL_EOVRFLW",
            Status::Underflow => "GSL_EUNDRFLW",
        };
        f.write_str(s)
    }
}

/// A special-function evaluation outcome: status plus result, as reported by
/// the GSL calling convention `int f(double..., gsl_sf_result*)`.
pub type SfOutcome = (SfResult, Status);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exceptional_detection() {
        assert!(!SfResult::new(1.0, 1e-10).is_exceptional());
        assert!(SfResult::new(f64::INFINITY, 0.0).is_exceptional());
        assert!(SfResult::new(0.0, f64::NAN).is_exceptional());
        assert!(SfResult::new(-f64::INFINITY, f64::INFINITY).is_exceptional());
    }

    #[test]
    fn status_codes_and_select() {
        assert!(Status::Success.is_success());
        assert!(!Status::Domain.is_success());
        assert_eq!(Status::Success.code(), 0);
        assert_eq!(Status::Overflow.code(), 16);
        assert_eq!(Status::Success.select(Status::Domain), Status::Domain);
        assert_eq!(Status::Domain.select(Status::Success), Status::Domain);
        assert_eq!(Status::Success.select(Status::Success), Status::Success);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Status::Success.to_string(), "GSL_SUCCESS");
        assert!(SfResult::new(1.5, 0.25).to_string().contains("±"));
    }
}
