//! Port of `gsl_sf_airy_Ai_e` (GSL `airy.c`), the third benchmark of the
//! overflow study (Tables 3 and 5).
//!
//! Structure of the port (mirroring GSL):
//!
//! * `x < -1` — oscillatory region: `airy_mod_phase` computes a modulus and
//!   a phase from asymptotic correction series, then
//!   [`cos_err_e`](crate::trig::cos_err_e) combines them;
//! * `-1 <= x <= 1` — Maclaurin series `Ai(x) = c1 f(x) - c2 g(x)`;
//! * `x > 1` — exponentially decaying asymptotic expansion.
//!
//! Two defects of the original library are reproduced behaviourally (see
//! `DESIGN.md`):
//!
//! * **Bug 1** (division by a vanished intermediate): the modulus
//!   correction series suffers absorption against the constant `0.3125` for
//!   inputs near `x ≈ -3.02`, evaluating to exactly zero over a small input
//!   window; the error estimate divides by it, producing `inf` while the
//!   status stays `GSL_SUCCESS`.
//! * **Bug 2** (inaccurate cosine): for very negative inputs the phase is
//!   astronomically large; `cos_err_e`'s naive argument reduction then
//!   yields a meaningless (often infinite) value, again under
//!   `GSL_SUCCESS`.

use crate::machine::{GSL_DBL_EPSILON, M_PI_4, M_SQRTPI};
use crate::result::{SfOutcome, SfResult, Status};
use crate::trig::cos_err_e;
use fp_runtime::{Analyzable, BranchSite, Cmp, Ctx, FpOp, Interval, NullObserver, OpSite};

/// Ai(0) = 3^(-2/3) / Γ(2/3).
const AI_0: f64 = 0.355_028_053_887_817_24;
/// -Ai'(0) = 3^(-1/3) / Γ(1/3).
const AIP_0: f64 = 0.258_819_403_792_806_8;

/// Modulus/phase decomposition for `x < -1` (port of `airy_mod_phase`).
///
/// Returns `(modulus, phase, status)`.
pub fn airy_mod_phase(x: f64, ctx: &mut Ctx<'_>) -> (SfResult, SfResult, Status) {
    if x > -1.0 {
        return (
            SfResult::new(f64::NAN, f64::NAN),
            SfResult::new(f64::NAN, f64::NAN),
            Status::Domain,
        );
    }
    let x2 = ctx.op(0, FpOp::Mul, x * x);
    let x3 = ctx.op(1, FpOp::Mul, x2 * x);
    let inv = ctx.op(2, FpOp::Div, 16.0 / x3);

    // Correction series for the modulus; the grouping `(0.3125 + t) - 0.3125`
    // reproduces GSL's vanishing intermediate (Bug 1).
    let (result_m, result_p) = if ctx.branch(0, x, Cmp::Lt, -2.0) {
        let z = ctx.op(3, FpOp::Add, inv + 1.0);
        let t = ctx.op(4, FpOp::Mul, 0.01 * (z - 0.419_07));
        let absorbed = ctx.op(5, FpOp::Add, 0.3125 + t);
        let m_corr = ctx.op(6, FpOp::Sub, absorbed - 0.3125);
        let m_res = SfResult::new(m_corr, GSL_DBL_EPSILON * (0.3125 + t.abs()));
        let p_corr = ctx.op(7, FpOp::Mul, -0.041_666_666_666_666_664 * (1.0 + 0.05 * (z - 1.0)));
        let p_res = SfResult::new(p_corr, GSL_DBL_EPSILON * p_corr.abs());
        (m_res, p_res)
    } else {
        let z9 = ctx.op(8, FpOp::Add, inv + 9.0);
        let z = ctx.op(9, FpOp::Div, z9 / 7.0);
        let t = ctx.op(10, FpOp::Mul, 0.002 * (z - 1.0) + 0.005_809);
        let absorbed = ctx.op(11, FpOp::Add, 0.3125 + t);
        let m_corr = ctx.op(12, FpOp::Sub, absorbed - 0.3125);
        let m_res = SfResult::new(m_corr, GSL_DBL_EPSILON * (0.3125 + t.abs()));
        let p_corr = ctx.op(13, FpOp::Mul, -0.041_666_666_666_666_664 * (1.0 + 0.03 * (z - 1.0)));
        let p_res = SfResult::new(p_corr, GSL_DBL_EPSILON * p_corr.abs());
        (m_res, p_res)
    };

    let m = ctx.op(14, FpOp::Add, 0.3125 + result_m.val);
    let p = ctx.op(15, FpOp::Add, -0.625 + result_p.val);
    let sqx = (-x).sqrt();
    let m_over = ctx.op(16, FpOp::Div, m / sqx);
    let mod_val = m_over.sqrt();
    // GSL-style relative error of the correction: divides by result_m.val,
    // which vanishes near x ≈ -3.02 (Bug 1).
    let rel = ctx.op(17, FpOp::Div, result_m.err / result_m.val);
    let mod_err = ctx.op(18, FpOp::Mul, mod_val.abs() * rel.abs()) + GSL_DBL_EPSILON * mod_val.abs();

    let xsqx = ctx.op(19, FpOp::Mul, x * sqx);
    let phase_term = ctx.op(20, FpOp::Mul, xsqx * p);
    let theta_val = ctx.op(21, FpOp::Sub, M_PI_4 - phase_term);
    let theta_err = ctx.op(
        22,
        FpOp::Mul,
        xsqx.abs() * (result_p.err + GSL_DBL_EPSILON * p.abs()),
    ) + GSL_DBL_EPSILON * theta_val.abs();

    (
        SfResult::new(mod_val, mod_err),
        SfResult::new(theta_val, theta_err),
        Status::Success,
    )
}

/// Probed body of `gsl_sf_airy_Ai_e`.
pub fn airy_ai_probed(x: f64, ctx: &mut Ctx<'_>) -> SfOutcome {
    if ctx.branch(1, x, Cmp::Lt, -1.0) {
        // Oscillatory region.
        let (mod_r, theta_r, stat_mp) = airy_mod_phase(x, ctx);
        let (cos_r, stat_cos) = cos_err_e(theta_r.val, theta_r.err);
        let val = ctx.op(23, FpOp::Mul, mod_r.val * cos_r.val);
        let e1 = (mod_r.val * cos_r.err).abs();
        let e2 = (cos_r.val * mod_r.err).abs();
        let err0 = ctx.op(24, FpOp::Add, e1 + e2);
        let err = ctx.op(25, FpOp::Add, err0 + GSL_DBL_EPSILON * val.abs());
        (SfResult::new(val, err), stat_mp.select(stat_cos))
    } else if ctx.branch(2, x, Cmp::Le, 1.0) {
        // Maclaurin series Ai(x) = c1 f(x) - c2 g(x).
        let mut f = 1.0;
        let mut g = x;
        let mut term_f = 1.0;
        let mut term_g = x;
        let mut k = 0.0;
        for _ in 0..12 {
            term_f *= x * x * x / ((3.0 * k + 2.0) * (3.0 * k + 3.0));
            term_g *= x * x * x / ((3.0 * k + 3.0) * (3.0 * k + 4.0));
            f += term_f;
            g += term_g;
            k += 1.0;
        }
        let val = AI_0 * f - AIP_0 * g;
        let err = GSL_DBL_EPSILON * (1.0 + val.abs());
        (SfResult::new(val, err), Status::Success)
    } else {
        // Exponentially decaying asymptotic region.
        let sqx = x.sqrt();
        let xi = ctx.op(26, FpOp::Mul, 2.0 / 3.0 * (x * sqx));
        let pre_den = ctx.op(27, FpOp::Mul, 2.0 * M_SQRTPI * (sqx.sqrt()));
        let damp = (-xi).exp();
        let series = 1.0 - 5.0 / (72.0 * xi) + 385.0 / (10_368.0 * xi * xi);
        let num = ctx.op(28, FpOp::Mul, damp * series);
        let val = ctx.op(29, FpOp::Div, num / pre_den);
        let err = GSL_DBL_EPSILON * val.abs() * (1.0 + xi.abs() * GSL_DBL_EPSILON);
        (SfResult::new(val, err), Status::Success)
    }
}

/// Plain GSL-convention entry point `gsl_sf_airy_Ai_e(x, result)`.
///
/// # Example
///
/// ```
/// use mini_gsl::airy::airy_ai_e;
/// let (r, status) = airy_ai_e(0.0);
/// assert!(status.is_success());
/// assert!((r.val - 0.3550280538878172).abs() < 1e-12);
/// ```
pub fn airy_ai_e(x: f64) -> SfOutcome {
    let mut obs = NullObserver;
    let mut ctx = Ctx::new(&mut obs);
    airy_ai_probed(x, &mut ctx)
}

/// Invokes the plain function on a 1-element slice; used by the Table 5
/// inconsistency replay.
pub fn airy_outcome(input: &[f64]) -> SfOutcome {
    airy_ai_e(input[0])
}

/// The probed Airy benchmark.
#[derive(Debug, Clone, Copy, Default)]
pub struct AiryAi;

impl AiryAi {
    /// Creates the benchmark.
    pub fn new() -> Self {
        AiryAi
    }

    /// Number of labelled floating-point operation sites.
    pub const NUM_OPS: u32 = 30;
}

impl Analyzable for AiryAi {
    fn name(&self) -> &str {
        "gsl_sf_airy_Ai_e"
    }

    fn num_inputs(&self) -> usize {
        1
    }

    fn search_domain(&self) -> Vec<Interval> {
        vec![Interval::whole()]
    }

    fn op_sites(&self) -> Vec<OpSite> {
        let labels: [(u32, FpOp, &str); 30] = [
            (0, FpOp::Mul, "airy_mod_phase: x*x"),
            (1, FpOp::Mul, "airy_mod_phase: (x*x)*x"),
            (2, FpOp::Div, "airy_mod_phase: 16.0/(x*x*x)"),
            (3, FpOp::Add, "airy_mod_phase: z = 16/x^3 + 1.0"),
            (4, FpOp::Mul, "airy_mod_phase: 0.01*(z - 0.41907)"),
            (5, FpOp::Add, "airy_mod_phase: 0.3125 + t"),
            (6, FpOp::Sub, "airy_mod_phase: (0.3125 + t) - 0.3125"),
            (7, FpOp::Mul, "airy_mod_phase: phase correction (x < -2)"),
            (8, FpOp::Add, "airy_mod_phase: 16/x^3 + 9.0"),
            (9, FpOp::Div, "airy_mod_phase: z = (16/x^3 + 9)/7"),
            (10, FpOp::Mul, "airy_mod_phase: 0.002*(z-1) + 0.005809"),
            (11, FpOp::Add, "airy_mod_phase: 0.3125 + t (branch 2)"),
            (12, FpOp::Sub, "airy_mod_phase: (0.3125 + t) - 0.3125 (branch 2)"),
            (13, FpOp::Mul, "airy_mod_phase: phase correction (-2 <= x <= -1)"),
            (14, FpOp::Add, "airy_mod_phase: m = 0.3125 + result_m.val"),
            (15, FpOp::Add, "airy_mod_phase: p = -0.625 + result_p.val"),
            (16, FpOp::Div, "airy_mod_phase: m / sqrt(-x)"),
            (17, FpOp::Div, "airy_mod_phase: result_m.err / result_m.val"),
            (18, FpOp::Mul, "airy_mod_phase: mod.err = |mod.val| * rel"),
            (19, FpOp::Mul, "airy_mod_phase: x * sqrt(-x)"),
            (20, FpOp::Mul, "airy_mod_phase: (x*sqrt(-x)) * p"),
            (21, FpOp::Sub, "airy_mod_phase: theta = pi/4 - x*sqx*p"),
            (22, FpOp::Mul, "airy_mod_phase: theta.err"),
            (23, FpOp::Mul, "airy_Ai: val = mod.val * cos_result.val"),
            (24, FpOp::Add, "airy_Ai: err = |mod*cos.err| + |cos*mod.err|"),
            (25, FpOp::Add, "airy_Ai: err += EPSILON*|val|"),
            (26, FpOp::Mul, "airy_Ai (x>1): xi = 2/3 * x*sqrt(x)"),
            (27, FpOp::Mul, "airy_Ai (x>1): 2*sqrt(pi)*x^(1/4)"),
            (28, FpOp::Mul, "airy_Ai (x>1): exp(-xi)*series"),
            (29, FpOp::Div, "airy_Ai (x>1): val = num/den"),
        ];
        labels
            .iter()
            .map(|&(id, op, label)| OpSite::new(id, op, label))
            .collect()
    }

    fn branch_sites(&self) -> Vec<BranchSite> {
        vec![
            BranchSite::new(0, Cmp::Lt, "airy_mod_phase: x < -2.0"),
            BranchSite::new(1, Cmp::Lt, "airy_Ai: x < -1.0"),
            BranchSite::new(2, Cmp::Le, "airy_Ai: x <= 1.0"),
        ]
    }

    fn execute(&self, input: &[f64], ctx: &mut Ctx<'_>) -> Option<f64> {
        let (r, _) = airy_ai_probed(input[0], ctx);
        Some(r.val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_runtime::TraceRecorder;

    #[test]
    fn series_region_matches_reference_values() {
        // Reference values of Ai from DLMF/Abramowitz & Stegun.
        let cases = [
            (0.0, 0.355_028_053_887_817_2),
            (1.0, 0.135_292_416_312_881_4),
            (-1.0, 0.535_560_883_292_352_6),
            (0.5, 0.231_693_606_480_833_5),
        ];
        for (x, expected) in cases {
            let (r, status) = airy_ai_e(x);
            assert!(status.is_success());
            assert!(
                (r.val - expected).abs() < 1e-6,
                "Ai({x}) = {} expected {expected}",
                r.val
            );
        }
    }

    #[test]
    fn decaying_region_is_roughly_right() {
        // Ai(2) ≈ 0.03492, Ai(5) ≈ 1.0834e-4.
        let (r2, _) = airy_ai_e(2.0);
        assert!((r2.val - 0.034_92).abs() < 5e-3, "Ai(2) = {}", r2.val);
        let (r5, _) = airy_ai_e(5.0);
        assert!(r5.val > 0.0 && r5.val < 1e-3, "Ai(5) = {}", r5.val);
    }

    #[test]
    fn oscillatory_region_is_bounded_and_oscillates() {
        let mut signs = std::collections::BTreeSet::new();
        for i in 0..200 {
            let x = -1.5 - i as f64 * 0.05; // down to -11.5
            let (r, status) = airy_ai_e(x);
            assert!(status.is_success());
            assert!(r.val.abs() < 1.0, "Ai({x}) = {}", r.val);
            signs.insert(r.val > 0.0);
        }
        assert_eq!(signs.len(), 2, "Ai should change sign in the oscillatory region");
    }

    #[test]
    fn bug1_division_by_vanished_intermediate() {
        // The modulus correction is absorbed to exactly zero on a ~20-ULP
        // window of inputs around the x where z(x) = 0.41907; the error
        // estimate then divides by zero. Locate the window by scanning ULPs
        // around the analytic center.
        let center = -(16.0_f64 / (1.0 - 0.419_07)).cbrt();
        let mut found = None;
        let center_bits = center.to_bits();
        for offset in -200_000i64..200_000 {
            let x = f64::from_bits((center_bits as i64 + offset) as u64);
            let (r, status) = airy_ai_e(x);
            if status.is_success() && r.is_exceptional() {
                found = Some((x, r));
                break;
            }
        }
        let (x, r) = found.expect("no division-by-zero inconsistency found near -3.02");
        assert!(r.err.is_infinite() || r.err.is_nan(), "err = {}", r.err);
        // Slightly disturbing the input makes the exception disappear,
        // exactly as reported in the paper.
        let (r2, _) = airy_ai_e(x + 1e-3);
        assert!(!r2.is_exceptional());
    }

    #[test]
    fn bug2_inaccurate_cosine_for_huge_negative_input() {
        // For inputs of magnitude ~1e34 the phase handed to cos_err_e is
        // ~1e50 with an uncertainty of ~1e35; the naive argument reduction
        // then produces garbage. The symptom for most such inputs is a
        // non-finite val/err under GSL_SUCCESS; for the rest the error
        // estimate is absurdly large.
        let mut exceptional = 0;
        let mut absurd_err = 0;
        let n = 500;
        for k in 0..n {
            let x = -1.14e34 * (1.0 + k as f64 * 1.0e-6);
            let (r, status) = airy_ai_e(x);
            assert!(status.is_success(), "GSL-style: status stays SUCCESS");
            if r.is_exceptional() {
                exceptional += 1;
            } else if r.err > 1.0 {
                absurd_err += 1;
            }
        }
        assert!(
            exceptional > 0,
            "no inf/nan inconsistency among {n} huge inputs (absurd errors: {absurd_err})"
        );
        assert_eq!(exceptional + absurd_err, n, "every huge input is inconsistent");
    }

    #[test]
    fn probed_benchmark_reports_sites() {
        let a = AiryAi::new();
        assert_eq!(a.op_sites().len(), 30);
        assert_eq!(a.branch_sites().len(), 3);
        let mut rec = TraceRecorder::new();
        a.run(&[-2.5], &mut rec);
        assert!(rec.ops().count() > 10);
        assert!(rec.branches().count() >= 2);
        let mut rec = TraceRecorder::new();
        a.run(&[3.0], &mut rec);
        assert!(rec.ops().any(|o| o.id.0 == 29), "decay-branch ops reported");
    }

    #[test]
    fn domain_error_outside_mod_phase_region() {
        let mut obs = NullObserver;
        let mut ctx = Ctx::new(&mut obs);
        let (_, _, status) = airy_mod_phase(0.5, &mut ctx);
        assert_eq!(status, Status::Domain);
    }
}
