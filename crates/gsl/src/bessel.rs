//! Port of `gsl_sf_bessel_Knu_scaled_asympx_e` (GSL `bessel.c`), the Fig. 5
//! benchmark of the paper.
//!
//! The function evaluates the large-argument asymptotic expansion of the
//! scaled modified Bessel function `K_nu(x) * exp(x)` and contains exactly
//! 23 elementary floating-point operations, each of which is a potential
//! overflow site (Table 4).

use crate::machine::{GSL_DBL_EPSILON, M_PI};
use crate::result::{SfOutcome, SfResult, Status};
use fp_runtime::{Analyzable, BranchSite, Ctx, FpOp, Interval, OpSite};

/// Plain port of `gsl_sf_bessel_Knu_scaled_asympx_e(nu, x, result)`.
///
/// # Example
///
/// ```
/// use mini_gsl::bessel::bessel_knu_scaled_asympx;
/// let (r, status) = bessel_knu_scaled_asympx(1.0, 10.0);
/// assert!(status.is_success());
/// assert!(r.val > 0.0 && r.val.is_finite());
/// ```
pub fn bessel_knu_scaled_asympx(nu: f64, x: f64) -> SfOutcome {
    let mu = 4.0 * nu * nu;
    let mum1 = mu - 1.0;
    let mum9 = mu - 9.0;
    let pre = (M_PI / (2.0 * x)).sqrt();
    let r = nu / x;
    let val = pre * (1.0 + mum1 / (8.0 * x) + mum1 * mum9 / (128.0 * x * x));
    let err = 2.0 * GSL_DBL_EPSILON * val.abs() + pre * (0.1 * r * r * r).abs();
    (SfResult::new(val, err), Status::Success)
}

/// The probed Fig. 5 benchmark: every one of the 23 elementary operations is
/// reported as an [`fp_runtime::OpEvent`] with the site numbering of
/// Table 4.
#[derive(Debug, Clone, Copy, Default)]
pub struct BesselKnuScaled;

impl BesselKnuScaled {
    /// Creates the benchmark.
    pub fn new() -> Self {
        BesselKnuScaled
    }

    /// Number of elementary floating-point operations (the paper's `|Op|`).
    pub const NUM_OPS: u32 = 23;

    /// Executes the instrumented body on `(nu, x)`.
    pub fn eval_probed(&self, nu: f64, x: f64, ctx: &mut Ctx<'_>) -> SfOutcome {
        // double mu = 4.0 * nu * nu;
        let t = ctx.op(0, FpOp::Mul, 4.0 * nu);
        let mu = ctx.op(1, FpOp::Mul, t * nu);
        // double mum1 = mu - 1.0;
        let mum1 = ctx.op(2, FpOp::Sub, mu - 1.0);
        // double mum9 = mu - 9.0;
        let mum9 = ctx.op(3, FpOp::Sub, mu - 9.0);
        // double pre = sqrt(M_PI / (2.0 * x));
        let tx = ctx.op(4, FpOp::Mul, 2.0 * x);
        let frac = ctx.op(5, FpOp::Div, M_PI / tx);
        let pre = frac.sqrt();
        // double r = nu / x;
        let r = ctx.op(6, FpOp::Div, nu / x);
        // result->val = pre * (1.0 + mum1/(8.0*x) + mum1*mum9/(128.0*x*x));
        let e8x = ctx.op(7, FpOp::Mul, 8.0 * x);
        let term1 = ctx.op(8, FpOp::Div, mum1 / e8x);
        let onep = ctx.op(9, FpOp::Add, 1.0 + term1);
        let mm = ctx.op(10, FpOp::Mul, mum1 * mum9);
        let c128x = ctx.op(11, FpOp::Mul, 128.0 * x);
        let c128xx = ctx.op(12, FpOp::Mul, c128x * x);
        let term2 = ctx.op(13, FpOp::Div, mm / c128xx);
        let sum = ctx.op(14, FpOp::Add, onep + term2);
        let val = ctx.op(15, FpOp::Mul, pre * sum);
        // result->err = 2.0*GSL_DBL_EPSILON*fabs(val) + pre*fabs(0.1*r*r*r);
        let two_eps = ctx.op(16, FpOp::Mul, 2.0 * GSL_DBL_EPSILON);
        let abs_term = ctx.op(17, FpOp::Mul, two_eps * val.abs());
        let r01 = ctx.op(18, FpOp::Mul, 0.1 * r);
        let rr = ctx.op(19, FpOp::Mul, r01 * r);
        let rrr = ctx.op(20, FpOp::Mul, rr * r);
        let pre_term = ctx.op(21, FpOp::Mul, pre * rrr.abs());
        let err = ctx.op(22, FpOp::Add, abs_term + pre_term);
        (SfResult::new(val, err), Status::Success)
    }
}

impl Analyzable for BesselKnuScaled {
    fn name(&self) -> &str {
        "gsl_sf_bessel_Knu_scaled_asympx_e"
    }

    fn num_inputs(&self) -> usize {
        2
    }

    fn search_domain(&self) -> Vec<Interval> {
        // nu and x range over the whole binary64 line, as in the paper's
        // overflow experiments (inputs like 1.79e308 are reported).
        vec![Interval::whole(), Interval::whole()]
    }

    fn op_sites(&self) -> Vec<OpSite> {
        vec![
            OpSite::new(0, FpOp::Mul, "double mu = 4.0 * nu*nu"),
            OpSite::new(1, FpOp::Mul, "double mu = 4.0*nu * nu"),
            OpSite::new(2, FpOp::Sub, "double mum1 = mu - 1.0"),
            OpSite::new(3, FpOp::Sub, "double mum9 = mu - 9.0"),
            OpSite::new(4, FpOp::Mul, "double pre = sqrt(M_PI/(2.0 * x))"),
            OpSite::new(5, FpOp::Div, "double pre = sqrt(M_PI / (2.0*x))"),
            OpSite::new(6, FpOp::Div, "double r = nu / x"),
            OpSite::new(7, FpOp::Mul, "val = pre*(1.0 + mum1/(8.0 * x) + ...)"),
            OpSite::new(8, FpOp::Div, "val = pre*(1.0 + mum1 / (8.0*x) + ...)"),
            OpSite::new(9, FpOp::Add, "val = pre*(1.0 + mum1/(8.0*x) + ...)"),
            OpSite::new(10, FpOp::Mul, "val = pre*(... + mum1 * mum9/(128.0*x*x))"),
            OpSite::new(11, FpOp::Mul, "val = pre*(... + mum1*mum9/(128.0 * x*x))"),
            OpSite::new(12, FpOp::Mul, "val = pre*(... + mum1*mum9/(128.0*x * x))"),
            OpSite::new(13, FpOp::Div, "val = pre*(... + mum1*mum9 / (128.0*x*x))"),
            OpSite::new(14, FpOp::Add, "val = pre*(1.0 + ... + ...)"),
            OpSite::new(15, FpOp::Mul, "val = pre * (1.0 + ... + ...)"),
            OpSite::new(16, FpOp::Mul, "err = 2.0 * EPSILON*fabs(val) + ..."),
            OpSite::new(17, FpOp::Mul, "err = 2.0*EPSILON * fabs(val) + ..."),
            OpSite::new(18, FpOp::Mul, "err = ... + pre*fabs(0.1 * r*r*r)"),
            OpSite::new(19, FpOp::Mul, "err = ... + pre*fabs(0.1*r * r*r)"),
            OpSite::new(20, FpOp::Mul, "err = ... + pre*fabs(0.1*r*r * r)"),
            OpSite::new(21, FpOp::Mul, "err = ... + pre * fabs(0.1*r*r*r)"),
            OpSite::new(22, FpOp::Add, "err = 2.0*EPSILON*fabs(val) + pre*fabs(...)"),
        ]
    }

    fn branch_sites(&self) -> Vec<BranchSite> {
        Vec::new()
    }

    fn execute(&self, input: &[f64], ctx: &mut Ctx<'_>) -> Option<f64> {
        let (r, _) = self.eval_probed(input[0], input[1], ctx);
        Some(r.val)
    }
}

/// Invokes the plain GSL-convention function on a 2-element input slice;
/// used by the inconsistency replay of Table 5.
pub fn bessel_outcome(input: &[f64]) -> SfOutcome {
    bessel_knu_scaled_asympx(input[0], input[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_runtime::{NullObserver, TraceRecorder};

    #[test]
    fn matches_asymptotic_value_for_moderate_inputs() {
        // K_0(10) * e^10 ≈ 0.39163... ; the asymptotic expansion is close.
        let (r, status) = bessel_knu_scaled_asympx(0.0, 10.0);
        assert!(status.is_success());
        assert!((r.val - 0.391_66).abs() < 1e-3, "val = {}", r.val);
        assert!(r.err >= 0.0);
    }

    #[test]
    fn probed_and_plain_versions_agree() {
        let b = BesselKnuScaled::new();
        let mut obs = NullObserver;
        for &(nu, x) in &[(0.5, 3.0), (2.0, 25.0), (10.0, 1.0e5), (-1.5, 0.25)] {
            let mut ctx = Ctx::new(&mut obs);
            let (probed, _) = b.eval_probed(nu, x, &mut ctx);
            let (plain, _) = bessel_knu_scaled_asympx(nu, x);
            assert_eq!(probed.val.to_bits(), plain.val.to_bits(), "val at ({nu}, {x})");
            assert_eq!(probed.err.to_bits(), plain.err.to_bits(), "err at ({nu}, {x})");
        }
    }

    #[test]
    fn reports_exactly_23_operations() {
        let b = BesselKnuScaled::new();
        assert_eq!(b.op_sites().len(), 23);
        let mut rec = TraceRecorder::new();
        b.run(&[1.0, 2.0], &mut rec);
        assert_eq!(rec.ops().count(), 23);
        // Site ids are 0..=22, each seen exactly once.
        let mut ids: Vec<u32> = rec.ops().map(|o| o.id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..23).collect::<Vec<_>>());
    }

    #[test]
    fn paper_inputs_trigger_overflows() {
        // Table 4: nu = 1.79e308 overflows the first multiplication,
        // nu = 3.9e157 overflows the second.
        let b = BesselKnuScaled::new();
        let mut rec = TraceRecorder::new();
        b.run(&[1.79e308, -1.5e2], &mut rec);
        let first = rec.ops().find(|o| o.id.0 == 0).unwrap();
        assert!(first.overflowed(), "4.0 * nu should overflow");

        let mut rec = TraceRecorder::new();
        b.run(&[3.9e157, 2.5e2], &mut rec);
        let second = rec.ops().find(|o| o.id.0 == 1).unwrap();
        assert!(second.overflowed(), "(4.0*nu) * nu should overflow");
        let first = rec.ops().find(|o| o.id.0 == 0).unwrap();
        assert!(!first.overflowed(), "4.0 * nu should stay finite");
    }

    #[test]
    fn inconsistency_shape_of_table5() {
        // Table 5 row 1: nu = 1.79e308, x = -1.5e2 gives SUCCESS with nan val.
        let (r, status) = bessel_outcome(&[1.79e308, -1.5e2]);
        assert!(status.is_success());
        assert!(r.is_exceptional(), "val = {}, err = {}", r.val, r.err);
        // Table 5 row 3: negative operand of sqrt.
        let (r, status) = bessel_outcome(&[8.4e77, -2.5e2]);
        assert!(status.is_success());
        assert!(r.val.is_nan() || r.err.is_nan());
    }

    #[test]
    fn metadata() {
        let b = BesselKnuScaled::new();
        assert_eq!(b.num_inputs(), 2);
        assert_eq!(b.search_domain().len(), 2);
        assert!(b.branch_sites().is_empty());
        assert_eq!(b.name(), "gsl_sf_bessel_Knu_scaled_asympx_e");
    }
}
