//! Rust ports of the benchmark programs analysed in the paper.
//!
//! The paper's experiments analyse C code from the GNU Scientific Library
//! (GSL) and the GNU C library through LLVM instrumentation. This crate
//! provides behaviour-preserving Rust ports of those benchmarks so that the
//! analyses can run without a C toolchain:
//!
//! * [`result`], [`machine`] — the GSL `gsl_sf_result` / error-status
//!   convention and machine constants;
//! * [`cheb`] — Chebyshev series evaluation (GSL's `cheb_eval_e`);
//! * [`bessel`] — `gsl_sf_bessel_Knu_scaled_asympx_e` (Fig. 5; Table 4);
//! * [`hyperg`] — `gsl_sf_hyperg_2F0_e` (Table 3, Table 5);
//! * [`airy`] — `gsl_sf_airy_Ai_e` with `airy_mod_phase` and
//!   `gsl_sf_cos_err_e` (Table 3, Table 5, the two confirmed bugs);
//! * [`trig`] — the naive-reduction cosine whose inaccuracy underlies Bug 2;
//! * [`glibc_sin`] — the branch structure of Glibc 2.19's `sin`
//!   (Fig. 8; Table 2; Fig. 9);
//! * [`toy`] — the example programs of Figs. 1 and 2.
//!
//! Every benchmark comes in two flavours: a plain function with the GSL
//! calling convention, and a *probed* [`Analyzable`](fp_runtime::Analyzable)
//! wrapper that reports each floating-point operation and branch to the
//! analyses (the hand-instrumented equivalent of the paper's LLVM pass).
//!
//! # Substitutions with respect to the original C code
//!
//! The ports preserve the IEEE-754 binary64 arithmetic, branch structure and
//! error-handling convention of the originals, but replace GSL's large
//! Chebyshev coefficient tables with short asymptotic/Taylor series of
//! equivalent shape, and `gsl_sf_hyperg_U_e` with a truncated asymptotic
//! series. The two confirmed Airy bugs of the paper (a division by a
//! vanishing intermediate and a cosine evaluated after failed argument
//! reduction) are reproduced as behaviourally equivalent seeded defects.
//! See `DESIGN.md` for the full substitution table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The ports keep the upstream C sources' full constant digit strings
// (glibc's sin reduction constants, GSL's machine epsilons, ...) so they
// can be diffed against the originals, even where f64 cannot represent
// every digit.
#![allow(clippy::excessive_precision)]

pub mod airy;
pub mod bessel;
pub mod cheb;
pub mod glibc_sin;
pub mod hyperg;
pub mod machine;
pub mod result;
pub mod toy;
pub mod trig;

pub use result::{SfResult, Status};
