//! Chebyshev series evaluation, GSL's `cheb_eval_e`.
//!
//! GSL evaluates most of its special functions through Chebyshev expansions.
//! The Airy port of this crate replaces GSL's large coefficient tables with
//! short asymptotic series (see `DESIGN.md`), but the evaluation machinery
//! itself is provided and used — it is the "nontrivial computation (with a
//! loop)" that the paper's Bug 1 description refers to.

use crate::machine::GSL_DBL_EPSILON;
use crate::result::SfResult;

/// A Chebyshev series on the interval `[a, b]` (GSL's `cheb_series`).
#[derive(Debug, Clone, PartialEq)]
pub struct ChebSeries {
    /// Chebyshev coefficients `c_0 .. c_n`.
    pub coeffs: Vec<f64>,
    /// Lower end of the expansion interval.
    pub a: f64,
    /// Upper end of the expansion interval.
    pub b: f64,
}

impl ChebSeries {
    /// Creates a series from coefficients on `[a, b]`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is empty or `a >= b`.
    pub fn new(coeffs: Vec<f64>, a: f64, b: f64) -> Self {
        assert!(!coeffs.is_empty(), "a Chebyshev series needs coefficients");
        assert!(a < b, "invalid expansion interval [{a}, {b}]");
        ChebSeries { coeffs, a, b }
    }

    /// Evaluates the series at `x` with Clenshaw recurrence, returning the
    /// value and an error estimate (port of GSL's `cheb_eval_e`).
    pub fn eval(&self, x: f64) -> SfResult {
        let mut d = 0.0;
        let mut dd = 0.0;
        let y = (2.0 * x - self.a - self.b) / (self.b - self.a);
        let y2 = 2.0 * y;
        let mut e = 0.0;
        for j in (1..self.coeffs.len()).rev() {
            let temp = d;
            d = y2 * d - dd + self.coeffs[j];
            e += (y2 * temp).abs() + dd.abs() + self.coeffs[j].abs();
            dd = temp;
        }
        let temp = d;
        let val = y * d - dd + 0.5 * self.coeffs[0];
        e += (y * temp).abs() + dd.abs() + 0.5 * self.coeffs[0].abs();
        SfResult {
            val,
            err: GSL_DBL_EPSILON * e + self.coeffs.last().copied().unwrap_or(0.0).abs(),
        }
    }

    /// Number of coefficients.
    pub fn order(&self) -> usize {
        self.coeffs.len()
    }

    /// Fits a Chebyshev series of the given order to `f` on `[a, b]` by the
    /// standard cosine-sampling formula. Used to build the small correction
    /// tables of the Airy port and in tests.
    pub fn fit<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, order: usize) -> Self {
        assert!(order >= 1, "order must be at least 1");
        let n = order;
        let mut samples = Vec::with_capacity(n);
        for k in 0..n {
            let theta = std::f64::consts::PI * (k as f64 + 0.5) / n as f64;
            let x = 0.5 * (a + b) + 0.5 * (b - a) * theta.cos();
            samples.push(f(x));
        }
        let mut coeffs = vec![0.0; n];
        for (j, c) in coeffs.iter_mut().enumerate() {
            let mut sum = 0.0;
            for (k, s) in samples.iter().enumerate() {
                let theta = std::f64::consts::PI * (k as f64 + 0.5) / n as f64;
                sum += s * (j as f64 * theta).cos();
            }
            *c = 2.0 * sum / n as f64;
        }
        ChebSeries::new(coeffs, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluates_constant_series() {
        // f(x) = 3: c0 = 6 (the evaluation halves c0).
        let s = ChebSeries::new(vec![6.0], -1.0, 1.0);
        assert!((s.eval(0.3).val - 3.0).abs() < 1e-14);
        assert_eq!(s.order(), 1);
    }

    #[test]
    fn evaluates_linear_series() {
        // f(x) = x on [-1, 1] has c1 = 1 and all other coefficients 0.
        let s = ChebSeries::new(vec![0.0, 1.0], -1.0, 1.0);
        for x in [-1.0, -0.25, 0.0, 0.6, 1.0] {
            assert!((s.eval(x).val - x).abs() < 1e-14, "at {x}");
        }
    }

    #[test]
    fn fit_reproduces_smooth_function() {
        let s = ChebSeries::fit(f64::exp, -1.0, 1.0, 16);
        for i in 0..20 {
            let x = -1.0 + 2.0 * i as f64 / 19.0;
            assert!((s.eval(x).val - x.exp()).abs() < 1e-12, "exp({x})");
        }
    }

    #[test]
    fn fit_respects_general_intervals() {
        let s = ChebSeries::fit(|x| x * x - 2.0 * x, 1.0, 5.0, 12);
        for x in [1.0, 2.5, 4.0, 5.0] {
            assert!((s.eval(x).val - (x * x - 2.0 * x)).abs() < 1e-10, "at {x}");
        }
    }

    #[test]
    fn error_estimate_is_positive() {
        let s = ChebSeries::fit(f64::sin, -1.0, 1.0, 10);
        assert!(s.eval(0.5).err > 0.0);
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn rejects_bad_interval() {
        let _ = ChebSeries::new(vec![1.0], 2.0, 1.0);
    }
}
