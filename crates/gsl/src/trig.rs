//! Trigonometric helpers following GSL's `trig.c` structure.
//!
//! [`cos_e`] ports the shape of `gsl_sf_cos_e`: a Cody–Waite style argument
//! reduction by multiples of π/4 using a three-part split of the constant,
//! followed by a polynomial kernel on the reduced angle, always returning
//! `GSL_SUCCESS` for finite inputs.
//!
//! This structure reproduces the *behavioural* defect underlying the
//! paper's Bug 2: once `|x|` is so large that `x/(π/4)` cannot be resolved
//! to an exact integer in binary64, the reduced angle is garbage of
//! potentially enormous magnitude, and the kernel — valid only on
//! `[-π/4, π/4]` — produces values of arbitrary magnitude, including
//! infinities, while the returned status remains `GSL_SUCCESS`.

use crate::machine::{GSL_DBL_EPSILON, M_PI};
use crate::result::{SfOutcome, SfResult, Status};

/// Three-part split of π/4 (the classic Cody–Waite constants).
const P1: f64 = 7.853_981_256_484_985_351_56e-1;
const P2: f64 = 3.774_894_707_930_798_176_68e-8;
const P3: f64 = 2.695_151_429_079_059_526_45e-15;

/// Maclaurin polynomial for cosine, accurate on `[-π/2, π/2]`, wildly invalid
/// outside — exactly the failure mode of evaluating a fixed expansion after
/// a failed argument reduction.
fn cos_poly(z: f64) -> f64 {
    let z2 = z * z;
    1.0 + z2 * (-0.5
        + z2 * (1.0 / 24.0
            + z2 * (-1.0 / 720.0
                + z2 * (1.0 / 40_320.0
                    + z2 * (-1.0 / 3_628_800.0
                        + z2 * (1.0 / 479_001_600.0
                            + z2 * (-1.0 / 87_178_291_200.0
                                + z2 * (1.0 / 20_922_789_888_000.0))))))))
}

/// Maclaurin polynomial for sine, accurate on `[-π/2, π/2]`.
fn sin_poly(z: f64) -> f64 {
    let z2 = z * z;
    z * (1.0
        + z2 * (-1.0 / 6.0
            + z2 * (1.0 / 120.0
                + z2 * (-1.0 / 5_040.0
                    + z2 * (1.0 / 362_880.0
                        + z2 * (-1.0 / 39_916_800.0 + z2 * (1.0 / 6_227_020_800.0)))))))
}

/// Port of `gsl_sf_cos_e(x, result)` with GSL's "always succeed on finite
/// input" behaviour.
///
/// # Example
///
/// ```
/// use mini_gsl::trig::cos_e;
/// let (r, status) = cos_e(1.0);
/// assert!(status.is_success());
/// assert!((r.val - 1.0_f64.cos()).abs() < 1e-12);
/// ```
pub fn cos_e(x: f64) -> SfOutcome {
    if x.is_nan() {
        return (SfResult::new(f64::NAN, f64::NAN), Status::Domain);
    }
    let abs_x = x.abs();
    if abs_x < M_PI / 4.0 {
        let val = cos_poly(abs_x);
        let err = GSL_DBL_EPSILON * val.abs();
        return (SfResult::new(val, err), Status::Success);
    }
    // Reduction by multiples of π/4: y is the (floating-point) multiple and
    // the octant selects the kernel. For |x| beyond 2^53 the octant and the
    // reduced angle are both meaningless, but the code — like GSL's —
    // proceeds regardless.
    let mut y = (abs_x / (M_PI / 4.0)).floor();
    let mut octant = (y - 8.0 * (y / 8.0).floor()) as i64;
    if octant % 2 != 0 {
        octant += 1;
        y += 1.0;
    }
    octant %= 8;
    let z = ((abs_x - y * P1) - y * P2) - y * P3;
    let val = match octant {
        0 => cos_poly(z),
        2 => -sin_poly(z),
        4 => -cos_poly(z),
        6 => sin_poly(z),
        // Unreachable for well-reduced arguments; garbage octants (huge
        // inputs) fall back to the cosine kernel, as the original does.
        _ => cos_poly(z),
    };
    let err = GSL_DBL_EPSILON * (1.0 + abs_x * GSL_DBL_EPSILON) * val.abs().max(1.0);
    (SfResult::new(val, err), Status::Success)
}

/// Port of `gsl_sf_cos_err_e(x, dx, result)`: cosine of an argument known
/// only up to an absolute uncertainty `dx`; the error estimate is inflated
/// by `|sin(x)| * dx`.
pub fn cos_err_e(x: f64, dx: f64) -> SfOutcome {
    let (mut result, status) = cos_e(x);
    result.err += (dx * x.sin()).abs();
    result.err += GSL_DBL_EPSILON * result.val.abs();
    (result, status)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accurate_for_moderate_arguments() {
        for &x in &[0.0, 0.5, -1.2, 3.0, -3.1, 10.0, -40.0, 1.0e3, 12_345.678] {
            let (r, status) = cos_e(x);
            assert!(status.is_success());
            assert!((r.val - x.cos()).abs() < 1e-9, "cos({x}) = {}", r.val);
        }
    }

    #[test]
    fn error_estimate_grows_with_argument_uncertainty() {
        let (small, _) = cos_err_e(1.0, 1e-15);
        let (large, _) = cos_err_e(1.0, 1e-3);
        assert!(large.err > small.err);
    }

    #[test]
    fn huge_arguments_keep_success_but_lose_meaning() {
        // The Bug 2 mechanism: a huge phase with a huge uncertainty (the
        // values the Airy function passes for x ≈ -1.14e34).
        let mut garbage = 0;
        for k in 0..50 {
            let x = -8.11e50 * (1.0 + k as f64 * 1e-3);
            let (r, status) = cos_err_e(x, 7.50e35);
            assert!(status.is_success(), "GSL-style: status stays SUCCESS");
            if !r.val.is_finite() || r.val.abs() > 1.0 || !r.err.is_finite() || r.err > 1.0 {
                garbage += 1;
            }
        }
        assert!(garbage > 40, "only {garbage}/50 huge arguments were garbage");
    }

    #[test]
    fn nan_input_is_a_domain_error() {
        let (_, status) = cos_e(f64::NAN);
        assert_eq!(status, Status::Domain);
    }

    #[test]
    fn kernels_are_consistent_on_reduction_interval() {
        for i in 0..100 {
            let z = -0.78 + 1.56 * i as f64 / 99.0;
            assert!((cos_poly(z) - z.cos()).abs() < 1e-13, "cos_poly({z})");
            assert!((sin_poly(z) - z.sin()).abs() < 1e-13, "sin_poly({z})");
        }
    }
}
