//! Machine constants (GSL's `gsl_machine.h` subset) and common mathematical
//! constants used by the ported functions.

/// `GSL_DBL_EPSILON`: the binary64 machine epsilon.
pub const GSL_DBL_EPSILON: f64 = 2.220_446_049_250_313_1e-16;

/// `GSL_SQRT_DBL_EPSILON`.
pub const GSL_SQRT_DBL_EPSILON: f64 = 1.490_116_119_384_765_6e-8;

/// `GSL_DBL_MIN`: smallest positive normal binary64.
pub const GSL_DBL_MIN: f64 = 2.225_073_858_507_201_4e-308;

/// `GSL_DBL_MAX`: largest finite binary64.
pub const GSL_DBL_MAX: f64 = f64::MAX;

/// `GSL_LOG_DBL_MAX`: natural log of [`GSL_DBL_MAX`].
pub const GSL_LOG_DBL_MAX: f64 = 709.782_712_893_384;

/// `GSL_LOG_DBL_MIN`: natural log of [`GSL_DBL_MIN`].
pub const GSL_LOG_DBL_MIN: f64 = -708.396_418_532_264_1;

/// `GSL_SQRT_DBL_MAX`.
pub const GSL_SQRT_DBL_MAX: f64 = 1.340_780_792_994_259_6e154;

/// π.
pub const M_PI: f64 = std::f64::consts::PI;

/// π/4.
pub const M_PI_4: f64 = std::f64::consts::FRAC_PI_4;

/// √π.
pub const M_SQRTPI: f64 = 1.772_453_850_905_516;

/// Euler's number e.
pub const M_E: f64 = std::f64::consts::E;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_matches_f64() {
        assert_eq!(GSL_DBL_EPSILON, f64::EPSILON);
    }

    #[test]
    fn log_max_is_consistent() {
        assert!((GSL_LOG_DBL_MAX.exp() / GSL_DBL_MAX - 1.0).abs() < 1e-10);
        assert_eq!(GSL_DBL_MIN, f64::MIN_POSITIVE);
        assert!((GSL_SQRT_DBL_MAX * GSL_SQRT_DBL_MAX).is_finite());
    }

    #[test]
    fn sqrt_pi_squared_is_pi() {
        assert!((M_SQRTPI * M_SQRTPI - M_PI).abs() < 1e-15);
    }
}
