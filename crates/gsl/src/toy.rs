//! The small example programs of Figs. 1 and 2, hand instrumented.
//!
//! These are the programs used throughout Sections 1–4 of the paper and in
//! the Table 1 backend comparison. Each is exposed both as a plain function
//! and as a probed [`Analyzable`] benchmark.

use fp_runtime::{Analyzable, BranchSite, Cmp, Ctx, FpOp, Interval, NullObserver, OpSite};

/// Fig. 2 of the paper:
///
/// ```c
/// void Prog(double x) {
///     if (x <= 1.0) x++;
///     double y = x * x;
///     if (y <= 4.0) x--;
/// }
/// ```
///
/// Branch site 0 is `x <= 1.0` and branch site 1 is `y <= 4.0`. The known
/// boundary values are `-3.0`, `1.0` and `2.0` (plus `0.999…9` found by the
/// paper's own experiment); the path through both branches is triggered by
/// any `x ∈ [-3, 1]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig2Program;

impl Fig2Program {
    /// Creates the benchmark.
    pub fn new() -> Self {
        Fig2Program
    }

    /// Plain execution returning the final value of `x`.
    pub fn eval(x: f64) -> f64 {
        let mut obs = NullObserver;
        let mut ctx = Ctx::new(&mut obs);
        Fig2Program.execute(&[x], &mut ctx).expect("total function")
    }
}

impl Analyzable for Fig2Program {
    fn name(&self) -> &str {
        "fig2"
    }

    fn num_inputs(&self) -> usize {
        1
    }

    fn search_domain(&self) -> Vec<Interval> {
        // The paper samples this example over a modest range (Fig. 3(c) shows
        // samples within roughly [-100, 100]).
        vec![Interval::symmetric(1.0e6)]
    }

    fn op_sites(&self) -> Vec<OpSite> {
        vec![
            OpSite::new(0, FpOp::Add, "x++"),
            OpSite::new(1, FpOp::Mul, "double y = x * x"),
            OpSite::new(2, FpOp::Sub, "x--"),
        ]
    }

    fn branch_sites(&self) -> Vec<BranchSite> {
        vec![
            BranchSite::new(0, Cmp::Le, "x <= 1.0"),
            BranchSite::new(1, Cmp::Le, "y <= 4.0"),
        ]
    }

    fn execute(&self, input: &[f64], ctx: &mut Ctx<'_>) -> Option<f64> {
        let mut x = input[0];
        if ctx.branch(0, x, Cmp::Le, 1.0) {
            x = ctx.op(0, FpOp::Add, x + 1.0);
        }
        let y = ctx.op(1, FpOp::Mul, x * x);
        if ctx.branch(1, y, Cmp::Le, 4.0) {
            x = ctx.op(2, FpOp::Sub, x - 1.0);
        }
        Some(x)
    }
}

/// Fig. 1(a): `if (x < 1) { x = x + 1; assert(x < 2); }`.
///
/// The assertion is modelled as branch site 1; `execute` returns 0.0 when
/// the assertion is violated and 1.0 otherwise.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig1aProgram;

impl Fig1aProgram {
    /// Creates the benchmark.
    pub fn new() -> Self {
        Fig1aProgram
    }
}

impl Analyzable for Fig1aProgram {
    fn name(&self) -> &str {
        "fig1a"
    }

    fn num_inputs(&self) -> usize {
        1
    }

    fn search_domain(&self) -> Vec<Interval> {
        vec![Interval::symmetric(1.0e3)]
    }

    fn op_sites(&self) -> Vec<OpSite> {
        vec![OpSite::new(0, FpOp::Add, "x = x + 1")]
    }

    fn branch_sites(&self) -> Vec<BranchSite> {
        vec![
            BranchSite::new(0, Cmp::Lt, "x < 1"),
            BranchSite::new(1, Cmp::Lt, "assert(x < 2)"),
        ]
    }

    fn execute(&self, input: &[f64], ctx: &mut Ctx<'_>) -> Option<f64> {
        let mut x = input[0];
        if ctx.branch(0, x, Cmp::Lt, 1.0) {
            x = ctx.op(0, FpOp::Add, x + 1.0);
            if !ctx.branch(1, x, Cmp::Lt, 2.0) {
                return Some(0.0); // assertion failure
            }
        }
        Some(1.0)
    }
}

/// Fig. 1(b): as [`Fig1aProgram`] but with `x = x + tan(x)` — the variant
/// that SMT-based approaches cannot model because `tan` is implementation
/// defined.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig1bProgram;

impl Fig1bProgram {
    /// Creates the benchmark.
    pub fn new() -> Self {
        Fig1bProgram
    }
}

impl Analyzable for Fig1bProgram {
    fn name(&self) -> &str {
        "fig1b"
    }

    fn num_inputs(&self) -> usize {
        1
    }

    fn search_domain(&self) -> Vec<Interval> {
        vec![Interval::symmetric(1.0e3)]
    }

    fn op_sites(&self) -> Vec<OpSite> {
        vec![
            OpSite::new(0, FpOp::Tan, "tan(x)"),
            OpSite::new(1, FpOp::Add, "x = x + tan(x)"),
        ]
    }

    fn branch_sites(&self) -> Vec<BranchSite> {
        vec![
            BranchSite::new(0, Cmp::Lt, "x < 1"),
            BranchSite::new(1, Cmp::Lt, "assert(x < 2)"),
        ]
    }

    fn execute(&self, input: &[f64], ctx: &mut Ctx<'_>) -> Option<f64> {
        let mut x = input[0];
        if ctx.branch(0, x, Cmp::Lt, 1.0) {
            let t = ctx.op(0, FpOp::Tan, x.tan());
            x = ctx.op(1, FpOp::Add, x + t);
            if !ctx.branch(1, x, Cmp::Lt, 2.0) {
                return Some(0.0);
            }
        }
        Some(1.0)
    }
}

/// The Section 5.2 program `if (x == 0) ...`, used to illustrate
/// Limitation 2 (weak distances built with `x*x` underflow).
#[derive(Debug, Clone, Copy, Default)]
pub struct EqZeroProgram;

impl EqZeroProgram {
    /// Creates the benchmark.
    pub fn new() -> Self {
        EqZeroProgram
    }
}

impl Analyzable for EqZeroProgram {
    fn name(&self) -> &str {
        "eq-zero"
    }

    fn num_inputs(&self) -> usize {
        1
    }

    fn search_domain(&self) -> Vec<Interval> {
        vec![Interval::symmetric(1.0e3)]
    }

    fn op_sites(&self) -> Vec<OpSite> {
        Vec::new()
    }

    fn branch_sites(&self) -> Vec<BranchSite> {
        vec![BranchSite::new(0, Cmp::Eq, "x == 0")]
    }

    fn execute(&self, input: &[f64], ctx: &mut Ctx<'_>) -> Option<f64> {
        if ctx.branch(0, input[0], Cmp::Eq, 0.0) {
            Some(1.0)
        } else {
            Some(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_runtime::TraceRecorder;

    #[test]
    fn fig2_matches_source_semantics() {
        assert_eq!(Fig2Program::eval(0.5), 0.5); // both branches
        assert_eq!(Fig2Program::eval(3.0), 3.0); // neither branch
        assert_eq!(Fig2Program::eval(1.5), 0.5); // second branch only
        assert_eq!(Fig2Program::eval(-3.0), -3.0); // both branches (y = 4)
    }

    #[test]
    fn fig2_known_boundary_values() {
        // x = 1: first comparison is an equality; x = 2 and x = -3 make y = 4.
        for (x, site) in [(1.0, 0u32), (2.0, 1), (-3.0, 1)] {
            let mut rec = TraceRecorder::new();
            Fig2Program::new().run(&[x], &mut rec);
            assert!(
                rec.branches().any(|b| b.id.0 == site && b.lhs == b.rhs),
                "x = {x} should hit the boundary of branch {site}"
            );
        }
    }

    #[test]
    fn fig1a_rounding_counterexample() {
        let p = Fig1aProgram::new();
        let mut obs = NullObserver;
        let mut ctx = Ctx::new(&mut obs);
        // Section 1: this input takes the branch yet violates the assertion.
        assert_eq!(p.execute(&[0.999_999_999_999_999_9], &mut ctx), Some(0.0));
        let mut ctx = Ctx::new(&mut obs);
        assert_eq!(p.execute(&[0.5], &mut ctx), Some(1.0));
        let mut ctx = Ctx::new(&mut obs);
        assert_eq!(p.execute(&[2.0], &mut ctx), Some(1.0));
    }

    #[test]
    fn fig1b_reports_tan_events() {
        let p = Fig1bProgram::new();
        let mut rec = TraceRecorder::new();
        p.run(&[0.3], &mut rec);
        assert!(rec.ops().any(|o| o.op == FpOp::Tan));
    }

    #[test]
    fn eq_zero_only_zero_satisfies() {
        let p = EqZeroProgram::new();
        let mut obs = NullObserver;
        let mut ctx = Ctx::new(&mut obs);
        assert_eq!(p.execute(&[0.0], &mut ctx), Some(1.0));
        let mut ctx = Ctx::new(&mut obs);
        assert_eq!(p.execute(&[1.0e-200], &mut ctx), Some(0.0));
    }

    #[test]
    fn metadata_of_all_toys() {
        assert_eq!(Fig2Program::new().branch_sites().len(), 2);
        assert_eq!(Fig2Program::new().op_sites().len(), 3);
        assert_eq!(Fig1aProgram::new().branch_sites().len(), 2);
        assert_eq!(Fig1bProgram::new().op_sites().len(), 2);
        assert_eq!(EqZeroProgram::new().branch_sites().len(), 1);
        assert_eq!(Fig2Program::new().num_inputs(), 1);
    }
}
