//! A branch-faithful port of the Glibc 2.19 `sin` routine
//! (`sysdeps/ieee754/dbl-64/s_sin.c`), the Section 6.2 case study.
//!
//! The paper's boundary value analysis does not care about the polynomial
//! kernels inside each range — it targets the *range-selection branches*,
//! which compare the high word `k = 0x7fffffff & hi(x)` of the input against
//! five hexadecimal constants (Fig. 8). This port keeps exactly that
//! structure: `k` is extracted from the binary64 representation and compared
//! against the same constants; the per-range computations use simple
//! approximations of the original kernels.

use fp_runtime::{Analyzable, BranchSite, Cmp, Ctx, FpOp, Interval, NullObserver, OpSite};

/// The five high-word thresholds of Fig. 8, in source order.
pub const K_THRESHOLDS: [u32; 5] = [
    0x3e50_0000, // |x| < 1.490120e-08
    0x3feb_6000, // |x| < 8.554690e-01
    0x4003_68fd, // |x| < 2.426260e+00
    0x4199_21fb, // |x| < 1.054140e+08
    0x7ff0_0000, // |x| < 2^1024
];

/// The `|x|` values the developers quote for each threshold (Table 2's
/// `ref` row).
pub const REFERENCE_BOUNDS: [f64; 5] = [1.490_120e-8, 8.554_690e-1, 2.426_260, 1.054_140e8, f64::MAX];

/// Extracts `k = 0x7fffffff & (high word of x)`, the quantity every branch
/// of the Glibc implementation compares.
pub fn high_word(x: f64) -> u32 {
    ((x.to_bits() >> 32) as u32) & 0x7fff_ffff
}

/// The smallest nonnegative double whose high word equals `k` (with low word
/// zero); useful for turning a boundary condition on `k` back into an input.
pub fn double_from_high_word(k: u32) -> f64 {
    f64::from_bits((k as u64) << 32)
}

fn poly_sin(x: f64) -> f64 {
    // Degree-13 Maclaurin polynomial, plenty for |x| < 0.855.
    let x2 = x * x;
    x * (1.0
        + x2 * (-1.0 / 6.0
            + x2 * (1.0 / 120.0
                + x2 * (-1.0 / 5_040.0 + x2 * (1.0 / 362_880.0 + x2 * (-1.0 / 39_916_800.0))))))
}

fn reduce_and_sin(x: f64) -> f64 {
    // Cody-Waite style reduction good enough for the mid ranges.
    let two_pi = 2.0 * std::f64::consts::PI;
    let n = (x / two_pi).round();
    let r = x - n * two_pi;
    r.sin()
}

/// Probed body of the Glibc-structured `sin`.
///
/// Branch site `i` compares `k` against `K_THRESHOLDS[i]` with `<`; every
/// comparison is reported so that boundary value analysis can target
/// `k == c` for each threshold.
pub fn glibc_sin_probed(x: f64, ctx: &mut Ctx<'_>) -> f64 {
    let k = high_word(x) as f64;
    if ctx.branch(0, k, Cmp::Lt, K_THRESHOLDS[0] as f64) {
        // |x| < 1.49e-8: sin(x) = x to double precision.
        x
    } else if ctx.branch(1, k, Cmp::Lt, K_THRESHOLDS[1] as f64) {
        // |x| < 0.855: polynomial kernel.
        ctx.op(0, FpOp::Sin, poly_sin(x))
    } else if ctx.branch(2, k, Cmp::Lt, K_THRESHOLDS[2] as f64) {
        // |x| < 2.426: sin(x) = sign(x) * cos(|x| - pi/2) via the kernel.
        let shifted = x.abs() - std::f64::consts::FRAC_PI_2;
        let c = ctx.op(1, FpOp::Cos, shifted.cos());
        if x >= 0.0 {
            c
        } else {
            -c
        }
    } else if ctx.branch(3, k, Cmp::Lt, K_THRESHOLDS[3] as f64) {
        // |x| < 1.05e8: reduction by a few multiples of 2*pi.
        ctx.op(2, FpOp::Sin, reduce_and_sin(x))
    } else if ctx.branch(4, k, Cmp::Lt, K_THRESHOLDS[4] as f64) {
        // |x| < 2^1024: full payne-hanek style reduction in Glibc; here the
        // same naive reduction (accuracy is irrelevant to the analysis).
        ctx.op(3, FpOp::Sin, reduce_and_sin(x))
    } else {
        // x is inf or NaN.
        f64::NAN
    }
}

/// Plain (unobserved) version.
///
/// # Example
///
/// ```
/// use mini_gsl::glibc_sin::glibc_sin;
/// assert!((glibc_sin(0.5) - 0.5_f64.sin()).abs() < 1e-12);
/// ```
pub fn glibc_sin(x: f64) -> f64 {
    let mut obs = NullObserver;
    let mut ctx = Ctx::new(&mut obs);
    glibc_sin_probed(x, &mut ctx)
}

/// The probed GNU `sin` benchmark of Section 6.2.
#[derive(Debug, Clone, Copy, Default)]
pub struct GlibcSin;

impl GlibcSin {
    /// Creates the benchmark.
    pub fn new() -> Self {
        GlibcSin
    }

    /// Number of range-selection branches (each contributes two boundary
    /// conditions ±|x|, giving the paper's count of 10).
    pub const NUM_BRANCHES: u32 = 5;
}

impl Analyzable for GlibcSin {
    fn name(&self) -> &str {
        "glibc sin (2.19, x86-64 structure)"
    }

    fn num_inputs(&self) -> usize {
        1
    }

    fn search_domain(&self) -> Vec<Interval> {
        vec![Interval::whole()]
    }

    fn op_sites(&self) -> Vec<OpSite> {
        vec![
            OpSite::new(0, FpOp::Sin, "polynomial kernel, |x| < 0.855"),
            OpSite::new(1, FpOp::Cos, "cos kernel, |x| < 2.426"),
            OpSite::new(2, FpOp::Sin, "reduced kernel, |x| < 1.054e8"),
            OpSite::new(3, FpOp::Sin, "payne-hanek kernel, |x| < 2^1024"),
        ]
    }

    fn branch_sites(&self) -> Vec<BranchSite> {
        vec![
            BranchSite::new(0, Cmp::Lt, "k < 0x3e500000"),
            BranchSite::new(1, Cmp::Lt, "k < 0x3feb6000"),
            BranchSite::new(2, Cmp::Lt, "k < 0x400368fd"),
            BranchSite::new(3, Cmp::Lt, "k < 0x419921fb"),
            BranchSite::new(4, Cmp::Lt, "k < 0x7ff00000"),
        ]
    }

    fn execute(&self, input: &[f64], ctx: &mut Ctx<'_>) -> Option<f64> {
        Some(glibc_sin_probed(input[0], ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_runtime::TraceRecorder;

    #[test]
    fn agrees_with_std_sin_on_every_range() {
        for &x in &[
            1.0e-9, -3.0e-9, 0.1, -0.5, 0.854, 1.0, -2.0, 2.4, 10.0, -1.0e4, 5.0e7, 1.0e9, -3.0e10,
        ] {
            let got = glibc_sin(x);
            let want = x.sin();
            assert!(
                (got - want).abs() < 1e-6,
                "sin({x}) = {got}, expected {want}"
            );
        }
    }

    #[test]
    fn non_finite_inputs_return_nan() {
        assert!(glibc_sin(f64::INFINITY).is_nan());
        assert!(glibc_sin(f64::NAN).is_nan());
    }

    #[test]
    fn high_word_extraction_matches_thresholds() {
        // 1.4901161193847656e-8 = 2^-26 has high word exactly 0x3e500000.
        assert_eq!(high_word(2.0_f64.powi(-26)), 0x3e50_0000);
        assert_eq!(high_word(-(2.0_f64.powi(-26))), 0x3e50_0000);
        // The reference |x| bounds sit at (or just above) their thresholds.
        for (i, &k) in K_THRESHOLDS.iter().enumerate().take(4) {
            let x = double_from_high_word(k);
            assert_eq!(high_word(x), k);
            let rel = (x - REFERENCE_BOUNDS[i]).abs() / REFERENCE_BOUNDS[i];
            assert!(rel < 1e-4, "threshold {i}: {x} vs {}", REFERENCE_BOUNDS[i]);
        }
    }

    #[test]
    fn branch_events_expose_k_comparisons() {
        let s = GlibcSin::new();
        let mut rec = TraceRecorder::new();
        s.run(&[1.0], &mut rec);
        let branches: Vec<_> = rec.branches().collect();
        // x = 1.0 falls in the third range: branches 0, 1 and 2 execute.
        assert_eq!(branches.len(), 3);
        assert_eq!(branches[0].lhs, high_word(1.0) as f64);
        assert!(!branches[0].taken);
        assert!(!branches[1].taken);
        assert!(branches[2].taken);
    }

    #[test]
    fn boundary_condition_is_reachable_for_first_threshold() {
        // Executing on the smallest |x| of the second range hits k == c.
        let x = double_from_high_word(K_THRESHOLDS[0]);
        let s = GlibcSin::new();
        let mut rec = TraceRecorder::new();
        s.run(&[x], &mut rec);
        let b0 = rec.branches().next().unwrap();
        assert_eq!(b0.lhs, b0.rhs, "k == threshold 0 boundary condition");
    }

    #[test]
    fn last_two_boundary_conditions_are_unreachable() {
        // k == 0x7ff00000 requires |x| = 2^1024 which is not a finite double;
        // the largest finite double has high word 0x7fefffff.
        assert_eq!(high_word(f64::MAX), 0x7fef_ffff);
        assert!(high_word(f64::MAX) < K_THRESHOLDS[4]);
    }

    #[test]
    fn metadata() {
        let s = GlibcSin::new();
        assert_eq!(s.num_inputs(), 1);
        assert_eq!(s.branch_sites().len(), 5);
        assert_eq!(s.op_sites().len(), 4);
    }
}
