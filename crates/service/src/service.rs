//! The analysis service proper: job admission, the fair-share
//! scheduler, progress streaming, the result store, and durable
//! checkpointing.
//!
//! # Scheduling model
//!
//! The service owns one [`WorkerPool`] and a scheduler thread. Time is
//! divided into *cycles*; each cycle, every admitted unfinished job
//! receives one *turn* of `weight × rounds_per_turn` adaptive scheduler
//! rounds (see [`AdaptivePortfolio::round`]). Turns of different jobs
//! run concurrently on the pool — they are independent state machines —
//! and the dispatch order within a cycle is a seeded hash of
//! `(cycle, job)`, so no tenant systematically goes first. Because a
//! job's outcome depends only on its own round sequence, never on when
//! its slices run, each job's terminal outcome is **bit-identical to a
//! solo run** of the same configuration at any tenant mix and any
//! thread count.
//!
//! # Durability
//!
//! Between turns a job's entire state is a serializable value
//! ([`AdaptiveCheckpoint`]): backend state machines, bandit statistics,
//! merged incumbents. The scheduler re-materializes the portfolio from
//! that value at the start of every turn and checkpoints it back at the
//! end — the serialization seam is exercised continuously, not only on
//! kill. With a [`checkpoint_dir`](ServiceConfig::with_checkpoint_dir)
//! configured, the snapshot is also written to disk every
//! `checkpoint_every` turns (atomically: temp file + rename) and on
//! completion; re-submitting the same job after a restart resumes from
//! the file and replays to the identical final outcome.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::mpsc::{channel, sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use serde::Value;
use wdm_core::adaptive::AdaptivePortfolio;
use wdm_core::checkpoint::AdaptiveCheckpoint;
use wdm_core::driver::derive_round_seed;
use wdm_core::{AnalysisConfig, BackendKind, PortfolioRun, WeakDistance};
use wdm_mo::{CancelToken, WorkerPool};

/// Salt decorrelating the cycle permutation stream from every other
/// consumer of [`derive_round_seed`].
const WRR_SALT: u64 = 0x5E21_11CE_FA12_5A1E;

const LOCK: &str = "service state lock";

/// Identifies a job within one service instance: the zero-based
/// admission index. Ids are assigned in submission order, which is what
/// lets a restarted service match re-submitted jobs to their
/// checkpoint files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub usize);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An analysis job: a weak distance to minimize under a config with an
/// adaptive backend portfolio, plus fair-share weight.
pub struct JobSpec {
    /// Human-readable job name; also validates checkpoint files on
    /// resume.
    pub name: String,
    /// The weak distance to minimize.
    pub wd: Arc<dyn WeakDistance>,
    /// The analysis configuration (seed, rounds, budget, ...).
    pub config: AnalysisConfig,
    /// The backend portfolio, in arm order.
    pub backends: Vec<BackendKind>,
    /// Fair-share weight: rounds granted per cycle relative to a
    /// weight-1 job. Clamped to at least 1.
    pub weight: usize,
}

impl JobSpec {
    /// A job over the full backend portfolio at weight 1.
    pub fn new(
        name: impl Into<String>,
        wd: Arc<dyn WeakDistance>,
        config: AnalysisConfig,
    ) -> Self {
        JobSpec {
            name: name.into(),
            wd,
            config,
            backends: BackendKind::all().to_vec(),
            weight: 1,
        }
    }

    /// Restricts the backend portfolio.
    pub fn with_backends(mut self, backends: &[BackendKind]) -> Self {
        self.backends = backends.to_vec();
        self
    }

    /// Sets the fair-share weight.
    pub fn with_weight(mut self, weight: usize) -> Self {
        self.weight = weight;
        self
    }
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads in the shared pool.
    pub threads: usize,
    /// Adaptive scheduler rounds per weight-1 turn: the slicing
    /// granularity. Smaller values interleave tenants more finely at
    /// the cost of more checkpoint/restore cycles.
    pub rounds_per_turn: usize,
    /// Seed of the per-cycle dispatch permutation.
    pub seed: u64,
    /// Directory for durable checkpoints; `None` disables persistence.
    pub checkpoint_dir: Option<PathBuf>,
    /// Turns between durable checkpoint writes (terminal states are
    /// always written). Clamped to at least 1.
    pub checkpoint_every: u64,
    /// Progress-stream buffer per subscriber, in events. A subscriber
    /// that falls this far behind is disconnected (its receiver sees
    /// the stream end) rather than growing an unbounded queue inside
    /// the service. Clamped to at least 1.
    pub subscriber_capacity: usize,
}

impl ServiceConfig {
    /// A config with `threads` workers, 4 rounds per turn, no
    /// persistence, and room for 1024 buffered events per subscriber.
    pub fn new(threads: usize) -> Self {
        ServiceConfig {
            threads: threads.max(1),
            rounds_per_turn: 4,
            seed: 0,
            checkpoint_dir: None,
            checkpoint_every: 1,
            subscriber_capacity: 1024,
        }
    }

    /// Sets the slicing granularity.
    pub fn with_rounds_per_turn(mut self, rounds: usize) -> Self {
        self.rounds_per_turn = rounds.max(1);
        self
    }

    /// Sets the dispatch-permutation seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables durable checkpoints under `dir`.
    pub fn with_checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Sets the durable checkpoint cadence, in turns.
    pub fn with_checkpoint_every(mut self, every: u64) -> Self {
        self.checkpoint_every = every.max(1);
        self
    }

    /// Sets the per-subscriber progress buffer, in events.
    pub fn with_subscriber_capacity(mut self, capacity: usize) -> Self {
        self.subscriber_capacity = capacity.max(1);
        self
    }
}

/// What happened to a job, streamed to subscribers.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// The job was admitted (possibly resuming from a durable
    /// checkpoint at the given turn count).
    Admitted {
        /// Turns already executed by a previous incarnation.
        resumed_at_turn: u64,
    },
    /// A turn completed without finishing the job.
    Progress {
        /// Best weak-distance value across all arms so far.
        residual: f64,
        /// Evaluations drawn from the job's shared pool so far.
        evals: usize,
        /// The bandit's current leader arm, if any round has run.
        leader: Option<BackendKind>,
        /// Turns executed so far.
        turn: u64,
    },
    /// A durable checkpoint was written.
    Checkpointed {
        /// Turns executed when the snapshot was taken.
        turn: u64,
    },
    /// The job's adaptive portfolio fired one or more plateau
    /// escalations during a turn (see
    /// [`EscalationConfig`](wdm_core::EscalationConfig)).
    Escalated {
        /// The turn in which the events fired.
        turn: u64,
        /// Total escalation events over the job's lifetime, including
        /// any from before a checkpoint resume.
        total: usize,
    },
    /// The job reached a terminal outcome.
    Finished {
        /// Whether a zero of the weak distance was found.
        found: bool,
        /// Total evaluations reported by the winning outcome.
        evals: usize,
        /// The winning backend.
        winner: BackendKind,
    },
    /// The job was cancelled before finding a zero.
    Cancelled,
}

/// One progress event: which job, what happened.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressEvent {
    /// The job the event concerns.
    pub job: JobId,
    /// The job's name.
    pub name: String,
    /// What happened.
    pub kind: EventKind,
}

/// A terminal job result retained by the result store.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job's name.
    pub name: String,
    /// The full portfolio run: winner index plus every arm's outcome.
    pub run: PortfolioRun,
}

/// The error returned for operations on a service that is shutting
/// down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceClosed;

impl std::fmt::Display for ServiceClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("analysis service is shut down")
    }
}

impl std::error::Error for ServiceClosed {}

struct JobEntry {
    name: String,
    wd: Arc<dyn WeakDistance>,
    config: AnalysisConfig,
    backends: Vec<BackendKind>,
    weight: usize,
    cancel: CancelToken,
    checkpoint: Option<AdaptiveCheckpoint>,
    turns: u64,
    outcome: Option<JobOutcome>,
}

type Task = Box<dyn FnOnce() + Send>;

struct ServiceState {
    jobs: Vec<JobEntry>,
    tasks: VecDeque<Task>,
    subscribers: Vec<SyncSender<ProgressEvent>>,
    shutdown: bool,
}

struct ServiceInner {
    state: Mutex<ServiceState>,
    /// Wakes the scheduler on submission, cancellation, shutdown.
    wake: Condvar,
    /// Wakes `wait` callers on job completion.
    done: Condvar,
    config: ServiceConfig,
}

impl ServiceInner {
    fn lock(&self) -> MutexGuard<'_, ServiceState> {
        self.state.lock().expect(LOCK)
    }

    /// Delivers an event to every live subscriber. Subscriber buffers
    /// are bounded ([`ServiceConfig::subscriber_capacity`]): emission
    /// never blocks the scheduler, and a subscriber whose buffer is
    /// full — it stopped draining, or drains slower than events arrive
    /// — is disconnected along with closed ones. Its receiver observes
    /// the stream ending, the same signal a shutdown sends, instead of
    /// silently losing interior events.
    fn emit(&self, state: &mut ServiceState, event: ProgressEvent) {
        state.subscribers.retain(|tx| match tx.try_send(event.clone()) {
            Ok(()) => true,
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => false,
        });
    }
}

/// A cloneable handle to a running [`AnalysisService`]: the in-process
/// API (`wdm_engine::campaign` runs on it, and the TCP front-end in
/// `wdm_bench` wraps it).
#[derive(Clone)]
pub struct ServiceHandle {
    inner: Arc<ServiceInner>,
}

impl ServiceHandle {
    /// Admits an analysis job and returns its id. If a checkpoint
    /// directory is configured and holds a snapshot for this id with a
    /// matching name, the job resumes from it.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, ServiceClosed> {
        let mut state = self.inner.lock();
        if state.shutdown {
            return Err(ServiceClosed);
        }
        let id = JobId(state.jobs.len());
        let (turns, checkpoint) = self
            .inner
            .config
            .checkpoint_dir
            .as_deref()
            .and_then(|dir| load_checkpoint(dir, id, &spec.name))
            .map_or((0, None), |(turns, ckpt)| (turns, Some(ckpt)));
        state.jobs.push(JobEntry {
            name: spec.name.clone(),
            wd: spec.wd,
            config: spec.config,
            backends: spec.backends,
            weight: spec.weight.max(1),
            cancel: CancelToken::new(),
            checkpoint,
            turns,
            outcome: None,
        });
        self.inner.emit(
            &mut state,
            ProgressEvent {
                job: id,
                name: spec.name,
                kind: EventKind::Admitted {
                    resumed_at_turn: turns,
                },
            },
        );
        self.inner.wake.notify_all();
        Ok(id)
    }

    /// Enqueues an opaque task on the shared pool. Tasks are atomic
    /// units: they bypass fair-share slicing and run FIFO as pool
    /// workers free up (campaign mode submits its closure jobs here).
    pub fn submit_task(&self, task: impl FnOnce() + Send + 'static) -> Result<(), ServiceClosed> {
        let mut state = self.inner.lock();
        if state.shutdown {
            return Err(ServiceClosed);
        }
        state.tasks.push_back(Box::new(task));
        self.inner.wake.notify_all();
        Ok(())
    }

    /// Subscribes to the progress stream. Events from before the
    /// subscription are not replayed. The stream buffers at most
    /// [`ServiceConfig::subscriber_capacity`] undrained events; a
    /// subscriber that falls further behind is disconnected (the
    /// receiver sees the stream end) so slow consumers bound the
    /// service's memory instead of growing it.
    pub fn subscribe(&self) -> Receiver<ProgressEvent> {
        let (tx, rx) = sync_channel(self.inner.config.subscriber_capacity.max(1));
        self.inner.lock().subscribers.push(tx);
        rx
    }

    /// Cancels a job: its arms observe the token at their next
    /// cancellation check and the job reaches a terminal (cancelled)
    /// outcome, which `wait` returns.
    pub fn cancel(&self, id: JobId) {
        let state = self.inner.lock();
        if let Some(job) = state.jobs.get(id.0) {
            job.cancel.cancel();
        }
        drop(state);
        self.inner.wake.notify_all();
    }

    /// Blocks until `id` reaches a terminal outcome and returns it.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never admitted by this service.
    pub fn wait(&self, id: JobId) -> JobOutcome {
        let mut state = self.inner.lock();
        assert!(id.0 < state.jobs.len(), "unknown job {id}");
        loop {
            if let Some(outcome) = &state.jobs[id.0].outcome {
                return outcome.clone();
            }
            state = self.inner.done.wait(state).expect(LOCK);
        }
    }

    /// The terminal outcome of `id`, if it has one yet.
    pub fn outcome(&self, id: JobId) -> Option<JobOutcome> {
        self.inner.lock().jobs.get(id.0)?.outcome.clone()
    }

    /// Number of admitted jobs.
    pub fn jobs(&self) -> usize {
        self.inner.lock().jobs.len()
    }

    /// Worker threads in the shared pool.
    pub fn threads(&self) -> usize {
        self.inner.config.threads.max(1)
    }

    /// Snapshot of the result store: every admitted job's name and
    /// terminal outcome (if reached), in admission order.
    pub fn report(&self) -> Vec<(JobId, String, Option<JobOutcome>)> {
        self.inner
            .lock()
            .jobs
            .iter()
            .enumerate()
            .map(|(i, j)| (JobId(i), j.name.clone(), j.outcome.clone()))
            .collect()
    }
}

/// The multi-tenant analysis service. Dropping it (or calling
/// [`shutdown`](Self::shutdown)) cancels unfinished jobs, drives them
/// to their terminal (cancelled) outcomes, and joins the scheduler.
pub struct AnalysisService {
    inner: Arc<ServiceInner>,
    scheduler: Option<JoinHandle<()>>,
}

impl AnalysisService {
    /// Starts a service: spawns the scheduler thread, which owns the
    /// shared worker pool.
    pub fn start(config: ServiceConfig) -> Self {
        let inner = Arc::new(ServiceInner {
            state: Mutex::new(ServiceState {
                jobs: Vec::new(),
                tasks: VecDeque::new(),
                subscribers: Vec::new(),
                shutdown: false,
            }),
            wake: Condvar::new(),
            done: Condvar::new(),
            config,
        });
        let scheduler_inner = Arc::clone(&inner);
        let scheduler = std::thread::spawn(move || scheduler_loop(scheduler_inner));
        AnalysisService {
            inner,
            scheduler: Some(scheduler),
        }
    }

    /// A cloneable handle for submitting and observing jobs.
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Stops the service: rejects further submissions, cancels
    /// unfinished jobs, waits for every job to reach its terminal
    /// outcome, and joins the scheduler thread.
    pub fn shutdown(self) {
        drop(self);
    }
}

impl Drop for AnalysisService {
    fn drop(&mut self) {
        {
            let mut state = self.inner.lock();
            state.shutdown = true;
        }
        self.inner.wake.notify_all();
        if let Some(handle) = self.scheduler.take() {
            // A panicking scheduler already poisoned every waiter;
            // surface it.
            if handle.join().is_err() {
                panic!("analysis service scheduler panicked");
            }
        }
        // Close every progress stream: subscribers iterating the
        // channel see it end instead of blocking forever.
        self.inner.lock().subscribers.clear();
    }
}

/// The scheduler: runs cycles until shut down and drained.
fn scheduler_loop(inner: Arc<ServiceInner>) {
    let pool = WorkerPool::new(inner.config.threads);
    let mut cycle: u64 = 0;
    loop {
        // Admission phase: drain opaque tasks onto the pool, collect
        // the cycle's runnable jobs, park when idle.
        let runnable: Vec<(usize, usize)> = {
            let mut state = inner.lock();
            loop {
                while let Some(task) = state.tasks.pop_front() {
                    pool.submit(task);
                }
                if state.shutdown {
                    // Shutdown cancels stragglers; the cycles below
                    // drive them to terminal (cancelled) outcomes fast.
                    for job in state.jobs.iter_mut().filter(|j| j.outcome.is_none()) {
                        job.cancel.cancel();
                    }
                }
                let pending: Vec<(usize, usize)> = state
                    .jobs
                    .iter()
                    .enumerate()
                    .filter(|(_, j)| j.outcome.is_none())
                    .map(|(i, j)| (i, j.weight))
                    .collect();
                if !pending.is_empty() {
                    break pending;
                }
                if state.shutdown {
                    return;
                }
                state = inner.wake.wait(state).expect(LOCK);
            }
        };

        // Fair-share dispatch: one turn per unfinished job per cycle
        // (weight scales the turn's round count), dispatched in a
        // seeded per-cycle permutation so no tenant systematically
        // goes first. The interleaving affects latency only — job
        // outcomes are a pure function of their own round sequence.
        let mut order = runnable;
        order.sort_by_key(|&(i, _)| {
            derive_round_seed(
                inner.config.seed ^ WRR_SALT,
                cycle.wrapping_mul(0x0010_0001).wrapping_add(i as u64),
            )
        });
        let (tx, rx) = channel::<()>();
        let turns = order.len();
        for (index, weight) in order {
            let inner = Arc::clone(&inner);
            let tx = tx.clone();
            pool.submit(move || {
                run_turn(&inner, index, weight);
                let _ = tx.send(());
            });
        }
        drop(tx);
        // Cycle barrier: wait for every turn, then re-plan. Turns of
        // distinct jobs still overlap freely within the cycle.
        for _ in 0..turns {
            let _ = rx.recv();
        }
        cycle = cycle.wrapping_add(1);
    }
}

/// One turn of one job: re-materialize the portfolio from its
/// checkpoint, run the granted rounds, checkpoint back (and to disk on
/// cadence), or finish the job and store its outcome.
fn run_turn(inner: &ServiceInner, index: usize, weight: usize) {
    // Take the durable state out under the lock; the minimization below
    // runs without holding it.
    let (name, wd, config, backends, cancel, checkpoint, turn) = {
        let mut state = inner.lock();
        let job = &mut state.jobs[index];
        if job.outcome.is_some() {
            return;
        }
        job.turns += 1;
        (
            job.name.clone(),
            Arc::clone(&job.wd),
            job.config.clone(),
            job.backends.clone(),
            job.cancel.clone(),
            job.checkpoint.take(),
            job.turns,
        )
    };
    let mut portfolio = match &checkpoint {
        // A checkpoint that fails validation (foreign or corrupt disk
        // state) falls back to a fresh start rather than wedging the
        // job.
        Some(c) => AdaptivePortfolio::restore(&*wd, &config, &backends, &cancel, c)
            .unwrap_or_else(|| AdaptivePortfolio::new(&*wd, &config, &backends, &cancel)),
        None => AdaptivePortfolio::new(&*wd, &config, &backends, &cancel),
    };

    // Escalations that fired before this turn are recorded in the
    // checkpoint; anything beyond that count fired during this turn.
    let prior_escalations = checkpoint
        .as_ref()
        .and_then(|c| c.escalation.as_ref())
        .map_or(0, |e| e.events);

    let rounds = inner.config.rounds_per_turn.max(1).saturating_mul(weight);
    let mut live = true;
    for _ in 0..rounds {
        if !portfolio.round(1) {
            live = false;
            break;
        }
    }

    let total_escalations = portfolio.escalations();
    if total_escalations > prior_escalations {
        let mut state = inner.lock();
        inner.emit(
            &mut state,
            ProgressEvent {
                job: JobId(index),
                name: name.clone(),
                kind: EventKind::Escalated {
                    turn,
                    total: total_escalations,
                },
            },
        );
    }

    if live {
        let snapshot = portfolio.checkpoint();
        if snapshot.is_none() {
            // A backend without checkpoint support cannot be suspended
            // between turns; degrade to running the job to completion
            // in this turn rather than losing its progress.
            while portfolio.round(1) {}
            finish_job(inner, index, &name, turn, portfolio, &cancel);
            return;
        }
        let residual = portfolio.best_value();
        let evals = portfolio.evals_spent();
        let leader = portfolio.leader();
        drop(portfolio);
        let durable = turn % inner.config.checkpoint_every.max(1) == 0
            && persist_checkpoint(inner, index, &name, turn, false, snapshot.as_ref());
        let mut state = inner.lock();
        state.jobs[index].checkpoint = snapshot;
        inner.emit(
            &mut state,
            ProgressEvent {
                job: JobId(index),
                name: name.clone(),
                kind: EventKind::Progress {
                    residual,
                    evals,
                    leader,
                    turn,
                },
            },
        );
        if durable {
            inner.emit(
                &mut state,
                ProgressEvent {
                    job: JobId(index),
                    name,
                    kind: EventKind::Checkpointed { turn },
                },
            );
        }
    } else {
        finish_job(inner, index, &name, turn, portfolio, &cancel);
    }
}

/// Terminal path: finalize, snapshot the terminal state for durability,
/// store the outcome, notify waiters and subscribers.
fn finish_job(
    inner: &ServiceInner,
    index: usize,
    name: &str,
    turn: u64,
    mut portfolio: AdaptivePortfolio<'_>,
    cancel: &CancelToken,
) {
    portfolio.finalize();
    let snapshot = portfolio.checkpoint();
    let found = portfolio.found();
    let cancelled = !found && cancel.is_cancelled();
    let run = portfolio.into_run();
    // A cancelled terminal state is not persisted: the last progress
    // snapshot stays on disk, so a stopped service resumed with the
    // same submissions continues the job instead of replaying the
    // cancellation.
    if !cancelled {
        persist_checkpoint(inner, index, name, turn, true, snapshot.as_ref());
    }
    let outcome = JobOutcome {
        name: name.to_string(),
        run,
    };
    let winner = outcome.run.winning_backend();
    let evals = outcome.run.outcome().evals();
    let mut state = inner.lock();
    state.jobs[index].checkpoint = snapshot;
    state.jobs[index].outcome = Some(outcome);
    let kind = if cancelled {
        EventKind::Cancelled
    } else {
        EventKind::Finished {
            found,
            evals,
            winner,
        }
    };
    inner.emit(
        &mut state,
        ProgressEvent {
            job: JobId(index),
            name: name.to_string(),
            kind,
        },
    );
    drop(state);
    inner.done.notify_all();
}

/// Writes `job-<id>.json` atomically (temp file + rename). Returns
/// whether a file was written.
fn persist_checkpoint(
    inner: &ServiceInner,
    index: usize,
    name: &str,
    turn: u64,
    finished: bool,
    snapshot: Option<&AdaptiveCheckpoint>,
) -> bool {
    let (Some(dir), Some(ckpt)) = (&inner.config.checkpoint_dir, snapshot) else {
        return false;
    };
    let value = Value::Object(vec![
        ("name".to_string(), Value::Str(name.to_string())),
        ("turns".to_string(), Value::UInt(turn)),
        ("finished".to_string(), Value::Bool(finished)),
        ("ckpt".to_string(), serde::Serialize::to_value(ckpt)),
    ]);
    let Ok(text) = serde_json::to_string(&value) else {
        return false;
    };
    if std::fs::create_dir_all(dir).is_err() {
        return false;
    }
    let tmp = dir.join(format!("job-{index}.json.tmp"));
    let path = dir.join(format!("job-{index}.json"));
    std::fs::write(&tmp, text).is_ok() && std::fs::rename(&tmp, &path).is_ok()
}

/// Loads `job-<id>.json` if it exists and belongs to a job with this
/// name. Returns the turn counter and the checkpoint.
fn load_checkpoint(
    dir: &std::path::Path,
    id: JobId,
    name: &str,
) -> Option<(u64, AdaptiveCheckpoint)> {
    let text = std::fs::read_to_string(dir.join(format!("job-{}.json", id.0))).ok()?;
    let value = serde_json::value_from_str(&text).ok()?;
    match value.field("name") {
        Value::Str(stored) if stored == name => {}
        _ => return None,
    }
    let turns = match value.field("turns") {
        Value::UInt(n) => *n,
        Value::Int(n) if *n >= 0 => *n as u64,
        _ => return None,
    };
    let ckpt: AdaptiveCheckpoint = serde_json::from_value(value.field("ckpt")).ok()?;
    Some((turns, ckpt))
}
