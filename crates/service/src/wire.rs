//! Line-delimited JSON wire protocol over std TCP.
//!
//! The service's second front-end (the first is the in-process
//! [`ServiceHandle`]): a minimal request/response protocol where every
//! message is one JSON object on one line. Analyses cannot travel over
//! the wire — a weak distance is code — so submissions reference a
//! server-side [`Catalog`] of named problems (the `serve` bin in
//! `wdm_bench` registers the GSL suite and synthetic problems).
//!
//! Requests:
//!
//! | `cmd`       | fields                                               | reply |
//! |-------------|------------------------------------------------------|-------|
//! | `ping`      |                                                      | `{"ok":true}` |
//! | `problems`  |                                                      | `{"ok":true,"problems":[...]}` |
//! | `submit`    | `problem`, `seed`, `rounds?`, `max_evals?`, `backends?`, `weight?` | `{"ok":true,"id":N}` |
//! | `status`    | `id`                                                 | `{"ok":true,"done":bool}` |
//! | `wait`      | `id`                                                 | outcome object |
//! | `cancel`    | `id`                                                 | `{"ok":true}` |
//! | `report`    |                                                      | `{"ok":true,"jobs":[...]}` |
//! | `subscribe` |                                                      | event stream until disconnect |
//! | `shutdown`  |                                                      | `{"ok":true}`, then the server stops |
//!
//! Errors reply `{"ok":false,"error":"..."}`. Outcome objects carry
//! solution inputs both as decimal floats (readability) and as IEEE-754
//! bit patterns (exactness), mirroring the checkpoint convention.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use serde::Value;
use wdm_core::{AnalysisConfig, BackendKind, Outcome, WeakDistance};

use crate::service::{
    AnalysisService, EventKind, JobId, JobOutcome, JobSpec, ProgressEvent, ServiceHandle,
};

/// Named problems a wire client can submit against.
#[derive(Clone, Default)]
pub struct Catalog {
    entries: Vec<(String, Arc<dyn WeakDistance>)>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a problem under `name` (later registrations shadow
    /// earlier ones on resolve).
    pub fn register(mut self, name: impl Into<String>, wd: Arc<dyn WeakDistance>) -> Self {
        self.entries.push((name.into(), wd));
        self
    }

    /// Resolves a problem by name.
    pub fn resolve(&self, name: &str) -> Option<Arc<dyn WeakDistance>> {
        self.entries
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, wd)| Arc::clone(wd))
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.entries.iter().map(|(n, _)| n.clone()).collect()
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn ok(mut fields: Vec<(&str, Value)>) -> Value {
    fields.insert(0, ("ok", Value::Bool(true)));
    obj(fields)
}

fn err(message: impl Into<String>) -> Value {
    obj(vec![
        ("ok", Value::Bool(false)),
        ("error", Value::Str(message.into())),
    ])
}

fn as_u64(value: &Value) -> Option<u64> {
    match value {
        Value::UInt(n) => Some(*n),
        Value::Int(n) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

/// Parses a backend name: the report name ([`BackendKind::name`]) or a
/// short code (`bh`, `de`, `powell`, `ms`, `rs`).
pub fn parse_backend(name: &str) -> Option<BackendKind> {
    let lower = name.to_ascii_lowercase();
    BackendKind::all()
        .into_iter()
        .find(|b| b.name().to_ascii_lowercase() == lower)
        .or(match lower.as_str() {
            "bh" => Some(BackendKind::BasinHopping),
            "de" => Some(BackendKind::DifferentialEvolution),
            "powell" => Some(BackendKind::Powell),
            "ms" => Some(BackendKind::MultiStart),
            "rs" => Some(BackendKind::RandomSearch),
            _ => None,
        })
}

fn floats_json(xs: &[f64]) -> (Value, Value) {
    (
        Value::Array(xs.iter().map(|&x| Value::Float(x)).collect()),
        Value::Array(xs.iter().map(|&x| Value::UInt(x.to_bits())).collect()),
    )
}

/// Renders a terminal outcome as a wire object.
pub fn outcome_json(id: JobId, outcome: &JobOutcome) -> Value {
    let winner = outcome.run.winning_backend().name();
    let mut fields = vec![
        ("ok", Value::Bool(true)),
        ("id", Value::UInt(id.0 as u64)),
        ("name", Value::Str(outcome.name.clone())),
        ("winner", Value::Str(winner.to_string())),
    ];
    match &outcome.run.outcome() {
        Outcome::Found { input, evals } => {
            let (dec, bits) = floats_json(input);
            fields.push(("found", Value::Bool(true)));
            fields.push(("input", dec));
            fields.push(("input_bits", bits));
            fields.push(("evals", Value::UInt(*evals as u64)));
        }
        Outcome::NotFound {
            best_value,
            best_input,
            evals,
        } => {
            let (dec, bits) = floats_json(best_input);
            fields.push(("found", Value::Bool(false)));
            fields.push(("best_value", Value::Float(*best_value)));
            fields.push(("best_value_bits", Value::UInt(best_value.to_bits())));
            fields.push(("best_input", dec));
            fields.push(("best_input_bits", bits));
            fields.push(("evals", Value::UInt(*evals as u64)));
        }
    }
    obj(fields)
}

/// Renders a progress event as a wire object.
pub fn event_json(event: &ProgressEvent) -> Value {
    let mut fields = vec![
        ("job", Value::UInt(event.job.0 as u64)),
        ("name", Value::Str(event.name.clone())),
    ];
    match &event.kind {
        EventKind::Admitted { resumed_at_turn } => {
            fields.push(("event", Value::Str("admitted".into())));
            fields.push(("resumed_at_turn", Value::UInt(*resumed_at_turn)));
        }
        EventKind::Progress {
            residual,
            evals,
            leader,
            turn,
        } => {
            fields.push(("event", Value::Str("progress".into())));
            fields.push(("residual", Value::Float(*residual)));
            fields.push(("residual_bits", Value::UInt(residual.to_bits())));
            fields.push(("evals", Value::UInt(*evals as u64)));
            fields.push((
                "leader",
                match leader {
                    Some(b) => Value::Str(b.name().to_string()),
                    None => Value::Null,
                },
            ));
            fields.push(("turn", Value::UInt(*turn)));
        }
        EventKind::Checkpointed { turn } => {
            fields.push(("event", Value::Str("checkpointed".into())));
            fields.push(("turn", Value::UInt(*turn)));
        }
        EventKind::Escalated { turn, total } => {
            fields.push(("event", Value::Str("escalated".into())));
            fields.push(("turn", Value::UInt(*turn)));
            fields.push(("total", Value::UInt(*total as u64)));
        }
        EventKind::Finished {
            found,
            evals,
            winner,
        } => {
            fields.push(("event", Value::Str("finished".into())));
            fields.push(("found", Value::Bool(*found)));
            fields.push(("evals", Value::UInt(*evals as u64)));
            fields.push(("winner", Value::Str(winner.name().to_string())));
        }
        EventKind::Cancelled => {
            fields.push(("event", Value::Str("cancelled".into())));
        }
    }
    obj(fields)
}

/// How a dispatched request is answered.
enum Reply {
    /// One response line.
    Line(Value),
    /// Stream progress events on this connection until it closes.
    Stream,
    /// One `ok` line, then stop the whole server.
    Shutdown,
}

fn dispatch(request: &Value, handle: &ServiceHandle, catalog: &Catalog) -> Reply {
    let cmd = match request.field("cmd") {
        Value::Str(s) => s.as_str(),
        _ => return Reply::Line(err("missing cmd")),
    };
    match cmd {
        "ping" => Reply::Line(ok(vec![])),
        "problems" => Reply::Line(ok(vec![(
            "problems",
            Value::Array(catalog.names().into_iter().map(Value::Str).collect()),
        )])),
        "submit" => {
            let Value::Str(problem) = request.field("problem") else {
                return Reply::Line(err("submit needs a problem name"));
            };
            let Some(wd) = catalog.resolve(problem) else {
                return Reply::Line(err(format!("unknown problem {problem:?}")));
            };
            let Some(seed) = as_u64(request.field("seed")) else {
                return Reply::Line(err("submit needs a seed"));
            };
            let mut config = AnalysisConfig::quick(seed);
            if let Some(rounds) = as_u64(request.field("rounds")) {
                config = config.with_rounds(rounds as usize);
            }
            if let Some(max_evals) = as_u64(request.field("max_evals")) {
                config = config.with_max_evals(max_evals as usize);
            }
            let mut spec = JobSpec::new(problem.clone(), wd, config);
            if let Value::Array(names) = request.field("backends") {
                let mut backends = Vec::new();
                for name in names {
                    let Value::Str(name) = name else {
                        return Reply::Line(err("backends must be strings"));
                    };
                    let Some(backend) = parse_backend(name) else {
                        return Reply::Line(err(format!("unknown backend {name:?}")));
                    };
                    backends.push(backend);
                }
                if backends.is_empty() {
                    return Reply::Line(err("backends must be non-empty"));
                }
                spec = spec.with_backends(&backends);
            }
            if let Some(weight) = as_u64(request.field("weight")) {
                spec = spec.with_weight(weight as usize);
            }
            match handle.submit(spec) {
                Ok(id) => Reply::Line(ok(vec![("id", Value::UInt(id.0 as u64))])),
                Err(closed) => Reply::Line(err(closed.to_string())),
            }
        }
        "status" => match as_u64(request.field("id")) {
            Some(id) if (id as usize) < handle.jobs() => {
                let done = handle.outcome(JobId(id as usize)).is_some();
                Reply::Line(ok(vec![("done", Value::Bool(done))]))
            }
            _ => Reply::Line(err("status needs a known id")),
        },
        "wait" => match as_u64(request.field("id")) {
            Some(id) if (id as usize) < handle.jobs() => {
                let id = JobId(id as usize);
                let outcome = handle.wait(id);
                Reply::Line(outcome_json(id, &outcome))
            }
            _ => Reply::Line(err("wait needs a known id")),
        },
        "cancel" => match as_u64(request.field("id")) {
            Some(id) if (id as usize) < handle.jobs() => {
                handle.cancel(JobId(id as usize));
                Reply::Line(ok(vec![]))
            }
            _ => Reply::Line(err("cancel needs a known id")),
        },
        "report" => {
            let jobs = handle
                .report()
                .into_iter()
                .map(|(id, name, outcome)| match outcome {
                    Some(outcome) => outcome_json(id, &outcome),
                    None => obj(vec![
                        ("ok", Value::Bool(true)),
                        ("id", Value::UInt(id.0 as u64)),
                        ("name", Value::Str(name)),
                        ("pending", Value::Bool(true)),
                    ]),
                })
                .collect();
            Reply::Line(ok(vec![("jobs", Value::Array(jobs))]))
        }
        "subscribe" => Reply::Stream,
        "shutdown" => Reply::Shutdown,
        other => Reply::Line(err(format!("unknown cmd {other:?}"))),
    }
}

fn write_line(stream: &mut TcpStream, value: &Value) -> std::io::Result<()> {
    let text = serde_json::to_string(value).map_err(|e| std::io::Error::other(format!("{e:?}")))?;
    writeln!(stream, "{text}")
}

fn handle_connection(
    stream: TcpStream,
    handle: ServiceHandle,
    catalog: Arc<Catalog>,
    stop: Arc<AtomicBool>,
) {
    let Ok(reader_stream) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(reader_stream);
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let reply = match serde_json::value_from_str(&line) {
            Ok(request) => dispatch(&request, &handle, &catalog),
            Err(e) => Reply::Line(err(format!("bad request: {e:?}"))),
        };
        match reply {
            Reply::Line(value) => {
                if write_line(&mut writer, &value).is_err() {
                    return;
                }
            }
            Reply::Stream => {
                // The connection becomes an event stream; it ends when
                // the client disconnects or the service shuts down
                // (which closes every subscriber sender).
                let events = handle.subscribe();
                if write_line(&mut writer, &ok(vec![])).is_err() {
                    return;
                }
                for event in events {
                    if write_line(&mut writer, &event_json(&event)).is_err() {
                        return;
                    }
                }
                return;
            }
            Reply::Shutdown => {
                let _ = write_line(&mut writer, &ok(vec![]));
                stop.store(true, Ordering::SeqCst);
                return;
            }
        }
    }
}

/// Serves the wire protocol on `listener` until a client sends
/// `shutdown`. Owns the service: on shutdown, unfinished jobs are
/// cancelled to terminal outcomes, the scheduler is joined, and every
/// subscriber stream is closed before `serve` returns.
pub fn serve(listener: TcpListener, service: AnalysisService, catalog: Catalog) {
    let handle = service.handle();
    let catalog = Arc::new(catalog);
    let stop = Arc::new(AtomicBool::new(false));
    let local_addr = listener.local_addr().ok();
    let mut connections = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let handle = handle.clone();
        let catalog = Arc::clone(&catalog);
        let conn_stop = Arc::clone(&stop);
        let addr = local_addr;
        connections.push(std::thread::spawn(move || {
            handle_connection(stream, handle, catalog, Arc::clone(&conn_stop));
            // Unblock the accept loop once a shutdown was requested.
            if conn_stop.load(Ordering::SeqCst) {
                if let Some(addr) = addr {
                    let _ = TcpStream::connect(addr);
                }
            }
        }));
    }
    // Terminal outcomes for every job, scheduler joined, subscriber
    // senders dropped — which ends the streaming connections joined
    // below.
    service.shutdown();
    for conn in connections {
        let _ = conn.join();
    }
}
