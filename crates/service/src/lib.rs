//! # wdm_service — multi-tenant weak-distance analysis service
//!
//! A long-running, std-only front-end over the adaptive portfolio
//! layer: clients submit analysis jobs (a
//! [`WeakDistance`](wdm_core::WeakDistance) plus an
//! [`AnalysisConfig`](wdm_core::AnalysisConfig) and a backend
//! portfolio), a fair-share scheduler time-slices every admitted job
//! over one shared [`WorkerPool`](wdm_mo::WorkerPool), progress streams
//! to subscribers after every slice, and terminal outcomes land in a
//! result store.
//!
//! Three properties define the design:
//!
//! * **Determinism** — jobs run through
//!   [`AdaptivePortfolio`](wdm_core::AdaptivePortfolio), whose rounds
//!   are bit-identical at any worker count, so a job's terminal outcome
//!   is exactly the solo run's outcome regardless of how many tenants
//!   share the pool or how turns interleave.
//! * **Durability** — between turns a job *is* a serializable
//!   checkpoint ([`AdaptiveCheckpoint`](wdm_core::AdaptiveCheckpoint)),
//!   re-materialized at the start of every turn; with a checkpoint
//!   directory configured the snapshot also goes to disk on a cadence,
//!   and a restarted service resumes re-submitted jobs from it,
//!   replaying to the identical final report.
//! * **Fairness** — each scheduling cycle grants every unfinished job
//!   one turn of `weight × rounds_per_turn` adaptive rounds, dispatched
//!   in a seeded per-cycle permutation; weights skew throughput without
//!   affecting any job's outcome.
//!
//! The service is exposed two ways: the in-process [`ServiceHandle`]
//! (used by `wdm_engine::campaign`) and the line-delimited JSON TCP
//! protocol in [`wire`] (served by the `serve` bin in `wdm_bench`).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use fp_runtime::Interval;
//! use wdm_core::weak_distance::FnWeakDistance;
//! use wdm_core::AnalysisConfig;
//! use wdm_service::{AnalysisService, JobSpec, ServiceConfig};
//!
//! let service = AnalysisService::start(ServiceConfig::new(2));
//! let handle = service.handle();
//! let wd = Arc::new(FnWeakDistance::new(
//!     1,
//!     vec![Interval::symmetric(100.0)],
//!     |x: &[f64]| (x[0] - 3.0).abs(),
//! ));
//! let config = AnalysisConfig::quick(7).with_rounds(1).with_max_evals(2_000);
//! let id = handle.submit(JobSpec::new("find-3", wd, config)).unwrap();
//! let outcome = handle.wait(id);
//! assert!(outcome.run.outcome().is_found());
//! service.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod service;
pub mod wire;

pub use service::{
    AnalysisService, EventKind, JobId, JobOutcome, JobSpec, ProgressEvent, ServiceClosed,
    ServiceConfig, ServiceHandle,
};
pub use wire::{serve, Catalog};
