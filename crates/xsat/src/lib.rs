//! Instance 5: quantifier-free floating-point satisfiability via
//! weak-distance minimization (the XSat construction).
//!
//! A constraint in conjunctive normal form over binary64 variables is
//! translated into a nonnegative floating-point program `R` whose zeros are
//! exactly the models of the constraint; `R` is then minimized with the same
//! driver as every other analysis in this workspace. Equality atoms can be
//! measured either with the absolute-value distance or with the
//! integer-valued ULP distance (the Limitation 2 mitigation the paper
//! credits to XSat).
//!
//! # Example
//!
//! ```
//! use wdm_xsat::{Atom, Clause, Cnf, Expr, Solver};
//! use wdm_core::driver::AnalysisConfig;
//!
//! // The Section 1 constraint: x < 1  ∧  x + 1 >= 2 — satisfiable only
//! // because of round-to-nearest.
//! let x = Expr::var(0);
//! let cnf = Cnf::new(2)
//!     .and(Clause::from(Atom::lt(x.clone(), Expr::constant(1.0))))
//!     .and(Clause::from(Atom::ge(x + Expr::constant(1.0), Expr::constant(2.0))));
//! let cnf = cnf.with_num_vars(1);
//! let verdict = Solver::new(cnf).solve(&AnalysisConfig::quick(1));
//! let model = verdict.model().expect("satisfiable under round-to-nearest");
//! assert!(model[0] < 1.0 && model[0] + 1.0 >= 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod distance;
pub mod solver;

pub use ast::{Atom, Clause, Cnf, Expr, Rel};
pub use distance::{CnfWeakDistance, DistanceMetric};
pub use solver::{solve_all, Solver, Verdict};
