//! The constraint language: expressions, atoms, clauses and CNF formulas.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};
use std::sync::Arc;

/// A floating-point expression over variables `x0, x1, ...`.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A variable, by index.
    Var(usize),
    /// A constant.
    Const(f64),
    /// Negation.
    Neg(Arc<Expr>),
    /// Absolute value.
    Abs(Arc<Expr>),
    /// Square root.
    Sqrt(Arc<Expr>),
    /// Sine.
    Sin(Arc<Expr>),
    /// Addition.
    Add(Arc<Expr>, Arc<Expr>),
    /// Subtraction.
    Sub(Arc<Expr>, Arc<Expr>),
    /// Multiplication.
    Mul(Arc<Expr>, Arc<Expr>),
    /// Division.
    Div(Arc<Expr>, Arc<Expr>),
}

impl Expr {
    /// The variable `x_i`.
    pub fn var(i: usize) -> Expr {
        Expr::Var(i)
    }

    /// A constant expression.
    pub fn constant(v: f64) -> Expr {
        Expr::Const(v)
    }

    /// Absolute value.
    pub fn abs(self) -> Expr {
        Expr::Abs(Arc::new(self))
    }

    /// Square root.
    pub fn sqrt(self) -> Expr {
        Expr::Sqrt(Arc::new(self))
    }

    /// Sine.
    pub fn sin(self) -> Expr {
        Expr::Sin(Arc::new(self))
    }

    /// Evaluates the expression under an assignment (IEEE-754 binary64
    /// semantics, round-to-nearest — simply Rust's `f64` arithmetic).
    ///
    /// # Panics
    ///
    /// Panics if a variable index is out of range of the assignment.
    pub fn eval(&self, assignment: &[f64]) -> f64 {
        match self {
            Expr::Var(i) => assignment[*i],
            Expr::Const(v) => *v,
            Expr::Neg(e) => -e.eval(assignment),
            Expr::Abs(e) => e.eval(assignment).abs(),
            Expr::Sqrt(e) => e.eval(assignment).sqrt(),
            Expr::Sin(e) => e.eval(assignment).sin(),
            Expr::Add(a, b) => a.eval(assignment) + b.eval(assignment),
            Expr::Sub(a, b) => a.eval(assignment) - b.eval(assignment),
            Expr::Mul(a, b) => a.eval(assignment) * b.eval(assignment),
            Expr::Div(a, b) => a.eval(assignment) / b.eval(assignment),
        }
    }

    /// The largest variable index mentioned, plus one (0 if none).
    pub fn num_vars(&self) -> usize {
        match self {
            Expr::Var(i) => i + 1,
            Expr::Const(_) => 0,
            Expr::Neg(e) | Expr::Abs(e) | Expr::Sqrt(e) | Expr::Sin(e) => e.num_vars(),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                a.num_vars().max(b.num_vars())
            }
        }
    }
}

impl Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Arc::new(self), Arc::new(rhs))
    }
}

impl Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Arc::new(self), Arc::new(rhs))
    }
}

impl Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Arc::new(self), Arc::new(rhs))
    }
}

impl Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::Div(Arc::new(self), Arc::new(rhs))
    }
}

impl Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Neg(Arc::new(self))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(i) => write!(f, "x{i}"),
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Neg(e) => write!(f, "(-{e})"),
            Expr::Abs(e) => write!(f, "|{e}|"),
            Expr::Sqrt(e) => write!(f, "sqrt({e})"),
            Expr::Sin(e) => write!(f, "sin({e})"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
        }
    }
}

/// A binary comparison relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rel {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl Rel {
    /// Evaluates the relation.
    pub fn holds(self, a: f64, b: f64) -> bool {
        match self {
            Rel::Lt => a < b,
            Rel::Le => a <= b,
            Rel::Gt => a > b,
            Rel::Ge => a >= b,
            Rel::Eq => a == b,
            Rel::Ne => a != b,
        }
    }
}

impl fmt::Display for Rel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rel::Lt => "<",
            Rel::Le => "<=",
            Rel::Gt => ">",
            Rel::Ge => ">=",
            Rel::Eq => "==",
            Rel::Ne => "!=",
        };
        f.write_str(s)
    }
}

/// An atom: a comparison between two expressions.
#[derive(Debug, Clone, PartialEq)]
pub struct Atom {
    /// Left expression.
    pub lhs: Expr,
    /// The relation.
    pub rel: Rel,
    /// Right expression.
    pub rhs: Expr,
}

macro_rules! atom_ctor {
    ($name:ident, $rel:expr, $doc:literal) => {
        #[doc = $doc]
        pub fn $name(lhs: Expr, rhs: Expr) -> Atom {
            Atom {
                lhs,
                rel: $rel,
                rhs,
            }
        }
    };
}

impl Atom {
    atom_ctor!(lt, Rel::Lt, "`lhs < rhs`");
    atom_ctor!(le, Rel::Le, "`lhs <= rhs`");
    atom_ctor!(gt, Rel::Gt, "`lhs > rhs`");
    atom_ctor!(ge, Rel::Ge, "`lhs >= rhs`");
    atom_ctor!(eq, Rel::Eq, "`lhs == rhs`");
    atom_ctor!(ne, Rel::Ne, "`lhs != rhs`");

    /// Evaluates the atom under an assignment.
    pub fn holds(&self, assignment: &[f64]) -> bool {
        self.rel
            .holds(self.lhs.eval(assignment), self.rhs.eval(assignment))
    }

    /// The largest variable index mentioned, plus one.
    pub fn num_vars(&self) -> usize {
        self.lhs.num_vars().max(self.rhs.num_vars())
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.rel, self.rhs)
    }
}

/// A clause: a disjunction of atoms.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Clause {
    /// The atoms of the disjunction.
    pub atoms: Vec<Atom>,
}

impl Clause {
    /// Creates an empty (unsatisfiable) clause.
    pub fn new() -> Self {
        Clause { atoms: Vec::new() }
    }

    /// Adds an atom to the disjunction.
    pub fn or(mut self, atom: Atom) -> Self {
        self.atoms.push(atom);
        self
    }

    /// Evaluates the clause.
    pub fn holds(&self, assignment: &[f64]) -> bool {
        self.atoms.iter().any(|a| a.holds(assignment))
    }
}

impl From<Atom> for Clause {
    fn from(atom: Atom) -> Self {
        Clause { atoms: vec![atom] }
    }
}

/// A CNF formula: a conjunction of clauses over `num_vars` variables.
#[derive(Debug, Clone, PartialEq)]
pub struct Cnf {
    /// The clauses of the conjunction.
    pub clauses: Vec<Clause>,
    num_vars: usize,
}

impl Cnf {
    /// Creates a formula over `num_vars` variables with no clauses
    /// (trivially satisfiable).
    pub fn new(num_vars: usize) -> Self {
        Cnf {
            clauses: Vec::new(),
            num_vars,
        }
    }

    /// Adds a clause.
    pub fn and(mut self, clause: Clause) -> Self {
        self.clauses.push(clause);
        self
    }

    /// Overrides the declared number of variables.
    pub fn with_num_vars(mut self, n: usize) -> Self {
        self.num_vars = n;
        self
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
            .max(self.clauses.iter().flat_map(|c| c.atoms.iter().map(Atom::num_vars)).max().unwrap_or(0))
    }

    /// Evaluates the formula: `true` iff every clause holds.
    pub fn holds(&self, assignment: &[f64]) -> bool {
        self.clauses.iter().all(|c| c.holds(assignment))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expression_evaluation_is_ieee() {
        let e = (Expr::var(0) + Expr::constant(0.2)) * Expr::var(1);
        assert_eq!(e.eval(&[0.1, 2.0]), (0.1 + 0.2) * 2.0);
        assert_eq!(e.num_vars(), 2);
        let k = Expr::constant(2.0).sqrt();
        assert_eq!(k.eval(&[]), 2.0_f64.sqrt());
        assert_eq!((-Expr::var(0)).eval(&[3.0]), -3.0);
        assert_eq!(Expr::var(0).abs().eval(&[-3.0]), 3.0);
        assert_eq!(Expr::var(0).sin().eval(&[1.0]), 1.0_f64.sin());
        assert_eq!((Expr::var(0) / Expr::constant(0.0)).eval(&[1.0]), f64::INFINITY);
    }

    #[test]
    fn atoms_clauses_and_cnf_evaluate() {
        let a = Atom::lt(Expr::var(0), Expr::constant(1.0));
        assert!(a.holds(&[0.5]));
        assert!(!a.holds(&[1.5]));
        let clause = Clause::from(a).or(Atom::gt(Expr::var(0), Expr::constant(10.0)));
        assert!(clause.holds(&[20.0]));
        assert!(!clause.holds(&[5.0]));
        let cnf = Cnf::new(1)
            .and(clause)
            .and(Clause::from(Atom::ge(Expr::var(0), Expr::constant(0.0))));
        assert!(cnf.holds(&[0.5]));
        assert!(!cnf.holds(&[-1.0]));
        assert_eq!(cnf.num_vars(), 1);
    }

    #[test]
    fn motivating_constraint_of_section1() {
        // x < 1 ∧ x + 1 >= 2 is satisfied by 0.999…9 under round-to-nearest.
        let x = Expr::var(0);
        let cnf = Cnf::new(1)
            .and(Clause::from(Atom::lt(x.clone(), Expr::constant(1.0))))
            .and(Clause::from(Atom::ge(
                x + Expr::constant(1.0),
                Expr::constant(2.0),
            )));
        assert!(cnf.holds(&[0.999_999_999_999_999_9]));
        assert!(!cnf.holds(&[0.5]));
        assert!(!cnf.holds(&[1.0]));
    }

    #[test]
    fn display_forms() {
        let a = Atom::le(Expr::var(1) * Expr::constant(2.0), Expr::constant(4.0));
        assert_eq!(a.to_string(), "(x1 * 2) <= 4");
        assert_eq!(Rel::Ne.to_string(), "!=");
    }

    #[test]
    fn empty_clause_is_false_and_empty_cnf_is_true() {
        assert!(!Clause::new().holds(&[1.0]));
        assert!(Cnf::new(1).holds(&[1.0]));
    }
}
