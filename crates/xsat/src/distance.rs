//! The XSat distance encoding: from a CNF formula to a weak distance.
//!
//! Each atom is mapped to a nonnegative value that is zero exactly when the
//! atom holds; clause distances take the minimum over their atoms (a clause
//! needs only one true atom) and the CNF distance sums the clause distances.
//! Equality atoms can use either the real-valued `|a - b|` or the
//! integer-valued ULP distance, the paper's Limitation 2 mitigation.

use crate::ast::{Atom, Cnf, Rel};
use fp_runtime::Interval;
use wdm_core::weak_distance::WeakDistance;
use wdm_mo::ulp::ulp_distance;

/// How equality-like residuals are measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistanceMetric {
    /// Real-valued absolute difference.
    #[default]
    Absolute,
    /// Number of representable doubles between the operands (XSat's ULP
    /// metric), scaled into `f64`.
    Ulp,
}

/// θ: the smallest positive penalty, used for strict comparisons and `!=`.
const THETA: f64 = f64::MIN_POSITIVE;

fn atom_distance(atom: &Atom, assignment: &[f64], metric: DistanceMetric) -> f64 {
    let a = atom.lhs.eval(assignment);
    let b = atom.rhs.eval(assignment);
    if atom.rel.holds(a, b) {
        return 0.0;
    }
    if a.is_nan() || b.is_nan() {
        return f64::MAX;
    }
    let eq_residual = match metric {
        DistanceMetric::Absolute => (a - b).abs(),
        DistanceMetric::Ulp => ulp_distance(a, b) as f64,
    };
    match atom.rel {
        Rel::Eq => eq_residual,
        Rel::Ne => THETA,
        Rel::Lt | Rel::Le => match metric {
            DistanceMetric::Absolute => (a - b).abs() + THETA,
            DistanceMetric::Ulp => ulp_distance(a, b) as f64,
        },
        Rel::Gt | Rel::Ge => match metric {
            DistanceMetric::Absolute => (b - a).abs() + THETA,
            DistanceMetric::Ulp => ulp_distance(a, b) as f64,
        },
    }
}

/// The weak distance `R` of a CNF constraint: nonnegative, and zero exactly
/// on the models of the constraint.
#[derive(Debug, Clone)]
pub struct CnfWeakDistance {
    cnf: Cnf,
    metric: DistanceMetric,
    domain: Vec<Interval>,
}

impl CnfWeakDistance {
    /// Builds the weak distance with the default (absolute) metric and a
    /// whole-range search box.
    pub fn new(cnf: Cnf) -> Self {
        let n = cnf.num_vars();
        CnfWeakDistance {
            cnf,
            metric: DistanceMetric::Absolute,
            domain: vec![Interval::whole(); n],
        }
    }

    /// Selects the residual metric.
    pub fn with_metric(mut self, metric: DistanceMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Restricts the search box.
    ///
    /// # Panics
    ///
    /// Panics if the arity does not match the formula.
    pub fn with_domain(mut self, domain: Vec<Interval>) -> Self {
        assert_eq!(domain.len(), self.cnf.num_vars(), "domain arity mismatch");
        self.domain = domain;
        self
    }

    /// The underlying formula.
    pub fn cnf(&self) -> &Cnf {
        &self.cnf
    }
}

impl WeakDistance for CnfWeakDistance {
    fn dim(&self) -> usize {
        self.cnf.num_vars()
    }

    fn domain(&self) -> Vec<Interval> {
        self.domain.clone()
    }

    fn eval(&self, x: &[f64]) -> f64 {
        let mut total = 0.0;
        for clause in &self.cnf.clauses {
            let d = clause
                .atoms
                .iter()
                .map(|a| atom_distance(a, x, self.metric))
                .fold(f64::MAX, f64::min);
            total += d;
            if !total.is_finite() {
                return f64::MAX;
            }
        }
        total
    }

    fn description(&self) -> String {
        format!(
            "R distance of a CNF with {} clauses over {} variables ({:?})",
            self.cnf.clauses.len(),
            self.cnf.num_vars(),
            self.metric
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Clause, Expr};

    fn simple_cnf() -> Cnf {
        // (x0 >= 2 ∨ x0 <= -2) ∧ (x1 == 3)
        Cnf::new(2)
            .and(
                Clause::from(Atom::ge(Expr::var(0), Expr::constant(2.0)))
                    .or(Atom::le(Expr::var(0), Expr::constant(-2.0))),
            )
            .and(Clause::from(Atom::eq(Expr::var(1), Expr::constant(3.0))))
    }

    #[test]
    fn zero_exactly_on_models() {
        let wd = CnfWeakDistance::new(simple_cnf());
        assert_eq!(wd.eval(&[2.0, 3.0]), 0.0);
        assert_eq!(wd.eval(&[-5.0, 3.0]), 0.0);
        assert!(wd.eval(&[0.0, 3.0]) > 0.0);
        assert!(wd.eval(&[2.0, 2.9]) > 0.0);
        assert_eq!(wd.dim(), 2);
    }

    #[test]
    fn clause_distance_is_min_over_atoms() {
        let wd = CnfWeakDistance::new(simple_cnf());
        // x0 = 1: distance to >= 2 is 1+θ, to <= -2 is 3+θ; min ≈ 1.
        let v = wd.eval(&[1.0, 3.0]);
        assert!((v - 1.0).abs() < 1e-12, "v = {v}");
    }

    #[test]
    fn nan_operands_give_a_large_distance() {
        let cnf = Cnf::new(1).and(Clause::from(Atom::eq(
            Expr::var(0).sqrt(),
            Expr::constant(2.0),
        )));
        let wd = CnfWeakDistance::new(cnf);
        assert_eq!(wd.eval(&[-1.0]), f64::MAX);
        assert_eq!(wd.eval(&[4.0]), 0.0);
    }

    #[test]
    fn ulp_metric_distinguishes_adjacent_floats() {
        let cnf = Cnf::new(1).and(Clause::from(Atom::eq(Expr::var(0), Expr::constant(1.0))));
        let wd = CnfWeakDistance::new(cnf).with_metric(DistanceMetric::Ulp);
        assert_eq!(wd.eval(&[1.0]), 0.0);
        assert_eq!(wd.eval(&[1.0 + f64::EPSILON]), 1.0);
        // The absolute metric would report a misleadingly tiny 2.2e-16 here.
        let abs = CnfWeakDistance::new(
            Cnf::new(1).and(Clause::from(Atom::eq(Expr::var(0), Expr::constant(1.0)))),
        );
        assert!(abs.eval(&[1.0 + f64::EPSILON]) < 1e-15);
    }

    #[test]
    fn strict_violation_at_tie_is_positive() {
        let cnf = Cnf::new(1).and(Clause::from(Atom::lt(Expr::var(0), Expr::constant(1.0))));
        let wd = CnfWeakDistance::new(cnf);
        assert!(wd.eval(&[1.0]) > 0.0);
        assert_eq!(wd.eval(&[0.5]), 0.0);
    }
}
