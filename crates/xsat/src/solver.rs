//! The satisfiability solver: minimize the CNF weak distance and verify the
//! model.
//!
//! Solving is parallel at three levels, mirroring the execution engine:
//! [`AnalysisConfig::parallelism`] shards the restart rounds of a single
//! `solve` deterministically, [`Solver::solve_portfolio`] races several MO
//! backends on one formula with first-hit cancellation, and [`solve_all`]
//! spreads a batch of independent formulas over worker threads.

use crate::ast::Cnf;
use crate::distance::{CnfWeakDistance, DistanceMetric};
use fp_runtime::Interval;
use wdm_core::adaptive::{minimize_weak_distance_adaptive_cancellable, AdaptivePortfolio};
use wdm_core::driver::{
    minimize_weak_distance, minimize_weak_distance_portfolio, AnalysisConfig, BackendKind, Outcome,
    PortfolioPolicy,
};
use wdm_core::weak_distance::WeakDistance;
use wdm_mo::CancelToken;

/// The solver's answer.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// A model was found (and re-checked by direct evaluation).
    Sat(Vec<f64>),
    /// No model was found within the budget. Because the MO backend may miss
    /// the global minimum (Limitation 3), this is *not* a proof of
    /// unsatisfiability; the best residual found is reported.
    Unknown {
        /// Smallest weak-distance value observed.
        best_residual: f64,
        /// Assignment attaining it.
        best_assignment: Vec<f64>,
    },
}

impl Verdict {
    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&[f64]> {
        match self {
            Verdict::Sat(m) => Some(m),
            Verdict::Unknown { .. } => None,
        }
    }

    /// Returns `true` if a model was found.
    pub fn is_sat(&self) -> bool {
        matches!(self, Verdict::Sat(_))
    }
}

/// A quantifier-free floating-point satisfiability solver in the XSat style.
#[derive(Debug, Clone)]
pub struct Solver {
    cnf: Cnf,
    metric: DistanceMetric,
    domain: Option<Vec<Interval>>,
}

impl Solver {
    /// Creates a solver for the formula.
    pub fn new(cnf: Cnf) -> Self {
        Solver {
            cnf,
            metric: DistanceMetric::Absolute,
            domain: None,
        }
    }

    /// Selects the residual metric.
    pub fn with_metric(mut self, metric: DistanceMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Restricts the variable search box.
    pub fn with_domain(mut self, domain: Vec<Interval>) -> Self {
        self.domain = Some(domain);
        self
    }

    /// Solves the formula with the given driver configuration.
    ///
    /// With [`AnalysisConfig::parallelism`] > 1 the minimization rounds are
    /// sharded across worker threads; the verdict is bit-identical for any
    /// thread count.
    pub fn solve(&self, config: &AnalysisConfig) -> Verdict {
        let wd = self.weak_distance();
        let run = minimize_weak_distance(&wd, config);
        self.verdict_of(&wd, run.outcome)
    }

    /// Solves the formula by running several MO backends in portfolio
    /// mode, under the configured
    /// [`portfolio_policy`](AnalysisConfig::portfolio_policy): racing with
    /// first-hit cancellation by default (fastest time-to-model, but which
    /// backend wins — and hence the `Unknown` residual — is
    /// timing-dependent), or deterministic bandit-scheduled budget
    /// reallocation under `PortfolioPolicy::Adaptive`. A returned model is
    /// always re-verified.
    pub fn solve_portfolio(&self, config: &AnalysisConfig, backends: &[BackendKind]) -> Verdict {
        let wd = self.weak_distance();
        let race = minimize_weak_distance_portfolio(&wd, config, backends);
        self.verdict_of(&wd, race.outcome())
    }

    /// Like [`solve_portfolio`](Self::solve_portfolio) under
    /// [`PortfolioPolicy::Adaptive`], but cancellable mid-run: when
    /// `cancel` fires, every arm stops at its next evaluation check and
    /// the verdict reports the best residual reached so far. This is the
    /// entry point escalating drivers use to race a focused sub-solve
    /// against the main portfolio without orphaning its budget.
    pub fn solve_portfolio_cancellable(
        &self,
        config: &AnalysisConfig,
        backends: &[BackendKind],
        cancel: &CancelToken,
    ) -> Verdict {
        let wd = self.weak_distance();
        let run = minimize_weak_distance_adaptive_cancellable(&wd, config, backends, cancel);
        self.verdict_of(&wd, run.outcome())
    }

    /// Solves with the adaptive portfolio and routes plateau escalations
    /// back into the solver: whenever the scheduler publishes an
    /// escalation handoff (see
    /// [`AdaptivePortfolio::take_handoff`]), the
    /// tightened incumbent box becomes the domain of a fresh focused
    /// sub-solve over the same formula ([`Self::solve_portfolio`] under
    /// [`PortfolioPolicy::Adaptive`]), seeded from a disjoint stream per
    /// event. A verified model from either level wins; the sub-solve's
    /// budget is one round of the configured budget per event.
    ///
    /// With [`AnalysisConfig::escalation`] unset this degrades to a plain
    /// adaptive portfolio solve. The verdict is a pure function of
    /// (formula, config, backends): deterministic for any
    /// [`AnalysisConfig::parallelism`].
    pub fn solve_escalating(&self, config: &AnalysisConfig, backends: &[BackendKind]) -> Verdict {
        let wd = self.weak_distance();
        let cancel = CancelToken::new();
        let mut portfolio = AdaptivePortfolio::new(&wd, config, backends, &cancel);
        let workers = config.parallelism.max(1);
        while portfolio.round(workers) {
            let Some(handoff) = portfolio.take_handoff() else {
                continue;
            };
            let domain: Vec<Interval> = handoff
                .bounds
                .limits()
                .iter()
                .map(|&(lo, hi)| Interval::new(lo, hi))
                .collect();
            let mut sub_config = config
                .clone()
                .with_rounds(1)
                .with_seed_offset(1 + handoff.ordinal as u64)
                .with_portfolio_policy(PortfolioPolicy::Adaptive);
            // The sub-solve is the escalation: it must not recurse.
            sub_config.escalation = None;
            let sub = self.clone().with_domain(domain);
            let verdict = sub.solve_portfolio(&sub_config, backends);
            if verdict.is_sat() {
                return verdict;
            }
        }
        portfolio.finalize();
        self.verdict_of(&wd, portfolio.into_run().outcome())
    }

    fn weak_distance(&self) -> CnfWeakDistance {
        let mut wd = CnfWeakDistance::new(self.cnf.clone()).with_metric(self.metric);
        if let Some(domain) = &self.domain {
            wd = wd.with_domain(domain.clone());
        }
        wd
    }

    fn verdict_of(&self, wd: &CnfWeakDistance, outcome: Outcome) -> Verdict {
        match outcome {
            Outcome::Found { input, .. } => {
                // Soundness check (Section 5.2 remark): re-evaluate the
                // formula directly on the candidate model.
                if self.cnf.holds(&input) {
                    Verdict::Sat(input)
                } else {
                    Verdict::Unknown {
                        best_residual: wd.eval(&input),
                        best_assignment: input,
                    }
                }
            }
            Outcome::NotFound {
                best_value,
                best_input,
                ..
            } => Verdict::Unknown {
                best_residual: best_value,
                best_assignment: best_input,
            },
        }
    }
}

/// Solves a batch of independent formulas over `threads` worker threads,
/// returning verdicts in input order.
///
/// Each solver runs sequentially with the same configuration (its restart
/// stream depends only on the configuration, not on scheduling), so the
/// returned verdicts are bit-identical for every `threads` value — batch
/// parallelism is purely a throughput knob, exactly like the campaign mode
/// of `wdm_engine`.
pub fn solve_all(solvers: &[Solver], config: &AnalysisConfig, threads: usize) -> Vec<Verdict> {
    wdm_mo::scoped_map(threads, solvers.len(), |i| solvers[i].solve(config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Clause, Expr};

    fn quick() -> AnalysisConfig {
        AnalysisConfig::quick(13)
    }

    #[test]
    fn solves_linear_conjunction() {
        // x0 >= 5 ∧ x0 <= 5.5 ∧ x1 == x0 + 1
        let cnf = Cnf::new(2)
            .and(Clause::from(Atom::ge(Expr::var(0), Expr::constant(5.0))))
            .and(Clause::from(Atom::le(Expr::var(0), Expr::constant(5.5))))
            .and(Clause::from(Atom::eq(
                Expr::var(1),
                Expr::var(0) + Expr::constant(1.0),
            )));
        let verdict = Solver::new(cnf.clone())
            .with_domain(vec![Interval::symmetric(100.0); 2])
            .solve(&quick());
        let model = verdict.model().expect("satisfiable");
        assert!(cnf.holds(model), "model {model:?}");
    }

    #[test]
    fn solves_the_section1_rounding_constraint() {
        // x < 1 ∧ x + 1 >= 2: only satisfiable thanks to round-to-nearest.
        let x = Expr::var(0);
        let cnf = Cnf::new(1)
            .and(Clause::from(Atom::lt(x.clone(), Expr::constant(1.0))))
            .and(Clause::from(Atom::ge(
                x + Expr::constant(1.0),
                Expr::constant(2.0),
            )));
        let verdict = Solver::new(cnf.clone())
            .with_domain(vec![Interval::symmetric(10.0)])
            .solve(&AnalysisConfig::quick(3).with_rounds(6));
        let model = verdict.model().expect("satisfiable under round-to-nearest");
        assert!(cnf.holds(model));
        assert!(model[0] < 1.0 && model[0] > 0.999_999_999_999_999);
    }

    #[test]
    fn nonlinear_constraint_with_disjunction() {
        // (x*x == 2 ∨ x <= -10) — satisfied by sqrt(2) or anything <= -10.
        let cnf = Cnf::new(1).and(
            Clause::from(Atom::eq(
                Expr::var(0) * Expr::var(0),
                Expr::constant(2.0),
            ))
            .or(Atom::le(Expr::var(0), Expr::constant(-10.0))),
        );
        let verdict = Solver::new(cnf.clone())
            .with_domain(vec![Interval::symmetric(100.0)])
            .solve(&quick());
        let model = verdict.model().expect("satisfiable");
        assert!(cnf.holds(model));
    }

    #[test]
    fn unsatisfiable_constraint_reports_unknown_with_positive_residual() {
        // x*x == -1 has no real/floating-point solution.
        let cnf = Cnf::new(1).and(Clause::from(Atom::eq(
            Expr::var(0) * Expr::var(0),
            Expr::constant(-1.0),
        )));
        let verdict = Solver::new(cnf)
            .with_domain(vec![Interval::symmetric(100.0)])
            .solve(&AnalysisConfig::quick(5).with_rounds(2).with_max_evals(5_000));
        match verdict {
            Verdict::Unknown { best_residual, .. } => assert!(best_residual > 0.0),
            Verdict::Sat(m) => panic!("spurious model {m:?}"),
        }
    }

    #[test]
    fn ulp_metric_solves_equality_constraints() {
        let cnf = Cnf::new(1).and(Clause::from(Atom::eq(
            Expr::var(0) + Expr::constant(1.0),
            Expr::constant(4.0),
        )));
        let verdict = Solver::new(cnf.clone())
            .with_metric(DistanceMetric::Ulp)
            .with_domain(vec![Interval::symmetric(1.0e3)])
            .solve(&quick());
        let model = verdict.model().expect("satisfiable");
        assert!(cnf.holds(model));
    }

    #[test]
    fn parallel_shards_match_sequential_verdict() {
        let cnf = Cnf::new(1).and(Clause::from(Atom::eq(
            Expr::var(0) * Expr::var(0),
            Expr::constant(9.0),
        )));
        let solver = Solver::new(cnf).with_domain(vec![Interval::symmetric(100.0)]);
        let sequential = solver.solve(&AnalysisConfig::quick(8).with_rounds(4));
        for threads in [2, 8] {
            let parallel =
                solver.solve(&AnalysisConfig::quick(8).with_rounds(4).with_parallelism(threads));
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn portfolio_solve_finds_and_verifies_a_model() {
        let cnf = Cnf::new(1).and(Clause::from(Atom::eq(
            Expr::var(0) + Expr::constant(2.0),
            Expr::constant(6.0),
        )));
        let solver = Solver::new(cnf.clone()).with_domain(vec![Interval::symmetric(100.0)]);
        let verdict = solver.solve_portfolio(
            &AnalysisConfig::quick(4).with_rounds(2),
            &wdm_core::BackendKind::all(),
        );
        let model = verdict.model().expect("satisfiable");
        assert!(cnf.holds(model));
    }

    #[test]
    fn solve_all_returns_verdicts_in_order_for_any_thread_count() {
        let sat = Cnf::new(1).and(Clause::from(Atom::eq(
            Expr::var(0),
            Expr::constant(3.0),
        )));
        let unsat = Cnf::new(1).and(Clause::from(Atom::eq(
            Expr::var(0) * Expr::var(0),
            Expr::constant(-4.0),
        )));
        let solvers: Vec<Solver> = (0..6)
            .map(|i| {
                let cnf = if i % 2 == 0 { sat.clone() } else { unsat.clone() };
                Solver::new(cnf).with_domain(vec![Interval::symmetric(50.0)])
            })
            .collect();
        let config = AnalysisConfig::quick(2).with_rounds(2).with_max_evals(4_000);
        let sequential = solve_all(&solvers, &config, 1);
        for threads in [2, 4, 16] {
            let parallel = solve_all(&solvers, &config, threads);
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
        for (i, verdict) in sequential.iter().enumerate() {
            assert_eq!(verdict.is_sat(), i % 2 == 0, "formula {i}");
        }
    }

    #[test]
    fn cancellable_portfolio_reports_best_residual_on_cancel() {
        let cnf = Cnf::new(1).and(Clause::from(Atom::eq(
            Expr::var(0) * Expr::var(0),
            Expr::constant(-1.0),
        )));
        let solver = Solver::new(cnf).with_domain(vec![Interval::symmetric(100.0)]);
        let cancel = CancelToken::new();
        cancel.cancel();
        let verdict = solver.solve_portfolio_cancellable(
            &AnalysisConfig::quick(7).with_rounds(2),
            &BackendKind::all(),
            &cancel,
        );
        match verdict {
            Verdict::Unknown { best_residual, .. } => assert!(best_residual > 0.0),
            Verdict::Sat(m) => panic!("spurious model {m:?}"),
        }
    }

    #[test]
    fn escalating_solve_finds_and_verifies_a_model() {
        // 2.25 has exact floating-point square roots (±1.5), so equality
        // is satisfiable under round-to-nearest.
        let cnf = Cnf::new(1).and(Clause::from(Atom::eq(
            Expr::var(0) * Expr::var(0),
            Expr::constant(2.25),
        )));
        let solver = Solver::new(cnf.clone()).with_domain(vec![Interval::symmetric(100.0)]);
        let config = AnalysisConfig::quick(9).with_rounds(2).with_escalation(
            wdm_core::EscalationConfig::default()
                .with_threshold(0.25)
                .with_patience(2),
        );
        let verdict = solver.solve_escalating(&config, &BackendKind::all());
        let model = verdict.model().expect("satisfiable");
        assert!(cnf.holds(model), "model {model:?}");
    }

    #[test]
    fn escalating_solve_is_deterministic_and_consumes_every_handoff() {
        // Unsatisfiable: the weak distance plateaus above zero, so with a
        // trivially-low bar every escalation fires, each handoff becomes a
        // focused sub-solve that also fails, and the final verdict must
        // still be a pure function of the configuration.
        let cnf = Cnf::new(1).and(Clause::from(Atom::eq(
            Expr::var(0) * Expr::var(0),
            Expr::constant(-1.0),
        )));
        let solver = Solver::new(cnf).with_domain(vec![Interval::symmetric(100.0)]);
        let config = AnalysisConfig::quick(11)
            .with_rounds(2)
            .with_max_evals(4_000)
            .with_escalation(
                wdm_core::EscalationConfig::default()
                    // Rewards are never this high: every quiet stretch
                    // escalates, exercising the handoff consumption path.
                    .with_threshold(2.0)
                    .with_patience(1),
            );
        let reference = solver.solve_escalating(&config, &BackendKind::all());
        assert!(!reference.is_sat());
        for threads in [2usize, 8] {
            let parallel = solver.solve_escalating(
                &config.clone().with_parallelism(threads),
                &BackendKind::all(),
            );
            assert_eq!(parallel, reference, "threads = {threads}");
        }
    }

    #[test]
    fn verdict_helpers() {
        let sat = Verdict::Sat(vec![1.0]);
        assert!(sat.is_sat());
        assert_eq!(sat.model(), Some(&[1.0][..]));
        let unk = Verdict::Unknown {
            best_residual: 0.5,
            best_assignment: vec![0.0],
        };
        assert!(!unk.is_sat());
        assert!(unk.model().is_none());
    }
}
