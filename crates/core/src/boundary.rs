//! Instance 1: boundary value analysis (Section 4.2, Fig. 3).
//!
//! The boundary conditions of a program are the equality constraints
//! `lhs == rhs` underlying its arithmetic comparisons. The weak distance of
//! Fig. 3 multiplies `w` (initialized to 1) by `|lhs - rhs|` before every
//! executed branch, so `w` is zero exactly when some executed branch sits on
//! its boundary.

use crate::driver::{
    minimize_weak_distance, statically_pruned_run, AnalysisConfig, MinimizationRun, Outcome,
};
use crate::weak_distance::{SpecializationCache, WeakDistance};
use fp_runtime::{
    Analyzable, BranchEvent, BranchId, Interval, KernelPolicy, ObservationSpec, Observer,
    OptPolicy, ProbeControl, SiteSet,
};
use std::collections::BTreeMap;

/// How the per-branch residuals are folded into `w`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundaryMode {
    /// Fig. 3(a): `w = w * |lhs - rhs|` at every executed branch
    /// (`w` starts at 1). Zero iff *some* executed branch is on its boundary.
    Product,
    /// Target a single branch site: `w` is the smallest `|lhs - rhs|`
    /// observed at that site (a large penalty if the site never executes).
    Single(BranchId),
    /// The Fig. 7 characteristic function: 0 if some executed branch is on
    /// its boundary, 1 otherwise. A valid weak distance, but flat — the
    /// ablation baseline.
    Characteristic,
    /// Squared residuals `(lhs - rhs)^2` instead of absolute values — the
    /// Section 5.2 variant that underflows (ablation).
    SquaredResidual,
}

/// Penalty used when a targeted branch site never executes.
const UNREACHED_PENALTY: f64 = 1.0e300;

struct BoundaryObserver {
    mode: BoundaryMode,
    w: f64,
}

impl BoundaryObserver {
    fn new(mode: BoundaryMode) -> Self {
        let w = match mode {
            BoundaryMode::Product | BoundaryMode::SquaredResidual | BoundaryMode::Characteristic => 1.0,
            BoundaryMode::Single(_) => UNREACHED_PENALTY,
        };
        BoundaryObserver { mode, w }
    }
}

impl Observer for BoundaryObserver {
    fn on_branch(&mut self, ev: &BranchEvent) -> ProbeControl {
        let residual = ev.boundary_residual();
        match self.mode {
            BoundaryMode::Product => self.w *= residual,
            BoundaryMode::SquaredResidual => self.w *= residual * residual,
            BoundaryMode::Characteristic => {
                if residual == 0.0 {
                    self.w = 0.0;
                }
            }
            BoundaryMode::Single(target) => {
                if ev.id == target && residual < self.w {
                    self.w = residual;
                }
            }
        }
        ProbeControl::Continue
    }
}

/// The boundary-value weak distance of a program.
#[derive(Debug, Clone)]
pub struct BoundaryWeakDistance<P> {
    program: P,
    mode: BoundaryMode,
    kernel_policy: KernelPolicy,
    opt: SpecializationCache,
}

impl<P: Analyzable> BoundaryWeakDistance<P> {
    /// Creates the Fig. 3 (product) weak distance.
    pub fn new(program: P) -> Self {
        BoundaryWeakDistance {
            program,
            mode: BoundaryMode::Product,
            kernel_policy: KernelPolicy::Auto,
            opt: SpecializationCache::default(),
        }
    }

    /// Selects a different folding mode.
    pub fn with_mode(mut self, mode: BoundaryMode) -> Self {
        self.mode = mode;
        // The observation spec depends on the mode; re-specialize.
        self.opt = SpecializationCache::new(self.opt.policy());
        self
    }

    /// Selects the batch backend ([`KernelPolicy::Auto`] by default).
    /// Never changes values — only which bit-identical backend computes
    /// them.
    pub fn with_kernel_policy(mut self, kernel_policy: KernelPolicy) -> Self {
        self.kernel_policy = kernel_policy;
        self
    }

    /// Selects whether evaluations may run a target-specialized
    /// (translation-validated) variant of the program
    /// ([`OptPolicy::Auto`] by default). Never changes values — the
    /// observer sees a bit-identical event stream either way.
    pub fn with_opt_policy(mut self, opt_policy: OptPolicy) -> Self {
        self.opt = SpecializationCache::new(opt_policy);
        self
    }

    /// The program under analysis.
    pub fn program(&self) -> &P {
        &self.program
    }

    /// What this weak distance observes: only the targeted site's branch
    /// events in [`BoundaryMode::Single`], every branch event otherwise.
    fn observation_spec(&self) -> ObservationSpec {
        match self.mode {
            BoundaryMode::Single(target) => {
                ObservationSpec::branches(SiteSet::Only([target.0].into()))
            }
            _ => ObservationSpec::branches(SiteSet::All),
        }
    }
}

impl<P: Analyzable> WeakDistance for BoundaryWeakDistance<P> {
    fn dim(&self) -> usize {
        self.program.num_inputs()
    }

    fn domain(&self) -> Vec<Interval> {
        self.program.search_domain()
    }

    fn eval(&self, x: &[f64]) -> f64 {
        let mut obs = BoundaryObserver::new(self.mode);
        self.opt
            .specialized(&self.program, &self.observation_spec())
            .run(x, &mut obs);
        obs.w
    }

    fn eval_batch(&self, xs: &[Vec<f64>], out: &mut Vec<f64>) {
        let mut session = self
            .opt
            .specialized(&self.program, &self.observation_spec())
            .batch_executor(self.kernel_policy);
        crate::weak_distance::batch_observed(
            session.as_mut(),
            xs,
            || BoundaryObserver::new(self.mode),
            |obs| obs.w,
            out,
        );
    }

    fn description(&self) -> String {
        format!("boundary weak distance of {} ({:?})", self.program.name(), self.mode)
    }
}

/// Per-condition summary produced by [`BoundaryAnalysis::find_all`].
#[derive(Debug, Clone)]
pub struct ConditionReport {
    /// The branch site.
    pub site: BranchId,
    /// Human-readable label of the branch.
    pub label: String,
    /// A boundary value triggering the condition, if one was found.
    pub witness: Option<Vec<f64>>,
    /// Best (smallest) weak-distance value observed for this condition.
    pub best_value: f64,
    /// Objective evaluations spent on this condition.
    pub evals: usize,
}

impl ConditionReport {
    /// Returns `true` if the condition was triggered.
    pub fn reached(&self) -> bool {
        self.witness.is_some()
    }
}

/// Boundary value analysis of an [`Analyzable`] program.
#[derive(Debug, Clone)]
pub struct BoundaryAnalysis<P> {
    program: P,
}

impl<P: Analyzable> BoundaryAnalysis<P> {
    /// Creates the analysis.
    pub fn new(program: P) -> Self {
        BoundaryAnalysis { program }
    }

    /// The program under analysis.
    pub fn program(&self) -> &P {
        &self.program
    }

    /// Finds *some* boundary value (any condition), as in Fig. 3.
    pub fn find_any(&self, config: &AnalysisConfig) -> Outcome {
        self.find_any_run(config).outcome
    }

    /// Like [`BoundaryAnalysis::find_any`] but returns the full minimization
    /// run (including the sampling trace used for Fig. 3(c)).
    pub fn find_any_run(&self, config: &AnalysisConfig) -> MinimizationRun {
        let wd = BoundaryWeakDistance {
            program: &self.program,
            mode: BoundaryMode::Product,
            kernel_policy: config.kernel_policy,
            opt: SpecializationCache::new(config.opt_policy),
        };
        minimize_weak_distance(&wd, config)
    }

    /// Finds a boundary value for one specific condition.
    pub fn find_condition(&self, site: BranchId, config: &AnalysisConfig) -> Outcome {
        self.find_condition_run(site, config).outcome
    }

    /// Like [`BoundaryAnalysis::find_condition`] but returns the full run,
    /// so callers can tell a statically pruned target (zero evaluations,
    /// [`MinimizationRun::statically_pruned`]) from a budget-exhausted
    /// miss.
    ///
    /// When the program's static analysis
    /// ([`Analyzable::branch_boundary_reachability`]) *proves* that the
    /// site's boundary `lhs == rhs` cannot hold on any domain input — the
    /// site never executes, or the residual interval excludes zero — no
    /// minimizer runs at all: the weak distance is bounded away from zero,
    /// so the search could only ever burn its budget.
    pub fn find_condition_run(&self, site: BranchId, config: &AnalysisConfig) -> MinimizationRun {
        if self
            .program
            .branch_boundary_reachability(site)
            .is_unreachable()
        {
            return statically_pruned_run(UNREACHED_PENALTY);
        }
        let wd = BoundaryWeakDistance {
            program: &self.program,
            mode: BoundaryMode::Single(site),
            kernel_policy: config.kernel_policy,
            opt: SpecializationCache::new(config.opt_policy),
        };
        minimize_weak_distance(&wd, config)
    }

    /// Runs [`BoundaryAnalysis::find_condition`] for every declared branch
    /// site (the Table 2 / Fig. 9 experiment shape).
    pub fn find_all(&self, config: &AnalysisConfig) -> Vec<ConditionReport> {
        self.program
            .branch_sites()
            .into_iter()
            .map(|site| {
                let outcome = self.find_condition(site.id, config);
                match outcome {
                    Outcome::Found { input, evals } => ConditionReport {
                        site: site.id,
                        label: site.label.clone(),
                        witness: Some(input),
                        best_value: 0.0,
                        evals,
                    },
                    Outcome::NotFound {
                        best_value, evals, ..
                    } => ConditionReport {
                        site: site.id,
                        label: site.label.clone(),
                        witness: None,
                        best_value,
                        evals,
                    },
                }
            })
            .collect()
    }

    /// Soundness check (Section 6.2(i)): runs the program on `input` and
    /// returns the branch sites whose boundary condition it triggers
    /// (`lhs == rhs` observed at the site).
    pub fn triggered_conditions(&self, input: &[f64]) -> Vec<BranchId> {
        struct Collect {
            hits: BTreeMap<BranchId, bool>,
        }
        impl Observer for Collect {
            fn on_branch(&mut self, ev: &BranchEvent) -> ProbeControl {
                if ev.lhs == ev.rhs {
                    self.hits.insert(ev.id, true);
                }
                ProbeControl::Continue
            }
        }
        let mut obs = Collect {
            hits: BTreeMap::new(),
        };
        self.program.run(input, &mut obs);
        obs.hits.into_keys().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mini_gsl::toy::Fig2Program;

    #[test]
    fn product_weak_distance_matches_fig3_values() {
        let wd = BoundaryWeakDistance::new(Fig2Program::new());
        // Known zeros: -3, 1, 2 (Fig. 3(b)).
        assert_eq!(wd.eval(&[-3.0]), 0.0);
        assert_eq!(wd.eval(&[1.0]), 0.0);
        assert_eq!(wd.eval(&[2.0]), 0.0);
        // W(0.5) = |0.5 - 1| * |2.25 - 4| = 0.875.
        assert!((wd.eval(&[0.5]) - 0.875).abs() < 1e-12);
        assert!(wd.eval(&[10.0]) > 0.0);
    }

    #[test]
    fn weak_distance_axioms_hold_on_samples() {
        let wd = BoundaryWeakDistance::new(Fig2Program::new());
        let samples: Vec<Vec<f64>> = (-50..50).map(|i| vec![i as f64 * 0.31]).collect();
        let refs: Vec<&[f64]> = samples.iter().map(|v| v.as_slice()).collect();
        assert_eq!(wd.check_nonnegative(refs), None);
    }

    #[test]
    fn batched_eval_matches_scalar_eval() {
        let xs: Vec<Vec<f64>> = (-40..40).map(|i| vec![i as f64 * 0.17]).collect();
        for mode in [
            BoundaryMode::Product,
            BoundaryMode::Single(fp_runtime::BranchId(1)),
            BoundaryMode::Characteristic,
            BoundaryMode::SquaredResidual,
        ] {
            let wd = BoundaryWeakDistance::new(Fig2Program::new()).with_mode(mode);
            let mut out = Vec::new();
            wd.eval_batch(&xs, &mut out);
            assert_eq!(out.len(), xs.len());
            for (x, &batched) in xs.iter().zip(&out) {
                assert_eq!(batched.to_bits(), wd.eval(x).to_bits(), "{mode:?} at {x:?}");
            }
        }
    }

    #[test]
    fn batched_eval_matches_scalar_eval_for_interpreted_programs() {
        // The fpir ModuleProgram overrides batch_executor with a reusable
        // interpreter session; the weak distance values must not change.
        let program = fpir::interp::ModuleProgram::new(fpir::programs::fig2_program(), "prog")
            .expect("entry exists");
        let wd = BoundaryWeakDistance::new(program);
        let xs: Vec<Vec<f64>> = (-60..60).map(|i| vec![i as f64 * 0.13]).collect();
        let mut out = Vec::new();
        wd.eval_batch(&xs, &mut out);
        for (x, &batched) in xs.iter().zip(&out) {
            assert_eq!(batched.to_bits(), wd.eval(x).to_bits(), "at {x:?}");
        }
    }

    #[test]
    fn kernel_policy_never_changes_weak_distance_values() {
        // The same interpreted program through all three batch backends:
        // interpreter session (`Never`), lanewise kernel (`Always`) and
        // the automatic pick — every value bit-identical to scalar eval.
        let xs: Vec<Vec<f64>> = (-60..60).map(|i| vec![i as f64 * 0.13]).collect();
        for policy in [KernelPolicy::Never, KernelPolicy::Always, KernelPolicy::Auto] {
            let program =
                fpir::interp::ModuleProgram::new(fpir::programs::fig2_program(), "prog")
                    .expect("entry exists");
            let wd = BoundaryWeakDistance::new(program).with_kernel_policy(policy);
            let mut out = Vec::new();
            wd.eval_batch(&xs, &mut out);
            for (x, &batched) in xs.iter().zip(&out) {
                assert_eq!(
                    batched.to_bits(),
                    wd.eval(x).to_bits(),
                    "{policy:?} at {x:?}"
                );
            }
        }
    }

    #[test]
    fn find_any_returns_a_true_boundary_value() {
        let analysis = BoundaryAnalysis::new(Fig2Program::new());
        let outcome = analysis.find_any(&AnalysisConfig::quick(11));
        let input = outcome.into_input().expect("boundary value exists");
        assert!(
            !analysis.triggered_conditions(&input).is_empty(),
            "reported input {input:?} does not trigger a boundary condition"
        );
    }

    #[test]
    fn find_all_covers_both_conditions_of_fig2() {
        let analysis = BoundaryAnalysis::new(Fig2Program::new());
        let reports = analysis.find_all(&AnalysisConfig::quick(5));
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(r.reached(), "condition {} not reached", r.label);
            let witness = r.witness.clone().unwrap();
            assert!(analysis.triggered_conditions(&witness).contains(&r.site));
        }
    }

    #[test]
    fn single_mode_penalizes_unreached_sites() {
        // Branch 1 of Fig. 2 executes on every input, but a program input of
        // huge magnitude keeps |y - 4| large.
        let wd = BoundaryWeakDistance::new(Fig2Program::new()).with_mode(BoundaryMode::Single(BranchId(1)));
        assert!(wd.eval(&[1.0e3]) > 0.0);
        assert_eq!(wd.eval(&[2.0]), 0.0);
    }

    #[test]
    fn characteristic_mode_is_flat_but_sound() {
        let wd = BoundaryWeakDistance::new(Fig2Program::new()).with_mode(BoundaryMode::Characteristic);
        assert_eq!(wd.eval(&[2.0]), 0.0);
        assert_eq!(wd.eval(&[0.5]), 1.0);
        assert_eq!(wd.eval(&[17.3]), 1.0);
    }

    /// `|x| + 1 < 0` can never hold (and never sit on its boundary) for
    /// any input: the interval analysis proves it, and the targeted
    /// boundary search is pruned before a single evaluation. The other
    /// branch's boundary (`x == 0`) stays a normal, solvable search.
    #[test]
    fn provably_unreachable_boundary_is_pruned_at_zero_cost() {
        use fpir::ir::{BinOp, UnOp};
        let mut mb = fpir::ModuleBuilder::new();
        let mut f = mb.function("guarded", 1);
        let x = f.param(0);
        let one = f.constant(1.0);
        let zero = f.constant(0.0);
        let a = f.un(UnOp::Abs, x, None);
        let y = f.bin(BinOp::Add, a, one, None);
        let dead = f.new_block();
        let live = f.new_block();
        f.cond_br(Some(0), y, fp_runtime::Cmp::Lt, zero, dead, live);
        f.switch_to(dead);
        f.ret(Some(y));
        f.switch_to(live);
        let neg = f.new_block();
        let pos = f.new_block();
        f.cond_br(Some(1), x, fp_runtime::Cmp::Lt, zero, neg, pos);
        f.switch_to(neg);
        f.ret(Some(x));
        f.switch_to(pos);
        f.ret(Some(y));
        f.finish();
        let program = fpir::ModuleProgram::new(mb.build(), "guarded")
            .expect("entry exists")
            .with_domain(vec![fp_runtime::Interval::symmetric(1.0e3)]);
        let analysis = BoundaryAnalysis::new(program);
        let config = AnalysisConfig::quick(11);

        let pruned = analysis.find_condition_run(BranchId(0), &config);
        assert!(pruned.statically_pruned());
        assert_eq!(pruned.outcome.evals(), 0, "pruned target costs nothing");
        assert!(!pruned.outcome.is_found());

        let solved = analysis.find_condition_run(BranchId(1), &config);
        assert!(!solved.statically_pruned());
        assert!(solved.outcome.is_found(), "x == 0 is a real boundary");
        assert!(solved.outcome.evals() > 0);
    }

    #[test]
    fn squared_residual_mode_underflows_limitation2() {
        // The Section 5.2 example: for `if (x == 0)` a squared residual
        // underflows to 0 for tiny nonzero x, producing a spurious zero of
        // the weak distance — Limitation 2. The absolute-value encoding does
        // not.
        use mini_gsl::toy::EqZeroProgram;
        let wd = BoundaryWeakDistance::new(EqZeroProgram::new()).with_mode(BoundaryMode::SquaredResidual);
        assert_eq!(wd.eval(&[1.0e-200]), 0.0, "squared residual underflowed as expected");
        let wd_abs = BoundaryWeakDistance::new(EqZeroProgram::new());
        assert!(wd_abs.eval(&[1.0e-200]) > 0.0);
    }
}
