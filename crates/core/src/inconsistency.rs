//! The Section 6.3.2 inconsistency check and root-cause classification.
//!
//! An *inconsistency* is a computation that reports `GSL_SUCCESS` while its
//! result value or error estimate is `±inf` or NaN. The checker replays the
//! witness inputs produced by overflow detection against the benchmark's
//! status-convention entry point and classifies the root cause from the
//! runtime trace, mirroring the manual `gdb` analysis of Table 5.

use fp_runtime::{Analyzable, Event, FpOp, TraceRecorder};
use std::fmt;

/// The observable outcome of a status-convention function: did it claim
/// success, and what values did it hand back to the caller.
#[derive(Debug, Clone, PartialEq)]
pub struct StatusOutcome {
    /// `true` iff the returned status is `GSL_SUCCESS`.
    pub success: bool,
    /// The values the caller would consume, labelled (`val`, `err`, ...).
    pub values: Vec<(String, f64)>,
}

impl StatusOutcome {
    /// Creates an outcome from a success flag and labelled values.
    pub fn new(success: bool, values: Vec<(String, f64)>) -> Self {
        StatusOutcome { success, values }
    }

    /// Returns `true` if this outcome is an inconsistency: success claimed
    /// but some returned value is non-finite.
    pub fn is_inconsistent(&self) -> bool {
        self.success && self.values.iter().any(|(_, v)| !v.is_finite())
    }
}

/// Root causes distinguished by the classifier (the last column of Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootCause {
    /// An input of enormous magnitude propagates directly into the result.
    LargeInput,
    /// Intermediate operands grow until an elementary operation overflows.
    LargeOperands,
    /// A square root receives a negative operand.
    NegativeSqrt,
    /// A division by a vanished (zero) intermediate.
    DivisionByZero,
    /// A trigonometric kernel evaluated far outside its valid range.
    InaccurateTrig,
    /// None of the heuristics matched.
    Unknown,
}

impl fmt::Display for RootCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RootCause::LargeInput => "Large input",
            RootCause::LargeOperands => "Large operands",
            RootCause::NegativeSqrt => "negative in sqrt",
            RootCause::DivisionByZero => "division by zero",
            RootCause::InaccurateTrig => "Inaccurate trigonometric kernel",
            RootCause::Unknown => "Unknown",
        };
        f.write_str(s)
    }
}

/// One detected inconsistency.
#[derive(Debug, Clone)]
pub struct Inconsistency {
    /// The input that triggers it.
    pub input: Vec<f64>,
    /// The status-convention outcome observed.
    pub outcome: StatusOutcome,
    /// The classified root cause.
    pub cause: RootCause,
}

/// Checks a batch of witness inputs against a status-convention entry point
/// and classifies each inconsistency found.
///
/// `program` is the probed benchmark (used for trace-based classification);
/// `status_fn` is its GSL-convention entry point.
pub fn find_inconsistencies<P, F>(
    program: &P,
    status_fn: F,
    inputs: &[Vec<f64>],
) -> Vec<Inconsistency>
where
    P: Analyzable,
    F: Fn(&[f64]) -> StatusOutcome,
{
    let mut found = Vec::new();
    for input in inputs {
        let outcome = status_fn(input);
        if outcome.is_inconsistent() {
            let cause = classify(program, input);
            found.push(Inconsistency {
                input: input.clone(),
                outcome,
                cause,
            });
        }
    }
    found
}

/// Classifies the root cause of an exceptional execution by replaying it and
/// inspecting the event trace.
pub fn classify<P: Analyzable>(program: &P, input: &[f64]) -> RootCause {
    if input.iter().any(|v| v.abs() >= 1.0e150) {
        return RootCause::LargeInput;
    }
    let mut rec = TraceRecorder::new();
    program.run(input, &mut rec);

    // Find the first exceptional operation in program order and look at how
    // the exceptional value came to be.
    let mut prev_finite_ops: Vec<(FpOp, f64)> = Vec::new();
    for ev in rec.events() {
        if let Event::Op(op) = ev {
            if !op.value.is_finite() {
                return match op.op {
                    FpOp::Sqrt => RootCause::NegativeSqrt,
                    FpOp::Div => {
                        // A division producing inf/NaN from finite, moderate
                        // inputs means the denominator vanished.
                        let operands_moderate = prev_finite_ops
                            .iter()
                            .rev()
                            .take(4)
                            .all(|(_, v)| v.abs() < 1.0e100);
                        if operands_moderate {
                            RootCause::DivisionByZero
                        } else {
                            RootCause::LargeOperands
                        }
                    }
                    FpOp::Cos | FpOp::Sin | FpOp::Tan => RootCause::InaccurateTrig,
                    FpOp::Mul | FpOp::Add | FpOp::Sub | FpOp::Pow => RootCause::LargeOperands,
                    _ => RootCause::Unknown,
                };
            }
            if op.value.is_nan() && op.op == FpOp::Sqrt {
                return RootCause::NegativeSqrt;
            }
            prev_finite_ops.push((op.op, op.value));
        }
    }
    // No instrumented op was exceptional: the problem arose in uninstrumented
    // code (e.g. a trigonometric kernel); report the dominant suspect.
    if prev_finite_ops
        .iter()
        .any(|(_, v)| v.abs() > 1.0e40)
    {
        RootCause::InaccurateTrig
    } else {
        RootCause::Unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mini_gsl::airy::{airy_outcome, AiryAi};
    use mini_gsl::bessel::{bessel_outcome, BesselKnuScaled};

    fn bessel_status(input: &[f64]) -> StatusOutcome {
        let (r, status) = bessel_outcome(input);
        StatusOutcome::new(
            status.is_success(),
            vec![("val".into(), r.val), ("err".into(), r.err)],
        )
    }

    fn airy_status(input: &[f64]) -> StatusOutcome {
        let (r, status) = airy_outcome(input);
        StatusOutcome::new(
            status.is_success(),
            vec![("val".into(), r.val), ("err".into(), r.err)],
        )
    }

    #[test]
    fn status_outcome_inconsistency_detection() {
        let ok = StatusOutcome::new(true, vec![("val".into(), 1.0)]);
        assert!(!ok.is_inconsistent());
        let bad = StatusOutcome::new(true, vec![("val".into(), f64::INFINITY)]);
        assert!(bad.is_inconsistent());
        let failed = StatusOutcome::new(false, vec![("val".into(), f64::NAN)]);
        assert!(!failed.is_inconsistent(), "an honest error status is not an inconsistency");
    }

    #[test]
    fn bessel_table5_rows_are_detected_and_classified() {
        let program = BesselKnuScaled::new();
        let inputs = vec![
            vec![1.79e308, -1.5e2], // large input nu
            vec![3.2e157, 5.3e1],   // large input nu (second * overflows)
            vec![8.4e77, -2.5e2],   // negative operand of sqrt
            vec![1.0, 10.0],        // benign
        ];
        let found = find_inconsistencies(&program, bessel_status, &inputs);
        assert_eq!(found.len(), 3, "three of the four inputs are inconsistent");
        assert_eq!(found[0].cause, RootCause::LargeInput);
        assert_eq!(found[1].cause, RootCause::LargeInput);
        // The paper's manual gdb analysis attributes this row to the negative
        // sqrt operand; the automated trace heuristic may instead blame the
        // large intermediate product that overflows first — both are accepted.
        assert!(
            matches!(found[2].cause, RootCause::NegativeSqrt | RootCause::LargeOperands),
            "cause = {}",
            found[2].cause
        );
    }

    #[test]
    fn airy_bug1_is_classified_as_division_by_zero() {
        // Locate the absorption window (as in the mini-gsl tests) and check
        // the classifier's verdict.
        let center = -(16.0_f64 / (1.0 - 0.419_07)).cbrt();
        let bits = center.to_bits();
        let mut witness = None;
        for offset in -200_000i64..200_000 {
            let x = f64::from_bits((bits as i64 + offset) as u64);
            if airy_status(&[x]).is_inconsistent() {
                witness = Some(x);
                break;
            }
        }
        let x = witness.expect("bug 1 window exists");
        assert_eq!(classify(&AiryAi::new(), &[x]), RootCause::DivisionByZero);
    }

    #[test]
    fn airy_bug2_is_classified_as_trig_or_large_operands() {
        // Find a huge negative input whose outcome is inconsistent.
        let mut witness = None;
        for k in 0..500 {
            let x = -1.14e34 * (1.0 + k as f64 * 1.0e-6);
            if airy_status(&[x]).is_inconsistent() {
                witness = Some(x);
                break;
            }
        }
        let x = witness.expect("bug 2 manifests for some huge input");
        let cause = classify(&AiryAi::new(), &[x]);
        assert!(
            matches!(cause, RootCause::InaccurateTrig | RootCause::LargeOperands),
            "cause = {cause}"
        );
    }

    #[test]
    fn root_cause_display() {
        assert_eq!(RootCause::DivisionByZero.to_string(), "division by zero");
        assert_eq!(RootCause::NegativeSqrt.to_string(), "negative in sqrt");
    }
}
