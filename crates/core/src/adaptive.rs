//! Adaptive portfolio mode: bandit-driven budget reallocation across
//! resumable backends.
//!
//! Race mode ([`PortfolioPolicy::Race`]) spends up to N full budgets to run
//! N backends and throws away all but one run. This module implements the
//! alternative the ROADMAP's "Adaptive portfolios" item calls for: spend
//! *one* run's budget ([`AnalysisConfig::rounds`] ×
//! [`AnalysisConfig::max_evals`]) and reallocate it between the backends
//! while they run, concentrating evaluations on the backend whose residual
//! (best weak-distance value so far) is improving fastest.
//!
//! Three pieces make that possible:
//!
//! * [`SteppedAnalysis`] — the driver's restart loop (Algorithm 3 step 4)
//!   as a resumable state machine: rounds of a
//!   [`SteppedMinimizer`](wdm_mo::SteppedMinimizer) backend, merged
//!   exactly as the sequential driver merges them, pausable at any
//!   eval-budget slice;
//! * a deterministic **UCB1-style bandit** over per-slice best-residual
//!   improvement: each scheduler round, the arm maximizing
//!   `mean_reward + c·sqrt(ln t / n)` (ties broken by a seeded hash)
//!   receives a full slice, every other live arm a small probe slice — so
//!   budget concentrates without starving exploration;
//! * deterministic parallel slice execution: the arms are independent
//!   state machines, so stepping them concurrently and folding the
//!   statistics in arm order is bit-identical at any
//!   [`AnalysisConfig::parallelism`].
//!
//! # Determinism and cancellation
//!
//! Unlike race mode, adaptive mode is **bit-identical at any thread
//! count**: which arm gets budget depends only on merged per-slice
//! statistics, never on timing. The price is that first-hit cancellation
//! acts at slice granularity — when an arm finds a zero, the other arms of
//! that scheduler round finish their (small) slices before the scheduler
//! fires the shared [`CancelToken`] and stops them — bounded post-hit work
//! instead of a timing race. External cancellation stops the scheduler at
//! the next round boundary and is then observed by every arm.
//!
//! [`PortfolioPolicy::Race`]: crate::driver::PortfolioPolicy::Race

use crate::checkpoint::{
    ActiveCkpt, AdaptiveCheckpoint, AnalysisCheckpoint, ArmStatsCkpt, EscalationCkpt,
    EscalationHandoffCkpt, EscalationSpecCkpt,
};
use crate::driver::{
    derive_round_seed, outcome_from_best, pick_winner, round_improves, AnalysisConfig,
    MinimizationRun, PortfolioEntry, PortfolioRun,
};
use crate::weak_distance::{WeakDistance, WeakDistanceObjective};
use crate::BackendKind;
use std::sync::{Mutex, MutexGuard};
use wdm_mo::checkpoint::ResultCkpt;
use wdm_mo::stepped::{MinimizerStep, StepStatus};
use wdm_mo::{
    CancelToken, MinimizeResult, NoTrace, Problem, SamplingTrace, SteppedMinimizer,
};

/// UCB exploration constant, sized for rewards in `[0, 1]`.
const UCB_EXPLORATION: f64 = 0.5;

/// Recency weight of the reward average: an exponential moving average
/// rather than the all-history UCB1 mean, so an arm whose residual has
/// plateaued loses its lead within a few scheduler rounds instead of
/// coasting on early improvements ("best residual *trajectory*", not best
/// residual history).
const REWARD_DECAY: f64 = 0.3;

/// A non-leader live arm receives `base_slice / PROBE_DIVISOR` evaluations
/// per scheduler round, so every arm keeps producing reward observations.
const PROBE_DIVISOR: usize = 8;

/// Salt decorrelating the tie-breaking stream from round seeds.
const TIEBREAK_SALT: u64 = 0x0ADA_97F0_1105_C0DE;

/// One round of a stepped analysis: the backend's resumable run plus the
/// per-round sampling trace (mirroring the driver's `run_round`).
struct ActiveRound {
    machine: Box<dyn MinimizerStep>,
    trace: Option<SamplingTrace>,
}

/// The driver's restart loop as a resumable state machine: rounds of a
/// stepped backend with round-derived seeds, merged incrementally exactly
/// as [`minimize_weak_distance`](crate::driver::minimize_weak_distance)
/// merges them. Run to completion — in one slice or many — the result is
/// bit-identical to the direct driver run of the same configuration.
pub struct SteppedAnalysis<'wd> {
    objective: WeakDistanceObjective<'wd>,
    bounds: wdm_mo::Bounds,
    config: AnalysisConfig,
    backend: Box<dyn SteppedMinimizer>,
    cancel: CancelToken,
    rounds: usize,
    round: usize,
    active: Option<ActiveRound>,
    best: Option<MinimizeResult>,
    total_evals: usize,
    trace: SamplingTrace,
    hit: bool,
    finished: bool,
}

impl<'wd> SteppedAnalysis<'wd> {
    /// Captures the initial state of an analysis of `wd` under `config`
    /// (whose `backend` selects the stepped backend; `parallelism` is
    /// ignored — slices of one analysis are sequential by construction).
    pub fn new(wd: &'wd dyn WeakDistance, config: &AnalysisConfig, cancel: CancelToken) -> Self {
        Self::with_parts(wd, config, cancel, config.backend.build_stepped(), None)
    }

    /// [`new`](Self::new) with an explicit backend state machine and an
    /// optional search-box override — the seam escalation-spawned arms
    /// (a [`wdm_mo::Polish`] slice, a bound-tightened restart) are built
    /// through: their machine or box is not derivable from the config
    /// alone.
    pub(crate) fn with_parts(
        wd: &'wd dyn WeakDistance,
        config: &AnalysisConfig,
        cancel: CancelToken,
        backend: Box<dyn SteppedMinimizer>,
        bounds: Option<wdm_mo::Bounds>,
    ) -> Self {
        let objective = WeakDistanceObjective::new(wd);
        let bounds = bounds.unwrap_or_else(|| objective.bounds());
        SteppedAnalysis {
            objective,
            bounds,
            backend,
            cancel,
            rounds: config.rounds.max(1),
            round: 0,
            active: None,
            best: None,
            total_evals: 0,
            trace: SamplingTrace::with_stride(config.sample_stride),
            hit: false,
            finished: false,
            config: config.clone(),
        }
    }

    /// Advances the analysis by (at least) `slice` objective evaluations,
    /// starting new rounds as earlier ones finish. Returns `true` once the
    /// analysis is finished — some round hit zero, every round ran, or
    /// cancellation was observed.
    pub fn step(&mut self, slice: usize) -> bool {
        if self.finished {
            return true;
        }
        // Between rounds: cancellation stops the restart loop before a new
        // round starts, mirroring the driver's sequential path.
        if self.active.is_none() && self.round > 0 && self.cancel.is_cancelled() {
            self.finished = true;
            return true;
        }

        // Every slice of one analysis runs against this same problem.
        let problem = Problem::new(&self.objective, self.bounds.clone())
            .with_target(0.0)
            .with_max_evals(self.config.max_evals)
            .with_cancel(self.cancel.clone());
        if self.active.is_none() {
            let seed = derive_round_seed(self.config.seed, self.round as u64);
            let machine = self.backend.start(&problem, seed);
            let trace = self
                .config
                .record_samples
                .then(|| SamplingTrace::with_stride(self.config.sample_stride));
            self.active = Some(ActiveRound { machine, trace });
        }
        let active = self.active.as_mut().expect("round started above");
        let status = match &mut active.trace {
            Some(trace) => active.machine.step(&problem, slice, trace),
            None => active.machine.step(&problem, slice, &mut NoTrace),
        };
        drop(problem);
        if status == StepStatus::Paused {
            return false;
        }

        let ActiveRound { machine, trace } = self.active.take().expect("round was active");
        self.merge(machine.result(), trace.unwrap_or_default());
        self.finished
    }

    /// Folds one finished round into the incremental merge — the exact
    /// logic of the driver's `merge_rounds`, applied round by round.
    fn merge(&mut self, result: MinimizeResult, trace: SamplingTrace) {
        self.total_evals += result.evals;
        self.trace.append(trace);
        if round_improves(&result, self.best.as_ref()) {
            self.best = Some(result);
        }
        if self.best.as_ref().map(|b| b.value <= 0.0).unwrap_or(false) {
            self.hit = true;
            self.finished = true;
            return;
        }
        self.round += 1;
        if self.round >= self.rounds {
            self.finished = true;
        }
    }

    /// Whether the analysis is finished.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Whether the backend only pauses at whole-round granularity (see
    /// [`wdm_mo::SteppedMinimizer::is_coarse`]) — any slice costs it a
    /// full round.
    pub fn is_coarse(&self) -> bool {
        self.backend.is_coarse()
    }

    /// Whether some round's minimum reached zero.
    pub fn found(&self) -> bool {
        self.hit
    }

    /// Evaluations charged so far, including the active round's.
    pub fn evals(&self) -> usize {
        self.total_evals
            + self
                .active
                .as_ref()
                .map(|a| a.machine.evals())
                .unwrap_or(0)
    }

    /// The best point seen so far and its value, merging completed
    /// rounds with the active round's partial incumbent — `None` before
    /// any evaluation. Unlike [`run`](Self::run) this clones no traces,
    /// so the scheduler can poll it every round.
    pub(crate) fn best_snapshot(&self) -> Option<(Vec<f64>, f64)> {
        let mut best: Option<(Vec<f64>, f64)> = self.best.as_ref().map(|b| (b.x.clone(), b.value));
        if let Some(active) = &self.active {
            let partial = active.machine.result();
            let replaces = match &best {
                None => true,
                Some((_, v)) => partial.value < *v || v.is_nan(),
            };
            if replaces && !partial.x.is_empty() {
                best = Some((partial.x, partial.value));
            }
        }
        best
    }

    /// Best weak-distance value so far across completed rounds and the
    /// active round (`f64::INFINITY` before the first evaluation).
    pub fn best_value(&self) -> f64 {
        let merged = self
            .best
            .as_ref()
            .map(|b| b.value)
            .unwrap_or(f64::INFINITY);
        match &self.active {
            Some(active) => {
                let v = active.machine.best_value();
                if v < merged || merged.is_nan() {
                    v
                } else {
                    merged
                }
            }
            None => merged,
        }
    }

    /// The analysis result. After the run finishes this is exactly what
    /// the direct driver run returns; mid-run it additionally charges the
    /// active round's snapshot (best-so-far, evaluations spent) so a
    /// scheduler that withdraws the budget still reports honestly.
    pub fn run(&self) -> MinimizationRun {
        let mut best = self.best.clone();
        let mut total_evals = self.total_evals;
        let mut trace = self.trace.clone();
        if let Some(active) = &self.active {
            let partial = active.machine.result();
            total_evals += partial.evals;
            if let Some(t) = &active.trace {
                trace.append(t.clone());
            }
            if round_improves(&partial, best.as_ref()) {
                best = Some(partial);
            }
        }
        // An arm the scheduler never stepped (external cancellation before
        // the first slice) has nothing to report.
        let best = best.unwrap_or_else(|| {
            MinimizeResult::new(
                vec![f64::NAN; self.bounds.dim()],
                f64::INFINITY,
                0,
                wdm_mo::Termination::Cancelled,
            )
        });
        let outcome = outcome_from_best(&best, total_evals);
        MinimizationRun {
            outcome,
            best,
            trace,
        }
    }

    /// Snapshots the analysis for durable storage (floats as IEEE-754
    /// bit patterns, see [`crate::checkpoint`]). Returns `None` when a
    /// paused active round's backend cannot checkpoint (a coarse
    /// wrapper mid-round) — drive such a round to its next boundary
    /// first.
    pub fn checkpoint(&self) -> Option<AnalysisCheckpoint> {
        let active = match &self.active {
            None => None,
            Some(a) => Some(ActiveCkpt {
                step: a.machine.checkpoint()?,
                trace: a.trace.as_ref().map(SamplingTrace::checkpoint),
            }),
        };
        Some(AnalysisCheckpoint {
            round: self.round,
            active,
            best: self.best.as_ref().map(ResultCkpt::of),
            total_evals: self.total_evals,
            trace: self.trace.checkpoint(),
            hit: self.hit,
            finished: self.finished,
        })
    }

    /// Rebuilds an analysis from a [`checkpoint`](Self::checkpoint).
    /// `wd` and `config` are re-supplied by the caller and must match
    /// the checkpointed run (the snapshot stores neither, exactly as
    /// backend configs are re-supplied to
    /// [`SteppedMinimizer::restore`]); `cancel` is a fresh token —
    /// cancellation is deliberately not durable. Returns `None` if the
    /// active backend state does not match `config.backend` or fails
    /// validation.
    pub fn restore(
        wd: &'wd dyn WeakDistance,
        config: &AnalysisConfig,
        cancel: CancelToken,
        ckpt: &AnalysisCheckpoint,
    ) -> Option<Self> {
        Self::restore_with_parts(wd, config, cancel, config.backend.build_stepped(), None, ckpt)
    }

    /// [`restore`](Self::restore) with an explicit backend state machine
    /// and search-box override, mirroring [`with_parts`](Self::with_parts).
    pub(crate) fn restore_with_parts(
        wd: &'wd dyn WeakDistance,
        config: &AnalysisConfig,
        cancel: CancelToken,
        backend: Box<dyn SteppedMinimizer>,
        bounds: Option<wdm_mo::Bounds>,
        ckpt: &AnalysisCheckpoint,
    ) -> Option<Self> {
        let mut analysis = SteppedAnalysis::with_parts(wd, config, cancel, backend, bounds);
        analysis.round = ckpt.round;
        analysis.best = ckpt.best.as_ref().map(ResultCkpt::restore);
        analysis.total_evals = ckpt.total_evals;
        analysis.trace = SamplingTrace::from_checkpoint(&ckpt.trace);
        analysis.hit = ckpt.hit;
        analysis.finished = ckpt.finished;
        if let Some(a) = &ckpt.active {
            let problem = Problem::new(&analysis.objective, analysis.bounds.clone())
                .with_target(0.0)
                .with_max_evals(analysis.config.max_evals)
                .with_cancel(analysis.cancel.clone());
            let machine = analysis.backend.restore(&problem, &a.step)?;
            drop(problem);
            analysis.active = Some(ActiveRound {
                machine,
                trace: a.trace.as_ref().map(SamplingTrace::from_checkpoint),
            });
        }
        Some(analysis)
    }
}

/// Relative best-residual improvement of one slice, the bandit's reward:
/// 0 for no progress (or NaN), 1 for "reached finite from unbounded", and
/// the relative decrease `(before - after) / before` otherwise — weak
/// distances are nonnegative, so this lands in `[0, 1]`.
///
/// Every strictly improving slice earns a strictly positive reward: a
/// slice that improves past a non-positive incumbent (`before <= 0.0`,
/// reachable only through weak distances that dip below zero) earns the
/// full reward rather than the zero the relative formula would produce —
/// the old `before <= 0.0 → 0.0` branch starved exactly the slices that
/// crossed the finish line.
fn improvement(before: f64, after: f64) -> f64 {
    if before.is_nan() {
        // A NaN incumbent turning into a real value is progress (`<` would
        // never say so).
        return if after.is_finite() { 1.0 } else { 0.0 };
    }
    // NaN `after` lands here too: no progress. `-0.0 >= 0.0` holds, so a
    // `0.0 → -0.0` transition is (correctly) not an improvement.
    if after >= before || after.is_nan() {
        return 0.0;
    }
    if !before.is_finite() || before <= 0.0 {
        return 1.0;
    }
    ((before - after) / before).clamp(0.0, 1.0)
}

/// Per-arm bandit statistics: `plays` counts rounds led (the UCB `n`),
/// `mean_reward` the recency-weighted reward over *all* slices (probes
/// included), `seen` whether any slice has seeded the average yet.
struct ArmStats {
    plays: f64,
    mean_reward: f64,
    seen: bool,
}

/// Per-arm analysis config: decorrelate the backends' restart streams,
/// as in race mode (offset 0 leaves the seed unchanged).
fn arm_config(config: &AnalysisConfig, backend: BackendKind, index: usize) -> AnalysisConfig {
    config
        .clone()
        .with_backend(backend)
        .with_parallelism(1)
        .with_seed_offset(index as u64)
}

/// What an escalation-spawned arm runs.
#[derive(Debug, Clone, PartialEq)]
enum EscalationArmKind {
    /// A [`wdm_mo::Polish`] slice: Powell/Brent started exactly at the
    /// incumbent, one round.
    Polish {
        /// The incumbent at escalation time.
        x0: Vec<f64>,
    },
    /// A fresh restart of the named backend over the tightened box, with
    /// the configured round count.
    Restart {
        /// The restarted backend (the base arm with the best reward
        /// trajectory at escalation time).
        backend: BackendKind,
    },
}

/// The deterministic recipe of one escalation-spawned arm: everything
/// needed to (re)build it, checkpointed verbatim so a restored run
/// replays bit-identically.
#[derive(Debug, Clone, PartialEq)]
struct EscalationSpec {
    kind: EscalationArmKind,
    bounds: wdm_mo::Bounds,
}

impl EscalationSpec {
    /// The backend label the arm reports under (polish slices report as
    /// Powell — that is what they run).
    fn label(&self) -> BackendKind {
        match &self.kind {
            EscalationArmKind::Polish { .. } => BackendKind::Powell,
            EscalationArmKind::Restart { backend } => *backend,
        }
    }
}

/// A published escalation handoff: the tightened incumbent region, for
/// callers that can route it to a heavier engine mid-run (`wdm_xsat`
/// runs a focused sub-solve over it). Consuming or ignoring the handoff
/// never changes the portfolio's own evolution.
#[derive(Debug, Clone, PartialEq)]
pub struct EscalationHandoff {
    /// The tightened search box around the incumbent.
    pub bounds: wdm_mo::Bounds,
    /// The incumbent point the box was tightened around.
    pub incumbent: Vec<f64>,
    /// Zero-based index of the escalation event that published this.
    pub ordinal: usize,
}

/// The plateau detector plus the record of every escalation event — a
/// pure function of the slice history, durable through
/// [`AdaptivePortfolio::checkpoint`].
#[derive(Default)]
struct EscalationState {
    /// Consecutive scheduler rounds in which no live arm's mean reward
    /// reached the threshold.
    below: usize,
    /// Escalation events fired so far.
    events: usize,
    /// Spawn recipes of every escalation arm, in spawn order.
    specs: Vec<EscalationSpec>,
    /// The most recent handoff, until a caller takes it.
    handoff: Option<EscalationHandoff>,
}

/// Renders a box as parallel per-dimension bit vectors for the
/// checkpoint layer.
fn bounds_bits(bounds: &wdm_mo::Bounds) -> (Vec<u64>, Vec<u64>) {
    let lo = bounds.limits().iter().map(|&(lo, _)| lo.to_bits()).collect();
    let hi = bounds.limits().iter().map(|&(_, hi)| hi.to_bits()).collect();
    (lo, hi)
}

/// Decodes a checkpointed box, rejecting bit patterns
/// [`Bounds::new`](wdm_mo::Bounds::new) would panic on (NaN endpoints,
/// inverted limits) — corrupt disk state must surface as a failed
/// restore, not a panic.
fn bounds_from_bits(lo: &[u64], hi: &[u64]) -> Option<wdm_mo::Bounds> {
    if lo.len() != hi.len() {
        return None;
    }
    let mut limits = Vec::with_capacity(lo.len());
    for (&l, &h) in lo.iter().zip(hi) {
        let (l, h) = (f64::from_bits(l), f64::from_bits(h));
        if l.is_nan() || h.is_nan() || l > h {
            return None;
        }
        limits.push((l, h));
    }
    Some(wdm_mo::Bounds::new(limits))
}

/// Renders one escalation spec for the checkpoint layer.
fn spec_ckpt(spec: &EscalationSpec) -> EscalationSpecCkpt {
    let (lo, hi) = bounds_bits(&spec.bounds);
    match &spec.kind {
        EscalationArmKind::Polish { x0 } => EscalationSpecCkpt {
            kind: "polish".to_string(),
            backend: None,
            x0: x0.iter().map(|v| v.to_bits()).collect(),
            lo,
            hi,
        },
        EscalationArmKind::Restart { backend } => EscalationSpecCkpt {
            kind: "restart".to_string(),
            backend: Some(backend.name().to_string()),
            x0: Vec::new(),
            lo,
            hi,
        },
    }
}

/// Decodes one checkpointed escalation spec, validating the kind tag,
/// the backend name and the box.
fn spec_from_ckpt(ckpt: &EscalationSpecCkpt) -> Option<EscalationSpec> {
    let bounds = bounds_from_bits(&ckpt.lo, &ckpt.hi)?;
    let kind = match ckpt.kind.as_str() {
        "polish" => EscalationArmKind::Polish {
            x0: ckpt.x0.iter().map(|&b| f64::from_bits(b)).collect(),
        },
        "restart" => {
            let name = ckpt.backend.as_deref()?;
            let backend = BackendKind::all().into_iter().find(|b| b.name() == name)?;
            EscalationArmKind::Restart { backend }
        }
        _ => return None,
    };
    Some(EscalationSpec { kind, bounds })
}

/// The adaptive scheduler as a resumable value: the bandit statistics
/// plus every arm's [`SteppedAnalysis`], steppable one scheduler round
/// at a time. [`minimize_weak_distance_adaptive_cancellable`] is
/// exactly `new` + `while round(..) {}` + `finalize` + `into_run`, so a
/// caller driving a portfolio round by round — with serialize/restore
/// cycles in between ([`checkpoint`](Self::checkpoint) /
/// [`restore`](Self::restore)) — produces bit-identical results. This
/// is the seam the multi-tenant analysis service time-slices and makes
/// durable.
pub struct AdaptivePortfolio<'wd> {
    wd: &'wd dyn WeakDistance,
    config: AnalysisConfig,
    backends: Vec<BackendKind>,
    /// Backend label of every arm (base arms in backend order, then
    /// escalation-spawned arms in spawn order).
    arm_kinds: Vec<BackendKind>,
    /// The full search box, for tightening around incumbents.
    base_bounds: wdm_mo::Bounds,
    cancel: CancelToken,
    race: CancelToken,
    arms: Vec<Mutex<SteppedAnalysis<'wd>>>,
    coarse: Vec<bool>,
    stats: Vec<ArmStats>,
    pool: usize,
    base_slice: usize,
    probe_slice: usize,
    spent: usize,
    found: bool,
    t: u64,
    last_leader: Option<usize>,
    escalation: EscalationState,
}

impl<'wd> AdaptivePortfolio<'wd> {
    /// Captures the initial scheduler state for `backends` over `wd`.
    /// `cancel` is the external token; the scheduler derives the shared
    /// first-hit token from it, so outside cancellation reaches the
    /// arms and a found zero cancels the laggards.
    ///
    /// # Panics
    ///
    /// Panics if `backends` is empty.
    pub fn new(
        wd: &'wd dyn WeakDistance,
        config: &AnalysisConfig,
        backends: &[BackendKind],
        cancel: &CancelToken,
    ) -> Self {
        assert!(!backends.is_empty(), "portfolio needs at least one backend");
        // The shared first-hit token: a child of the external token so
        // outside cancellation reaches the arms, fired by the scheduler
        // when some arm finds a zero.
        let race = cancel.child();
        let arms: Vec<Mutex<SteppedAnalysis<'_>>> = backends
            .iter()
            .enumerate()
            .map(|(index, &backend)| {
                let cfg = arm_config(config, backend, index);
                Mutex::new(SteppedAnalysis::new(wd, &cfg, race.child()))
            })
            .collect();
        let stats = backends
            .iter()
            .map(|_| ArmStats {
                plays: 0.0,
                mean_reward: 0.0,
                seen: false,
            })
            .collect();
        Self::assemble(wd, config, backends, cancel.clone(), race, arms, stats)
    }

    /// Shared tail of [`new`](Self::new) and [`restore`](Self::restore):
    /// the scheduler parameters derived from the config.
    fn assemble(
        wd: &'wd dyn WeakDistance,
        config: &AnalysisConfig,
        backends: &[BackendKind],
        cancel: CancelToken,
        race: CancelToken,
        arms: Vec<Mutex<SteppedAnalysis<'wd>>>,
        stats: Vec<ArmStats>,
    ) -> Self {
        let coarse: Vec<bool> = arms
            .iter()
            .map(|arm| arm.lock().expect("adaptive arm lock").is_coarse())
            .collect();
        let rounds = config.rounds.max(1);
        // The shared evaluation pool: ONE direct backend run's worth. A
        // single-arm portfolio has nothing to reallocate and runs to
        // natural completion instead (bit-identical to the direct driver
        // run; a hard pool could cut the last round short, since local
        // searches may overshoot a round budget by a bounded amount).
        let pool = if backends.len() == 1 {
            usize::MAX
        } else {
            rounds.saturating_mul(config.max_evals).max(1)
        };
        let base_slice = (config.max_evals / 8).max(64);
        let probe_slice = (base_slice / PROBE_DIVISOR).max(16);
        let base_bounds = WeakDistanceObjective::new(wd).bounds();
        AdaptivePortfolio {
            wd,
            config: config.clone(),
            backends: backends.to_vec(),
            arm_kinds: backends.to_vec(),
            base_bounds,
            cancel,
            race,
            arms,
            coarse,
            stats,
            pool,
            base_slice,
            probe_slice,
            spent: 0,
            found: false,
            t: 0,
            last_leader: None,
            escalation: EscalationState::default(),
        }
    }

    fn lock(&self, i: usize) -> MutexGuard<'_, SteppedAnalysis<'wd>> {
        self.arms[i].lock().expect("adaptive arm lock")
    }

    /// Runs one scheduler round — leader election, slice allocation,
    /// parallel arm stepping over at most `workers` threads, statistics
    /// fold — and returns `true`. Returns `false` without doing work
    /// once the scheduler is done: cancellation observed, a zero found,
    /// the pool spent, or every arm finished.
    pub fn round(&mut self, workers: usize) -> bool {
        if self.cancel.is_cancelled() || self.found || self.spent >= self.pool {
            return false;
        }
        let alive: Vec<usize> = (0..self.arms.len())
            .filter(|&i| !self.lock(i).is_finished())
            .collect();
        if alive.is_empty() {
            return false;
        }

        // UCB1 scores on per-slice best-residual improvement: `plays`
        // counts *leaderships* (every alive arm is probed each round, so
        // counting probes would make the bonus a constant shift), which
        // gives arms that have not led recently a growing exploration
        // bonus on top of their probe-fed reward average. Never-led arms
        // go first; ties break by a seeded per-(round, arm) hash, so the
        // schedule is a pure function of (config, statistics).
        let stats = &self.stats;
        let t = self.t;
        let score = |i: usize| {
            if stats[i].plays == 0.0 {
                f64::INFINITY
            } else {
                let bonus = (((t + 1) as f64).ln() / stats[i].plays).sqrt();
                let s = stats[i].mean_reward + UCB_EXPLORATION * bonus;
                if s.is_nan() {
                    f64::NEG_INFINITY
                } else {
                    s
                }
            }
        };
        let tiebreak = |i: usize| {
            derive_round_seed(
                self.config.seed ^ TIEBREAK_SALT,
                t.wrapping_mul(self.backends.len() as u64)
                    .wrapping_add(i as u64),
            )
        };
        // `total_cmp`, not `partial_cmp`: the score closure maps NaN to
        // -inf, but a NaN *input* (e.g. a corrupt checkpoint's bit
        // pattern in `plays`) could still surface NaN through the bonus
        // term — a silently non-total comparison must not be able to
        // panic or pick an arbitrary leader. On NaN-free scores this
        // orders exactly like the old tuple `partial_cmp`.
        let leader = alive
            .iter()
            .copied()
            .max_by(|&a, &b| {
                score(a)
                    .total_cmp(&score(b))
                    .then_with(|| tiebreak(a).cmp(&tiebreak(b)))
            })
            .expect("alive is non-empty");

        // Reallocation: the leader gets a full slice, every other live
        // arm a probe slice — except coarse arms, for which any slice
        // costs a whole round: they only run when they lead (the
        // never-led bootstrap and the growing UCB bonus still get them
        // scheduled, just never as throwaway probes).
        let allocation: Vec<(usize, usize)> = alive
            .iter()
            .filter(|&&i| i == leader || !self.coarse[i])
            .map(|&i| {
                (
                    i,
                    if i == leader {
                        self.base_slice
                    } else {
                        self.probe_slice
                    },
                )
            })
            .collect();

        // The arms are independent state machines, so stepping them in
        // parallel and folding the statistics in arm order below is
        // bit-identical at any worker count.
        let outcomes = wdm_mo::scoped_map(
            workers.max(1).min(allocation.len()),
            allocation.len(),
            |k| {
                let (i, slice) = allocation[k];
                let mut arm = self.lock(i);
                let evals_before = arm.evals();
                let best_before = arm.best_value();
                arm.step(slice);
                (
                    i,
                    arm.evals() - evals_before,
                    best_before,
                    arm.best_value(),
                    arm.found(),
                )
            },
        );
        for (i, delta_evals, before, after, arm_found) in outcomes {
            self.spent += delta_evals;
            let reward = improvement(before, after);
            let stat = &mut self.stats[i];
            // Probe slices feed the reward average too; only leaderships
            // count as plays (see the score comment above).
            if i == leader {
                stat.plays += 1.0;
            }
            if stat.seen {
                stat.mean_reward += REWARD_DECAY * (reward - stat.mean_reward);
            } else {
                stat.mean_reward = reward;
                stat.seen = true;
            }
            self.found |= arm_found;
        }
        // Plateau detection runs on the just-folded statistics, before
        // the round counter advances: a pure function of the slice
        // history, so it is worker-count-invariant and replays
        // identically from a checkpoint.
        self.maybe_escalate();
        self.t += 1;
        self.last_leader = Some(leader);
        true
    }

    /// The plateau detector: counts consecutive scheduler rounds in
    /// which no live arm's recency-weighted mean reward reaches the
    /// configured threshold, and fires [`escalate`](Self::escalate) when
    /// the patience runs out. A no-op unless
    /// [`AnalysisConfig::with_escalation`] enabled escalation.
    fn maybe_escalate(&mut self) {
        let Some(esc) = self.config.escalation.clone() else {
            return;
        };
        if self.found || self.spent >= self.pool {
            return;
        }
        let alive: Vec<usize> = (0..self.arms.len())
            .filter(|&i| !self.lock(i).is_finished())
            .collect();
        // Only count rounds where every live arm has produced at least
        // one reward observation — before that, "no arm is improving"
        // just means "we have not looked yet".
        if alive.is_empty() || !alive.iter().all(|&i| self.stats[i].seen) {
            return;
        }
        // f64::max ignores NaN operands, so NaN rewards (reachable only
        // through corrupt checkpoints) cannot mask a plateau.
        let peak = alive
            .iter()
            .map(|&i| self.stats[i].mean_reward)
            .fold(f64::NEG_INFINITY, f64::max);
        if peak >= esc.threshold {
            self.escalation.below = 0;
            return;
        }
        self.escalation.below += 1;
        if self.escalation.below >= esc.patience.max(1)
            && self.escalation.events < esc.max_escalations
        {
            self.escalate(&esc);
        }
    }

    /// One escalation event: fold the deterministic incumbent out of the
    /// arms, tighten the search box around it, spawn a polish arm and a
    /// bound-tightened sampling restart, and publish the handoff for
    /// heavier engines.
    fn escalate(&mut self, esc: &crate::driver::EscalationConfig) {
        self.escalation.below = 0;
        // The incumbent: fold every arm's best snapshot in arm order
        // with the same NaN-aware rule the round merge uses.
        let mut incumbent: Option<(Vec<f64>, f64)> = None;
        for i in 0..self.arms.len() {
            if let Some((x, v)) = self.lock(i).best_snapshot() {
                let replaces = match &incumbent {
                    None => true,
                    Some((_, best)) => v < *best || best.is_nan(),
                };
                if replaces {
                    incumbent = Some((x, v));
                }
            }
        }
        let Some((x0, _)) = incumbent else {
            return;
        };
        let ordinal = self.escalation.events;
        self.escalation.events += 1;
        let tightened = self.base_bounds.tightened_around(&x0, esc.tighten);
        // The restart arm deliberately uses the model-free sampler over
        // the tightened box: a plateau means the learned backend rankings
        // are exactly what stopped paying off, and flat regions reward
        // dense coverage, not another descent. It pairs with the polish
        // arm as explore/exploit over the same box.
        let specs = [
            EscalationSpec {
                kind: EscalationArmKind::Polish { x0: x0.clone() },
                bounds: tightened.clone(),
            },
            EscalationSpec {
                kind: EscalationArmKind::Restart {
                    backend: BackendKind::RandomSearch,
                },
                bounds: tightened.clone(),
            },
        ];
        for spec in specs {
            self.spawn_escalation_arm(&spec, None);
            self.escalation.specs.push(spec);
        }
        self.escalation.handoff = Some(EscalationHandoff {
            bounds: tightened,
            incumbent: x0,
            ordinal,
        });
    }

    /// Appends one escalation arm (fresh, or restored from `ckpt`) built
    /// from its spec. The arm's seed offset is its absolute arm index,
    /// continuing the base arms' offset sequence, so the spawn is a pure
    /// function of (config, spec, position). Returns `false` if a
    /// checkpointed arm state fails validation.
    fn spawn_escalation_arm(
        &mut self,
        spec: &EscalationSpec,
        ckpt: Option<&AnalysisCheckpoint>,
    ) -> bool {
        let index = self.arms.len();
        let mut cfg = arm_config(&self.config, spec.label(), index);
        let machine: Box<dyn SteppedMinimizer> = match &spec.kind {
            EscalationArmKind::Polish { x0 } => {
                // A polish slice is one deterministic local search, not a
                // restart loop: one round.
                cfg = cfg.with_rounds(1);
                Box::new(wdm_mo::Polish::from_incumbent(x0.clone()))
            }
            EscalationArmKind::Restart { backend } => backend.build_stepped(),
        };
        let analysis = match ckpt {
            None => SteppedAnalysis::with_parts(
                self.wd,
                &cfg,
                self.race.child(),
                machine,
                Some(spec.bounds.clone()),
            ),
            Some(c) => {
                let Some(a) = SteppedAnalysis::restore_with_parts(
                    self.wd,
                    &cfg,
                    self.race.child(),
                    machine,
                    Some(spec.bounds.clone()),
                    c,
                ) else {
                    return false;
                };
                a
            }
        };
        self.coarse.push(analysis.is_coarse());
        self.arms.push(Mutex::new(analysis));
        self.arm_kinds.push(spec.label());
        if self.stats.len() < self.arms.len() {
            // Fresh spawn (restore re-fills stats from the checkpoint):
            // never-played arms score infinity, so a new escalation arm
            // leads the very next round.
            self.stats.push(ArmStats {
                plays: 0.0,
                mean_reward: 0.0,
                seen: false,
            });
        }
        true
    }

    /// Takes the most recent escalation handoff, if one is pending: the
    /// tightened incumbent region a heavier engine (`wdm_xsat`'s
    /// focused sub-solve) can work mid-run. Consuming or ignoring it
    /// never changes the portfolio's own evolution, so callers that do
    /// not understand handoffs keep the determinism contract for free.
    pub fn take_handoff(&mut self) -> Option<EscalationHandoff> {
        self.escalation.handoff.take()
    }

    /// Escalation events fired so far.
    pub fn escalations(&self) -> usize {
        self.escalation.events
    }

    /// First-hit (and external) cancellation: fires the shared token
    /// and lets every unfinished arm observe it at its next checkpoint
    /// — a deterministic, bounded amount of work per arm. One step is
    /// not always enough: a never-stepped arm's first slice can pause
    /// at the slice quantum right after its start phase, *before*
    /// reaching a cancellation check — but with the token fired, every
    /// further step finishes a round or the run, so this terminates in
    /// a few steps. A no-op when the scheduler stopped by spending its
    /// pool. Call after [`round`](Self::round) returns `false`, before
    /// [`into_run`](Self::into_run).
    pub fn finalize(&mut self) {
        if self.found || self.cancel.is_cancelled() {
            self.race.cancel();
            for i in 0..self.arms.len() {
                let mut arm = self.lock(i);
                while !arm.is_finished() {
                    arm.step(1);
                }
            }
        }
    }

    /// Consumes the scheduler and reports every arm's run (base arms
    /// first, then escalation-spawned arms), winner picked exactly as
    /// race mode picks it.
    pub fn into_run(self) -> PortfolioRun {
        let runs: Vec<MinimizationRun> = self
            .arms
            .into_iter()
            .map(|arm| arm.into_inner().expect("adaptive arm lock").run())
            .collect();
        let winner = pick_winner(&runs);
        PortfolioRun {
            winner,
            entries: self
                .arm_kinds
                .iter()
                .zip(runs)
                .map(|(&backend, run)| PortfolioEntry { backend, run })
                .collect(),
        }
    }

    /// Whether the scheduler loop is over: [`round`](Self::round) would
    /// return `false` without doing work.
    pub fn is_done(&self) -> bool {
        self.cancel.is_cancelled()
            || self.found
            || self.spent >= self.pool
            || (0..self.arms.len()).all(|i| self.lock(i).is_finished())
    }

    /// Whether some arm has found a zero.
    pub fn found(&self) -> bool {
        self.found
    }

    /// Evaluations drawn from the shared pool so far (completed slices
    /// only — an arm paused mid-slice is charged at the next fold).
    pub fn evals_spent(&self) -> usize {
        self.spent
    }

    /// Best weak-distance value across all arms, including paused ones
    /// (`f64::INFINITY` before the first evaluation) — the residual a
    /// progress stream reports.
    pub fn best_value(&self) -> f64 {
        (0..self.arms.len())
            .map(|i| self.lock(i).best_value())
            .fold(f64::INFINITY, |a, b| if b < a { b } else { a })
    }

    /// The most recent round's bandit leader, `None` before the first
    /// round.
    pub fn leader(&self) -> Option<BackendKind> {
        self.last_leader.map(|i| self.arm_kinds[i])
    }

    /// Per-arm recency-weighted mean rewards, in arm order (base arms
    /// first, then escalation-spawned arms). Arms that have not yet
    /// received a slice report `0.0`. The plateau detector triggers when
    /// the maximum of these stays below the configured threshold — the
    /// same numbers a progress stream would chart.
    pub fn arm_rewards(&self) -> Vec<f64> {
        self.stats.iter().map(|s| s.mean_reward).collect()
    }

    /// The portfolio's base backends, in arm order (escalation-spawned
    /// arms are not listed — they are an artifact of the run, not its
    /// configuration).
    pub fn backends(&self) -> &[BackendKind] {
        &self.backends
    }

    /// Snapshots the whole scheduler — every arm plus the bandit
    /// statistics — for durable storage. Returns `None` if some paused
    /// arm cannot checkpoint (see [`SteppedAnalysis::checkpoint`]).
    pub fn checkpoint(&self) -> Option<AdaptiveCheckpoint> {
        let mut arms = Vec::with_capacity(self.arms.len());
        for i in 0..self.arms.len() {
            arms.push(self.lock(i).checkpoint()?);
        }
        Some(AdaptiveCheckpoint {
            arms,
            stats: self
                .stats
                .iter()
                .map(|s| ArmStatsCkpt {
                    plays: s.plays.to_bits(),
                    mean_reward: s.mean_reward.to_bits(),
                    seen: s.seen,
                })
                .collect(),
            spent: self.spent,
            found: self.found,
            t: self.t,
            last_leader: self.last_leader,
            escalation: self.config.escalation.as_ref().map(|_| EscalationCkpt {
                below: self.escalation.below,
                events: self.escalation.events,
                specs: self.escalation.specs.iter().map(spec_ckpt).collect(),
                handoff: self.escalation.handoff.as_ref().map(|h| {
                    let (lo, hi) = bounds_bits(&h.bounds);
                    EscalationHandoffCkpt {
                        lo,
                        hi,
                        incumbent: h.incumbent.iter().map(|v| v.to_bits()).collect(),
                        ordinal: h.ordinal,
                    }
                }),
            }),
        })
    }

    /// Rebuilds a scheduler from a [`checkpoint`](Self::checkpoint).
    /// `wd`, `config` and `backends` are re-supplied and must match the
    /// checkpointed run; the arm count is validated, backend state tags
    /// are validated per arm. `cancel` is a fresh external token.
    ///
    /// # Panics
    ///
    /// Panics if `backends` is empty.
    pub fn restore(
        wd: &'wd dyn WeakDistance,
        config: &AnalysisConfig,
        backends: &[BackendKind],
        cancel: &CancelToken,
        ckpt: &AdaptiveCheckpoint,
    ) -> Option<Self> {
        assert!(!backends.is_empty(), "portfolio needs at least one backend");
        let specs: Vec<EscalationSpec> = match &ckpt.escalation {
            None => Vec::new(),
            Some(esc) => esc
                .specs
                .iter()
                .map(spec_from_ckpt)
                .collect::<Option<Vec<_>>>()?,
        };
        // Escalation-spawned arms' snapshots follow the base arms.
        if ckpt.arms.len() != backends.len() + specs.len() || ckpt.stats.len() != ckpt.arms.len() {
            return None;
        }
        let race = cancel.child();
        let mut arms = Vec::with_capacity(ckpt.arms.len());
        for (index, (&backend, a)) in backends.iter().zip(&ckpt.arms).enumerate() {
            let cfg = arm_config(config, backend, index);
            arms.push(Mutex::new(SteppedAnalysis::restore(
                wd,
                &cfg,
                race.child(),
                a,
            )?));
        }
        let stats = ckpt
            .stats
            .iter()
            .map(|s| ArmStats {
                plays: f64::from_bits(s.plays),
                mean_reward: f64::from_bits(s.mean_reward),
                seen: s.seen,
            })
            .collect();
        let mut portfolio = Self::assemble(wd, config, backends, cancel.clone(), race, arms, stats);
        for (j, spec) in specs.iter().enumerate() {
            if !portfolio.spawn_escalation_arm(spec, Some(&ckpt.arms[backends.len() + j])) {
                return None;
            }
        }
        if let Some(esc) = &ckpt.escalation {
            portfolio.escalation = EscalationState {
                below: esc.below,
                events: esc.events,
                specs,
                handoff: match &esc.handoff {
                    None => None,
                    Some(h) => Some(EscalationHandoff {
                        bounds: bounds_from_bits(&h.lo, &h.hi)?,
                        incumbent: h.incumbent.iter().map(|&b| f64::from_bits(b)).collect(),
                        ordinal: h.ordinal,
                    }),
                },
            };
        }
        portfolio.spent = ckpt.spent;
        portfolio.found = ckpt.found;
        portfolio.t = ckpt.t;
        portfolio.last_leader = ckpt.last_leader;
        Some(portfolio)
    }
}

/// [`minimize_weak_distance_adaptive`] with an external cancellation
/// token: the scheduler stops at the next round boundary once `cancel`
/// fires, then lets every arm observe the cancellation.
pub fn minimize_weak_distance_adaptive_cancellable(
    wd: &dyn WeakDistance,
    config: &AnalysisConfig,
    backends: &[BackendKind],
    cancel: &CancelToken,
) -> PortfolioRun {
    let mut portfolio = AdaptivePortfolio::new(wd, config, backends, cancel);
    let workers = config.parallelism.max(1);
    while portfolio.round(workers) {}
    portfolio.finalize();
    portfolio.into_run()
}

/// Adaptive portfolio mode (see the module docs): reallocates one run's
/// budget across `backends` with a deterministic bandit, stopping early
/// when some backend's weak distance reaches zero.
///
/// # Panics
///
/// Panics if `backends` is empty.
pub fn minimize_weak_distance_adaptive(
    wd: &dyn WeakDistance,
    config: &AnalysisConfig,
    backends: &[BackendKind],
) -> PortfolioRun {
    minimize_weak_distance_adaptive_cancellable(wd, config, backends, &CancelToken::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{minimize_weak_distance, PortfolioPolicy};
    use crate::weak_distance::FnWeakDistance;
    use crate::Outcome;
    use fp_runtime::Interval;

    fn wd_two_zeros() -> impl WeakDistance {
        FnWeakDistance::new(1, vec![Interval::symmetric(1.0e4)], |x: &[f64]| {
            (x[0] - 1.0).abs() * (x[0] + 3.0).abs()
        })
    }

    fn wd_zero_free() -> impl WeakDistance {
        FnWeakDistance::new(1, vec![Interval::symmetric(100.0)], |x: &[f64]| {
            x[0].abs() + 0.5
        })
    }

    #[test]
    fn improvement_reward_shape() {
        assert_eq!(improvement(f64::INFINITY, 3.0), 1.0);
        assert_eq!(improvement(10.0, 5.0), 0.5);
        assert_eq!(improvement(10.0, 10.0), 0.0);
        assert_eq!(improvement(5.0, 10.0), 0.0);
        assert_eq!(improvement(f64::NAN, 1.0), 1.0); // NaN -> finite is progress
        assert_eq!(improvement(1.0, f64::NAN), 0.0);
    }

    /// Regression (PR 10): edge cases of the reward path. A strictly
    /// improving slice must never earn zero reward — `(0.0, -1.0)` used
    /// to return 0 through the `before <= 0.0` guard, starving exactly
    /// the slice that crossed the finish line.
    #[test]
    fn improvement_reward_edges() {
        // Strict improvement past a non-positive incumbent: full reward.
        assert_eq!(improvement(0.0, -1.0), 1.0);
        assert_eq!(improvement(-0.0, -1.0), 1.0);
        assert_eq!(improvement(-1.0, -2.0), 1.0);
        // Signed-zero transitions are not improvements (`-0.0 >= 0.0`).
        assert_eq!(improvement(0.0, -0.0), 0.0);
        assert_eq!(improvement(-0.0, 0.0), 0.0);
        // An unbounded incumbent staying unbounded is no progress.
        assert_eq!(improvement(f64::INFINITY, f64::INFINITY), 0.0);
        assert_eq!(improvement(f64::NAN, f64::INFINITY), 0.0);
        assert_eq!(improvement(f64::NAN, f64::NAN), 0.0);
        // Every reward lands in [0, 1].
        for &(b, a) in &[
            (1e300, -1e300),
            (f64::MIN_POSITIVE, 0.0),
            (f64::INFINITY, -f64::INFINITY),
        ] {
            let r = improvement(b, a);
            assert!((0.0..=1.0).contains(&r), "improvement({b}, {a}) = {r}");
        }
    }

    #[test]
    fn stepped_analysis_matches_driver_run_at_any_slicing() {
        for backend in BackendKind::all() {
            let wd = wd_zero_free();
            let config = AnalysisConfig::quick(11)
                .with_backend(backend)
                .with_rounds(3)
                .with_max_evals(2_000)
                .recording(2);
            let direct = minimize_weak_distance(&wd, &config);
            for slice in [64usize, 700, usize::MAX] {
                let mut analysis = SteppedAnalysis::new(&wd, &config, CancelToken::new());
                while !analysis.step(slice) {}
                assert!(analysis.is_finished());
                let run = analysis.run();
                assert_eq!(run.outcome, direct.outcome, "{backend:?} slice {slice}");
                assert_eq!(run.best, direct.best, "{backend:?} slice {slice}");
                assert_eq!(
                    run.trace.samples(),
                    direct.trace.samples(),
                    "{backend:?} slice {slice}"
                );
            }
        }
    }

    #[test]
    fn single_backend_adaptive_equals_direct_run() {
        for backend in BackendKind::all() {
            let wd = wd_two_zeros();
            let config = AnalysisConfig::quick(5).with_backend(backend).with_rounds(2);
            let direct = minimize_weak_distance(&wd, &config);
            let adaptive = minimize_weak_distance_adaptive(&wd, &config, &[backend]);
            assert_eq!(adaptive.entries.len(), 1);
            assert_eq!(adaptive.winner, 0);
            let entry = &adaptive.entries[0].run;
            assert_eq!(entry.outcome, direct.outcome, "{backend:?}");
            assert_eq!(entry.best, direct.best, "{backend:?}");
        }
    }

    #[test]
    fn adaptive_portfolio_finds_a_zero_and_reports_all_entries() {
        let run = minimize_weak_distance_adaptive(
            &wd_two_zeros(),
            &AnalysisConfig::quick(2).with_rounds(2),
            &BackendKind::all(),
        );
        assert_eq!(run.entries.len(), 5);
        match run.outcome() {
            Outcome::Found { input, .. } => {
                let x = input[0];
                assert!(x == 1.0 || x == -3.0, "x = {x}");
            }
            Outcome::NotFound { best_value, .. } => panic!("not found, best = {best_value}"),
        }
        assert!(run.entries[run.winner].run.outcome.is_found());
    }

    #[test]
    fn adaptive_budget_is_one_run_not_n_runs() {
        // Zero-free: nothing terminates early, so the scheduler spends the
        // pool. Five raced backends would cost ~5x rounds*max_evals; the
        // adaptive pool is 1x (plus bounded slice-granularity overshoot).
        let wd = wd_zero_free();
        let config = AnalysisConfig::quick(7).with_rounds(2).with_max_evals(4_000);
        let run = minimize_weak_distance_adaptive(&wd, &config, &BackendKind::all());
        let pool = 2 * 4_000;
        let total = run.outcome().evals();
        assert!(total > pool / 2, "scheduler under-spent: {total}");
        // Overshoot bound: one scheduler round of slices plus per-arm
        // checkpoint overshoot (a basin-hopping hop, a DE generation).
        assert!(total < 2 * pool, "scheduler overspent: {total}");
    }

    #[test]
    fn adaptive_is_deterministic_across_parallelism() {
        let wd = wd_zero_free();
        let base = AnalysisConfig::quick(13).with_rounds(2).with_max_evals(3_000);
        let reference = minimize_weak_distance_adaptive(&wd, &base, &BackendKind::all());
        for threads in [2usize, 4, 8] {
            let run = minimize_weak_distance_adaptive(
                &wd,
                &base.clone().with_parallelism(threads),
                &BackendKind::all(),
            );
            assert_eq!(run.winner, reference.winner, "threads = {threads}");
            for (a, b) in run.entries.iter().zip(&reference.entries) {
                assert_eq!(a.backend, b.backend);
                assert_eq!(a.run.outcome, b.run.outcome, "threads = {threads}");
                assert_eq!(a.run.best, b.run.best, "threads = {threads}");
            }
        }
    }

    #[test]
    fn portfolio_dispatches_on_policy() {
        let wd = wd_zero_free();
        let config = AnalysisConfig::quick(3)
            .with_rounds(1)
            .with_max_evals(2_000)
            .with_portfolio_policy(PortfolioPolicy::Adaptive);
        let via_policy = crate::driver::minimize_weak_distance_portfolio(
            &wd,
            &config,
            &[BackendKind::BasinHopping, BackendKind::RandomSearch],
        );
        let direct = minimize_weak_distance_adaptive(
            &wd,
            &config,
            &[BackendKind::BasinHopping, BackendKind::RandomSearch],
        );
        assert_eq!(via_policy.winner, direct.winner);
        for (a, b) in via_policy.entries.iter().zip(&direct.entries) {
            assert_eq!(a.run.outcome, b.run.outcome);
        }
    }

    #[test]
    fn stepped_analysis_checkpoint_resume_is_invisible() {
        for backend in BackendKind::all() {
            let wd = wd_zero_free();
            let config = AnalysisConfig::quick(17)
                .with_backend(backend)
                .with_rounds(2)
                .with_max_evals(1_500)
                .recording(2);
            let mut straight = SteppedAnalysis::new(&wd, &config, CancelToken::new());
            while !straight.step(300) {}
            let mut resumed = SteppedAnalysis::new(&wd, &config, CancelToken::new());
            loop {
                let done = resumed.step(300);
                // Serialize, drop, rebuild: the continuation must not
                // notice the round trip.
                let ckpt = resumed.checkpoint().expect("stepped backends checkpoint");
                let text = serde_json::to_string(&ckpt).expect("render");
                let back = serde_json::from_str(&text).expect("parse");
                resumed = SteppedAnalysis::restore(&wd, &config, CancelToken::new(), &back)
                    .expect("restore");
                if done {
                    break;
                }
            }
            let a = straight.run();
            let b = resumed.run();
            assert_eq!(a.outcome, b.outcome, "{backend:?}");
            assert_eq!(a.best, b.best, "{backend:?}");
            assert_eq!(a.trace.samples(), b.trace.samples(), "{backend:?}");
        }
    }

    #[test]
    fn adaptive_portfolio_checkpoint_resume_is_invisible() {
        let wd = wd_zero_free();
        let config = AnalysisConfig::quick(19).with_rounds(2).with_max_evals(3_000);
        let backends = BackendKind::all();
        let reference = minimize_weak_distance_adaptive(&wd, &config, &backends);
        let cancel = CancelToken::new();
        let mut portfolio = AdaptivePortfolio::new(&wd, &config, &backends, &cancel);
        loop {
            let ran = portfolio.round(1);
            let ckpt = portfolio.checkpoint().expect("stepped backends checkpoint");
            let text = serde_json::to_string(&ckpt).expect("render");
            let back: AdaptiveCheckpoint = serde_json::from_str(&text).expect("parse");
            portfolio = AdaptivePortfolio::restore(&wd, &config, &backends, &cancel, &back)
                .expect("restore");
            if !ran {
                break;
            }
        }
        portfolio.finalize();
        let run = portfolio.into_run();
        assert_eq!(run.winner, reference.winner);
        for (a, b) in run.entries.iter().zip(&reference.entries) {
            assert_eq!(a.backend, b.backend);
            assert_eq!(a.run.outcome, b.run.outcome, "{:?}", a.backend);
            assert_eq!(a.run.best, b.run.best, "{:?}", a.backend);
        }
    }

    #[test]
    fn adaptive_portfolio_checkpoint_resume_with_early_hit() {
        // A findable zero: the resume path must also reproduce the
        // first-hit cancellation fan-out exactly.
        let wd = wd_two_zeros();
        let config = AnalysisConfig::quick(2).with_rounds(2);
        let backends = BackendKind::all();
        let reference = minimize_weak_distance_adaptive(&wd, &config, &backends);
        let cancel = CancelToken::new();
        let mut portfolio = AdaptivePortfolio::new(&wd, &config, &backends, &cancel);
        while portfolio.round(1) {
            let ckpt = portfolio.checkpoint().expect("stepped backends checkpoint");
            portfolio =
                AdaptivePortfolio::restore(&wd, &config, &backends, &cancel, &ckpt)
                    .expect("restore");
        }
        portfolio.finalize();
        let run = portfolio.into_run();
        assert_eq!(run.winner, reference.winner);
        for (a, b) in run.entries.iter().zip(&reference.entries) {
            assert_eq!(a.run.outcome, b.run.outcome, "{:?}", a.backend);
            assert_eq!(a.run.best, b.run.best, "{:?}", a.backend);
        }
        assert!(run.entries[run.winner].run.outcome.is_found());
    }

    #[test]
    fn restore_rejects_mismatched_backend_lists() {
        let wd = wd_zero_free();
        let config = AnalysisConfig::quick(3).with_rounds(1).with_max_evals(500);
        let backends = [BackendKind::RandomSearch, BackendKind::BasinHopping];
        let cancel = CancelToken::new();
        let mut portfolio = AdaptivePortfolio::new(&wd, &config, &backends, &cancel);
        portfolio.round(1);
        let ckpt = portfolio.checkpoint().expect("checkpointable");
        // Wrong arm count.
        assert!(AdaptivePortfolio::restore(
            &wd,
            &config,
            &[BackendKind::RandomSearch],
            &cancel,
            &ckpt
        )
        .is_none());
        // Right count, wrong backend in slot 0: the state tag mismatch
        // is caught by the backend restore.
        assert!(AdaptivePortfolio::restore(
            &wd,
            &config,
            &[BackendKind::DifferentialEvolution, BackendKind::BasinHopping],
            &cancel,
            &ckpt
        )
        .is_none());
    }

    #[test]
    fn progress_accessors_report_scheduler_state() {
        let wd = wd_zero_free();
        let config = AnalysisConfig::quick(23).with_rounds(2).with_max_evals(2_000);
        let backends = [BackendKind::RandomSearch, BackendKind::BasinHopping];
        let cancel = CancelToken::new();
        let mut portfolio = AdaptivePortfolio::new(&wd, &config, &backends, &cancel);
        assert!(portfolio.leader().is_none());
        assert_eq!(portfolio.evals_spent(), 0);
        assert!(!portfolio.is_done());
        assert!(portfolio.round(1));
        assert!(portfolio.leader().is_some());
        assert!(portfolio.evals_spent() > 0);
        assert!(portfolio.best_value().is_finite());
        assert_eq!(portfolio.backends(), &backends);
        while portfolio.round(1) {}
        assert!(portfolio.is_done());
        assert!(!portfolio.found());
    }

    /// A plateau-shaped weak distance over a wide domain (±1e8, so
    /// starting points are drawn log-uniformly and rarely land near a
    /// large-magnitude `c`): a funnel guiding toward `c`, a flat shelf
    /// of radius `shelf` around it (where relative improvement — the
    /// bandit's reward — dies), and a hidden zero basin of radius
    /// `basin` placed *off-centre* at `c + 0.8 * shelf`, away from both
    /// the funnel vertex (where Brent's parabolic fits aim exactly) and
    /// the spread of local-search strand points. `basin = 0.0` removes
    /// the zero (the control: nothing to find, same shape).
    fn wd_plateau(c: f64, shelf: f64, basin: f64) -> impl WeakDistance {
        FnWeakDistance::new(1, vec![Interval::symmetric(1.0e8)], move |x: &[f64]| {
            let d = (x[0] - c).abs();
            if basin > 0.0 && (x[0] - (c + 0.8 * shelf)).abs() <= basin {
                0.0
            } else if d <= shelf {
                0.5
            } else {
                0.5 + (d - shelf) / 1.0e8
            }
        })
    }

    /// Escalation settings matched to [`wd_plateau`]: fire after two
    /// quiet rounds, and tighten to a ±1500 window (1.5e-5 of the ±1e8
    /// box) — wide enough to contain the off-centre basin from any
    /// incumbent stranded on the shelf, narrow enough that the restart
    /// sampler covers it densely.
    fn escalating_config(seed: u64) -> AnalysisConfig {
        AnalysisConfig::quick(seed)
            .with_rounds(2)
            .with_max_evals(6_000)
            .with_escalation(
                crate::driver::EscalationConfig::default()
                    .with_threshold(0.25)
                    .with_patience(2)
                    .with_tighten(1.5e-5),
            )
    }

    #[test]
    fn plateau_triggers_escalation_and_finds_the_hidden_basin() {
        // Seed 41 is a verified rescue: the pure adaptive policy
        // exhausts its pool without ever hitting the off-centre basin,
        // while the escalated run fires once and finds it.
        let wd = wd_plateau(8.7654321e6, 500.0, 1.0);
        let config = escalating_config(41);
        let cancel = CancelToken::new();
        let mut portfolio = AdaptivePortfolio::new(&wd, &config, &BackendKind::all(), &cancel);
        let mut handoffs = 0usize;
        while portfolio.round(1) {
            if portfolio.take_handoff().is_some() {
                handoffs += 1;
            }
        }
        portfolio.finalize();
        let escalations = portfolio.escalations();
        assert!(escalations > 0, "the shelf never triggered an escalation");
        assert_eq!(handoffs, escalations, "every event publishes one handoff");
        let run = portfolio.into_run();
        // Two arms per event, labelled after what they run: the Powell
        // polish and the model-free sampling restart.
        assert_eq!(run.entries.len(), 5 + 2 * escalations);
        assert_eq!(run.entries[5].backend, BackendKind::Powell);
        assert_eq!(run.entries[6].backend, BackendKind::RandomSearch);
        assert!(
            run.outcome().is_found(),
            "escalated run missed the basin: {:?}",
            run.outcome()
        );
        // The pure policy misses the basin on the same seed — the
        // escalation is what found it, not the base arms.
        let pure = AnalysisConfig::quick(41).with_rounds(2).with_max_evals(6_000);
        let control = minimize_weak_distance_adaptive(&wd, &pure, &BackendKind::all());
        assert!(
            !control.outcome().is_found(),
            "workload too easy: the pure policy found the basin too"
        );
    }

    #[test]
    fn escalation_handoff_describes_the_tightened_region() {
        let wd = wd_plateau(8.7654321e6, 500.0, 0.0);
        let config = escalating_config(41);
        let cancel = CancelToken::new();
        let mut portfolio = AdaptivePortfolio::new(&wd, &config, &BackendKind::all(), &cancel);
        let mut handoff = None;
        while portfolio.round(1) {
            if let Some(h) = portfolio.take_handoff() {
                handoff = Some(h);
                break;
            }
        }
        let h = handoff.expect("plateau fires a handoff");
        assert_eq!(h.ordinal, 0);
        assert_eq!(h.bounds.dim(), 1);
        assert!(h.bounds.contains(&h.incumbent), "incumbent outside its box");
        // Tightened to 1.5e-5 of the full ±1e8 box: 3000 wide, around
        // the incumbent the funnel pulled onto the shelf.
        let (lo, hi) = h.bounds.limit(0);
        assert!(hi - lo <= 3000.0 + 1e-6, "box not tightened: [{lo}, {hi}]");
        assert!(
            (h.incumbent[0] - 8.7654321e6).abs() <= 600.0,
            "incumbent {:?} never descended the funnel",
            h.incumbent
        );
        // Taking the handoff is idempotent.
        assert!(portfolio.take_handoff().is_none());
    }

    #[test]
    fn escalation_is_deterministic_across_parallelism() {
        let wd = wd_plateau(8.7654321e6, 500.0, 1.0);
        let config = escalating_config(42);
        let reference =
            minimize_weak_distance_adaptive(&wd, &config, &BackendKind::all());
        // Seed 42 escalates: the comparison must cover spawned arms.
        assert!(reference.entries.len() > 5, "run never escalated");
        for threads in [2usize, 8] {
            let run = minimize_weak_distance_adaptive(
                &wd,
                &config.clone().with_parallelism(threads),
                &BackendKind::all(),
            );
            assert_eq!(run.winner, reference.winner, "threads = {threads}");
            assert_eq!(run.entries.len(), reference.entries.len());
            for (a, b) in run.entries.iter().zip(&reference.entries) {
                assert_eq!(a.backend, b.backend);
                assert_eq!(a.run.outcome, b.run.outcome, "threads = {threads}");
                assert_eq!(a.run.best, b.run.best, "threads = {threads}");
            }
        }
    }

    #[test]
    fn escalation_checkpoint_resume_is_invisible() {
        // Kill+restore every round through JSON, across the escalation
        // event itself: the continuation must replay bit-identically,
        // including the spawned arms.
        let wd = wd_plateau(8.7654321e6, 500.0, 0.0);
        let config = escalating_config(43);
        let backends = BackendKind::all();
        let reference = minimize_weak_distance_adaptive(&wd, &config, &backends);
        let cancel = CancelToken::new();
        let mut portfolio = AdaptivePortfolio::new(&wd, &config, &backends, &cancel);
        loop {
            let ran = portfolio.round(1);
            let ckpt = portfolio.checkpoint().expect("stepped backends checkpoint");
            let text = serde_json::to_string(&ckpt).expect("render");
            let back: AdaptiveCheckpoint = serde_json::from_str(&text).expect("parse");
            portfolio = AdaptivePortfolio::restore(&wd, &config, &backends, &cancel, &back)
                .expect("restore");
            if !ran {
                break;
            }
        }
        assert!(portfolio.escalations() > 0, "run never escalated");
        // The handoff survives the round trips until somebody takes it.
        assert!(portfolio.take_handoff().is_some());
        portfolio.finalize();
        let run = portfolio.into_run();
        assert_eq!(run.winner, reference.winner);
        assert_eq!(run.entries.len(), reference.entries.len());
        for (a, b) in run.entries.iter().zip(&reference.entries) {
            assert_eq!(a.backend, b.backend);
            assert_eq!(a.run.outcome, b.run.outcome, "{:?}", a.backend);
            assert_eq!(a.run.best, b.run.best, "{:?}", a.backend);
        }
    }

    #[test]
    fn restore_rejects_corrupt_escalation_specs() {
        let wd = wd_plateau(0.0, 5.0, 0.0);
        let config = escalating_config(44);
        let backends = [BackendKind::RandomSearch, BackendKind::BasinHopping];
        let cancel = CancelToken::new();
        let mut portfolio = AdaptivePortfolio::new(&wd, &config, &backends, &cancel);
        while portfolio.escalations() == 0 && portfolio.round(1) {}
        assert!(portfolio.escalations() > 0);
        let ckpt = portfolio.checkpoint().expect("checkpointable");
        assert!(ckpt.escalation.is_some());
        // Unknown spec kind.
        let mut bad = ckpt.clone();
        bad.escalation.as_mut().unwrap().specs[0].kind = "warp".to_string();
        assert!(AdaptivePortfolio::restore(&wd, &config, &backends, &cancel, &bad).is_none());
        // Inverted box limits.
        let mut bad = ckpt.clone();
        let spec = &mut bad.escalation.as_mut().unwrap().specs[0];
        std::mem::swap(&mut spec.lo, &mut spec.hi);
        assert!(AdaptivePortfolio::restore(&wd, &config, &backends, &cancel, &bad).is_none());
        // Escalation record dropped: the arm count no longer adds up.
        let mut bad = ckpt.clone();
        bad.escalation = None;
        assert!(AdaptivePortfolio::restore(&wd, &config, &backends, &cancel, &bad).is_none());
        // The untouched checkpoint still restores.
        assert!(AdaptivePortfolio::restore(&wd, &config, &backends, &cancel, &ckpt).is_some());
    }

    /// Regression (PR 10): leader selection ordered `(score, tiebreak)`
    /// tuples with `partial_cmp().expect(..)` — statistics whose bit
    /// patterns decode to NaN (a corrupt or adversarial checkpoint)
    /// could surface NaN scores and panic the scheduler. `total_cmp`
    /// keeps the comparison total; the poisoned arm just loses.
    #[test]
    fn nan_reward_in_restored_stats_cannot_panic_the_scheduler() {
        let wd = wd_zero_free();
        let config = AnalysisConfig::quick(45).with_rounds(2).with_max_evals(2_000);
        let backends = [BackendKind::RandomSearch, BackendKind::BasinHopping];
        let cancel = CancelToken::new();
        let mut portfolio = AdaptivePortfolio::new(&wd, &config, &backends, &cancel);
        portfolio.round(1);
        let mut ckpt = portfolio.checkpoint().expect("checkpointable");
        // Poison both arms: NaN rewards and NaN play counts.
        for stat in &mut ckpt.stats {
            stat.mean_reward = f64::NAN.to_bits();
            stat.plays = f64::NAN.to_bits();
            stat.seen = true;
        }
        let run = |ckpt: &AdaptiveCheckpoint| {
            let mut p = AdaptivePortfolio::restore(&wd, &config, &backends, &cancel, ckpt)
                .expect("restore");
            while p.round(1) {}
            p.finalize();
            p.into_run()
        };
        let a = run(&ckpt);
        let b = run(&ckpt);
        // No panic, and the poisoned continuation is still deterministic.
        assert_eq!(a.winner, b.winner);
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x.run.outcome, y.run.outcome);
            assert_eq!(x.run.best, y.run.best);
        }
    }

    #[test]
    fn pre_cancelled_adaptive_reports_cleanly() {
        let wd = wd_zero_free();
        let cancel = CancelToken::new();
        cancel.cancel();
        // BasinHopping's first slice pauses right after its start phase,
        // before any cancellation check — the finalization loop must keep
        // stepping until every arm actually observes the token.
        let run = minimize_weak_distance_adaptive_cancellable(
            &wd,
            &AnalysisConfig::quick(1).with_rounds(3),
            &[
                BackendKind::BasinHopping,
                BackendKind::DifferentialEvolution,
                BackendKind::RandomSearch,
            ],
            &cancel,
        );
        assert_eq!(run.entries.len(), 3);
        for entry in &run.entries {
            assert_eq!(
                entry.run.best.termination,
                wdm_mo::Termination::Cancelled,
                "{:?}",
                entry.backend
            );
        }
        // The scheduler never granted a slice; arms observed the
        // cancellation in the finalization steps and spent almost nothing.
        assert!(run.outcome().evals() < 5_000, "evals = {}", run.outcome().evals());
    }
}
