//! The weak-distance minimization reduction theory and its analysis
//! instances.
//!
//! This crate is the paper's primary contribution:
//!
//! * [`weak_distance`] — the [`WeakDistance`](weak_distance::WeakDistance)
//!   abstraction of Definition 3.1 (a nonnegative program whose zeros are
//!   exactly the solutions of the analysis problem) and its adapter to the
//!   optimization backends;
//! * [`driver`] — Algorithm 2: construct a weak distance, minimize it with
//!   an off-the-shelf MO backend, report the minimum point if the minimum
//!   is zero, and optionally verify the reported solution against a
//!   membership oracle (the Section 5.2 soundness remark);
//! * [`boundary`] — Instance 1, boundary value analysis (Fig. 3);
//! * [`path`] — Instance 2, path reachability (Fig. 4);
//! * [`overflow`] — Instance 3, floating-point overflow detection
//!   (Algorithm 3, the `fpod` tool);
//! * [`coverage`] — Instance 4, branch-coverage-based testing
//!   (the CoverMe construction);
//! * [`inconsistency`] — the Section 6.3.2 check: replaying analysis
//!   witnesses against the GSL status convention and classifying root
//!   causes.
//!
//! Instance 5 (quantifier-free floating-point satisfiability) lives in the
//! companion crate `wdm-xsat`, built on the same driver.
//!
//! # Example
//!
//! ```
//! use wdm_core::boundary::BoundaryAnalysis;
//! use wdm_core::driver::AnalysisConfig;
//! use mini_gsl::toy::Fig2Program;
//!
//! // Fig. 3 of the paper: find an input of the Fig. 2 program that triggers
//! // a boundary condition (x = 1 at the first branch or y = 4 at the second).
//! let analysis = BoundaryAnalysis::new(Fig2Program::new());
//! let outcome = analysis.find_any(&AnalysisConfig::quick(42));
//! let input = outcome.clone().into_input().expect("a boundary value exists");
//! assert!(!analysis.triggered_conditions(&input).is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod boundary;
pub mod checkpoint;
pub mod coverage;
pub mod driver;
pub mod inconsistency;
pub mod overflow;
pub mod path;
pub mod weak_distance;

pub use adaptive::{
    minimize_weak_distance_adaptive, minimize_weak_distance_adaptive_cancellable,
    AdaptivePortfolio, EscalationHandoff, SteppedAnalysis,
};
pub use checkpoint::{AdaptiveCheckpoint, AnalysisCheckpoint, EscalationCkpt};
pub use driver::{
    derive_round_seed, minimize_weak_distance, minimize_weak_distance_cancellable,
    minimize_weak_distance_portfolio, statically_pruned_run, AnalysisConfig, BackendKind,
    EscalationConfig, MinimizationRun, Outcome, PortfolioPolicy, PortfolioRun,
};
pub use weak_distance::{SpecializationCache, WeakDistance};
