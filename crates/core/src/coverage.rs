//! Instance 4: branch-coverage-based testing (the CoverMe construction).
//!
//! The tester keeps the set `B` of already-covered `(branch, direction)`
//! pairs and repeatedly minimizes a weak distance that is zero exactly when
//! the execution covers something outside `B`. Generated inputs accumulate
//! into a test suite; the loop stops when everything reachable is covered or
//! the round budget is exhausted.

use crate::driver::{minimize_weak_distance, AnalysisConfig, Outcome};
use crate::weak_distance::{SpecializationCache, WeakDistance};
use fp_runtime::{
    Analyzable, BranchCoverage, BranchEvent, BranchId, Interval, KernelPolicy, ObservationSpec,
    Observer, OptPolicy, ProbeControl, SiteSet,
};
use std::collections::BTreeSet;

/// Penalty when the targeted branch site is never reached.
const UNREACHED_PENALTY: f64 = 1.0e300;

struct CoverageObserver<'c> {
    covered: &'c BTreeSet<(BranchId, bool)>,
    w: f64,
}

impl Observer for CoverageObserver<'_> {
    fn on_branch(&mut self, ev: &BranchEvent) -> ProbeControl {
        // Covering anything new makes w zero immediately.
        if !self.covered.contains(&(ev.id, ev.taken)) {
            self.w = 0.0;
            return ProbeControl::Stop;
        }
        // Otherwise, reward getting close to flipping this branch if its
        // opposite direction is still uncovered.
        if !self.covered.contains(&(ev.id, !ev.taken)) {
            let d = ev.distance_to(!ev.taken).max(f64::MIN_POSITIVE);
            if d < self.w {
                self.w = d;
            }
        }
        ProbeControl::Continue
    }
}

/// The CoverMe-style weak distance: zero exactly on inputs that cover a
/// `(branch, direction)` pair outside `covered`.
#[derive(Debug, Clone)]
pub struct CoverageWeakDistance<P> {
    program: P,
    covered: BTreeSet<(BranchId, bool)>,
    kernel_policy: KernelPolicy,
    opt: SpecializationCache,
}

impl<P: Analyzable> CoverageWeakDistance<P> {
    /// Creates the weak distance for the given covered set `B`.
    pub fn new(program: P, covered: BTreeSet<(BranchId, bool)>) -> Self {
        CoverageWeakDistance {
            program,
            covered,
            kernel_policy: KernelPolicy::Auto,
            opt: SpecializationCache::default(),
        }
    }

    /// Selects the batch backend ([`KernelPolicy::Auto`] by default).
    /// Never changes values — only which bit-identical backend computes
    /// them.
    pub fn with_kernel_policy(mut self, kernel_policy: KernelPolicy) -> Self {
        self.kernel_policy = kernel_policy;
        self
    }

    /// Selects whether evaluations may run a target-specialized
    /// (translation-validated) variant of the program
    /// ([`OptPolicy::Auto`] by default). Never changes values.
    pub fn with_opt_policy(mut self, opt_policy: OptPolicy) -> Self {
        self.opt = SpecializationCache::new(opt_policy);
        self
    }

    /// What this weak distance observes: every branch event (the observer
    /// folds — and may stop on — any of them).
    fn observation_spec(&self) -> ObservationSpec {
        ObservationSpec::branches(SiteSet::All)
    }
}

impl<P: Analyzable> WeakDistance for CoverageWeakDistance<P> {
    fn dim(&self) -> usize {
        self.program.num_inputs()
    }

    fn domain(&self) -> Vec<Interval> {
        self.program.search_domain()
    }

    fn eval(&self, x: &[f64]) -> f64 {
        let mut obs = CoverageObserver {
            covered: &self.covered,
            w: UNREACHED_PENALTY,
        };
        self.opt
            .specialized(&self.program, &self.observation_spec())
            .run(x, &mut obs);
        obs.w
    }

    fn eval_batch(&self, xs: &[Vec<f64>], out: &mut Vec<f64>) {
        let mut session = self
            .opt
            .specialized(&self.program, &self.observation_spec())
            .batch_executor(self.kernel_policy);
        crate::weak_distance::batch_observed(
            session.as_mut(),
            xs,
            || CoverageObserver {
                covered: &self.covered,
                w: UNREACHED_PENALTY,
            },
            |obs| obs.w,
            out,
        );
    }

    fn description(&self) -> String {
        format!(
            "coverage weak distance of {} ({} pairs covered)",
            self.program.name(),
            self.covered.len()
        )
    }
}

/// Result of the coverage campaign.
#[derive(Debug, Clone)]
pub struct CoverageReport {
    /// The generated test inputs.
    pub suite: Vec<Vec<f64>>,
    /// Covered `(branch, direction)` pairs.
    pub covered: BTreeSet<(BranchId, bool)>,
    /// Total number of `(branch, direction)` pairs declared by the program.
    pub total_pairs: usize,
    /// `(branch, direction)` pairs the program's static analysis proved
    /// unreachable over the search domain: the campaign never targets them
    /// and stops once everything else is covered, instead of burning its
    /// retry budget on proofs of impossibility.
    pub statically_pruned: usize,
    /// Minimization rounds run.
    pub rounds: usize,
}

impl CoverageReport {
    /// Branch coverage as a fraction in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.total_pairs == 0 {
            1.0
        } else {
            self.covered.len() as f64 / self.total_pairs as f64
        }
    }
}

/// Branch-coverage-based testing of an [`Analyzable`] program.
#[derive(Debug, Clone)]
pub struct CoverageAnalysis<P> {
    program: P,
}

impl<P: Analyzable> CoverageAnalysis<P> {
    /// Creates the analysis.
    pub fn new(program: P) -> Self {
        CoverageAnalysis { program }
    }

    /// Runs the coverage campaign, optionally seeded with initial inputs.
    pub fn run(&self, seeds: &[Vec<f64>], config: &AnalysisConfig) -> CoverageReport {
        let mut covered: BTreeSet<(BranchId, bool)> = BTreeSet::new();
        let mut suite: Vec<Vec<f64>> = Vec::new();
        for seed in seeds {
            self.absorb(seed, &mut covered);
            suite.push(seed.clone());
        }
        let sites = self.program.branch_sites();
        let total_pairs = sites.len() * 2;
        // Pairs whose direction is provably never taken on any domain
        // input: reaching them is impossible, so they count as "done" for
        // the termination condition (the coverage fraction still reports
        // them as uncovered — they are, and provably stay so).
        let pruned: BTreeSet<(BranchId, bool)> = sites
            .iter()
            .flat_map(|s| [(s.id, true), (s.id, false)])
            .filter(|&(site, dir)| {
                self.program
                    .branch_side_reachability(site, dir)
                    .is_unreachable()
            })
            .collect();
        let mut rounds = 0usize;
        let max_rounds = total_pairs + config.rounds;
        while covered.union(&pruned).count() < total_pairs && rounds < max_rounds {
            rounds += 1;
            let wd = CoverageWeakDistance {
                program: &self.program,
                covered: covered.clone(),
                kernel_policy: config.kernel_policy,
                opt: SpecializationCache::new(config.opt_policy),
            };
            let round_config = AnalysisConfig {
                seed: config.seed.wrapping_add(rounds as u64 * 104_729),
                ..config.clone()
            };
            match minimize_weak_distance(&wd, &round_config).outcome {
                Outcome::Found { input, .. } => {
                    let before = covered.len();
                    self.absorb(&input, &mut covered);
                    suite.push(input);
                    if covered.len() == before {
                        // Should not happen (w = 0 implies new coverage), but
                        // guard against infinite loops all the same.
                        break;
                    }
                }
                Outcome::NotFound { .. } => break,
            }
        }
        CoverageReport {
            suite,
            covered,
            total_pairs,
            statically_pruned: pruned.len(),
            rounds,
        }
    }

    /// Adds the coverage of one execution to `covered`.
    fn absorb(&self, input: &[f64], covered: &mut BTreeSet<(BranchId, bool)>) {
        let mut cov = BranchCoverage::new();
        self.program.run(input, &mut cov);
        covered.extend(cov.covered().iter().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mini_gsl::glibc_sin::GlibcSin;
    use mini_gsl::toy::Fig2Program;

    #[test]
    fn weak_distance_is_zero_on_new_coverage() {
        let wd = CoverageWeakDistance::new(Fig2Program::new(), BTreeSet::new());
        // Nothing covered yet: any input covers something new.
        assert_eq!(wd.eval(&[0.0]), 0.0);
        // With the path of x=0 covered, an input taking the same path is
        // positive, one taking a different path is zero.
        let mut covered = BTreeSet::new();
        covered.insert((BranchId(0), true));
        covered.insert((BranchId(1), true));
        let wd = CoverageWeakDistance::new(Fig2Program::new(), covered);
        assert!(wd.eval(&[0.0]) > 0.0);
        assert_eq!(wd.eval(&[10.0]), 0.0);
    }

    #[test]
    fn full_coverage_of_fig2() {
        let analysis = CoverageAnalysis::new(Fig2Program::new());
        let report = analysis.run(&[vec![0.0]], &AnalysisConfig::quick(3));
        assert_eq!(report.total_pairs, 4);
        assert_eq!(report.covered.len(), 4, "covered: {:?}", report.covered);
        assert!((report.coverage() - 1.0).abs() < 1e-12);
        assert!(report.suite.len() >= 2);
    }

    #[test]
    fn covers_most_of_glibc_sin_ranges() {
        // The five range branches of sin: 10 (site, direction) pairs, of
        // which (branch 4, false) requires a non-finite input and is
        // unreachable from the finite search box.
        let analysis = CoverageAnalysis::new(GlibcSin::new());
        let config = AnalysisConfig::quick(7).with_max_evals(30_000);
        let report = analysis.run(&[vec![1.0]], &config);
        assert!(
            report.covered.len() >= 8,
            "covered only {:?} of {} pairs",
            report.covered.len(),
            report.total_pairs
        );
    }

    /// The then-side of `|x| + 1 < 0` is provably uncoverable: the
    /// campaign's termination condition treats it as done instead of
    /// burning the retry budget on it round after round.
    #[test]
    fn provably_uncoverable_pairs_do_not_burn_rounds() {
        use fpir::ir::{BinOp, UnOp};
        let mut mb = fpir::ModuleBuilder::new();
        let mut f = mb.function("guarded", 1);
        let x = f.param(0);
        let one = f.constant(1.0);
        let zero = f.constant(0.0);
        let a = f.un(UnOp::Abs, x, None);
        let y = f.bin(BinOp::Add, a, one, None);
        let dead = f.new_block();
        let live = f.new_block();
        f.cond_br(Some(0), y, fp_runtime::Cmp::Lt, zero, dead, live);
        f.switch_to(dead);
        f.ret(Some(y));
        f.switch_to(live);
        f.ret(Some(x));
        f.finish();
        let program = fpir::ModuleProgram::new(mb.build(), "guarded")
            .expect("entry exists")
            .with_domain(vec![fp_runtime::Interval::symmetric(1.0e3)]);
        let analysis = CoverageAnalysis::new(program);
        let config = AnalysisConfig::quick(4).with_rounds(1).with_max_evals(2_000);
        let report = analysis.run(&[vec![1.0]], &config);
        assert_eq!(report.total_pairs, 2);
        assert_eq!(report.statically_pruned, 1);
        // The seed already covers the only coverable pair, so the campaign
        // terminates without a single minimization round.
        assert!(report.covered.contains(&(BranchId(0), false)));
        assert_eq!(report.rounds, 0, "nothing left to chase");
    }

    #[test]
    fn empty_program_reports_full_coverage() {
        let p = fp_runtime::ClosureProgram::new("nop", 1, |_x, _ctx| Some(0.0));
        let report = CoverageAnalysis::new(p).run(&[], &AnalysisConfig::quick(1).with_rounds(1));
        assert_eq!(report.total_pairs, 0);
        assert_eq!(report.coverage(), 1.0);
    }
}
