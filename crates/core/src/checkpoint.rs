//! Serializable snapshots of the adaptive-portfolio layer.
//!
//! These are the analysis-level counterparts of
//! [`wdm_mo::checkpoint`]: plain data structs with derived serde
//! implementations that capture everything above the backend state
//! machines — the restart loop's merge state
//! ([`AnalysisCheckpoint`]) and the bandit scheduler's statistics
//! ([`AdaptiveCheckpoint`]). Together with the backend
//! [`StepCheckpoint`](wdm_mo::StepCheckpoint) they make a whole
//! adaptive run durable: serialize, kill the process, restore, and the
//! continuation is bit-identical to a run that never stopped.
//!
//! As in the backend layer, every `f64` travels as its IEEE-754 bit
//! pattern (`u64`), because JSON round-trips of decimal floats are not
//! bit-exact and non-finite values do not render at all.

use serde::{Deserialize, Serialize};
use wdm_mo::checkpoint::{ResultCkpt, TraceCkpt};
use wdm_mo::StepCheckpoint;

/// The active (paused mid-round) part of a [`SteppedAnalysis`]
/// checkpoint: the backend state machine plus the round's sampling
/// trace, if recording.
///
/// [`SteppedAnalysis`]: crate::adaptive::SteppedAnalysis
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActiveCkpt {
    /// The paused backend state machine.
    pub step: StepCheckpoint,
    /// The per-round sampling trace (present iff the config records
    /// samples).
    pub trace: Option<TraceCkpt>,
}

/// Snapshot of one [`SteppedAnalysis`](crate::adaptive::SteppedAnalysis):
/// the restart loop's position and incremental merge. The
/// [`AnalysisConfig`](crate::driver::AnalysisConfig) is *not* stored —
/// restoring re-supplies it, exactly as backend configs are re-supplied
/// to [`SteppedMinimizer::restore`](wdm_mo::SteppedMinimizer::restore).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisCheckpoint {
    /// Completed-round counter.
    pub round: usize,
    /// The paused active round, if any.
    pub active: Option<ActiveCkpt>,
    /// Best merged result so far.
    pub best: Option<ResultCkpt>,
    /// Evaluations charged by completed rounds.
    pub total_evals: usize,
    /// The merged sampling trace.
    pub trace: TraceCkpt,
    /// Whether some round reached zero.
    pub hit: bool,
    /// Whether the analysis is finished.
    pub finished: bool,
}

/// Snapshot of one bandit arm's statistics, floats as bit patterns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArmStatsCkpt {
    /// `plays` (rounds led) as `f64` bits.
    pub plays: u64,
    /// Recency-weighted mean reward as `f64` bits.
    pub mean_reward: u64,
    /// Whether any slice has seeded the average.
    pub seen: bool,
}

/// Snapshot of a whole [`AdaptivePortfolio`]: every arm plus the
/// scheduler state. Backends and config are re-supplied on restore and
/// must match the checkpointed run (arm count is validated; the rest is
/// the caller's contract, as everywhere in the checkpoint layer).
///
/// [`AdaptivePortfolio`]: crate::adaptive::AdaptivePortfolio
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveCheckpoint {
    /// Per-arm analysis snapshots, in backend order.
    pub arms: Vec<AnalysisCheckpoint>,
    /// Per-arm bandit statistics, in backend order.
    pub stats: Vec<ArmStatsCkpt>,
    /// Evaluations drawn from the shared pool so far.
    pub spent: usize,
    /// Whether some arm has found a zero.
    pub found: bool,
    /// Scheduler round counter (the UCB `t`).
    pub t: u64,
    /// The most recent round's leader arm, for progress reporting.
    pub last_leader: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_checkpoint_round_trips_through_json() {
        let ckpt = AdaptiveCheckpoint {
            arms: vec![AnalysisCheckpoint {
                round: 2,
                active: None,
                best: None,
                total_evals: 1234,
                trace: TraceCkpt {
                    samples: Vec::new(),
                    stride: 3,
                    recorded_total: 9,
                },
                hit: false,
                finished: false,
            }],
            stats: vec![ArmStatsCkpt {
                plays: 4.0f64.to_bits(),
                mean_reward: 0.1875f64.to_bits(),
                seen: true,
            }],
            spent: 4321,
            found: false,
            t: 7,
            last_leader: Some(0),
        };
        let text = serde_json::to_string(&ckpt).expect("render");
        let back: AdaptiveCheckpoint = serde_json::from_str(&text).expect("parse");
        assert_eq!(back, ckpt);
    }

    #[test]
    fn arm_stats_bits_survive_non_finite_values() {
        let stats = ArmStatsCkpt {
            plays: f64::INFINITY.to_bits(),
            mean_reward: f64::NAN.to_bits(),
            seen: false,
        };
        let text = serde_json::to_string(&stats).expect("render");
        let back: ArmStatsCkpt = serde_json::from_str(&text).expect("parse");
        assert!(f64::from_bits(back.plays).is_infinite());
        assert!(f64::from_bits(back.mean_reward).is_nan());
    }
}
