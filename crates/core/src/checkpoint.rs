//! Serializable snapshots of the adaptive-portfolio layer.
//!
//! These are the analysis-level counterparts of
//! [`wdm_mo::checkpoint`]: plain data structs with derived serde
//! implementations that capture everything above the backend state
//! machines — the restart loop's merge state
//! ([`AnalysisCheckpoint`]) and the bandit scheduler's statistics
//! ([`AdaptiveCheckpoint`]). Together with the backend
//! [`StepCheckpoint`](wdm_mo::StepCheckpoint) they make a whole
//! adaptive run durable: serialize, kill the process, restore, and the
//! continuation is bit-identical to a run that never stopped.
//!
//! As in the backend layer, every `f64` travels as its IEEE-754 bit
//! pattern (`u64`), because JSON round-trips of decimal floats are not
//! bit-exact and non-finite values do not render at all.

use serde::{Deserialize, Serialize};
use wdm_mo::checkpoint::{ResultCkpt, TraceCkpt};
use wdm_mo::StepCheckpoint;

/// The active (paused mid-round) part of a [`SteppedAnalysis`]
/// checkpoint: the backend state machine plus the round's sampling
/// trace, if recording.
///
/// [`SteppedAnalysis`]: crate::adaptive::SteppedAnalysis
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActiveCkpt {
    /// The paused backend state machine.
    pub step: StepCheckpoint,
    /// The per-round sampling trace (present iff the config records
    /// samples).
    pub trace: Option<TraceCkpt>,
}

/// Snapshot of one [`SteppedAnalysis`](crate::adaptive::SteppedAnalysis):
/// the restart loop's position and incremental merge. The
/// [`AnalysisConfig`](crate::driver::AnalysisConfig) is *not* stored —
/// restoring re-supplies it, exactly as backend configs are re-supplied
/// to [`SteppedMinimizer::restore`](wdm_mo::SteppedMinimizer::restore).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisCheckpoint {
    /// Completed-round counter.
    pub round: usize,
    /// The paused active round, if any.
    pub active: Option<ActiveCkpt>,
    /// Best merged result so far.
    pub best: Option<ResultCkpt>,
    /// Evaluations charged by completed rounds.
    pub total_evals: usize,
    /// The merged sampling trace.
    pub trace: TraceCkpt,
    /// Whether some round reached zero.
    pub hit: bool,
    /// Whether the analysis is finished.
    pub finished: bool,
}

/// Snapshot of one bandit arm's statistics, floats as bit patterns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArmStatsCkpt {
    /// `plays` (rounds led) as `f64` bits.
    pub plays: u64,
    /// Recency-weighted mean reward as `f64` bits.
    pub mean_reward: u64,
    /// Whether any slice has seeded the average.
    pub seen: bool,
}

/// Snapshot of one escalation-spawned arm's recipe: enough to rebuild
/// the arm's backend and tightened search box on restore. Floats travel
/// as bit patterns, as everywhere in this layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EscalationSpecCkpt {
    /// `"polish"` or `"restart"`.
    pub kind: String,
    /// Restart arms: the report name of the restarted backend
    /// ([`BackendKind::name`](crate::BackendKind::name)).
    pub backend: Option<String>,
    /// Polish arms: the incumbent starting point, as `f64` bits.
    pub x0: Vec<u64>,
    /// Tightened box lower limits, as `f64` bits.
    pub lo: Vec<u64>,
    /// Tightened box upper limits, as `f64` bits.
    pub hi: Vec<u64>,
}

/// Snapshot of a pending escalation handoff (see
/// [`AdaptivePortfolio::take_handoff`]).
///
/// [`AdaptivePortfolio::take_handoff`]: crate::adaptive::AdaptivePortfolio::take_handoff
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EscalationHandoffCkpt {
    /// Tightened box lower limits, as `f64` bits.
    pub lo: Vec<u64>,
    /// Tightened box upper limits, as `f64` bits.
    pub hi: Vec<u64>,
    /// The incumbent point, as `f64` bits.
    pub incumbent: Vec<u64>,
    /// Zero-based index of the escalation event that published this
    /// handoff.
    pub ordinal: usize,
}

/// Snapshot of the plateau detector and every escalation event so far.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EscalationCkpt {
    /// Consecutive below-threshold scheduler rounds observed.
    pub below: usize,
    /// Escalation events fired so far.
    pub events: usize,
    /// Arm recipes of every escalation-spawned arm, in spawn order
    /// (their analysis snapshots follow the base arms in
    /// [`AdaptiveCheckpoint::arms`]).
    pub specs: Vec<EscalationSpecCkpt>,
    /// A published handoff not yet consumed by the driving caller.
    pub handoff: Option<EscalationHandoffCkpt>,
}

/// Snapshot of a whole [`AdaptivePortfolio`]: every arm plus the
/// scheduler state. Backends and config are re-supplied on restore and
/// must match the checkpointed run (arm count is validated; the rest is
/// the caller's contract, as everywhere in the checkpoint layer).
///
/// [`AdaptivePortfolio`]: crate::adaptive::AdaptivePortfolio
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveCheckpoint {
    /// Per-arm analysis snapshots: base arms in backend order, then
    /// escalation-spawned arms in spawn order.
    pub arms: Vec<AnalysisCheckpoint>,
    /// Per-arm bandit statistics, in arm order.
    pub stats: Vec<ArmStatsCkpt>,
    /// Evaluations drawn from the shared pool so far.
    pub spent: usize,
    /// Whether some arm has found a zero.
    pub found: bool,
    /// Scheduler round counter (the UCB `t`).
    pub t: u64,
    /// The most recent round's leader arm, for progress reporting.
    pub last_leader: Option<usize>,
    /// Plateau-escalation state; `None` when escalation is disabled.
    pub escalation: Option<EscalationCkpt>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_checkpoint_round_trips_through_json() {
        let ckpt = AdaptiveCheckpoint {
            arms: vec![AnalysisCheckpoint {
                round: 2,
                active: None,
                best: None,
                total_evals: 1234,
                trace: TraceCkpt {
                    samples: Vec::new(),
                    stride: 3,
                    recorded_total: 9,
                },
                hit: false,
                finished: false,
            }],
            stats: vec![ArmStatsCkpt {
                plays: 4.0f64.to_bits(),
                mean_reward: 0.1875f64.to_bits(),
                seen: true,
            }],
            spent: 4321,
            found: false,
            t: 7,
            last_leader: Some(0),
            escalation: None,
        };
        let text = serde_json::to_string(&ckpt).expect("render");
        let back: AdaptiveCheckpoint = serde_json::from_str(&text).expect("parse");
        assert_eq!(back, ckpt);
    }

    #[test]
    fn escalation_checkpoint_round_trips_through_json() {
        let esc = EscalationCkpt {
            below: 3,
            events: 1,
            specs: vec![
                EscalationSpecCkpt {
                    kind: "polish".to_string(),
                    backend: None,
                    x0: vec![1.5f64.to_bits(), (-0.0f64).to_bits()],
                    lo: vec![1.0f64.to_bits(), (-1.0f64).to_bits()],
                    hi: vec![2.0f64.to_bits(), 1.0f64.to_bits()],
                },
                EscalationSpecCkpt {
                    kind: "restart".to_string(),
                    backend: Some("Basinhopping".to_string()),
                    x0: Vec::new(),
                    lo: vec![1.0f64.to_bits(), f64::NEG_INFINITY.to_bits()],
                    hi: vec![2.0f64.to_bits(), f64::INFINITY.to_bits()],
                },
            ],
            handoff: Some(EscalationHandoffCkpt {
                lo: vec![1.0f64.to_bits()],
                hi: vec![2.0f64.to_bits()],
                incumbent: vec![1.5f64.to_bits()],
                ordinal: 0,
            }),
        };
        let text = serde_json::to_string(&esc).expect("render");
        let back: EscalationCkpt = serde_json::from_str(&text).expect("parse");
        assert_eq!(back, esc);
    }

    #[test]
    fn arm_stats_bits_survive_non_finite_values() {
        let stats = ArmStatsCkpt {
            plays: f64::INFINITY.to_bits(),
            mean_reward: f64::NAN.to_bits(),
            seen: false,
        };
        let text = serde_json::to_string(&stats).expect("render");
        let back: ArmStatsCkpt = serde_json::from_str(&text).expect("parse");
        assert!(f64::from_bits(back.plays).is_infinite());
        assert!(f64::from_bits(back.mean_reward).is_nan());
    }
}
