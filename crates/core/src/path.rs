//! Instance 2: path reachability (Section 4.3, Fig. 4).
//!
//! Given a set of branch directions that must be taken, the weak distance
//! adds (to `w`, initialized to 0) the Korel branch distance of every
//! executed branch that is required to go a particular way, plus a penalty
//! for required branches that were never reached. `w = 0` iff the input
//! drives every required branch in the required direction.

use crate::driver::{
    minimize_weak_distance, statically_pruned_run, AnalysisConfig, MinimizationRun, Outcome,
};
use crate::weak_distance::{SpecializationCache, WeakDistance};
use fp_runtime::{
    Analyzable, BranchEvent, BranchId, Interval, KernelPolicy, ObservationSpec, Observer,
    OptPolicy, ProbeControl, SiteSet, TraceRecorder,
};
use std::collections::BTreeSet;

/// A (partial) path: the branch sites that must execute and the direction
/// each must take.
pub type Path = Vec<(BranchId, bool)>;

/// Penalty per required branch site that never executed.
const UNREACHED_PENALTY: f64 = 1.0e300;

struct PathObserver<'p> {
    path: &'p [(BranchId, bool)],
    w: f64,
    reached: BTreeSet<BranchId>,
}

impl Observer for PathObserver<'_> {
    fn on_branch(&mut self, ev: &BranchEvent) -> ProbeControl {
        for &(site, dir) in self.path {
            if site == ev.id {
                self.w += ev.distance_to(dir);
                self.reached.insert(site);
            }
        }
        ProbeControl::Continue
    }
}

/// The path-reachability weak distance of Fig. 4(a).
#[derive(Debug, Clone)]
pub struct PathWeakDistance<P> {
    program: P,
    path: Path,
    kernel_policy: KernelPolicy,
    opt: SpecializationCache,
}

impl<P: Analyzable> PathWeakDistance<P> {
    /// Creates the weak distance for the given required path.
    pub fn new(program: P, path: Path) -> Self {
        PathWeakDistance {
            program,
            path,
            kernel_policy: KernelPolicy::Auto,
            opt: SpecializationCache::default(),
        }
    }

    /// Selects the batch backend ([`KernelPolicy::Auto`] by default).
    /// Never changes values — only which bit-identical backend computes
    /// them.
    pub fn with_kernel_policy(mut self, kernel_policy: KernelPolicy) -> Self {
        self.kernel_policy = kernel_policy;
        self
    }

    /// Selects whether evaluations may run a target-specialized
    /// (translation-validated) variant of the program
    /// ([`OptPolicy::Auto`] by default). Never changes values.
    pub fn with_opt_policy(mut self, opt_policy: OptPolicy) -> Self {
        self.opt = SpecializationCache::new(opt_policy);
        self
    }

    /// What this weak distance observes: branch events at the required
    /// sites only.
    fn observation_spec(&self) -> ObservationSpec {
        ObservationSpec::branches(SiteSet::Only(
            self.path.iter().map(|(site, _)| site.0).collect(),
        ))
    }
}

impl<P: Analyzable> WeakDistance for PathWeakDistance<P> {
    fn dim(&self) -> usize {
        self.program.num_inputs()
    }

    fn domain(&self) -> Vec<Interval> {
        self.program.search_domain()
    }

    fn eval(&self, x: &[f64]) -> f64 {
        let mut obs = PathObserver {
            path: &self.path,
            w: 0.0,
            reached: BTreeSet::new(),
        };
        self.opt
            .specialized(&self.program, &self.observation_spec())
            .run(x, &mut obs);
        let required: BTreeSet<BranchId> = self.path.iter().map(|(s, _)| *s).collect();
        let missing = required.difference(&obs.reached).count();
        obs.w + missing as f64 * UNREACHED_PENALTY
    }

    fn eval_batch(&self, xs: &[Vec<f64>], out: &mut Vec<f64>) {
        let mut session = self
            .opt
            .specialized(&self.program, &self.observation_spec())
            .batch_executor(self.kernel_policy);
        let required: BTreeSet<BranchId> = self.path.iter().map(|(s, _)| *s).collect();
        crate::weak_distance::batch_observed(
            session.as_mut(),
            xs,
            || PathObserver {
                path: &self.path,
                w: 0.0,
                reached: BTreeSet::new(),
            },
            |obs| {
                let missing = required.difference(&obs.reached).count();
                obs.w + missing as f64 * UNREACHED_PENALTY
            },
            out,
        );
    }

    fn description(&self) -> String {
        format!(
            "path weak distance of {} over {} required branches",
            self.program.name(),
            self.path.len()
        )
    }
}

/// Path reachability analysis of an [`Analyzable`] program.
#[derive(Debug, Clone)]
pub struct PathAnalysis<P> {
    program: P,
}

impl<P: Analyzable> PathAnalysis<P> {
    /// Creates the analysis.
    pub fn new(program: P) -> Self {
        PathAnalysis { program }
    }

    /// The program under analysis.
    pub fn program(&self) -> &P {
        &self.program
    }

    /// Finds an input driving every branch of `path` in the required
    /// direction.
    pub fn reach(&self, path: &Path, config: &AnalysisConfig) -> Outcome {
        self.reach_run(path, config).outcome
    }

    /// Like [`PathAnalysis::reach`], returning the full minimization run.
    ///
    /// When static analysis
    /// ([`Analyzable::branch_side_reachability`]) proves that some required
    /// `(site, direction)` of `path` can never be taken on any domain
    /// input, the whole path is infeasible and the run is pruned without
    /// spending a single evaluation
    /// ([`MinimizationRun::statically_pruned`]).
    pub fn reach_run(&self, path: &Path, config: &AnalysisConfig) -> MinimizationRun {
        if path.iter().any(|&(site, dir)| {
            self.program
                .branch_side_reachability(site, dir)
                .is_unreachable()
        }) {
            return statically_pruned_run(UNREACHED_PENALTY);
        }
        let wd = PathWeakDistance {
            program: &self.program,
            path: path.clone(),
            kernel_policy: config.kernel_policy,
            opt: SpecializationCache::new(config.opt_policy),
        };
        minimize_weak_distance(&wd, config)
    }

    /// The complete branch path taken by the program on `input`
    /// (used both to pick targets and to verify reported solutions).
    pub fn path_of(&self, input: &[f64]) -> Path {
        let mut rec = TraceRecorder::new();
        self.program.run(input, &mut rec);
        rec.path()
    }

    /// Verification: does executing `input` drive every branch of `path` in
    /// the required direction (considering every execution of the site)?
    pub fn satisfies(&self, input: &[f64], path: &Path) -> bool {
        let taken = self.path_of(input);
        path.iter().all(|&(site, dir)| {
            let mut seen = false;
            let mut ok = true;
            for &(s, d) in &taken {
                if s == site {
                    seen = true;
                    if d != dir {
                        ok = false;
                    }
                }
            }
            seen && ok
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mini_gsl::toy::Fig2Program;

    fn both_branches() -> Path {
        vec![(BranchId(0), true), (BranchId(1), true)]
    }

    #[test]
    fn weak_distance_matches_fig4_values() {
        let wd = PathWeakDistance::new(Fig2Program::new(), both_branches());
        // Solution space is [-3, 1] (Fig. 4(b)).
        for x in [-3.0, -2.0, 0.0, 1.0] {
            assert_eq!(wd.eval(&[x]), 0.0, "W({x})");
        }
        // W(2) = 1 (first branch missed by 1, second satisfied).
        assert_eq!(wd.eval(&[2.0]), 1.0);
        for x in [1.5, 3.0, -4.0] {
            assert!(wd.eval(&[x]) > 0.0, "W({x})");
        }
    }

    #[test]
    fn reach_finds_an_input_in_the_solution_interval() {
        let analysis = PathAnalysis::new(Fig2Program::new());
        let path = both_branches();
        let outcome = analysis.reach(&path, &AnalysisConfig::quick(3));
        let input = outcome.into_input().expect("path is reachable");
        assert!(analysis.satisfies(&input, &path), "input {input:?}");
        assert!((-3.0..=1.0).contains(&input[0]), "input {input:?}");
    }

    #[test]
    fn reach_other_direction() {
        // First branch not taken, second taken: x in (1, 2].
        let analysis = PathAnalysis::new(Fig2Program::new());
        let path = vec![(BranchId(0), false), (BranchId(1), true)];
        let outcome = analysis.reach(&path, &AnalysisConfig::quick(9));
        let input = outcome.into_input().expect("path is reachable");
        assert!(analysis.satisfies(&input, &path));
        assert!(input[0] > 1.0 && input[0] <= 2.0, "input {input:?}");
    }

    #[test]
    fn infeasible_path_reports_not_found() {
        // x <= 1 taken and y <= 4 *not* taken is impossible: if x <= 1 then
        // x+1 <= 2 so y <= 4 ... except for x very negative where (x+1)^2 > 4.
        // A genuinely infeasible requirement: both directions of branch 0.
        let analysis = PathAnalysis::new(Fig2Program::new());
        let path = vec![(BranchId(0), true), (BranchId(0), false)];
        let outcome = analysis.reach(&path, &AnalysisConfig::quick(4).with_rounds(2).with_max_evals(4_000));
        assert!(!outcome.is_found());
    }

    /// Requiring the then-side of `|x| + 1 < 0` is provably infeasible on
    /// every domain input: the run is pruned before any evaluation, while
    /// the feasible else-side still minimizes normally.
    #[test]
    fn provably_untakeable_branch_side_prunes_the_path() {
        use fpir::ir::{BinOp, UnOp};
        let mut mb = fpir::ModuleBuilder::new();
        let mut f = mb.function("guarded", 1);
        let x = f.param(0);
        let one = f.constant(1.0);
        let zero = f.constant(0.0);
        let a = f.un(UnOp::Abs, x, None);
        let y = f.bin(BinOp::Add, a, one, None);
        let dead = f.new_block();
        let live = f.new_block();
        f.cond_br(Some(0), y, fp_runtime::Cmp::Lt, zero, dead, live);
        f.switch_to(dead);
        f.ret(Some(y));
        f.switch_to(live);
        f.ret(Some(x));
        f.finish();
        let program = fpir::ModuleProgram::new(mb.build(), "guarded")
            .expect("entry exists")
            .with_domain(vec![fp_runtime::Interval::symmetric(1.0e3)]);
        let analysis = PathAnalysis::new(program);
        let config = AnalysisConfig::quick(6).with_rounds(1).with_max_evals(2_000);

        let pruned = analysis.reach_run(&vec![(BranchId(0), true)], &config);
        assert!(pruned.statically_pruned());
        assert_eq!(pruned.outcome.evals(), 0);
        assert!(!pruned.outcome.is_found());

        let feasible = analysis.reach_run(&vec![(BranchId(0), false)], &config);
        assert!(!feasible.statically_pruned());
        assert!(feasible.outcome.is_found(), "else side is always taken");
    }

    #[test]
    fn path_of_records_execution_path() {
        let analysis = PathAnalysis::new(Fig2Program::new());
        assert_eq!(
            analysis.path_of(&[0.5]),
            vec![(BranchId(0), true), (BranchId(1), true)]
        );
        assert_eq!(
            analysis.path_of(&[3.0]),
            vec![(BranchId(0), false), (BranchId(1), false)]
        );
    }

    #[test]
    fn satisfies_rejects_wrong_direction() {
        let analysis = PathAnalysis::new(Fig2Program::new());
        let path = both_branches();
        assert!(analysis.satisfies(&[0.0], &path));
        assert!(!analysis.satisfies(&[5.0], &path));
    }
}
