//! The generic weak-distance-minimization driver (Algorithm 2).

use crate::weak_distance::{WeakDistance, WeakDistanceObjective};
use wdm_mo::{
    BasinHopping, DifferentialEvolution, GlobalMinimizer, MinimizeResult, MultiStart, NoTrace,
    Powell, Problem, RandomSearch, SamplingTrace,
};

/// Which MO backend Algorithm 2 uses (Section 4.1 treats the backend as an
/// interchangeable black box; Table 1 compares three of them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Basin hopping (the paper's default).
    BasinHopping,
    /// Differential Evolution.
    DifferentialEvolution,
    /// Powell's method from a random starting point.
    Powell,
    /// Repeated Nelder–Mead from random starting points.
    MultiStart,
    /// Pure random sampling (the Fig. 7 degenerate baseline).
    RandomSearch,
}

impl BackendKind {
    /// All backends, in the order of Table 1 plus the two baselines.
    pub fn all() -> [BackendKind; 5] {
        [
            BackendKind::BasinHopping,
            BackendKind::DifferentialEvolution,
            BackendKind::Powell,
            BackendKind::MultiStart,
            BackendKind::RandomSearch,
        ]
    }

    /// Display name matching the paper's Table 1.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::BasinHopping => "Basinhopping",
            BackendKind::DifferentialEvolution => "Differential E.",
            BackendKind::Powell => "Powell",
            BackendKind::MultiStart => "MultiStart",
            BackendKind::RandomSearch => "RandomSearch",
        }
    }

    fn build(self) -> Box<dyn GlobalMinimizer> {
        match self {
            BackendKind::BasinHopping => Box::new(BasinHopping::default()),
            BackendKind::DifferentialEvolution => Box::new(DifferentialEvolution::default()),
            BackendKind::Powell => Box::new(Powell::default()),
            BackendKind::MultiStart => Box::new(MultiStart::default()),
            BackendKind::RandomSearch => Box::new(RandomSearch::default()),
        }
    }
}

/// Configuration of one analysis run.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisConfig {
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
    /// Objective-evaluation budget per minimization round.
    pub max_evals: usize,
    /// Number of independent minimization rounds (each from fresh random
    /// starting points, as in Algorithm 3 step 4).
    pub rounds: usize,
    /// The MO backend.
    pub backend: BackendKind,
    /// Record the sampling sequence (needed for the figure harnesses).
    pub record_samples: bool,
    /// Keep every `sample_stride`-th sample when recording.
    pub sample_stride: u64,
}

impl AnalysisConfig {
    /// A quick configuration for unit tests and examples.
    pub fn quick(seed: u64) -> Self {
        AnalysisConfig {
            seed,
            max_evals: 20_000,
            rounds: 3,
            backend: BackendKind::BasinHopping,
            record_samples: false,
            sample_stride: 1,
        }
    }

    /// A thorough configuration for the experiment harnesses.
    pub fn thorough(seed: u64) -> Self {
        AnalysisConfig {
            seed,
            max_evals: 200_000,
            rounds: 10,
            backend: BackendKind::BasinHopping,
            record_samples: false,
            sample_stride: 1,
        }
    }

    /// Sets the backend.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the per-round evaluation budget.
    pub fn with_max_evals(mut self, max_evals: usize) -> Self {
        self.max_evals = max_evals;
        self
    }

    /// Sets the number of rounds.
    pub fn with_rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds;
        self
    }

    /// Enables sample recording with the given stride.
    pub fn recording(mut self, stride: u64) -> Self {
        self.record_samples = true;
        self.sample_stride = stride.max(1);
        self
    }
}

/// The result of a floating-point analysis problem in the sense of
/// Definition 2.1: either an element of `S`, or "not found".
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// A solution was found: the weak distance reached zero at `input`.
    Found {
        /// The solution input.
        input: Vec<f64>,
        /// Number of objective evaluations spent.
        evals: usize,
    },
    /// No solution was found within the budget; the best (smallest) weak
    /// distance value and where it was attained are reported. By
    /// Limitation 3 this does *not* prove that `S` is empty.
    NotFound {
        /// Best weak-distance value observed.
        best_value: f64,
        /// Input attaining the best value.
        best_input: Vec<f64>,
        /// Number of objective evaluations spent.
        evals: usize,
    },
}

impl Outcome {
    /// Returns `true` if a solution was found.
    pub fn is_found(&self) -> bool {
        matches!(self, Outcome::Found { .. })
    }

    /// Extracts the solution input, if any.
    pub fn into_input(self) -> Option<Vec<f64>> {
        match self {
            Outcome::Found { input, .. } => Some(input),
            Outcome::NotFound { .. } => None,
        }
    }

    /// Number of objective evaluations spent.
    pub fn evals(&self) -> usize {
        match self {
            Outcome::Found { evals, .. } | Outcome::NotFound { evals, .. } => *evals,
        }
    }
}

/// The raw result of minimizing a weak distance: the driver outcome plus the
/// backend's result and the recorded sampling trace.
#[derive(Debug, Clone)]
pub struct MinimizationRun {
    /// The Definition 2.1 outcome.
    pub outcome: Outcome,
    /// The best backend result across rounds.
    pub best: MinimizeResult,
    /// The recorded sampling sequence (empty unless recording was enabled).
    pub trace: SamplingTrace,
}

/// Algorithm 2: minimizes `wd` with the configured backend and budget.
///
/// The weak distance reaching exactly zero means a solution of the
/// underlying problem has been found (Theorem 3.3); a strictly positive
/// minimum is reported as "not found" (which, by Limitation 3, is not a
/// proof of emptiness).
pub fn minimize_weak_distance(wd: &dyn WeakDistance, config: &AnalysisConfig) -> MinimizationRun {
    let objective = WeakDistanceObjective::new(wd);
    let bounds = objective.bounds();
    let backend = config.backend.build();
    let mut trace = SamplingTrace::with_stride(config.sample_stride);

    let mut best: Option<MinimizeResult> = None;
    let mut total_evals = 0usize;
    for round in 0..config.rounds.max(1) {
        let problem = Problem::new(&objective, bounds.clone())
            .with_target(0.0)
            .with_max_evals(config.max_evals);
        let seed = config.seed.wrapping_add(round as u64).wrapping_mul(0x9e37_79b9);
        let result = if config.record_samples {
            backend.minimize(&problem, seed, &mut trace)
        } else {
            backend.minimize(&problem, seed, &mut NoTrace)
        };
        total_evals += result.evals;
        let is_better = best
            .as_ref()
            .map(|b| result.value < b.value || b.value.is_nan())
            .unwrap_or(true);
        if is_better {
            best = Some(result);
        }
        if best.as_ref().map(|b| b.value <= 0.0).unwrap_or(false) {
            break;
        }
    }

    let best = best.expect("at least one round ran");
    let outcome = if best.value <= 0.0 {
        Outcome::Found {
            input: best.x.clone(),
            evals: total_evals,
        }
    } else {
        Outcome::NotFound {
            best_value: best.value,
            best_input: best.x.clone(),
            evals: total_evals,
        }
    };
    MinimizationRun {
        outcome,
        best,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weak_distance::FnWeakDistance;
    use fp_runtime::Interval;

    fn wd_two_zeros() -> impl WeakDistance {
        FnWeakDistance::new(1, vec![Interval::symmetric(1.0e4)], |x: &[f64]| {
            (x[0] - 1.0).abs() * (x[0] + 3.0).abs()
        })
    }

    #[test]
    fn finds_a_zero_with_default_backend() {
        let run = minimize_weak_distance(&wd_two_zeros(), &AnalysisConfig::quick(1));
        match run.outcome {
            Outcome::Found { input, .. } => {
                let x = input[0];
                assert!(x == 1.0 || x == -3.0, "x = {x}");
            }
            Outcome::NotFound { best_value, .. } => panic!("not found, best = {best_value}"),
        }
    }

    #[test]
    fn reports_not_found_for_positive_minimum() {
        // W(x) = |x| + 1 has minimum 1 > 0: S is empty.
        let wd = FnWeakDistance::new(1, vec![Interval::symmetric(100.0)], |x: &[f64]| {
            x[0].abs() + 1.0
        });
        let run = minimize_weak_distance(&wd, &AnalysisConfig::quick(2).with_rounds(1));
        match run.outcome {
            Outcome::NotFound { best_value, .. } => {
                assert!((best_value - 1.0).abs() < 1e-6, "best = {best_value}");
            }
            Outcome::Found { input, .. } => panic!("spurious solution {input:?}"),
        }
        assert!(!run.outcome.is_found());
        assert!(run.outcome.evals() > 0);
    }

    #[test]
    fn every_backend_solves_the_easy_problem() {
        // |x - 3| over a modest range: every backend should reach ~0, and the
        // exact-zero guarantee holds at least for basin hopping.
        for backend in BackendKind::all() {
            let wd = FnWeakDistance::new(1, vec![Interval::symmetric(50.0)], |x: &[f64]| {
                (x[0] - 3.0).abs()
            });
            let cfg = AnalysisConfig::quick(7).with_backend(backend).with_rounds(2);
            let run = minimize_weak_distance(&wd, &cfg);
            assert!(
                run.best.value < 0.5,
                "{} best = {}",
                backend.name(),
                run.best.value
            );
        }
    }

    #[test]
    fn sampling_trace_is_recorded_when_requested() {
        let run = minimize_weak_distance(
            &wd_two_zeros(),
            &AnalysisConfig::quick(3).with_rounds(1).recording(2),
        );
        assert!(!run.trace.is_empty());
        assert!(run.trace.total_seen() >= run.trace.len() as u64);
    }

    #[test]
    fn outcome_helpers() {
        let found = Outcome::Found {
            input: vec![1.0],
            evals: 10,
        };
        assert!(found.is_found());
        assert_eq!(found.clone().into_input(), Some(vec![1.0]));
        assert_eq!(found.evals(), 10);
        let not = Outcome::NotFound {
            best_value: 0.5,
            best_input: vec![0.0],
            evals: 20,
        };
        assert_eq!(not.clone().into_input(), None);
        assert_eq!(not.evals(), 20);
    }

    #[test]
    fn backend_names_match_table1() {
        assert_eq!(BackendKind::BasinHopping.name(), "Basinhopping");
        assert_eq!(BackendKind::DifferentialEvolution.name(), "Differential E.");
        assert_eq!(BackendKind::Powell.name(), "Powell");
        assert_eq!(BackendKind::all().len(), 5);
    }
}
