//! The generic weak-distance-minimization driver (Algorithm 2), with an
//! optional parallel execution mode.
//!
//! # Parallel restart sharding
//!
//! The driver's independent minimization rounds (Algorithm 3 step 4) are an
//! embarrassingly parallel workload. When
//! [`AnalysisConfig::parallelism`] > 1 the rounds are split across that many
//! worker threads. Determinism is preserved exactly:
//!
//! * every round's seed is derived from the root seed by a SplitMix64-style
//!   bijective mix ([`derive_round_seed`]), independent of scheduling;
//! * rounds are *merged in round order*, stopping at the first round whose
//!   minimum reached zero — precisely the rounds a sequential run would
//!   have executed — so the reported [`Outcome`] (witness, best value,
//!   evaluation count and even the recorded sampling trace) is bit-identical
//!   for any thread count, including 1 and the sequential path;
//! * once some round finds a zero, all *later* rounds are cancelled through
//!   their [`CancelToken`]s (their results are discarded by the merge, so
//!   cancelling them cannot change the outcome — it only saves work).
//!
//! # Batched evaluation
//!
//! The driver hands the weak distance to the backends through
//! [`WeakDistanceObjective`], whose `eval_batch` forwards to
//! [`WeakDistance::eval_batch`]: population backends (Differential
//! Evolution evaluates each generation as one batch, random search each
//! sampling chunk) therefore reach the analysis instances' batched program
//! sessions — and the `fpir` interpreter's batch-interpret mode — without
//! any driver-level plumbing. Batching never changes results: every batch
//! path in the stack is bit-identical to its scalar loop.
//!
//! # Portfolio mode
//!
//! [`minimize_weak_distance_portfolio`] races several [`BackendKind`]s on
//! the same weak distance; the first backend to find a zero cancels the
//! rest. Which backend wins the race is timing-dependent (the returned
//! witness is still always a true zero — Theorem 3.3 does not care who
//! found it), so portfolio mode trades the bit-level determinism of restart
//! sharding for the lowest time-to-first-solution.

use crate::weak_distance::{WeakDistance, WeakDistanceObjective};
use fp_runtime::{KernelPolicy, OptPolicy};
use std::sync::atomic::{AtomicUsize, Ordering};
use wdm_mo::{
    BasinHopping, CancelToken, DifferentialEvolution, GlobalMinimizer, MinimizeResult, MultiStart,
    NoTrace, Powell, Problem, RandomSearch, SamplingTrace, SteppedMinimizer,
};

/// Which MO backend Algorithm 2 uses (Section 4.1 treats the backend as an
/// interchangeable black box; Table 1 compares three of them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Basin hopping (the paper's default).
    BasinHopping,
    /// Differential Evolution.
    DifferentialEvolution,
    /// Powell's method from a random starting point.
    Powell,
    /// Repeated Nelder–Mead from random starting points.
    MultiStart,
    /// Pure random sampling (the Fig. 7 degenerate baseline).
    RandomSearch,
}

impl BackendKind {
    /// All backends, in the order of Table 1 plus the two baselines.
    pub fn all() -> [BackendKind; 5] {
        [
            BackendKind::BasinHopping,
            BackendKind::DifferentialEvolution,
            BackendKind::Powell,
            BackendKind::MultiStart,
            BackendKind::RandomSearch,
        ]
    }

    /// Display name matching the paper's Table 1.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::BasinHopping => "Basinhopping",
            BackendKind::DifferentialEvolution => "Differential E.",
            BackendKind::Powell => "Powell",
            BackendKind::MultiStart => "MultiStart",
            BackendKind::RandomSearch => "RandomSearch",
        }
    }

    fn build(self) -> Box<dyn GlobalMinimizer> {
        match self {
            BackendKind::BasinHopping => Box::new(BasinHopping::default()),
            BackendKind::DifferentialEvolution => Box::new(DifferentialEvolution::default()),
            BackendKind::Powell => Box::new(Powell::default()),
            BackendKind::MultiStart => Box::new(MultiStart::default()),
            BackendKind::RandomSearch => Box::new(RandomSearch::default()),
        }
    }

    /// Builds the backend as a resumable stepped run — the seam the
    /// adaptive portfolio scheduler ([`crate::adaptive`]) reallocates
    /// budget through. Runs are bit-identical to [`GlobalMinimizer`] runs
    /// however they are sliced. Powell has no internal checkpoint, so its
    /// "stepped" run is coarse: the whole run is one slice.
    pub fn build_stepped(self) -> Box<dyn SteppedMinimizer> {
        match self {
            BackendKind::BasinHopping => Box::new(BasinHopping::default()),
            BackendKind::DifferentialEvolution => Box::new(DifferentialEvolution::default()),
            BackendKind::Powell => Box::new(Powell::default()),
            BackendKind::MultiStart => Box::new(MultiStart::default()),
            BackendKind::RandomSearch => Box::new(RandomSearch::default()),
        }
    }
}

/// How [`minimize_weak_distance_portfolio`] spends the backends' budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PortfolioPolicy {
    /// Race every backend to the end, each with the full round/budget
    /// configuration; the first backend to find a zero cancels the rest.
    /// N backends cost up to N full runs, and which backend wins the race
    /// is timing-dependent (the witness is still always a true zero).
    #[default]
    Race,
    /// Bandit-driven budget reallocation across resumable backends
    /// ([`crate::adaptive`]): one full run's worth of budget total,
    /// reallocated each scheduler round toward the backend with the best
    /// residual trajectory. Bit-identical at any thread count.
    Adaptive,
}

/// Plateau-escalation policy of the adaptive portfolio
/// ([`crate::adaptive`]): when the recency-weighted improvement across
/// every live arm stays below `threshold` for `patience` consecutive
/// scheduler rounds, the scheduler escalates — a focused local-polish
/// arm (Powell/Brent started at the incumbent) and a bound-tightened
/// restart arm join the portfolio, drawing from the same evaluation
/// pool, and a handoff describing the tightened region is published for
/// satisfiability-shaped drivers to route to `wdm_xsat` mid-run.
/// Escalation decisions are pure functions of the slice history, so the
/// determinism and checkpoint contracts of the portfolio are preserved.
#[derive(Debug, Clone, PartialEq)]
pub struct EscalationConfig {
    /// An escalation round counts as a plateau round when no live arm's
    /// recency-weighted mean reward reaches this value.
    pub threshold: f64,
    /// Consecutive plateau rounds required before escalating.
    pub patience: usize,
    /// Maximum number of escalation events per run (each event adds two
    /// arms).
    pub max_escalations: usize,
    /// Width of the tightened search box around the incumbent, as a
    /// fraction of each dimension's full width (see
    /// [`wdm_mo::Bounds::tightened_around`]).
    pub tighten: f64,
}

impl Default for EscalationConfig {
    fn default() -> Self {
        EscalationConfig {
            threshold: 0.01,
            patience: 4,
            max_escalations: 2,
            tighten: 0.05,
        }
    }
}

impl EscalationConfig {
    /// Sets the plateau reward threshold.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Sets the plateau patience, in scheduler rounds.
    pub fn with_patience(mut self, patience: usize) -> Self {
        self.patience = patience.max(1);
        self
    }

    /// Sets the maximum number of escalation events.
    pub fn with_max_escalations(mut self, max_escalations: usize) -> Self {
        self.max_escalations = max_escalations;
        self
    }

    /// Sets the tightening fraction of the escalated search box.
    pub fn with_tighten(mut self, tighten: f64) -> Self {
        self.tighten = tighten;
        self
    }
}

/// Configuration of one analysis run.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisConfig {
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
    /// Objective-evaluation budget per minimization round.
    pub max_evals: usize,
    /// Number of independent minimization rounds (each from fresh random
    /// starting points, as in Algorithm 3 step 4).
    pub rounds: usize,
    /// The MO backend.
    pub backend: BackendKind,
    /// Record the sampling sequence (needed for the figure harnesses).
    pub record_samples: bool,
    /// Keep every `sample_stride`-th sample when recording.
    pub sample_stride: u64,
    /// Number of worker threads used to shard the minimization rounds.
    /// `0` and `1` both mean "run sequentially". The outcome is
    /// bit-identical for every value — parallelism only changes wall-clock
    /// time.
    pub parallelism: usize,
    /// Which batch backend the weak distances request from the program
    /// under analysis ([`Analyzable::batch_executor`]): under
    /// [`KernelPolicy::Auto`] eligible `fpir` modules evaluate batches on
    /// the lanewise SoA kernel. Like `parallelism`, the policy never
    /// changes outcomes — every backend is bit-identical — only throughput.
    ///
    /// [`Analyzable::batch_executor`]: fp_runtime::Analyzable::batch_executor
    /// [`KernelPolicy::Auto`]: fp_runtime::KernelPolicy::Auto
    pub kernel_policy: KernelPolicy,
    /// How [`minimize_weak_distance_portfolio`] spends the backends'
    /// budget: race them all to the end ([`PortfolioPolicy::Race`], the
    /// default) or reallocate one run's budget adaptively
    /// ([`PortfolioPolicy::Adaptive`]).
    pub portfolio_policy: PortfolioPolicy,
    /// Whether the weak distances may run a target-specialized
    /// (translation-validated, [`Analyzable::specialize`]) variant of the
    /// program under analysis. Like `kernel_policy`, the policy never
    /// changes outcomes — a specialized program is only kept when it is
    /// proved to produce a bit-identical observed event stream — only
    /// per-evaluation cost.
    ///
    /// [`Analyzable::specialize`]: fp_runtime::Analyzable::specialize
    pub opt_policy: OptPolicy,
    /// Plateau-triggered hybrid escalation of the adaptive portfolio
    /// ([`crate::adaptive`]); `None` (the default) disables escalation
    /// and reproduces the pre-escalation scheduler bit for bit.
    pub escalation: Option<EscalationConfig>,
}

impl AnalysisConfig {
    /// A quick configuration for unit tests and examples.
    pub fn quick(seed: u64) -> Self {
        AnalysisConfig {
            seed,
            max_evals: 20_000,
            rounds: 3,
            backend: BackendKind::BasinHopping,
            record_samples: false,
            sample_stride: 1,
            parallelism: 1,
            kernel_policy: KernelPolicy::Auto,
            portfolio_policy: PortfolioPolicy::Race,
            opt_policy: OptPolicy::Auto,
            escalation: None,
        }
    }

    /// A thorough configuration for the experiment harnesses.
    pub fn thorough(seed: u64) -> Self {
        AnalysisConfig {
            seed,
            max_evals: 200_000,
            rounds: 10,
            backend: BackendKind::BasinHopping,
            record_samples: false,
            sample_stride: 1,
            parallelism: 1,
            kernel_policy: KernelPolicy::Auto,
            portfolio_policy: PortfolioPolicy::Race,
            opt_policy: OptPolicy::Auto,
            escalation: None,
        }
    }

    /// Sets the backend.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the per-round evaluation budget.
    pub fn with_max_evals(mut self, max_evals: usize) -> Self {
        self.max_evals = max_evals;
        self
    }

    /// Sets the number of rounds.
    pub fn with_rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds;
        self
    }

    /// Enables sample recording with the given stride.
    pub fn recording(mut self, stride: u64) -> Self {
        self.record_samples = true;
        self.sample_stride = stride.max(1);
        self
    }

    /// Sets the number of worker threads sharding the rounds (`<= 1` means
    /// sequential). Does not change the outcome, only the wall-clock time.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Sets the kernel policy the weak distances pass to
    /// [`Analyzable::batch_executor`](fp_runtime::Analyzable::batch_executor).
    /// Does not change the outcome — only which (bit-identical) batch
    /// backend evaluates the program.
    pub fn with_kernel_policy(mut self, kernel_policy: KernelPolicy) -> Self {
        self.kernel_policy = kernel_policy;
        self
    }

    /// Sets the portfolio policy [`minimize_weak_distance_portfolio`]
    /// dispatches on.
    pub fn with_portfolio_policy(mut self, portfolio_policy: PortfolioPolicy) -> Self {
        self.portfolio_policy = portfolio_policy;
        self
    }

    /// Sets the specialization policy the weak distances pass to
    /// [`Analyzable::specialize`](fp_runtime::Analyzable::specialize).
    /// Does not change the outcome — a specialized program is kept only
    /// when translation validation proves its observed behavior
    /// bit-identical — only per-evaluation cost.
    pub fn with_opt_policy(mut self, opt_policy: OptPolicy) -> Self {
        self.opt_policy = opt_policy;
        self
    }

    /// Enables plateau-triggered hybrid escalation in the adaptive
    /// portfolio ([`crate::adaptive`]).
    pub fn with_escalation(mut self, escalation: EscalationConfig) -> Self {
        self.escalation = Some(escalation);
        self
    }

    /// Decorrelates this configuration's restart stream from the root seed:
    /// offset 0 leaves the seed unchanged, every other offset derives a
    /// distinct stream. The portfolio racer gives each backend its own
    /// offset so they do not all retrace the same starting points.
    pub fn with_seed_offset(mut self, offset: u64) -> Self {
        if offset > 0 {
            // Offsets map far away from the small round indices used by
            // derive_round_seed inside a run, so streams cannot overlap.
            self.seed = derive_round_seed(self.seed, u64::MAX - offset);
        }
        self
    }
}

/// The result of a floating-point analysis problem in the sense of
/// Definition 2.1: either an element of `S`, or "not found".
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// A solution was found: the weak distance reached zero at `input`.
    Found {
        /// The solution input.
        input: Vec<f64>,
        /// Number of objective evaluations spent.
        evals: usize,
    },
    /// No solution was found within the budget; the best (smallest) weak
    /// distance value and where it was attained are reported. By
    /// Limitation 3 this does *not* prove that `S` is empty.
    NotFound {
        /// Best weak-distance value observed.
        best_value: f64,
        /// Input attaining the best value.
        best_input: Vec<f64>,
        /// Number of objective evaluations spent.
        evals: usize,
    },
}

impl Outcome {
    /// Returns `true` if a solution was found.
    pub fn is_found(&self) -> bool {
        matches!(self, Outcome::Found { .. })
    }

    /// Extracts the solution input, if any.
    pub fn into_input(self) -> Option<Vec<f64>> {
        match self {
            Outcome::Found { input, .. } => Some(input),
            Outcome::NotFound { .. } => None,
        }
    }

    /// Number of objective evaluations spent.
    pub fn evals(&self) -> usize {
        match self {
            Outcome::Found { evals, .. } | Outcome::NotFound { evals, .. } => *evals,
        }
    }
}

/// The raw result of minimizing a weak distance: the driver outcome plus the
/// backend's result and the recorded sampling trace.
#[derive(Debug, Clone)]
pub struct MinimizationRun {
    /// The Definition 2.1 outcome.
    pub outcome: Outcome,
    /// The best backend result across rounds.
    pub best: MinimizeResult,
    /// The recorded sampling sequence (empty unless recording was enabled).
    pub trace: SamplingTrace,
}

impl MinimizationRun {
    /// Returns `true` when this run was pruned by static analysis
    /// ([`statically_pruned_run`]) instead of being minimized.
    pub fn statically_pruned(&self) -> bool {
        self.best.termination == wdm_mo::Termination::StaticallyUnreachable
    }
}

/// The zero-cost run reported when static analysis proved a target
/// unreachable over the search domain: no minimizer runs, no evaluation is
/// charged, and the best result carries
/// [`Termination::StaticallyUnreachable`](wdm_mo::Termination::StaticallyUnreachable)
/// so reports can tell a pruned target from a budget-exhausted miss.
/// Pruning only ever fires on a proof (the interval analysis classifies a
/// target `Unreachable` only when no domain point can reach it), so
/// replacing the minimization with this constant never loses a solution.
pub fn statically_pruned_run(best_value: f64) -> MinimizationRun {
    MinimizationRun {
        outcome: Outcome::NotFound {
            best_value,
            best_input: Vec::new(),
            evals: 0,
        },
        best: MinimizeResult::new(
            Vec::new(),
            best_value,
            0,
            wdm_mo::Termination::StaticallyUnreachable,
        ),
        trace: SamplingTrace::with_stride(1),
    }
}

/// Derives the seed of round (shard) `round` from the root seed by a
/// SplitMix64-style finalizer (Stafford's Mix13 constants).
///
/// The mix is a bijection of `u64` applied to `root + (round + 1) * γ` with
/// odd γ, so for a fixed root seed, distinct round indices can never
/// collide — every shard of a parallel run gets a distinct, statistically
/// independent seed, and the derivation does not depend on which thread
/// runs the shard.
pub fn derive_round_seed(root: u64, round: u64) -> u64 {
    const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut z = root.wrapping_add(round.wrapping_add(1).wrapping_mul(GAMMA));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One completed minimization round: the backend result plus the samples it
/// recorded (empty unless recording is on).
struct RoundRun {
    result: MinimizeResult,
    trace: SamplingTrace,
}

/// Runs round `round` of the restart loop: one backend run from the
/// round-derived seed, recording into a fresh per-round trace.
fn run_round(
    objective: &WeakDistanceObjective<'_>,
    bounds: &wdm_mo::Bounds,
    config: &AnalysisConfig,
    round: usize,
    cancel: CancelToken,
) -> RoundRun {
    let problem = Problem::new(objective, bounds.clone())
        .with_target(0.0)
        .with_max_evals(config.max_evals)
        .with_cancel(cancel);
    let seed = derive_round_seed(config.seed, round as u64);
    let backend = config.backend.build();
    let mut trace = SamplingTrace::with_stride(config.sample_stride);
    let result = if config.record_samples {
        backend.minimize(&problem, seed, &mut trace)
    } else {
        backend.minimize(&problem, seed, &mut NoTrace)
    };
    RoundRun { result, trace }
}

/// The restart-merge comparison: does a round's `result` replace the
/// incumbent best? (Strictly smaller value, or the incumbent is NaN.)
/// Shared with the incremental merge of [`crate::adaptive::SteppedAnalysis`],
/// whose bit-identity to this merge is load-bearing.
pub(crate) fn round_improves(result: &MinimizeResult, incumbent: Option<&MinimizeResult>) -> bool {
    incumbent
        .map(|b| result.value < b.value || b.value.is_nan())
        .unwrap_or(true)
}

/// Assembles the Definition 2.1 outcome from a merged best result and the
/// total charged evaluations. Shared with the incremental merge of
/// [`crate::adaptive::SteppedAnalysis`].
pub(crate) fn outcome_from_best(best: &MinimizeResult, total_evals: usize) -> Outcome {
    if best.value <= 0.0 {
        Outcome::Found {
            input: best.x.clone(),
            evals: total_evals,
        }
    } else {
        Outcome::NotFound {
            best_value: best.value,
            best_input: best.x.clone(),
            evals: total_evals,
        }
    }
}

/// Merges per-round results exactly as the sequential restart loop would:
/// rounds are charged in index order up to and including the first round
/// whose minimum reached zero; later rounds (run speculatively by the
/// parallel path, or never run at all) are discarded. A `None` round was
/// skipped — an earlier round hit zero, or cancellation stopped the
/// restart loop before it started — so nothing at or past it is charged.
/// Under mid-run cancellation with parallelism, a later round claimed
/// just before the token fired may have completed; like post-hit
/// speculation, its work is discarded and uncharged — the merge always
/// reports a sequential prefix (race-mode cancellation timing is
/// nondeterministic either way; pre-cancelled runs have no in-flight
/// speculation, so their charged count exactly matches what the objective
/// observed, which the regression tests pin).
fn merge_rounds(rounds: Vec<Option<RoundRun>>) -> MinimizationRun {
    let mut best: Option<MinimizeResult> = None;
    let mut total_evals = 0usize;
    let mut trace: Option<SamplingTrace> = None;
    for round in rounds.into_iter() {
        let Some(round) = round else { break };
        total_evals += round.result.evals;
        match &mut trace {
            None => trace = Some(round.trace),
            Some(t) => t.append(round.trace),
        }
        if round_improves(&round.result, best.as_ref()) {
            best = Some(round.result);
        }
        if best.as_ref().map(|b| b.value <= 0.0).unwrap_or(false) {
            break;
        }
    }

    let best = best.expect("at least one round ran");
    let outcome = outcome_from_best(&best, total_evals);
    MinimizationRun {
        outcome,
        best,
        trace: trace.expect("at least one round ran"),
    }
}

/// Algorithm 2: minimizes `wd` with the configured backend and budget.
///
/// The weak distance reaching exactly zero means a solution of the
/// underlying problem has been found (Theorem 3.3); a strictly positive
/// minimum is reported as "not found" (which, by Limitation 3, is not a
/// proof of emptiness).
///
/// With [`AnalysisConfig::parallelism`] > 1 the independent rounds are
/// sharded across worker threads; the result is bit-identical to the
/// sequential run (see the module documentation).
pub fn minimize_weak_distance(wd: &dyn WeakDistance, config: &AnalysisConfig) -> MinimizationRun {
    minimize_weak_distance_cancellable(wd, config, &CancelToken::new())
}

/// [`minimize_weak_distance`] with an external cancellation token: the run
/// stops at the next objective evaluation once `cancel` fires. The engine's
/// portfolio and campaign modes use this to stop losing searches early.
pub fn minimize_weak_distance_cancellable(
    wd: &dyn WeakDistance,
    config: &AnalysisConfig,
    cancel: &CancelToken,
) -> MinimizationRun {
    let objective = WeakDistanceObjective::new(wd);
    let bounds = objective.bounds();
    let rounds = config.rounds.max(1);
    let workers = config.parallelism.max(1).min(rounds);

    let round_runs: Vec<Option<RoundRun>> = if workers <= 1 {
        // Sequential path: run rounds in order, stop after the first zero
        // (exactly what merge_rounds charges). A cancelled run stops
        // *between* rounds too: round 0 always runs (so the merge has a
        // result to report), but starting further rounds only to watch
        // each observe the cancellation would charge spurious evaluations
        // to the portfolio entry.
        let mut runs: Vec<Option<RoundRun>> = Vec::with_capacity(rounds);
        for round in 0..rounds {
            if round > 0 && cancel.is_cancelled() {
                break;
            }
            let run = run_round(&objective, &bounds, config, round, cancel.clone());
            let hit = run.result.value <= 0.0;
            runs.push(Some(run));
            if hit {
                break;
            }
        }
        runs
    } else {
        run_rounds_parallel(&objective, &bounds, config, rounds, workers, cancel)
    };

    merge_rounds(round_runs)
}

/// Shards `rounds` rounds over `workers` threads with first-hit
/// cancellation of the rounds the merge will discard.
fn run_rounds_parallel(
    objective: &WeakDistanceObjective<'_>,
    bounds: &wdm_mo::Bounds,
    config: &AnalysisConfig,
    rounds: usize,
    workers: usize,
    cancel: &CancelToken,
) -> Vec<Option<RoundRun>> {
    // One child token per round so rounds after an early hit can be stopped
    // individually while earlier rounds (still charged by the merge) finish
    // undisturbed.
    let tokens: Vec<CancelToken> = (0..rounds).map(|_| cancel.child()).collect();
    // Smallest round index that reached zero so far (usize::MAX = none).
    let first_hit = AtomicUsize::new(usize::MAX);

    let mut runs = wdm_mo::scoped_map(workers, rounds, |round| {
        // A strictly earlier round already hit zero: this round's result
        // would be discarded by the merge — skip it.
        if first_hit.load(Ordering::Acquire) < round {
            return None;
        }
        // The whole run was cancelled: don't start further rounds (the
        // merge stops at the first skipped round; round 0 still runs so
        // there is a result to report).
        if round > 0 && cancel.is_cancelled() {
            return None;
        }
        let run = run_round(objective, bounds, config, round, tokens[round].clone());
        if run.result.value <= 0.0 {
            // Record the minimum hit index and cancel every later round —
            // those are exactly the rounds the merge discards, so
            // cancelling them cannot change the result.
            let mut current = first_hit.load(Ordering::Acquire);
            while round < current {
                match first_hit.compare_exchange(
                    current,
                    round,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => break,
                    Err(observed) => current = observed,
                }
            }
            for token in tokens.iter().skip(round + 1) {
                token.cancel();
            }
        }
        Some(run)
    });

    // Hand the merge only the rounds it will look at: everything up to and
    // including the first hit (or all rounds when nothing hit zero).
    let stop = first_hit.load(Ordering::Acquire).min(rounds.saturating_sub(1));
    runs.truncate(stop + 1);
    runs
}

/// The result of one backend inside a portfolio race.
#[derive(Debug, Clone)]
pub struct PortfolioEntry {
    /// Which backend this is.
    pub backend: BackendKind,
    /// The backend's full minimization run (its best may carry
    /// `Termination::Cancelled` if it lost the race).
    pub run: MinimizationRun,
}

/// The result of racing several backends on one weak distance.
#[derive(Debug, Clone)]
pub struct PortfolioRun {
    /// The index into `entries` whose outcome is reported (first backend in
    /// the given order with a solution, otherwise the best residual).
    pub winner: usize,
    /// Per-backend results, in the order the backends were given.
    pub entries: Vec<PortfolioEntry>,
}

impl PortfolioRun {
    /// The winning backend.
    pub fn winning_backend(&self) -> BackendKind {
        self.entries[self.winner].backend
    }

    /// The reported outcome (the winner's, with evaluations summed over the
    /// whole portfolio — every backend's work is charged).
    pub fn outcome(&self) -> Outcome {
        let total_evals: usize = self
            .entries
            .iter()
            .map(|e| e.run.outcome.evals())
            .sum();
        match &self.entries[self.winner].run.outcome {
            Outcome::Found { input, .. } => Outcome::Found {
                input: input.clone(),
                evals: total_evals,
            },
            Outcome::NotFound {
                best_value,
                best_input,
                ..
            } => Outcome::NotFound {
                best_value: *best_value,
                best_input: best_input.clone(),
                evals: total_evals,
            },
        }
    }
}

/// Picks the reported entry of a portfolio: the first backend (in the
/// given order) with a solution, otherwise the best residual (NaN-aware).
pub(crate) fn pick_winner(runs: &[MinimizationRun]) -> usize {
    runs.iter()
        .position(|r| r.outcome.is_found())
        .unwrap_or_else(|| {
            let mut best = 0usize;
            for (i, run) in runs.iter().enumerate() {
                let (b, c) = (runs[best].best.value, run.best.value);
                if c < b || (b.is_nan() && !c.is_nan()) {
                    best = i;
                }
            }
            best
        })
}

/// Portfolio mode: runs `backends` on `wd` under the configured
/// [`PortfolioPolicy`].
///
/// * [`PortfolioPolicy::Race`] (default) races every backend with the full
///   round/budget configuration, cancelling the rest as soon as one finds
///   a zero. The returned witness (if any) is always a true zero of the
///   weak distance; *which* backend provides it — and how many evaluations
///   the cancelled backends spent — depends on thread timing. Use restart
///   sharding ([`AnalysisConfig::parallelism`]) when bit-level
///   reproducibility matters more than time-to-first-solution.
/// * [`PortfolioPolicy::Adaptive`] reallocates one run's worth of budget
///   across resumable backends with a deterministic bandit scheduler
///   ([`crate::adaptive`]); the result is bit-identical at any
///   [`AnalysisConfig::parallelism`].
///
/// # Panics
///
/// Panics if `backends` is empty.
pub fn minimize_weak_distance_portfolio(
    wd: &dyn WeakDistance,
    config: &AnalysisConfig,
    backends: &[BackendKind],
) -> PortfolioRun {
    match config.portfolio_policy {
        PortfolioPolicy::Race => race_portfolio(wd, config, backends),
        PortfolioPolicy::Adaptive => {
            crate::adaptive::minimize_weak_distance_adaptive(wd, config, backends)
        }
    }
}

/// The [`PortfolioPolicy::Race`] implementation.
fn race_portfolio(
    wd: &dyn WeakDistance,
    config: &AnalysisConfig,
    backends: &[BackendKind],
) -> PortfolioRun {
    assert!(!backends.is_empty(), "portfolio needs at least one backend");
    let race = CancelToken::new();
    let runs: Vec<MinimizationRun> = std::thread::scope(|scope| {
        let handles: Vec<_> = backends
            .iter()
            .enumerate()
            .map(|(index, &backend)| {
                let race = &race;
                let config = config
                    .clone()
                    .with_backend(backend)
                    .with_parallelism(1)
                    // Decorrelate the backends' restart streams.
                    .with_seed_offset(index as u64);
                scope.spawn(move || {
                    let run = minimize_weak_distance_cancellable(wd, &config, &race.child());
                    if run.outcome.is_found() {
                        race.cancel();
                    }
                    run
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("portfolio worker panicked"))
            .collect()
    });

    let winner = pick_winner(&runs);
    PortfolioRun {
        winner,
        entries: backends
            .iter()
            .zip(runs)
            .map(|(&backend, run)| PortfolioEntry { backend, run })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weak_distance::FnWeakDistance;
    use fp_runtime::Interval;

    fn wd_two_zeros() -> impl WeakDistance {
        FnWeakDistance::new(1, vec![Interval::symmetric(1.0e4)], |x: &[f64]| {
            (x[0] - 1.0).abs() * (x[0] + 3.0).abs()
        })
    }

    #[test]
    fn finds_a_zero_with_default_backend() {
        let run = minimize_weak_distance(&wd_two_zeros(), &AnalysisConfig::quick(1));
        match run.outcome {
            Outcome::Found { input, .. } => {
                let x = input[0];
                assert!(x == 1.0 || x == -3.0, "x = {x}");
            }
            Outcome::NotFound { best_value, .. } => panic!("not found, best = {best_value}"),
        }
    }

    #[test]
    fn reports_not_found_for_positive_minimum() {
        // W(x) = |x| + 1 has minimum 1 > 0: S is empty.
        let wd = FnWeakDistance::new(1, vec![Interval::symmetric(100.0)], |x: &[f64]| {
            x[0].abs() + 1.0
        });
        let run = minimize_weak_distance(&wd, &AnalysisConfig::quick(2).with_rounds(1));
        match run.outcome {
            Outcome::NotFound { best_value, .. } => {
                assert!((best_value - 1.0).abs() < 1e-6, "best = {best_value}");
            }
            Outcome::Found { input, .. } => panic!("spurious solution {input:?}"),
        }
        assert!(!run.outcome.is_found());
        assert!(run.outcome.evals() > 0);
    }

    #[test]
    fn every_backend_solves_the_easy_problem() {
        // |x - 3| over a modest range: every backend should reach ~0, and the
        // exact-zero guarantee holds at least for basin hopping.
        for backend in BackendKind::all() {
            let wd = FnWeakDistance::new(1, vec![Interval::symmetric(50.0)], |x: &[f64]| {
                (x[0] - 3.0).abs()
            });
            let cfg = AnalysisConfig::quick(7).with_backend(backend).with_rounds(2);
            let run = minimize_weak_distance(&wd, &cfg);
            assert!(
                run.best.value < 0.5,
                "{} best = {}",
                backend.name(),
                run.best.value
            );
        }
    }

    #[test]
    fn sampling_trace_is_recorded_when_requested() {
        let run = minimize_weak_distance(
            &wd_two_zeros(),
            &AnalysisConfig::quick(3).with_rounds(1).recording(2),
        );
        assert!(!run.trace.is_empty());
        assert!(run.trace.total_seen() >= run.trace.len() as u64);
    }

    #[test]
    fn outcome_helpers() {
        let found = Outcome::Found {
            input: vec![1.0],
            evals: 10,
        };
        assert!(found.is_found());
        assert_eq!(found.clone().into_input(), Some(vec![1.0]));
        assert_eq!(found.evals(), 10);
        let not = Outcome::NotFound {
            best_value: 0.5,
            best_input: vec![0.0],
            evals: 20,
        };
        assert_eq!(not.clone().into_input(), None);
        assert_eq!(not.evals(), 20);
    }

    #[test]
    fn parallel_rounds_match_sequential_bit_for_bit() {
        // A weak distance with no zero: every round runs to completion, so
        // the merge must charge all of them identically at any thread count.
        let wd = FnWeakDistance::new(1, vec![Interval::symmetric(100.0)], |x: &[f64]| {
            x[0].abs() + 0.5
        });
        let base = AnalysisConfig::quick(41).with_rounds(6).with_max_evals(4_000);
        let sequential = minimize_weak_distance(&wd, &base);
        for threads in [2, 3, 8] {
            let parallel =
                minimize_weak_distance(&wd, &base.clone().with_parallelism(threads));
            assert_eq!(parallel.outcome, sequential.outcome, "threads = {threads}");
            assert_eq!(parallel.best, sequential.best, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_rounds_find_solutions_too() {
        let base = AnalysisConfig::quick(9).with_rounds(4);
        let sequential = minimize_weak_distance(&wd_two_zeros(), &base);
        let parallel =
            minimize_weak_distance(&wd_two_zeros(), &base.clone().with_parallelism(4));
        assert_eq!(parallel.outcome, sequential.outcome);
    }

    #[test]
    fn parallel_recording_reproduces_the_sequential_trace() {
        let wd = FnWeakDistance::new(1, vec![Interval::symmetric(50.0)], |x: &[f64]| {
            x[0].abs() + 1.0
        });
        let base = AnalysisConfig::quick(5)
            .with_rounds(3)
            .with_max_evals(2_000)
            .recording(2);
        let sequential = minimize_weak_distance(&wd, &base);
        let parallel = minimize_weak_distance(&wd, &base.clone().with_parallelism(3));
        assert_eq!(parallel.trace.len(), sequential.trace.len());
        assert_eq!(parallel.trace.total_seen(), sequential.trace.total_seen());
        assert_eq!(parallel.trace.samples(), sequential.trace.samples());
    }

    #[test]
    fn derived_round_seeds_are_distinct_and_scheduling_free() {
        let mut seen = std::collections::BTreeSet::new();
        for round in 0..2_000u64 {
            assert!(seen.insert(derive_round_seed(123, round)), "round {round}");
        }
        assert_eq!(derive_round_seed(7, 3), derive_round_seed(7, 3));
        assert_ne!(derive_round_seed(7, 3), derive_round_seed(8, 3));
    }

    #[test]
    fn external_cancellation_stops_the_run_quickly() {
        let wd = FnWeakDistance::new(1, vec![Interval::symmetric(100.0)], |x: &[f64]| {
            x[0].abs() + 1.0
        });
        let cancel = wdm_mo::CancelToken::new();
        cancel.cancel();
        let config = AnalysisConfig::quick(1).with_rounds(3).with_max_evals(100_000);
        let run = minimize_weak_distance_cancellable(&wd, &config, &cancel);
        // A pre-cancelled run spends almost nothing (only the evaluations a
        // backend performs before its first stop check).
        assert!(run.outcome.evals() < 5_000, "evals = {}", run.outcome.evals());
    }

    /// Regression (PR 5): a cancelled run used to launch every remaining
    /// restart round anyway; each round burned evaluations before
    /// observing the token, so a cancelled portfolio entry charged several
    /// rounds' worth of spurious work and its eval count drifted from what
    /// the objective actually saw. A cancelled run now stops between
    /// rounds, and the charged count equals the objective-observed count.
    #[test]
    fn cancelled_run_does_not_start_further_rounds() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let count = AtomicU64::new(0);
        let wd = FnWeakDistance::new(1, vec![Interval::symmetric(100.0)], |x: &[f64]| {
            count.fetch_add(1, Ordering::Relaxed);
            x[0].abs() + 1.0
        });
        let cancel = CancelToken::new();
        cancel.cancel();

        let one_round = minimize_weak_distance_cancellable(
            &wd,
            &AnalysisConfig::quick(1).with_rounds(1).with_max_evals(100_000),
            &cancel,
        );
        let counted_one = count.swap(0, Ordering::Relaxed);
        assert_eq!(one_round.outcome.evals() as u64, counted_one);

        for parallelism in [1usize, 4] {
            let five_rounds = minimize_weak_distance_cancellable(
                &wd,
                &AnalysisConfig::quick(1)
                    .with_rounds(5)
                    .with_max_evals(100_000)
                    .with_parallelism(parallelism),
                &cancel,
            );
            let counted = count.swap(0, Ordering::Relaxed);
            // Charged == objective-observed (nothing leaks past the merge)…
            assert_eq!(five_rounds.outcome.evals() as u64, counted);
            // …and rounds 1..4 never started: the 5-round cancelled run is
            // exactly the 1-round cancelled run.
            assert_eq!(five_rounds.outcome, one_round.outcome, "parallelism {parallelism}");
            assert_eq!(five_rounds.best, one_round.best, "parallelism {parallelism}");
        }
    }

    /// The same accounting invariant through the batched (Differential
    /// Evolution) path: with the stop pending at batch entry, the
    /// objective sees exactly the one sample the scalar post-check loop
    /// evaluates per round — and only round 0 runs.
    #[test]
    fn cancelled_batched_run_charges_exactly_what_the_objective_saw() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let count = AtomicU64::new(0);
        let wd = FnWeakDistance::new(1, vec![Interval::symmetric(100.0)], |x: &[f64]| {
            count.fetch_add(1, Ordering::Relaxed);
            x[0].abs() + 1.0
        });
        let cancel = CancelToken::new();
        cancel.cancel();
        let run = minimize_weak_distance_cancellable(
            &wd,
            &AnalysisConfig::quick(2)
                .with_rounds(4)
                .with_backend(BackendKind::DifferentialEvolution),
            &cancel,
        );
        let counted = count.load(Ordering::Relaxed);
        assert_eq!(run.outcome.evals() as u64, counted);
        // One pre-cancelled batch evaluates exactly one sample.
        assert_eq!(run.outcome.evals(), 1);
        assert_eq!(run.best.termination, wdm_mo::Termination::Cancelled);
    }

    #[test]
    fn portfolio_reports_a_true_zero_and_all_entries() {
        let run = minimize_weak_distance_portfolio(
            &wd_two_zeros(),
            &AnalysisConfig::quick(2).with_rounds(2),
            &BackendKind::all(),
        );
        assert_eq!(run.entries.len(), 5);
        let outcome = run.outcome();
        match outcome {
            Outcome::Found { input, .. } => {
                let x = input[0];
                assert!(x == 1.0 || x == -3.0, "x = {x}");
            }
            Outcome::NotFound { best_value, .. } => panic!("not found, best = {best_value}"),
        }
        // The winner's own outcome is a solution.
        assert!(run.entries[run.winner].run.outcome.is_found());
        assert_eq!(run.winning_backend(), run.entries[run.winner].backend);
    }

    #[test]
    fn portfolio_without_solutions_reports_best_residual() {
        let wd = FnWeakDistance::new(1, vec![Interval::symmetric(10.0)], |x: &[f64]| {
            x[0].abs() + 2.0
        });
        let run = minimize_weak_distance_portfolio(
            &wd,
            &AnalysisConfig::quick(3).with_rounds(1).with_max_evals(3_000),
            &[BackendKind::BasinHopping, BackendKind::RandomSearch],
        );
        match run.outcome() {
            Outcome::NotFound { best_value, .. } => {
                assert!((best_value - 2.0).abs() < 1e-9, "best = {best_value}");
            }
            Outcome::Found { input, .. } => panic!("spurious solution {input:?}"),
        }
    }

    #[test]
    fn backend_names_match_table1() {
        assert_eq!(BackendKind::BasinHopping.name(), "Basinhopping");
        assert_eq!(BackendKind::DifferentialEvolution.name(), "Differential E.");
        assert_eq!(BackendKind::Powell.name(), "Powell");
        assert_eq!(BackendKind::all().len(), 5);
    }
}
