//! The weak-distance abstraction (Definition 3.1).

use fp_runtime::{Analyzable, BatchExecutor, Interval, ObservationSpec, Observer, OptPolicy};
use std::sync::OnceLock;
use wdm_mo::Objective;

/// How many inputs the analysis instances hand to
/// [`BatchExecutor::execute_many`] at once. One fpir kernel wave
/// (`fpir::kernel::WAVE_LANES`), so the lanewise backend always runs full
/// waves while the per-chunk observer storage stays small enough to be
/// cache-hot for cheap scalar-session programs.
const OBSERVER_CHUNK: usize = 256;

/// Runs every input of `xs` through `session` with a fresh observer each
/// (built by `make`), folding each finished observer into the weak-distance
/// value with `fold`. Inputs are fed in [`OBSERVER_CHUNK`]-sized groups;
/// per-input results and events are bit-identical to looping
/// [`BatchExecutor::execute_one`] whatever the chunking.
pub(crate) fn batch_observed<O: Observer>(
    session: &mut dyn BatchExecutor,
    xs: &[Vec<f64>],
    mut make: impl FnMut() -> O,
    mut fold: impl FnMut(O) -> f64,
    out: &mut Vec<f64>,
) {
    out.clear();
    out.reserve(xs.len());
    let mut observers: Vec<O> = Vec::with_capacity(OBSERVER_CHUNK.min(xs.len()));
    let mut results = Vec::new();
    for chunk in xs.chunks(OBSERVER_CHUNK) {
        observers.clear();
        observers.extend(chunk.iter().map(|_| make()));
        let mut refs: Vec<&mut dyn Observer> = observers
            .iter_mut()
            .map(|o| o as &mut dyn Observer)
            .collect();
        session.execute_many(chunk, &mut refs, &mut results);
        out.extend(observers.drain(..).map(&mut fold));
    }
}

/// Lazily specializes a program against an analysis target's
/// [`ObservationSpec`] under an [`OptPolicy`], caching the result for the
/// lifetime of the weak distance.
///
/// The first evaluation triggers [`Analyzable::specialize`]; every later
/// one reuses the outcome — either the translation-validated specialized
/// program or the original (when the policy forbids specialization, the
/// program has no optimizing backend, or validation rejected the rewrite).
/// Cloning a cache produces a fresh, unfilled one with the same policy, so
/// derived analyses re-specialize against their own target.
pub struct SpecializationCache {
    policy: OptPolicy,
    cell: OnceLock<Option<Box<dyn Analyzable>>>,
}

impl SpecializationCache {
    /// An empty cache with the given policy.
    pub fn new(policy: OptPolicy) -> Self {
        SpecializationCache {
            policy,
            cell: OnceLock::new(),
        }
    }

    /// The policy this cache specializes under.
    pub fn policy(&self) -> OptPolicy {
        self.policy
    }

    /// The program evaluations should run: the specialized variant when one
    /// exists (computed against `spec` on first call), `program` otherwise.
    pub fn specialized<'a>(
        &'a self,
        program: &'a dyn Analyzable,
        spec: &ObservationSpec,
    ) -> &'a dyn Analyzable {
        match self
            .cell
            .get_or_init(|| program.specialize(spec, self.policy))
        {
            Some(p) => &**p,
            None => program,
        }
    }

    /// Whether the cache resolved to a specialized program (i.e. at least
    /// one evaluation happened and specialization succeeded).
    pub fn is_specialized(&self) -> bool {
        matches!(self.cell.get(), Some(Some(_)))
    }
}

impl Clone for SpecializationCache {
    fn clone(&self) -> Self {
        SpecializationCache::new(self.policy)
    }
}

impl Default for SpecializationCache {
    fn default() -> Self {
        SpecializationCache::new(OptPolicy::default())
    }
}

impl std::fmt::Debug for SpecializationCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpecializationCache")
            .field("policy", &self.policy)
            .field("specialized", &self.is_specialized())
            .finish()
    }
}

/// A weak distance of a floating-point analysis problem ⟨Prog; S⟩:
/// a program `W : dom(Prog) → F` such that
///
/// 1. `W(x) >= 0` for every input,
/// 2. `W(x) = 0` implies `x ∈ S`, and
/// 3. `x ∈ S` implies `W(x) = 0`.
///
/// By Theorem 3.3, minimizing any such `W` solves the analysis problem.
/// Implementations in this crate evaluate `W` by *executing* the program
/// under analysis with an observer that folds the runtime events into `w` —
/// never by reasoning about the program text.
///
/// Weak distances are shared across worker threads by the parallel driver
/// (restart shards and portfolio backends evaluate the same `W`
/// concurrently), hence the `Send + Sync` bound: `eval` must tolerate
/// concurrent calls. The standard construction — build a fresh observer,
/// run the program, fold events — is naturally safe.
pub trait WeakDistance: Send + Sync {
    /// Number of program inputs `N`.
    fn dim(&self) -> usize;

    /// Search box used to sample optimization starting points.
    fn domain(&self) -> Vec<Interval>;

    /// Evaluates the weak distance at `x`.
    fn eval(&self, x: &[f64]) -> f64;

    /// Evaluates the weak distance at every point of `xs`, replacing the
    /// contents of `out` with one value per point (in order).
    ///
    /// The default is a scalar loop over [`WeakDistance::eval`]; the
    /// analysis instances override it to run the whole batch through one
    /// [`fp_runtime::BatchExecutor`] of the program under analysis, which
    /// amortizes per-execution setup (the `fpir` interpreter reuses its
    /// register frames and globals buffer across the batch). Overrides must
    /// return **bit-identical** values to the scalar loop — each input
    /// still gets its own fresh observer.
    fn eval_batch(&self, xs: &[Vec<f64>], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(xs.len());
        for x in xs {
            out.push(self.eval(x));
        }
    }

    /// A short description for reports.
    fn description(&self) -> String {
        "weak distance".to_string()
    }

    /// Checks the nonnegativity axiom (Definition 3.1(a)) on a set of sample
    /// points; returns the first violating input, if any. Used by tests and
    /// by the analysis designer as a cheap sanity check.
    fn check_nonnegative<'a, I>(&self, samples: I) -> Option<Vec<f64>>
    where
        Self: Sized,
        I: IntoIterator<Item = &'a [f64]>,
    {
        for x in samples {
            let v = self.eval(x);
            if v < 0.0 {
                return Some(x.to_vec());
            }
        }
        None
    }
}

/// Adapts a [`WeakDistance`] to the [`wdm_mo::Objective`] interface expected
/// by the optimization backends.
pub struct WeakDistanceObjective<'a> {
    inner: &'a dyn WeakDistance,
}

impl<'a> WeakDistanceObjective<'a> {
    /// Wraps a weak distance.
    pub fn new(inner: &'a dyn WeakDistance) -> Self {
        WeakDistanceObjective { inner }
    }

    /// The bounds corresponding to the weak distance's domain.
    pub fn bounds(&self) -> wdm_mo::Bounds {
        wdm_mo::Bounds::new(
            self.inner
                .domain()
                .iter()
                .map(|iv| (iv.lo(), iv.hi()))
                .collect(),
        )
    }
}

impl Objective for WeakDistanceObjective<'_> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn eval(&self, x: &[f64]) -> f64 {
        self.inner.eval(x)
    }

    fn eval_batch(&self, xs: &[Vec<f64>], out: &mut Vec<f64>) {
        self.inner.eval_batch(xs, out);
    }
}

impl std::fmt::Debug for WeakDistanceObjective<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WeakDistanceObjective")
            .field("description", &self.inner.description())
            .finish()
    }
}

/// A weak distance defined by a closure, useful for tests and for the
/// "Analysis Designer" layer when prototyping new instances.
pub struct FnWeakDistance<F> {
    dim: usize,
    domain: Vec<Interval>,
    f: F,
    description: String,
}

impl<F> FnWeakDistance<F>
where
    F: Fn(&[f64]) -> f64 + Send + Sync,
{
    /// Creates a closure-backed weak distance.
    pub fn new(dim: usize, domain: Vec<Interval>, f: F) -> Self {
        assert_eq!(domain.len(), dim, "domain arity mismatch");
        FnWeakDistance {
            dim,
            domain,
            f,
            description: "closure weak distance".to_string(),
        }
    }

    /// Sets the description.
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }
}

impl<F> WeakDistance for FnWeakDistance<F>
where
    F: Fn(&[f64]) -> f64 + Send + Sync,
{
    fn dim(&self) -> usize {
        self.dim
    }

    fn domain(&self) -> Vec<Interval> {
        self.domain.clone()
    }

    fn eval(&self, x: &[f64]) -> f64 {
        (self.f)(x)
    }

    fn description(&self) -> String {
        self.description.clone()
    }
}

impl<F> std::fmt::Debug for FnWeakDistance<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnWeakDistance")
            .field("dim", &self.dim)
            .field("description", &self.description)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abs_wd() -> impl WeakDistance {
        FnWeakDistance::new(1, vec![Interval::symmetric(10.0)], |x: &[f64]| {
            (x[0] - 2.0).abs()
        })
        .with_description("|x - 2|")
    }

    #[test]
    fn closure_weak_distance_basics() {
        let wd = abs_wd();
        assert_eq!(wd.dim(), 1);
        assert_eq!(wd.eval(&[2.0]), 0.0);
        assert_eq!(wd.eval(&[5.0]), 3.0);
        assert_eq!(wd.description(), "|x - 2|");
        assert_eq!(wd.domain().len(), 1);
    }

    #[test]
    fn nonnegativity_check_finds_violations() {
        let wd = abs_wd();
        let a = [0.0_f64];
        let b = [7.0_f64];
        assert_eq!(wd.check_nonnegative([&a[..], &b[..]]), None);

        let bad = FnWeakDistance::new(1, vec![Interval::symmetric(1.0)], |x: &[f64]| x[0]);
        let neg = [-0.5_f64];
        assert_eq!(bad.check_nonnegative([&neg[..]]), Some(vec![-0.5]));
    }

    #[test]
    fn objective_adapter_exposes_bounds() {
        let wd = abs_wd();
        let obj = WeakDistanceObjective::new(&wd);
        assert_eq!(Objective::dim(&obj), 1);
        assert_eq!(Objective::eval(&obj, &[2.0]), 0.0);
        assert_eq!(obj.bounds().limit(0), (-10.0, 10.0));
    }

    #[test]
    fn default_eval_batch_and_adapter_forwarding_match_scalar() {
        let wd = abs_wd();
        let xs: Vec<Vec<f64>> = (0..33).map(|i| vec![i as f64 * 0.3 - 5.0]).collect();
        let mut direct = Vec::new();
        wd.eval_batch(&xs, &mut direct);
        let obj = WeakDistanceObjective::new(&wd);
        let mut via_adapter = vec![f64::NAN]; // stale contents must be replaced
        Objective::eval_batch(&obj, &xs, &mut via_adapter);
        let scalar: Vec<f64> = xs.iter().map(|x| wd.eval(x)).collect();
        assert_eq!(direct, scalar);
        assert_eq!(via_adapter, scalar);
    }
}
