//! Instance 3: floating-point overflow detection — Algorithm 3, the `fpod`
//! tool of Section 6.3.
//!
//! The detector runs a sequence of weak-distance minimizations. In each
//! round, the weak distance rewards driving the magnitude of the *last
//! executed not-yet-handled operation* towards `f64::MAX` (later
//! instrumentation sites overwrite `w`, as in the paper), and execution
//! stops as soon as some tracked operation overflows (`w == 0`). The set `L`
//! of handled sites grows every round, which guarantees termination after at
//! most `|L̄|` rounds plus the configured retry budget.

use crate::driver::{minimize_weak_distance, AnalysisConfig, Outcome};
use crate::weak_distance::{SpecializationCache, WeakDistance};
use fp_runtime::{
    Analyzable, Interval, KernelPolicy, ObservationSpec, Observer, OpEvent, OpId, OpSite,
    OptPolicy, ProbeControl, SiteSet,
};
use std::collections::{BTreeMap, BTreeSet};

/// Value of `w` when no tracked operation executed at all.
const NO_TRACKED_OP: f64 = 1.0;

struct OverflowObserver<'s> {
    skip: &'s BTreeSet<OpId>,
    w: f64,
    last_tracked: Option<OpId>,
    overflowed_at: Option<OpId>,
}

impl Observer for OverflowObserver<'_> {
    fn on_op(&mut self, ev: &OpEvent) -> ProbeControl {
        if self.skip.contains(&ev.id) {
            return ProbeControl::Continue;
        }
        self.last_tracked = Some(ev.id);
        let a = ev.value.abs();
        // w = (|a| < MAX) ? MAX - |a| : 0   (NaN compares false, so NaN counts
        // as an overflow, matching the exceptional-value semantics).
        self.w = if a < f64::MAX { f64::MAX - a } else { 0.0 };
        if self.w == 0.0 {
            self.overflowed_at = Some(ev.id);
            return ProbeControl::Stop;
        }
        ProbeControl::Continue
    }
}

/// The Algorithm 3 weak distance, parameterized by the set `L` of sites that
/// have already been handled.
#[derive(Debug)]
pub struct OverflowWeakDistance<P> {
    program: P,
    skip: BTreeSet<OpId>,
    kernel_policy: KernelPolicy,
    opt: SpecializationCache,
}

impl<P: Analyzable> OverflowWeakDistance<P> {
    /// Creates the weak distance with handled-site set `skip`.
    pub fn new(program: P, skip: BTreeSet<OpId>) -> Self {
        OverflowWeakDistance {
            program,
            skip,
            kernel_policy: KernelPolicy::Auto,
            opt: SpecializationCache::default(),
        }
    }

    /// Selects the batch backend ([`KernelPolicy::Auto`] by default).
    /// Never changes values — only which bit-identical backend computes
    /// them.
    pub fn with_kernel_policy(mut self, kernel_policy: KernelPolicy) -> Self {
        self.kernel_policy = kernel_policy;
        self
    }

    /// Selects whether evaluations may run a target-specialized
    /// (translation-validated) variant of the program
    /// ([`OptPolicy::Auto`] by default). Never changes values.
    pub fn with_opt_policy(mut self, opt_policy: OptPolicy) -> Self {
        self.opt = SpecializationCache::new(opt_policy);
        self
    }

    /// What this weak distance observes: operation events at every
    /// not-yet-handled site.
    fn observation_spec(&self) -> ObservationSpec {
        ObservationSpec::ops(SiteSet::Except(
            self.skip.iter().map(|id| id.0).collect(),
        ))
    }

    /// Evaluates and also reports the last tracked site — the `target`
    /// heuristic of Algorithm 3 step (7) — and which site (if any)
    /// overflowed. All state lives in the per-call observer, so concurrent
    /// evaluations from the parallel driver do not interact.
    pub fn eval_detailed(&self, x: &[f64]) -> (f64, Option<OpId>, Option<OpId>) {
        let mut obs = OverflowObserver {
            skip: &self.skip,
            w: NO_TRACKED_OP,
            last_tracked: None,
            overflowed_at: None,
        };
        self.opt
            .specialized(&self.program, &self.observation_spec())
            .run(x, &mut obs);
        (obs.w, obs.last_tracked, obs.overflowed_at)
    }
}

impl<P: Analyzable> WeakDistance for OverflowWeakDistance<P> {
    fn dim(&self) -> usize {
        self.program.num_inputs()
    }

    fn domain(&self) -> Vec<Interval> {
        self.program.search_domain()
    }

    fn eval(&self, x: &[f64]) -> f64 {
        self.eval_detailed(x).0
    }

    fn eval_batch(&self, xs: &[Vec<f64>], out: &mut Vec<f64>) {
        let mut session = self
            .opt
            .specialized(&self.program, &self.observation_spec())
            .batch_executor(self.kernel_policy);
        crate::weak_distance::batch_observed(
            session.as_mut(),
            xs,
            || OverflowObserver {
                skip: &self.skip,
                w: NO_TRACKED_OP,
                last_tracked: None,
                overflowed_at: None,
            },
            |obs| obs.w,
            out,
        );
    }

    fn description(&self) -> String {
        format!(
            "overflow weak distance of {} ({} handled sites)",
            self.program.name(),
            self.skip.len()
        )
    }
}

/// Per-operation outcome of the detector.
#[derive(Debug, Clone)]
pub struct OpOverflow {
    /// The operation site.
    pub site: OpSite,
    /// An input triggering an overflow at this site, if one was found.
    pub witness: Option<Vec<f64>>,
}

impl OpOverflow {
    /// Returns `true` if an overflow was triggered at this site.
    pub fn overflowed(&self) -> bool {
        self.witness.is_some()
    }
}

/// Result of running Algorithm 3 on a program.
#[derive(Debug, Clone)]
pub struct OverflowReport {
    /// One entry per declared operation site, in site order (Table 4).
    pub operations: Vec<OpOverflow>,
    /// Every distinct witness input generated (the set `X` of Algorithm 3).
    pub inputs: Vec<Vec<f64>>,
    /// Number of minimization rounds run.
    pub rounds: usize,
    /// Total objective evaluations spent.
    pub evals: usize,
    /// Operation sites the program's static analysis proved can never
    /// execute on any domain input: Algorithm 3 pre-retires them into `L`
    /// at zero cost instead of spending a round learning nothing.
    pub statically_pruned: usize,
}

impl OverflowReport {
    /// Number of operation sites (the paper's `|Op|`).
    pub fn num_ops(&self) -> usize {
        self.operations.len()
    }

    /// Number of sites for which an overflow was triggered (the paper's `|O|`).
    pub fn num_overflows(&self) -> usize {
        self.operations.iter().filter(|o| o.overflowed()).count()
    }

    /// Sites that were never triggered (Table 4's "missed" rows).
    pub fn missed(&self) -> Vec<&OpSite> {
        self.operations
            .iter()
            .filter(|o| !o.overflowed())
            .map(|o| &o.site)
            .collect()
    }
}

/// Floating-point overflow detection (Algorithm 3).
#[derive(Debug, Clone)]
pub struct OverflowDetector<P> {
    program: P,
}

impl<P: Analyzable> OverflowDetector<P> {
    /// Creates the detector.
    pub fn new(program: P) -> Self {
        OverflowDetector { program }
    }

    /// The program under analysis.
    pub fn program(&self) -> &P {
        &self.program
    }

    /// Runs Algorithm 3 until every operation site has been handled.
    pub fn run(&self, config: &AnalysisConfig) -> OverflowReport {
        let sites = self.program.op_sites();
        let all_ids: Vec<OpId> = sites.iter().map(|s| s.id).collect();
        let mut handled: BTreeSet<OpId> = BTreeSet::new();
        // Sites that provably never execute on any domain input cannot
        // overflow; retire them into `L` up front (Algorithm 3 would
        // otherwise spend a full minimization round per such site only to
        // watch its weak distance sit at a constant).
        let mut statically_pruned = 0usize;
        for &id in &all_ids {
            if self.program.op_site_reachability(id).is_unreachable() {
                handled.insert(id);
                statically_pruned += 1;
            }
        }
        let mut witnesses: BTreeMap<OpId, Vec<f64>> = BTreeMap::new();
        let mut inputs: Vec<Vec<f64>> = Vec::new();
        let mut rounds = 0usize;
        let mut evals = 0usize;
        // Algorithm 3 terminates after |L̄| productive rounds; allow a bounded
        // number of extra retries for rounds whose minimum was nonzero.
        let max_rounds = all_ids.len() * 2 + 4;

        while handled.len() < all_ids.len() && rounds < max_rounds {
            rounds += 1;
            let wd = OverflowWeakDistance::new(&self.program, handled.clone())
                .with_kernel_policy(config.kernel_policy)
                .with_opt_policy(config.opt_policy);
            let round_config = AnalysisConfig {
                seed: config.seed.wrapping_add(rounds as u64 * 7919),
                ..config.clone()
            };
            let run = minimize_weak_distance(&wd, &round_config);
            evals += run.outcome.evals();

            match run.outcome {
                Outcome::Found { input, .. } => {
                    // Re-run to learn which site overflowed and which was the
                    // last tracked (target) site.
                    let (w, last, overflowed) = wd.eval_detailed(&input);
                    debug_assert_eq!(w, 0.0);
                    let target = overflowed.or(last);
                    if let Some(site) = target {
                        witnesses.entry(site).or_insert_with(|| input.clone());
                        handled.insert(site);
                    }
                    // Record every site that overflows on this input, not just
                    // the target — the replay is free and enriches Table 4.
                    self.record_all_overflows(&input, &mut witnesses, &mut handled);
                    inputs.push(input);
                }
                Outcome::NotFound { best_input, .. } => {
                    // Either the target cannot overflow or the backend failed;
                    // in both cases the target is added to L (Algorithm 3
                    // step 7) to guarantee progress.
                    let (_, last, _) = wd.eval_detailed(&best_input);
                    match last {
                        Some(site) => {
                            handled.insert(site);
                        }
                        None => {
                            // No tracked operation executed at all: retire an
                            // arbitrary remaining site to guarantee progress.
                            if let Some(&next) =
                                all_ids.iter().find(|id| !handled.contains(id))
                            {
                                handled.insert(next);
                            }
                        }
                    }
                }
            }
        }

        let operations = sites
            .into_iter()
            .map(|site| OpOverflow {
                witness: witnesses.get(&site.id).cloned(),
                site,
            })
            .collect();
        OverflowReport {
            operations,
            inputs,
            rounds,
            evals,
            statically_pruned,
        }
    }

    /// Replays `input` and records every site whose operation overflows.
    fn record_all_overflows(
        &self,
        input: &[f64],
        witnesses: &mut BTreeMap<OpId, Vec<f64>>,
        handled: &mut BTreeSet<OpId>,
    ) {
        struct AllOverflows {
            sites: Vec<OpId>,
        }
        impl Observer for AllOverflows {
            fn on_op(&mut self, ev: &OpEvent) -> ProbeControl {
                if ev.overflowed() {
                    self.sites.push(ev.id);
                }
                ProbeControl::Continue
            }
        }
        let mut obs = AllOverflows { sites: Vec::new() };
        self.program.run(input, &mut obs);
        for site in obs.sites {
            witnesses.entry(site).or_insert_with(|| input.to_vec());
            handled.insert(site);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_runtime::{ClosureProgram, Cmp, FpOp};
    use mini_gsl::bessel::BesselKnuScaled;

    /// A two-op program where only the first operation can overflow.
    fn two_op_program() -> impl Analyzable {
        ClosureProgram::new("two-op", 1, |x, ctx| {
            let a = ctx.op(0, FpOp::Mul, x[0] * x[0]);
            // The second op divides by a large constant: it can never reach MAX
            // unless the first already overflowed.
            let b = ctx.op(1, FpOp::Div, a / 1.0e10);
            let _ = ctx.branch(0, b, Cmp::Le, 1.0);
            Some(b)
        })
        .with_op_sites(vec![
            OpSite::new(0, FpOp::Mul, "a = x*x"),
            OpSite::new(1, FpOp::Div, "b = a / 1e10"),
        ])
        .with_branch_sites(vec![fp_runtime::BranchSite::new(0, Cmp::Le, "b <= 1")])
    }

    #[test]
    fn weak_distance_semantics() {
        let p = two_op_program();
        let wd = OverflowWeakDistance::new(&p, BTreeSet::new());
        // Moderate input: positive weak distance.
        assert!(wd.eval(&[10.0]) > 0.0);
        // Overflowing input: zero.
        assert_eq!(wd.eval(&[1.0e200]), 0.0);
        // With both sites handled the weak distance reverts to its initial value.
        let all: BTreeSet<OpId> = [OpId(0), OpId(1)].into_iter().collect();
        let wd_done = OverflowWeakDistance::new(&p, all);
        assert_eq!(wd_done.eval(&[1.0e200]), NO_TRACKED_OP);
    }

    #[test]
    fn detector_finds_overflowable_ops_and_reports_misses() {
        let report = OverflowDetector::new(two_op_program()).run(&AnalysisConfig::quick(5));
        assert_eq!(report.num_ops(), 2);
        // x*x overflows for |x| ~ 1e155; a/1e10 then also overflows only via inf.
        let first = &report.operations[0];
        assert!(first.overflowed(), "x*x should overflow");
        let witness = first.witness.clone().unwrap();
        assert!(witness[0].abs() > 1.0e150, "witness {witness:?}");
        assert!(report.rounds >= 1);
        assert!(report.num_overflows() >= 1);
    }

    #[test]
    fn detector_handles_programs_with_no_overflow() {
        // A program whose single operation is bounded: no overflow possible.
        let p = ClosureProgram::new("bounded", 1, |x, ctx| {
            let s = ctx.op(0, FpOp::Sin, x[0].sin());
            Some(s)
        })
        .with_op_sites(vec![OpSite::new(0, FpOp::Sin, "sin(x)")]);
        let report =
            OverflowDetector::new(p).run(&AnalysisConfig::quick(2).with_rounds(1).with_max_evals(3_000));
        assert_eq!(report.num_ops(), 1);
        assert_eq!(report.num_overflows(), 0);
        assert_eq!(report.missed().len(), 1);
    }

    /// An operation guarded by a provably untakeable branch is pre-retired
    /// into `L` by static analysis: Algorithm 3 never spends a round on it,
    /// and the report records the prune.
    #[test]
    fn provably_unreachable_op_site_is_preretired() {
        use fpir::ir::{BinOp, UnOp};
        let mut mb = fpir::ModuleBuilder::new();
        let mut f = mb.function("guarded", 1);
        let x = f.param(0);
        let one = f.constant(1.0);
        let zero = f.constant(0.0);
        let a = f.un(UnOp::Abs, x, None);
        let y = f.bin(BinOp::Add, a, one, None);
        let dead = f.new_block();
        let live = f.new_block();
        f.cond_br(Some(0), y, Cmp::Lt, zero, dead, live);
        f.switch_to(dead);
        // Op site 0 only executes on the untakeable side.
        let d = f.bin(BinOp::Mul, y, y, Some(0));
        f.ret(Some(d));
        f.switch_to(live);
        // Op site 1 executes on every input and overflows for |x| > 0.8.
        let big = f.constant(1.0e308);
        let l = f.bin(BinOp::Mul, y, big, Some(1));
        f.ret(Some(l));
        f.finish();
        let program = fpir::ModuleProgram::new(mb.build(), "guarded")
            .expect("entry exists")
            .with_domain(vec![fp_runtime::Interval::symmetric(1.0e4)]);
        let report = OverflowDetector::new(program)
            .run(&AnalysisConfig::quick(8).with_rounds(1).with_max_evals(5_000));
        assert_eq!(report.num_ops(), 2);
        assert_eq!(report.statically_pruned, 1, "site 0 is pre-retired");
        assert!(
            !report.operations[0].overflowed(),
            "the pruned site has no witness"
        );
        assert!(
            report.operations[1].overflowed(),
            "y * 1e308 overflows for |x| > 0.8"
        );
    }

    #[test]
    fn bessel_overflow_study_shape() {
        // A scaled-down version of the Table 4 experiment: most of the 23
        // Bessel operations can be driven to overflow.
        let config = AnalysisConfig::quick(17).with_rounds(2).with_max_evals(15_000);
        let report = OverflowDetector::new(BesselKnuScaled::new()).run(&config);
        assert_eq!(report.num_ops(), 23);
        assert!(
            report.num_overflows() >= 15,
            "only {}/23 operations overflowed",
            report.num_overflows()
        );
        // The constant multiplication 2.0 * GSL_DBL_EPSILON can never overflow.
        assert!(report.missed().iter().any(|s| s.id == OpId(16)));
        // Every witness indeed triggers an overflow at its site when replayed.
        for op in report.operations.iter().filter(|o| o.overflowed()) {
            let input = op.witness.clone().unwrap();
            let mut rec = fp_runtime::TraceRecorder::new();
            BesselKnuScaled::new().run(&input, &mut rec);
            assert!(
                rec.ops().any(|ev| ev.id == op.site.id && ev.overflowed()),
                "witness for {} does not overflow",
                op.site.label
            );
        }
    }
}
