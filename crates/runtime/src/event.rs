//! Runtime events emitted by instrumented floating-point programs.
//!
//! An analysed program is viewed as a stream of [`Event`]s: one [`OpEvent`]
//! per executed floating-point operation that carries a static site label
//! ([`OpId`]) and the computed value, and one [`BranchEvent`] per executed
//! conditional branch carrying the two comparison operands, the comparison
//! operator and the direction actually taken.

use std::fmt;

/// Identifier of a static floating-point operation site.
///
/// In the paper's terminology this is the label `l` of an IR instruction
/// (Section 4.4): "each FP operation corresponds to exactly one instruction".
///
/// # Example
///
/// ```
/// use fp_runtime::OpId;
/// let l1 = OpId(1);
/// assert_eq!(l1.index(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u32);

impl OpId {
    /// Returns the raw index of the site.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl From<u32> for OpId {
    fn from(i: u32) -> Self {
        OpId(i)
    }
}

/// Identifier of a static conditional-branch site.
///
/// # Example
///
/// ```
/// use fp_runtime::BranchId;
/// assert_eq!(BranchId(3).to_string(), "b3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BranchId(pub u32);

impl BranchId {
    /// Returns the raw index of the site.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for BranchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl From<u32> for BranchId {
    fn from(i: u32) -> Self {
        BranchId(i)
    }
}

/// Kind of a floating-point operation observed at an [`OpId`] site.
///
/// The set mirrors the elementary operations counted by the paper's overflow
/// detection (`+`, `-`, `*`, `/`) plus the library calls that appear in the
/// benchmarks (`sqrt`, `pow`, trigonometric functions, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FpOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Negation.
    Neg,
    /// Absolute value.
    Abs,
    /// Square root.
    Sqrt,
    /// Power.
    Pow,
    /// Exponential.
    Exp,
    /// Natural logarithm.
    Log,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Tangent.
    Tan,
    /// Floor.
    Floor,
    /// Any other operation.
    Other,
}

impl FpOp {
    /// Returns `true` for the four elementary arithmetic operations that the
    /// paper's overflow detection instruments (Section 4.4).
    ///
    /// # Example
    ///
    /// ```
    /// use fp_runtime::FpOp;
    /// assert!(FpOp::Mul.is_elementary());
    /// assert!(!FpOp::Sqrt.is_elementary());
    /// ```
    pub fn is_elementary(self) -> bool {
        matches!(self, FpOp::Add | FpOp::Sub | FpOp::Mul | FpOp::Div)
    }
}

impl fmt::Display for FpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FpOp::Add => "+",
            FpOp::Sub => "-",
            FpOp::Mul => "*",
            FpOp::Div => "/",
            FpOp::Neg => "neg",
            FpOp::Abs => "abs",
            FpOp::Sqrt => "sqrt",
            FpOp::Pow => "pow",
            FpOp::Exp => "exp",
            FpOp::Log => "log",
            FpOp::Sin => "sin",
            FpOp::Cos => "cos",
            FpOp::Tan => "tan",
            FpOp::Floor => "floor",
            FpOp::Other => "op",
        };
        f.write_str(s)
    }
}

/// Comparison operator of a branch condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cmp {
    /// `lhs < rhs`
    Lt,
    /// `lhs <= rhs`
    Le,
    /// `lhs > rhs`
    Gt,
    /// `lhs >= rhs`
    Ge,
    /// `lhs == rhs`
    Eq,
    /// `lhs != rhs`
    Ne,
}

impl Cmp {
    /// Evaluates the comparison on two doubles.
    ///
    /// # Example
    ///
    /// ```
    /// use fp_runtime::Cmp;
    /// assert!(Cmp::Le.eval(1.0, 1.0));
    /// assert!(!Cmp::Lt.eval(1.0, 1.0));
    /// ```
    pub fn eval(self, lhs: f64, rhs: f64) -> bool {
        match self {
            Cmp::Lt => lhs < rhs,
            Cmp::Le => lhs <= rhs,
            Cmp::Gt => lhs > rhs,
            Cmp::Ge => lhs >= rhs,
            Cmp::Eq => lhs == rhs,
            Cmp::Ne => lhs != rhs,
        }
    }

    /// Returns the comparison with operands swapped (`a < b` becomes `b > a`).
    pub fn swap(self) -> Cmp {
        match self {
            Cmp::Lt => Cmp::Gt,
            Cmp::Le => Cmp::Ge,
            Cmp::Gt => Cmp::Lt,
            Cmp::Ge => Cmp::Le,
            Cmp::Eq => Cmp::Eq,
            Cmp::Ne => Cmp::Ne,
        }
    }

    /// Returns the negated comparison (`a < b` becomes `a >= b`).
    pub fn negate(self) -> Cmp {
        match self {
            Cmp::Lt => Cmp::Ge,
            Cmp::Le => Cmp::Gt,
            Cmp::Gt => Cmp::Le,
            Cmp::Ge => Cmp::Lt,
            Cmp::Eq => Cmp::Ne,
            Cmp::Ne => Cmp::Eq,
        }
    }

    /// Korel-style branch distance: a nonnegative value that is zero exactly
    /// when `lhs cmp rhs` holds (ignoring the open/closed distinction, see
    /// [`Cmp::distance_strict`]).
    ///
    /// This is the `(a <= b) ? 0 : a - b` shape injected by the paper's path
    /// reachability instrumentation (Fig. 4).
    pub fn distance(self, lhs: f64, rhs: f64) -> f64 {
        if self.eval(lhs, rhs) {
            return 0.0;
        }
        match self {
            Cmp::Lt | Cmp::Le => lhs - rhs,
            Cmp::Gt | Cmp::Ge => rhs - lhs,
            Cmp::Eq => (lhs - rhs).abs(),
            Cmp::Ne => 1.0,
        }
    }

    /// Branch distance that additionally adds a small positive offset for
    /// strict comparisons so that the distance is strictly positive whenever
    /// the comparison does not hold even if `lhs == rhs`.
    pub fn distance_strict(self, lhs: f64, rhs: f64) -> f64 {
        if self.eval(lhs, rhs) {
            return 0.0;
        }
        let base = match self {
            Cmp::Lt | Cmp::Le => lhs - rhs,
            Cmp::Gt | Cmp::Ge => rhs - lhs,
            Cmp::Eq => (lhs - rhs).abs(),
            Cmp::Ne => 1.0,
        };
        match self {
            Cmp::Lt | Cmp::Gt => base + f64::MIN_POSITIVE,
            _ => base,
        }
    }
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cmp::Lt => "<",
            Cmp::Le => "<=",
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
            Cmp::Eq => "==",
            Cmp::Ne => "!=",
        };
        f.write_str(s)
    }
}

/// Static description of a floating-point operation site.
#[derive(Debug, Clone, PartialEq)]
pub struct OpSite {
    /// Site identifier.
    pub id: OpId,
    /// Operation kind.
    pub op: FpOp,
    /// Human-readable label, typically the source expression
    /// (e.g. `"double mu = 4.0 * nu*nu"`).
    pub label: String,
}

impl OpSite {
    /// Creates a new operation site description.
    pub fn new(id: u32, op: FpOp, label: impl Into<String>) -> Self {
        OpSite {
            id: OpId(id),
            op,
            label: label.into(),
        }
    }
}

impl fmt::Display for OpSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}", self.id, self.op, self.label)
    }
}

/// Static description of a conditional-branch site.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchSite {
    /// Site identifier.
    pub id: BranchId,
    /// The comparison operator of the branch condition.
    pub cmp: Cmp,
    /// Human-readable label, typically the source condition
    /// (e.g. `"k < 0x3e500000"`).
    pub label: String,
}

impl BranchSite {
    /// Creates a new branch site description.
    pub fn new(id: u32, cmp: Cmp, label: impl Into<String>) -> Self {
        BranchSite {
            id: BranchId(id),
            cmp,
            label: label.into(),
        }
    }
}

impl fmt::Display for BranchSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}", self.id, self.cmp, self.label)
    }
}

/// A floating-point operation executed at runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpEvent {
    /// The operation site.
    pub id: OpId,
    /// Operation kind.
    pub op: FpOp,
    /// The value assigned by the operation (the paper's assignee `a`).
    pub value: f64,
}

impl OpEvent {
    /// Returns `true` if the operation overflowed, i.e. produced a
    /// non-finite value or a value whose magnitude reaches `f64::MAX`.
    ///
    /// # Example
    ///
    /// ```
    /// use fp_runtime::{FpOp, OpEvent, OpId};
    /// let ev = OpEvent { id: OpId(0), op: FpOp::Mul, value: f64::INFINITY };
    /// assert!(ev.overflowed());
    /// ```
    pub fn overflowed(&self) -> bool {
        !self.value.is_finite() || self.value.abs() >= f64::MAX
    }
}

/// A conditional branch executed at runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchEvent {
    /// The branch site.
    pub id: BranchId,
    /// Left operand of the comparison.
    pub lhs: f64,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right operand of the comparison.
    pub rhs: f64,
    /// Whether the true (then) direction was taken.
    pub taken: bool,
}

impl BranchEvent {
    /// The boundary residual `|lhs - rhs|` used by boundary value analysis
    /// (Fig. 3 of the paper): zero exactly on the boundary condition.
    pub fn boundary_residual(&self) -> f64 {
        (self.lhs - self.rhs).abs()
    }

    /// Branch distance towards forcing this branch in direction `dir`.
    ///
    /// Uses the strict variant so that an unsatisfied strict comparison at a
    /// tie (`lhs == rhs`) still yields a positive distance; otherwise an
    /// infeasible requirement could spuriously reach distance zero.
    pub fn distance_to(&self, dir: bool) -> f64 {
        let cmp = if dir { self.cmp } else { self.cmp.negate() };
        cmp.distance_strict(self.lhs, self.rhs)
    }
}

/// Any runtime event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A floating-point operation was executed.
    Op(OpEvent),
    /// A conditional branch was executed.
    Branch(BranchEvent),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_eval_all_operators() {
        assert!(Cmp::Lt.eval(1.0, 2.0));
        assert!(!Cmp::Lt.eval(2.0, 2.0));
        assert!(Cmp::Le.eval(2.0, 2.0));
        assert!(Cmp::Gt.eval(3.0, 2.0));
        assert!(Cmp::Ge.eval(2.0, 2.0));
        assert!(Cmp::Eq.eval(2.0, 2.0));
        assert!(Cmp::Ne.eval(2.0, 3.0));
    }

    #[test]
    fn cmp_negate_is_involution_on_truth() {
        let cases = [
            (Cmp::Lt, 1.0, 2.0),
            (Cmp::Le, 2.0, 2.0),
            (Cmp::Gt, 5.0, 2.0),
            (Cmp::Ge, 2.0, 7.0),
            (Cmp::Eq, 2.0, 2.0),
            (Cmp::Ne, 1.0, 2.0),
        ];
        for (cmp, a, b) in cases {
            assert_ne!(cmp.eval(a, b), cmp.negate().eval(a, b), "{cmp} on {a},{b}");
            assert_eq!(cmp.negate().negate(), cmp);
        }
    }

    #[test]
    fn cmp_swap_swaps_operands() {
        assert_eq!(Cmp::Lt.swap(), Cmp::Gt);
        assert!(Cmp::Lt.eval(1.0, 2.0));
        assert!(Cmp::Lt.swap().eval(2.0, 1.0));
    }

    #[test]
    fn distance_zero_iff_satisfied() {
        assert_eq!(Cmp::Le.distance(1.0, 2.0), 0.0);
        assert!(Cmp::Le.distance(3.0, 2.0) > 0.0);
        assert_eq!(Cmp::Eq.distance(2.0, 2.0), 0.0);
        assert!(Cmp::Eq.distance(2.0, 2.5) > 0.0);
        assert_eq!(Cmp::Ne.distance(2.0, 2.5), 0.0);
        assert!(Cmp::Ne.distance(2.0, 2.0) > 0.0);
    }

    #[test]
    fn distance_strict_positive_at_tie() {
        // `a < b` violated with a == b: plain distance is 0, strict is positive.
        assert_eq!(Cmp::Lt.distance(2.0, 2.0), 0.0);
        assert!(Cmp::Lt.distance_strict(2.0, 2.0) > 0.0);
    }

    #[test]
    fn branch_event_residual_and_direction() {
        let ev = BranchEvent {
            id: BranchId(0),
            lhs: 3.0,
            cmp: Cmp::Le,
            rhs: 1.0,
            taken: false,
        };
        assert_eq!(ev.boundary_residual(), 2.0);
        assert_eq!(ev.distance_to(false), 0.0);
        assert_eq!(ev.distance_to(true), 2.0);
    }

    #[test]
    fn op_event_overflow_detection() {
        let fin = OpEvent {
            id: OpId(0),
            op: FpOp::Add,
            value: 1.0e300,
        };
        assert!(!fin.overflowed());
        let inf = OpEvent {
            id: OpId(0),
            op: FpOp::Mul,
            value: -f64::INFINITY,
        };
        assert!(inf.overflowed());
        let nan = OpEvent {
            id: OpId(0),
            op: FpOp::Div,
            value: f64::NAN,
        };
        assert!(nan.overflowed());
        let max = OpEvent {
            id: OpId(0),
            op: FpOp::Mul,
            value: f64::MAX,
        };
        assert!(max.overflowed());
    }

    #[test]
    fn display_formats() {
        assert_eq!(OpId(4).to_string(), "l4");
        assert_eq!(BranchId(2).to_string(), "b2");
        assert_eq!(Cmp::Le.to_string(), "<=");
        assert_eq!(FpOp::Mul.to_string(), "*");
        let site = OpSite::new(1, FpOp::Mul, "mu = 4.0 * nu");
        assert!(site.to_string().contains("mu = 4.0 * nu"));
    }
}
