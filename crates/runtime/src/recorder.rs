//! Observers that consume runtime events.
//!
//! A weak distance in this workspace is, operationally, an [`Observer`] that
//! folds the event stream of one program execution into the value of the
//! instrumented variable `w` (Section 5 of the paper). This module provides
//! the observer trait itself plus generally useful observers: a null
//! observer, a full trace recorder, an event counter, branch-coverage
//! bookkeeping and an observer combinator.

use crate::event::{BranchEvent, BranchId, Event, OpEvent};
use crate::probe::ProbeControl;
use std::collections::{BTreeMap, BTreeSet};

/// Receives the runtime events of one execution of an analysed program.
///
/// Both callbacks return a [`ProbeControl`]; returning
/// [`ProbeControl::Stop`] asks the program to terminate early, mirroring the
/// `if (w == 0) return;` injected by the paper's overflow instrumentation
/// (Algorithm 3 step 2).
pub trait Observer {
    /// Called after each instrumented floating-point operation.
    fn on_op(&mut self, _ev: &OpEvent) -> ProbeControl {
        ProbeControl::Continue
    }

    /// Called at each instrumented conditional branch, before it is taken.
    fn on_branch(&mut self, _ev: &BranchEvent) -> ProbeControl {
        ProbeControl::Continue
    }
}

/// An observer that ignores every event.
///
/// # Example
///
/// ```
/// use fp_runtime::{Ctx, NullObserver};
/// let mut obs = NullObserver;
/// let mut ctx = Ctx::new(&mut obs);
/// assert_eq!(ctx.op(0, fp_runtime::FpOp::Add, 1.0 + 2.0), 3.0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {}

/// Records the full event stream of an execution.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    events: Vec<Event>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// All recorded events, in program order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Only the branch events, in program order.
    pub fn branches(&self) -> impl Iterator<Item = &BranchEvent> {
        self.events.iter().filter_map(|e| match e {
            Event::Branch(b) => Some(b),
            Event::Op(_) => None,
        })
    }

    /// Only the operation events, in program order.
    pub fn ops(&self) -> impl Iterator<Item = &OpEvent> {
        self.events.iter().filter_map(|e| match e {
            Event::Op(o) => Some(o),
            Event::Branch(_) => None,
        })
    }

    /// The branch path of the execution: each executed branch site paired
    /// with the direction taken. This is the `π` of path reachability
    /// (Instance 2).
    pub fn path(&self) -> Vec<(BranchId, bool)> {
        self.branches().map(|b| (b.id, b.taken)).collect()
    }

    /// Clears the recorded events so the recorder can be reused.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no event was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl Observer for TraceRecorder {
    fn on_op(&mut self, ev: &OpEvent) -> ProbeControl {
        self.events.push(Event::Op(*ev));
        ProbeControl::Continue
    }

    fn on_branch(&mut self, ev: &BranchEvent) -> ProbeControl {
        self.events.push(Event::Branch(*ev));
        ProbeControl::Continue
    }
}

/// Counts operations and branches without storing them.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingObserver {
    /// Number of operation events seen.
    pub ops: usize,
    /// Number of branch events seen.
    pub branches: usize,
}

impl CountingObserver {
    /// Creates a counter with both counts at zero.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Observer for CountingObserver {
    fn on_op(&mut self, _ev: &OpEvent) -> ProbeControl {
        self.ops += 1;
        ProbeControl::Continue
    }

    fn on_branch(&mut self, _ev: &BranchEvent) -> ProbeControl {
        self.branches += 1;
        ProbeControl::Continue
    }
}

/// Accumulates branch coverage across many executions: which `(site,
/// direction)` pairs have been exercised, and how many times each boundary
/// condition `lhs == rhs` was hit exactly.
///
/// This is the bookkeeping needed by Instance 4 (branch-coverage testing)
/// and by the GNU `sin` case study (Table 2's `hits` row).
#[derive(Debug, Clone, Default)]
pub struct BranchCoverage {
    covered: BTreeSet<(BranchId, bool)>,
    boundary_hits: BTreeMap<BranchId, u64>,
    executions: BTreeMap<BranchId, u64>,
}

impl BranchCoverage {
    /// Creates empty coverage bookkeeping.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` if the branch `id` has been observed taking direction
    /// `dir`.
    pub fn is_covered(&self, id: BranchId, dir: bool) -> bool {
        self.covered.contains(&(id, dir))
    }

    /// The set of covered `(site, direction)` pairs.
    pub fn covered(&self) -> &BTreeSet<(BranchId, bool)> {
        &self.covered
    }

    /// Number of executions in which branch `id`'s condition held with
    /// equality (`lhs == rhs`), i.e. a boundary condition was triggered.
    pub fn boundary_hits(&self, id: BranchId) -> u64 {
        self.boundary_hits.get(&id).copied().unwrap_or(0)
    }

    /// Number of distinct branch sites whose boundary condition has been hit
    /// at least once.
    pub fn boundary_conditions_hit(&self) -> usize {
        self.boundary_hits.values().filter(|&&n| n > 0).count()
    }

    /// Total number of times branch `id` was executed (either direction).
    pub fn executions(&self, id: BranchId) -> u64 {
        self.executions.get(&id).copied().unwrap_or(0)
    }

    /// Number of `(site, direction)` pairs covered.
    pub fn covered_count(&self) -> usize {
        self.covered.len()
    }
}

impl Observer for BranchCoverage {
    fn on_branch(&mut self, ev: &BranchEvent) -> ProbeControl {
        self.covered.insert((ev.id, ev.taken));
        *self.executions.entry(ev.id).or_insert(0) += 1;
        if ev.lhs == ev.rhs {
            *self.boundary_hits.entry(ev.id).or_insert(0) += 1;
        }
        ProbeControl::Continue
    }
}

/// Forwards every event to two observers; requests a stop as soon as either
/// of them does.
pub struct MultiObserver<'a> {
    first: &'a mut dyn Observer,
    second: &'a mut dyn Observer,
}

impl std::fmt::Debug for MultiObserver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiObserver").finish_non_exhaustive()
    }
}

impl<'a> MultiObserver<'a> {
    /// Combines two observers.
    pub fn new(first: &'a mut dyn Observer, second: &'a mut dyn Observer) -> Self {
        MultiObserver { first, second }
    }
}

impl Observer for MultiObserver<'_> {
    fn on_op(&mut self, ev: &OpEvent) -> ProbeControl {
        let a = self.first.on_op(ev);
        let b = self.second.on_op(ev);
        a.combine(b)
    }

    fn on_branch(&mut self, ev: &BranchEvent) -> ProbeControl {
        let a = self.first.on_branch(ev);
        let b = self.second.on_branch(ev);
        a.combine(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Cmp, FpOp, OpId};

    fn op(id: u32, v: f64) -> OpEvent {
        OpEvent {
            id: OpId(id),
            op: FpOp::Mul,
            value: v,
        }
    }

    fn br(id: u32, lhs: f64, rhs: f64, taken: bool) -> BranchEvent {
        BranchEvent {
            id: BranchId(id),
            lhs,
            cmp: Cmp::Le,
            rhs,
            taken,
        }
    }

    #[test]
    fn trace_recorder_keeps_program_order() {
        let mut rec = TraceRecorder::new();
        rec.on_op(&op(0, 1.0));
        rec.on_branch(&br(0, 1.0, 2.0, true));
        rec.on_op(&op(1, 3.0));
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.ops().count(), 2);
        assert_eq!(rec.branches().count(), 1);
        assert_eq!(rec.path(), vec![(BranchId(0), true)]);
        rec.clear();
        assert!(rec.is_empty());
    }

    #[test]
    fn counting_observer_counts() {
        let mut c = CountingObserver::new();
        c.on_op(&op(0, 1.0));
        c.on_op(&op(1, 2.0));
        c.on_branch(&br(0, 1.0, 2.0, true));
        assert_eq!(c.ops, 2);
        assert_eq!(c.branches, 1);
    }

    #[test]
    fn branch_coverage_tracks_directions_and_boundaries() {
        let mut cov = BranchCoverage::new();
        cov.on_branch(&br(0, 1.0, 2.0, true));
        cov.on_branch(&br(0, 3.0, 2.0, false));
        cov.on_branch(&br(1, 5.0, 5.0, true));
        assert!(cov.is_covered(BranchId(0), true));
        assert!(cov.is_covered(BranchId(0), false));
        assert!(!cov.is_covered(BranchId(1), false));
        assert_eq!(cov.covered_count(), 3);
        assert_eq!(cov.boundary_hits(BranchId(1)), 1);
        assert_eq!(cov.boundary_hits(BranchId(0)), 0);
        assert_eq!(cov.boundary_conditions_hit(), 1);
        assert_eq!(cov.executions(BranchId(0)), 2);
    }

    #[test]
    fn multi_observer_combines_stop_requests() {
        struct Stopper;
        impl Observer for Stopper {
            fn on_op(&mut self, _ev: &OpEvent) -> ProbeControl {
                ProbeControl::Stop
            }
        }
        let mut a = CountingObserver::new();
        let mut b = Stopper;
        let mut multi = MultiObserver::new(&mut a, &mut b);
        assert_eq!(multi.on_op(&op(0, 1.0)), ProbeControl::Stop);
        assert_eq!(multi.on_branch(&br(0, 1.0, 2.0, true)), ProbeControl::Continue);
        assert_eq!(a.ops, 1);
    }
}
