//! The [`Analyzable`] trait: the interface every program under analysis
//! exposes to the weak-distance analyses.
//!
//! This is the "Client layer" contract of the paper's implementation
//! architecture (Section 5.1): the client provides a program whose input
//! domain is `F^N` together with the static lists of its floating-point
//! operation sites and branch sites, and a way to execute it while reporting
//! runtime events.

use crate::event::{BranchSite, OpSite};
use crate::interval::Interval;
use crate::probe::Ctx;
use crate::recorder::Observer;

/// A floating-point program with input domain `F^N` that can be executed
/// under observation.
///
/// Implementations exist for hand-instrumented Rust ports (`mini-gsl`) and
/// for interpreted IR programs (`fpir`). Analyses never look at the program
/// text; they only run it and observe events — exactly the black-box
/// treatment the paper relies on.
///
/// Programs are executed concurrently by the parallel engine (restart
/// shards, backend portfolios and campaign workers all run the same program
/// at once), so `execute` must be callable from several threads — hence the
/// `Send + Sync` bound. Per-execution state belongs in the [`Observer`],
/// which each evaluation creates afresh.
pub trait Analyzable: Send + Sync {
    /// A short human-readable name (used in reports).
    fn name(&self) -> &str;

    /// Number of floating-point inputs `N`.
    fn num_inputs(&self) -> usize;

    /// Search box for each input, used to sample optimization starting
    /// points. The default is the whole finite binary64 range.
    fn search_domain(&self) -> Vec<Interval> {
        vec![Interval::whole(); self.num_inputs()]
    }

    /// Static list of instrumented floating-point operation sites
    /// (the set `L̄` of Algorithm 3).
    fn op_sites(&self) -> Vec<OpSite>;

    /// Static list of instrumented conditional-branch sites.
    fn branch_sites(&self) -> Vec<BranchSite>;

    /// Executes the program on `input`, reporting events through `ctx`, and
    /// returns the program result if it produces one.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `input.len() != self.num_inputs()`.
    fn execute(&self, input: &[f64], ctx: &mut Ctx<'_>) -> Option<f64>;

    /// Convenience wrapper: executes the program with a fresh probe context
    /// over `observer`.
    fn run(&self, input: &[f64], observer: &mut dyn Observer) -> Option<f64> {
        let mut ctx = Ctx::new(observer);
        self.execute(input, &mut ctx)
    }

    /// Returns a reusable [`BatchExecutor`] amortizing per-execution setup
    /// over many runs of this program.
    ///
    /// Each execution still gets its own observer (weak distances fold
    /// per-run state in the observer), but an implementation can hoist
    /// everything input-independent out of the per-run path: the default
    /// executor simply loops [`Analyzable::run`], while the `fpir`
    /// interpreter reuses its register frames and global-variable buffers
    /// across the whole batch. Results are bit-identical to calling
    /// [`Analyzable::run`] once per input.
    fn batch_executor(&self) -> Box<dyn BatchExecutor + '_> {
        Box::new(ScalarBatchExecutor(self))
    }
}

/// A reusable execution session over one [`Analyzable`] program: the
/// batched-evaluation seam of the runtime layer.
///
/// Obtained from [`Analyzable::batch_executor`]; callers evaluate many
/// inputs through one executor so the program can amortize per-execution
/// setup (buffer allocation, program decoding) across the batch.
pub trait BatchExecutor {
    /// Executes the program on `input`, reporting events through a fresh
    /// probe context over `observer`, exactly like [`Analyzable::run`].
    fn execute_one(&mut self, input: &[f64], observer: &mut dyn Observer) -> Option<f64>;
}

/// The default [`BatchExecutor`]: a plain loop over [`Analyzable::run`]
/// with no batch-level amortization.
struct ScalarBatchExecutor<'a, P: ?Sized>(&'a P);

impl<P: Analyzable + ?Sized> BatchExecutor for ScalarBatchExecutor<'_, P> {
    fn execute_one(&mut self, input: &[f64], observer: &mut dyn Observer) -> Option<f64> {
        self.0.run(input, observer)
    }
}

impl<P: Analyzable + ?Sized> Analyzable for &P {
    fn batch_executor(&self) -> Box<dyn BatchExecutor + '_> {
        (**self).batch_executor()
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn num_inputs(&self) -> usize {
        (**self).num_inputs()
    }

    fn search_domain(&self) -> Vec<Interval> {
        (**self).search_domain()
    }

    fn op_sites(&self) -> Vec<OpSite> {
        (**self).op_sites()
    }

    fn branch_sites(&self) -> Vec<BranchSite> {
        (**self).branch_sites()
    }

    fn execute(&self, input: &[f64], ctx: &mut Ctx<'_>) -> Option<f64> {
        (**self).execute(input, ctx)
    }
}

/// An [`Analyzable`] built from a closure, convenient for small examples and
/// tests.
///
/// # Example
///
/// ```
/// use fp_runtime::{Analyzable, BranchSite, Cmp, ClosureProgram, Interval, NullObserver};
///
/// let prog = ClosureProgram::new("square-gate", 1, |x, ctx| {
///     let y = x[0] * x[0];
///     if ctx.branch(0, y, Cmp::Le, 4.0) {
///         Some(y)
///     } else {
///         Some(0.0)
///     }
/// })
/// .with_branch_sites(vec![BranchSite::new(0, Cmp::Le, "y <= 4")])
/// .with_domain(vec![Interval::symmetric(10.0)]);
///
/// assert_eq!(prog.run(&[1.0], &mut NullObserver), Some(1.0));
/// ```
pub struct ClosureProgram<F> {
    name: String,
    num_inputs: usize,
    domain: Vec<Interval>,
    op_sites: Vec<OpSite>,
    branch_sites: Vec<BranchSite>,
    body: F,
}

impl<F> ClosureProgram<F>
where
    F: Fn(&[f64], &mut Ctx<'_>) -> Option<f64> + Send + Sync,
{
    /// Creates a closure-backed program with the whole binary64 range as its
    /// default search domain and no declared sites.
    pub fn new(name: impl Into<String>, num_inputs: usize, body: F) -> Self {
        ClosureProgram {
            name: name.into(),
            num_inputs,
            domain: vec![Interval::whole(); num_inputs],
            op_sites: Vec::new(),
            branch_sites: Vec::new(),
            body,
        }
    }

    /// Sets the search domain.
    ///
    /// # Panics
    ///
    /// Panics if the number of intervals differs from the number of inputs.
    pub fn with_domain(mut self, domain: Vec<Interval>) -> Self {
        assert_eq!(
            domain.len(),
            self.num_inputs,
            "domain arity must match the number of inputs"
        );
        self.domain = domain;
        self
    }

    /// Declares the operation sites the closure reports.
    pub fn with_op_sites(mut self, sites: Vec<OpSite>) -> Self {
        self.op_sites = sites;
        self
    }

    /// Declares the branch sites the closure reports.
    pub fn with_branch_sites(mut self, sites: Vec<BranchSite>) -> Self {
        self.branch_sites = sites;
        self
    }
}

impl<F> Analyzable for ClosureProgram<F>
where
    F: Fn(&[f64], &mut Ctx<'_>) -> Option<f64> + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    fn search_domain(&self) -> Vec<Interval> {
        self.domain.clone()
    }

    fn op_sites(&self) -> Vec<OpSite> {
        self.op_sites.clone()
    }

    fn branch_sites(&self) -> Vec<BranchSite> {
        self.branch_sites.clone()
    }

    fn execute(&self, input: &[f64], ctx: &mut Ctx<'_>) -> Option<f64> {
        assert_eq!(
            input.len(),
            self.num_inputs,
            "input arity mismatch for {}",
            self.name
        );
        (self.body)(input, ctx)
    }
}

impl<F> std::fmt::Debug for ClosureProgram<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClosureProgram")
            .field("name", &self.name)
            .field("num_inputs", &self.num_inputs)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Cmp, FpOp};
    use crate::recorder::{NullObserver, TraceRecorder};

    fn toy() -> impl Analyzable {
        ClosureProgram::new("toy", 1, |x, ctx| {
            let y = ctx.op(0, FpOp::Mul, x[0] * x[0]);
            let _ = ctx.branch(0, y, Cmp::Le, 4.0);
            Some(y)
        })
        .with_op_sites(vec![OpSite::new(0, FpOp::Mul, "y = x*x")])
        .with_branch_sites(vec![BranchSite::new(0, Cmp::Le, "y <= 4")])
        .with_domain(vec![Interval::symmetric(100.0)])
    }

    #[test]
    fn closure_program_reports_metadata() {
        let p = toy();
        assert_eq!(p.name(), "toy");
        assert_eq!(p.num_inputs(), 1);
        assert_eq!(p.search_domain().len(), 1);
        assert_eq!(p.op_sites().len(), 1);
        assert_eq!(p.branch_sites().len(), 1);
    }

    #[test]
    fn closure_program_executes_and_emits_events() {
        let p = toy();
        let mut rec = TraceRecorder::new();
        assert_eq!(p.run(&[3.0], &mut rec), Some(9.0));
        assert_eq!(rec.ops().count(), 1);
        assert_eq!(rec.branches().count(), 1);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_panics() {
        let p = toy();
        let _ = p.run(&[1.0, 2.0], &mut NullObserver);
    }

    #[test]
    fn default_domain_is_whole_range() {
        let p = ClosureProgram::new("free", 2, |_x, _ctx| Some(0.0));
        let dom = p.search_domain();
        assert_eq!(dom.len(), 2);
        assert_eq!(dom[0].lo(), -f64::MAX);
        assert_eq!(dom[1].hi(), f64::MAX);
    }
}
