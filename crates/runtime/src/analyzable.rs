//! The [`Analyzable`] trait: the interface every program under analysis
//! exposes to the weak-distance analyses.
//!
//! This is the "Client layer" contract of the paper's implementation
//! architecture (Section 5.1): the client provides a program whose input
//! domain is `F^N` together with the static lists of its floating-point
//! operation sites and branch sites, and a way to execute it while reporting
//! runtime events.

use crate::event::{BranchId, BranchSite, OpId, OpSite};
use crate::interval::Interval;
use crate::probe::Ctx;
use crate::recorder::Observer;
use std::collections::BTreeSet;

/// What a static analysis can prove about whether a runtime target (a
/// branch direction, a branch boundary, an operation site) can occur.
///
/// The contract is asymmetric, matching what sound over-approximation can
/// deliver: [`Reachability::Unreachable`] is a **proof** that no execution
/// over the program's search domain produces the target, and analyses may
/// short-circuit work on its strength; [`Reachability::Reachable`] is a
/// proof that some execution does; [`Reachability::Unknown`] (the default
/// for every program without a static analysis) commits to nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Reachability {
    /// Some in-domain execution provably produces the target.
    Reachable,
    /// No in-domain execution can produce the target; weak distances may
    /// prune minimization of this target without evaluating anything.
    Unreachable,
    /// The analysis cannot decide (or no analysis ran). Treat as possibly
    /// reachable.
    #[default]
    Unknown,
}

impl Reachability {
    /// True exactly for [`Reachability::Unreachable`].
    pub fn is_unreachable(self) -> bool {
        matches!(self, Reachability::Unreachable)
    }
}

/// Selects the execution backend a program's [`Analyzable::batch_executor`]
/// hands out for batched evaluation.
///
/// Programs that have a vectorized (lanewise SIMD-style) kernel backend —
/// today the `fpir` interpreter's structure-of-arrays kernel — use the
/// policy to decide between it and the plain per-input session. Programs
/// without one (hand-instrumented Rust ports, closures) ignore the policy.
/// Every backend is required to produce **bit-identical** results and
/// events, so the policy only ever changes throughput, never outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelPolicy {
    /// Use the kernel backend when the program supports lanewise
    /// specialization, the per-input session otherwise. The default.
    #[default]
    Auto,
    /// Always hand out the kernel backend; programs it cannot specialize
    /// run their scalar fallback inside the kernel session.
    Always,
    /// Never use the kernel backend, even when available. Useful as the
    /// reference side of equivalence tests and benchmarks.
    Never,
}

/// Selects whether a program may hand out a target-specialized (optimized)
/// variant of itself through [`Analyzable::specialize`].
///
/// Programs with an optimizing backend — today the `fpir` interpreter's
/// `opt` pass pipeline — use the policy to decide whether a
/// translation-validated, observation-preserving rewrite of the module
/// replaces the original for evaluation. Programs without one (hand
/// instrumented Rust ports, closures) ignore the policy. Every specialized
/// variant is required to produce **bit-identical** observed semantics
/// (retained events, results), so the policy only ever changes per-eval
/// cost, never outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptPolicy {
    /// Specialize when the program supports it, translation validation
    /// passes, and the rewrite actually removed work. The default.
    #[default]
    Auto,
    /// Keep the specialized variant whenever validation passes, even when
    /// the rewrite removed nothing (useful for exercising the seam).
    Always,
    /// Never specialize. Useful as the reference side of equivalence tests
    /// and benchmarks.
    Never,
}

/// A set of static site identifiers, in a form that can also describe the
/// open-ended "everything except these" sets observers use.
///
/// Raw `u32` indices are used so one set type serves both
/// [`OpId`](crate::event::OpId) and [`BranchId`] sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SiteSet {
    /// Every site.
    All,
    /// Exactly these sites.
    Only(BTreeSet<u32>),
    /// Every site except these (e.g. overflow detection observes every
    /// operation site not yet handled, module-wide).
    Except(BTreeSet<u32>),
}

impl SiteSet {
    /// The empty set.
    pub fn none() -> Self {
        SiteSet::Only(BTreeSet::new())
    }

    /// True if `id` is a member of the set.
    pub fn contains(&self, id: u32) -> bool {
        match self {
            SiteSet::All => true,
            SiteSet::Only(set) => set.contains(&id),
            SiteSet::Except(set) => !set.contains(&id),
        }
    }
}

/// What a weak-distance target actually observes about executions of a
/// program: which event sites it folds over, and whether it reads the
/// program's global cells after a run.
///
/// [`Analyzable::specialize`] receives this spec and may drop any event or
/// computation **outside** the observation set, as long as everything inside
/// it — the retained events (payloads and order) and the stop behavior they
/// induce, plus the returned value and final globals when observed — stays
/// bit-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservationSpec {
    /// The branch sites whose events are observed.
    pub branches: SiteSet,
    /// The operation sites whose events are observed.
    pub ops: SiteSet,
    /// Whether the entry function's returned value is observed. The
    /// event-folding weak distances never read it — their value lives
    /// entirely in the observer — which is what lets specialization slice
    /// away the return-value computation.
    pub return_value: bool,
    /// Whether final global-cell values are observed after a run.
    pub globals: bool,
}

impl ObservationSpec {
    /// Observes every event, the returned value and the globals: the
    /// identity spec, under which specialization may only remove provably
    /// dead computation.
    pub fn everything() -> Self {
        ObservationSpec {
            branches: SiteSet::All,
            ops: SiteSet::All,
            return_value: true,
            globals: true,
        }
    }

    /// Observes only the given branch sites (no operation events, no return
    /// value, no globals) — the shape of boundary, path and coverage
    /// targets.
    pub fn branches(branches: SiteSet) -> Self {
        ObservationSpec {
            branches,
            ops: SiteSet::none(),
            return_value: false,
            globals: false,
        }
    }

    /// Observes only the given operation sites (no branch events, no return
    /// value, no globals) — the shape of overflow targets.
    pub fn ops(ops: SiteSet) -> Self {
        ObservationSpec {
            branches: SiteSet::none(),
            ops,
            return_value: false,
            globals: false,
        }
    }
}

/// A floating-point program with input domain `F^N` that can be executed
/// under observation.
///
/// Implementations exist for hand-instrumented Rust ports (`mini-gsl`) and
/// for interpreted IR programs (`fpir`). Analyses never look at the program
/// text; they only run it and observe events — exactly the black-box
/// treatment the paper relies on.
///
/// Programs are executed concurrently by the parallel engine (restart
/// shards, backend portfolios and campaign workers all run the same program
/// at once), so `execute` must be callable from several threads — hence the
/// `Send + Sync` bound. Per-execution state belongs in the [`Observer`],
/// which each evaluation creates afresh.
pub trait Analyzable: Send + Sync {
    /// A short human-readable name (used in reports).
    fn name(&self) -> &str;

    /// Number of floating-point inputs `N`.
    fn num_inputs(&self) -> usize;

    /// Search box for each input, used to sample optimization starting
    /// points. The default is the whole finite binary64 range.
    fn search_domain(&self) -> Vec<Interval> {
        vec![Interval::whole(); self.num_inputs()]
    }

    /// Static list of instrumented floating-point operation sites
    /// (the set `L̄` of Algorithm 3).
    fn op_sites(&self) -> Vec<OpSite>;

    /// Static list of instrumented conditional-branch sites.
    fn branch_sites(&self) -> Vec<BranchSite>;

    /// Executes the program on `input`, reporting events through `ctx`, and
    /// returns the program result if it produces one.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `input.len() != self.num_inputs()`.
    fn execute(&self, input: &[f64], ctx: &mut Ctx<'_>) -> Option<f64>;

    /// Convenience wrapper: executes the program with a fresh probe context
    /// over `observer`.
    fn run(&self, input: &[f64], observer: &mut dyn Observer) -> Option<f64> {
        let mut ctx = Ctx::new(observer);
        self.execute(input, &mut ctx)
    }

    /// Returns a reusable [`BatchExecutor`] amortizing per-execution setup
    /// over many runs of this program.
    ///
    /// Each execution still gets its own observer (weak distances fold
    /// per-run state in the observer), but an implementation can hoist
    /// everything input-independent out of the per-run path: the default
    /// executor simply loops [`Analyzable::run`], while the `fpir`
    /// interpreter reuses its register frames and global-variable buffers
    /// across the whole batch — and, under [`KernelPolicy::Auto`] or
    /// [`KernelPolicy::Always`], specializes eligible modules into a
    /// lane-parallel SoA kernel. Results are bit-identical to calling
    /// [`Analyzable::run`] once per input regardless of the policy.
    fn batch_executor(&self, policy: KernelPolicy) -> Box<dyn BatchExecutor + '_> {
        let _ = policy; // only programs with a kernel backend consult it
        Box::new(ScalarBatchExecutor(self))
    }

    /// What a static analysis knows about taking branch `site` in direction
    /// `taken` (over the program's search domain).
    ///
    /// The default — no analysis — is [`Reachability::Unknown`]. A result of
    /// [`Reachability::Unreachable`] must be a proof: analyses use it to
    /// skip minimization entirely, charging zero evaluations.
    fn branch_side_reachability(&self, site: BranchId, taken: bool) -> Reachability {
        let _ = (site, taken);
        Reachability::Unknown
    }

    /// What a static analysis knows about the *boundary* of branch `site`
    /// (an execution where the two comparison operands are exactly equal,
    /// the target of boundary value analysis).
    fn branch_boundary_reachability(&self, site: BranchId) -> Reachability {
        let _ = site;
        Reachability::Unknown
    }

    /// What a static analysis knows about operation site `site` executing
    /// at all (over the program's search domain).
    fn op_site_reachability(&self, site: OpId) -> Reachability {
        let _ = site;
        Reachability::Unknown
    }

    /// Returns a target-specialized variant of this program that preserves
    /// exactly the observations in `spec`, or `None` when the program has no
    /// optimizing backend, the policy forbids it, or the rewrite could not
    /// be translation-validated.
    ///
    /// The contract is strict: for every input **inside the search domain**,
    /// the specialized program must produce a bit-identical stream of events
    /// at the sites `spec` retains (payloads and order) — so any observer
    /// folding over those events, including one that requests an early stop,
    /// sees identical behavior — plus a bit-identical returned value and
    /// final globals when `spec` observes them. Out-of-domain inputs carry
    /// no guarantee; the analyses' evaluation pipeline clamps every
    /// candidate into the domain before evaluating. Callers fall back to
    /// the original program on `None`; the default implementation (no
    /// optimizing backend) always returns `None`.
    fn specialize(
        &self,
        spec: &ObservationSpec,
        policy: OptPolicy,
    ) -> Option<Box<dyn Analyzable>> {
        let _ = (spec, policy);
        None
    }
}

/// A reusable execution session over one [`Analyzable`] program: the
/// batched-evaluation seam of the runtime layer.
///
/// Obtained from [`Analyzable::batch_executor`]; callers evaluate many
/// inputs through one executor so the program can amortize per-execution
/// setup (buffer allocation, program decoding) across the batch.
pub trait BatchExecutor {
    /// Executes the program on `input`, reporting events through a fresh
    /// probe context over `observer`, exactly like [`Analyzable::run`].
    fn execute_one(&mut self, input: &[f64], observer: &mut dyn Observer) -> Option<f64>;

    /// Executes every input of the batch, handing input `i` the observer
    /// `observers[i]`, and replaces the contents of `results` with one
    /// entry per input (in order).
    ///
    /// This is the lane-parallel entry point: the default implementation
    /// loops [`BatchExecutor::execute_one`], but a vectorized kernel
    /// executes all inputs lanewise in one sweep. Either way the per-input
    /// results and the event stream each observer sees are bit-identical
    /// to the scalar loop.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != observers.len()`.
    fn execute_many(
        &mut self,
        inputs: &[Vec<f64>],
        observers: &mut [&mut dyn Observer],
        results: &mut Vec<Option<f64>>,
    ) {
        assert_eq!(
            inputs.len(),
            observers.len(),
            "one observer is required per batch input"
        );
        results.clear();
        results.reserve(inputs.len());
        for (input, observer) in inputs.iter().zip(observers.iter_mut()) {
            results.push(self.execute_one(input, &mut **observer));
        }
    }
}

/// The default [`BatchExecutor`]: a plain loop over [`Analyzable::run`]
/// with no batch-level amortization.
struct ScalarBatchExecutor<'a, P: ?Sized>(&'a P);

impl<P: Analyzable + ?Sized> BatchExecutor for ScalarBatchExecutor<'_, P> {
    fn execute_one(&mut self, input: &[f64], observer: &mut dyn Observer) -> Option<f64> {
        self.0.run(input, observer)
    }
}

impl<P: Analyzable + ?Sized> Analyzable for &P {
    fn batch_executor(&self, policy: KernelPolicy) -> Box<dyn BatchExecutor + '_> {
        (**self).batch_executor(policy)
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn num_inputs(&self) -> usize {
        (**self).num_inputs()
    }

    fn search_domain(&self) -> Vec<Interval> {
        (**self).search_domain()
    }

    fn op_sites(&self) -> Vec<OpSite> {
        (**self).op_sites()
    }

    fn branch_sites(&self) -> Vec<BranchSite> {
        (**self).branch_sites()
    }

    fn execute(&self, input: &[f64], ctx: &mut Ctx<'_>) -> Option<f64> {
        (**self).execute(input, ctx)
    }

    fn branch_side_reachability(&self, site: BranchId, taken: bool) -> Reachability {
        (**self).branch_side_reachability(site, taken)
    }

    fn branch_boundary_reachability(&self, site: BranchId) -> Reachability {
        (**self).branch_boundary_reachability(site)
    }

    fn op_site_reachability(&self, site: OpId) -> Reachability {
        (**self).op_site_reachability(site)
    }

    fn specialize(
        &self,
        spec: &ObservationSpec,
        policy: OptPolicy,
    ) -> Option<Box<dyn Analyzable>> {
        (**self).specialize(spec, policy)
    }
}

/// An [`Analyzable`] built from a closure, convenient for small examples and
/// tests.
///
/// # Example
///
/// ```
/// use fp_runtime::{Analyzable, BranchSite, Cmp, ClosureProgram, Interval, NullObserver};
///
/// let prog = ClosureProgram::new("square-gate", 1, |x, ctx| {
///     let y = x[0] * x[0];
///     if ctx.branch(0, y, Cmp::Le, 4.0) {
///         Some(y)
///     } else {
///         Some(0.0)
///     }
/// })
/// .with_branch_sites(vec![BranchSite::new(0, Cmp::Le, "y <= 4")])
/// .with_domain(vec![Interval::symmetric(10.0)]);
///
/// assert_eq!(prog.run(&[1.0], &mut NullObserver), Some(1.0));
/// ```
pub struct ClosureProgram<F> {
    name: String,
    num_inputs: usize,
    domain: Vec<Interval>,
    op_sites: Vec<OpSite>,
    branch_sites: Vec<BranchSite>,
    body: F,
}

impl<F> ClosureProgram<F>
where
    F: Fn(&[f64], &mut Ctx<'_>) -> Option<f64> + Send + Sync,
{
    /// Creates a closure-backed program with the whole binary64 range as its
    /// default search domain and no declared sites.
    pub fn new(name: impl Into<String>, num_inputs: usize, body: F) -> Self {
        ClosureProgram {
            name: name.into(),
            num_inputs,
            domain: vec![Interval::whole(); num_inputs],
            op_sites: Vec::new(),
            branch_sites: Vec::new(),
            body,
        }
    }

    /// Sets the search domain.
    ///
    /// # Panics
    ///
    /// Panics if the number of intervals differs from the number of inputs.
    pub fn with_domain(mut self, domain: Vec<Interval>) -> Self {
        assert_eq!(
            domain.len(),
            self.num_inputs,
            "domain arity must match the number of inputs"
        );
        self.domain = domain;
        self
    }

    /// Declares the operation sites the closure reports.
    pub fn with_op_sites(mut self, sites: Vec<OpSite>) -> Self {
        self.op_sites = sites;
        self
    }

    /// Declares the branch sites the closure reports.
    pub fn with_branch_sites(mut self, sites: Vec<BranchSite>) -> Self {
        self.branch_sites = sites;
        self
    }
}

impl<F> Analyzable for ClosureProgram<F>
where
    F: Fn(&[f64], &mut Ctx<'_>) -> Option<f64> + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    fn search_domain(&self) -> Vec<Interval> {
        self.domain.clone()
    }

    fn op_sites(&self) -> Vec<OpSite> {
        self.op_sites.clone()
    }

    fn branch_sites(&self) -> Vec<BranchSite> {
        self.branch_sites.clone()
    }

    fn execute(&self, input: &[f64], ctx: &mut Ctx<'_>) -> Option<f64> {
        assert_eq!(
            input.len(),
            self.num_inputs,
            "input arity mismatch for {}",
            self.name
        );
        (self.body)(input, ctx)
    }
}

impl<F> std::fmt::Debug for ClosureProgram<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClosureProgram")
            .field("name", &self.name)
            .field("num_inputs", &self.num_inputs)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Cmp, FpOp};
    use crate::recorder::{NullObserver, TraceRecorder};

    fn toy() -> impl Analyzable {
        ClosureProgram::new("toy", 1, |x, ctx| {
            let y = ctx.op(0, FpOp::Mul, x[0] * x[0]);
            let _ = ctx.branch(0, y, Cmp::Le, 4.0);
            Some(y)
        })
        .with_op_sites(vec![OpSite::new(0, FpOp::Mul, "y = x*x")])
        .with_branch_sites(vec![BranchSite::new(0, Cmp::Le, "y <= 4")])
        .with_domain(vec![Interval::symmetric(100.0)])
    }

    #[test]
    fn closure_program_reports_metadata() {
        let p = toy();
        assert_eq!(p.name(), "toy");
        assert_eq!(p.num_inputs(), 1);
        assert_eq!(p.search_domain().len(), 1);
        assert_eq!(p.op_sites().len(), 1);
        assert_eq!(p.branch_sites().len(), 1);
    }

    #[test]
    fn closure_program_executes_and_emits_events() {
        let p = toy();
        let mut rec = TraceRecorder::new();
        assert_eq!(p.run(&[3.0], &mut rec), Some(9.0));
        assert_eq!(rec.ops().count(), 1);
        assert_eq!(rec.branches().count(), 1);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_panics() {
        let p = toy();
        let _ = p.run(&[1.0, 2.0], &mut NullObserver);
    }

    #[test]
    fn default_batch_executor_ignores_policy_and_matches_run() {
        let p = toy();
        let xs: Vec<Vec<f64>> = (0..7).map(|i| vec![i as f64 - 3.0]).collect();
        for policy in [KernelPolicy::Auto, KernelPolicy::Always, KernelPolicy::Never] {
            let mut session = p.batch_executor(policy);
            let mut observers: Vec<TraceRecorder> =
                xs.iter().map(|_| TraceRecorder::new()).collect();
            let mut refs: Vec<&mut dyn crate::recorder::Observer> = observers
                .iter_mut()
                .map(|o| o as &mut dyn crate::recorder::Observer)
                .collect();
            let mut results = Vec::new();
            session.execute_many(&xs, &mut refs, &mut results);
            assert_eq!(results.len(), xs.len());
            for ((x, result), obs) in xs.iter().zip(&results).zip(&observers) {
                let mut scalar_rec = TraceRecorder::new();
                assert_eq!(*result, p.run(x, &mut scalar_rec), "{policy:?} at {x:?}");
                assert_eq!(obs.ops().count(), scalar_rec.ops().count());
                assert_eq!(obs.branches().count(), scalar_rec.branches().count());
            }
        }
    }

    #[test]
    #[should_panic(expected = "one observer is required per batch input")]
    fn execute_many_rejects_mismatched_observers() {
        let p = toy();
        let mut session = p.batch_executor(KernelPolicy::default());
        let mut results = Vec::new();
        session.execute_many(&[vec![1.0]], &mut [], &mut results);
    }

    #[test]
    fn site_set_membership() {
        assert!(SiteSet::All.contains(7));
        assert!(!SiteSet::none().contains(0));
        let only = SiteSet::Only([1u32, 3].into_iter().collect());
        assert!(only.contains(1));
        assert!(!only.contains(2));
        let except = SiteSet::Except([1u32].into_iter().collect());
        assert!(!except.contains(1));
        assert!(except.contains(2));
    }

    #[test]
    fn observation_spec_constructors() {
        let all = ObservationSpec::everything();
        assert!(all.branches.contains(0) && all.ops.contains(9) && all.globals);
        assert!(all.return_value);
        let b = ObservationSpec::branches(SiteSet::Only([2u32].into_iter().collect()));
        assert!(b.branches.contains(2) && !b.ops.contains(0) && !b.globals);
        assert!(!b.return_value);
        let o = ObservationSpec::ops(SiteSet::Except([4u32].into_iter().collect()));
        assert!(!o.branches.contains(0) && o.ops.contains(5) && !o.ops.contains(4));
    }

    #[test]
    fn default_specialize_is_none() {
        let p = toy();
        for policy in [OptPolicy::Auto, OptPolicy::Always, OptPolicy::Never] {
            assert!(p.specialize(&ObservationSpec::everything(), policy).is_none());
            // The &P blanket impl forwards the default too.
            let by_ref = &p;
            assert!(by_ref
                .specialize(&ObservationSpec::everything(), policy)
                .is_none());
        }
    }

    #[test]
    fn default_domain_is_whole_range() {
        let p = ClosureProgram::new("free", 2, |_x, _ctx| Some(0.0));
        let dom = p.search_domain();
        assert_eq!(dom.len(), 2);
        assert_eq!(dom[0].lo(), -f64::MAX);
        assert_eq!(dom[1].hi(), f64::MAX);
    }
}
