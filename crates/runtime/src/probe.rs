//! The probe context used by hand-instrumented programs.
//!
//! A program port (for instance the `mini-gsl` Bessel function) receives a
//! [`Ctx`] and reports each floating-point operation and branch comparison
//! through it. The context forwards the events to the active
//! [`Observer`](crate::Observer) and keeps track of early-termination
//! requests, mirroring the `if (w == 0) return;` statements injected by the
//! paper's instrumentation.

use crate::event::{BranchEvent, BranchId, Cmp, FpOp, OpEvent, OpId};
use crate::recorder::Observer;

/// Whether an instrumented program should keep executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeControl {
    /// Keep executing.
    Continue,
    /// Terminate the execution as soon as convenient.
    Stop,
}

impl ProbeControl {
    /// Combines two control decisions: stop wins.
    pub fn combine(self, other: ProbeControl) -> ProbeControl {
        if self == ProbeControl::Stop || other == ProbeControl::Stop {
            ProbeControl::Stop
        } else {
            ProbeControl::Continue
        }
    }
}

/// Probe context handed to an instrumented program for one execution.
///
/// # Example
///
/// ```
/// use fp_runtime::{Cmp, Ctx, FpOp, TraceRecorder};
///
/// fn prog(x: f64, ctx: &mut Ctx<'_>) -> f64 {
///     let y = ctx.op(0, FpOp::Mul, x * x);
///     if ctx.branch(0, y, Cmp::Le, 4.0) {
///         y - 1.0
///     } else {
///         y
///     }
/// }
///
/// let mut rec = TraceRecorder::new();
/// let mut ctx = Ctx::new(&mut rec);
/// assert_eq!(prog(1.0, &mut ctx), 0.0);
/// assert_eq!(rec.ops().count(), 1);
/// assert_eq!(rec.branches().count(), 1);
/// ```
pub struct Ctx<'a> {
    observer: &'a mut dyn Observer,
    stopped: bool,
    ops_executed: u64,
    branches_executed: u64,
}

impl std::fmt::Debug for Ctx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("stopped", &self.stopped)
            .field("ops_executed", &self.ops_executed)
            .field("branches_executed", &self.branches_executed)
            .finish_non_exhaustive()
    }
}

impl<'a> Ctx<'a> {
    /// Creates a probe context that forwards events to `observer`.
    pub fn new(observer: &'a mut dyn Observer) -> Self {
        Ctx {
            observer,
            stopped: false,
            ops_executed: 0,
            branches_executed: 0,
        }
    }

    /// Reports a floating-point operation with site id `id`, kind `op` and
    /// computed value `value`, and returns the value unchanged so probes can
    /// be inserted inline: `let t = ctx.op(1, FpOp::Mul, 4.0 * nu);`.
    pub fn op(&mut self, id: u32, op: FpOp, value: f64) -> f64 {
        self.ops_executed += 1;
        let ev = OpEvent {
            id: OpId(id),
            op,
            value,
        };
        if self.observer.on_op(&ev) == ProbeControl::Stop {
            self.stopped = true;
        }
        value
    }

    /// Reports a conditional branch with site id `id` comparing
    /// `lhs cmp rhs`, and returns the truth value of the comparison so the
    /// probe can be used directly as the branch condition.
    pub fn branch(&mut self, id: u32, lhs: f64, cmp: Cmp, rhs: f64) -> bool {
        self.branches_executed += 1;
        let taken = cmp.eval(lhs, rhs);
        let ev = BranchEvent {
            id: BranchId(id),
            lhs,
            cmp,
            rhs,
            taken,
        };
        if self.observer.on_branch(&ev) == ProbeControl::Stop {
            self.stopped = true;
        }
        taken
    }

    /// Returns `true` once any observer has requested early termination.
    ///
    /// Instrumented programs with expensive tails should poll this and
    /// return early when it is set; the analyses remain correct (but slower)
    /// if a program ignores it.
    pub fn stopped(&self) -> bool {
        self.stopped
    }

    /// Number of operation events reported so far.
    pub fn ops_executed(&self) -> u64 {
        self.ops_executed
    }

    /// Number of branch events reported so far.
    pub fn branches_executed(&self) -> u64 {
        self.branches_executed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{NullObserver, TraceRecorder};

    #[test]
    fn op_returns_value_and_counts() {
        let mut obs = NullObserver;
        let mut ctx = Ctx::new(&mut obs);
        assert_eq!(ctx.op(0, FpOp::Add, 2.5), 2.5);
        assert_eq!(ctx.op(1, FpOp::Mul, -1.0), -1.0);
        assert_eq!(ctx.ops_executed(), 2);
        assert!(!ctx.stopped());
    }

    #[test]
    fn branch_returns_comparison_result() {
        let mut obs = NullObserver;
        let mut ctx = Ctx::new(&mut obs);
        assert!(ctx.branch(0, 1.0, Cmp::Lt, 2.0));
        assert!(!ctx.branch(1, 3.0, Cmp::Lt, 2.0));
        assert_eq!(ctx.branches_executed(), 2);
    }

    #[test]
    fn stop_request_is_latched() {
        struct StopAfterFirst {
            seen: usize,
        }
        impl Observer for StopAfterFirst {
            fn on_op(&mut self, _ev: &OpEvent) -> ProbeControl {
                self.seen += 1;
                if self.seen >= 1 {
                    ProbeControl::Stop
                } else {
                    ProbeControl::Continue
                }
            }
        }
        let mut obs = StopAfterFirst { seen: 0 };
        let mut ctx = Ctx::new(&mut obs);
        ctx.op(0, FpOp::Add, 1.0);
        assert!(ctx.stopped());
        // Still latched after further events.
        ctx.branch(0, 1.0, Cmp::Lt, 2.0);
        assert!(ctx.stopped());
    }

    #[test]
    fn probe_control_combine() {
        use ProbeControl::*;
        assert_eq!(Continue.combine(Continue), Continue);
        assert_eq!(Continue.combine(Stop), Stop);
        assert_eq!(Stop.combine(Continue), Stop);
        assert_eq!(Stop.combine(Stop), Stop);
    }

    #[test]
    fn events_reach_observer_with_correct_payload() {
        let mut rec = TraceRecorder::new();
        let mut ctx = Ctx::new(&mut rec);
        ctx.op(7, FpOp::Div, 0.5);
        ctx.branch(3, 5.0, Cmp::Ge, 4.0);
        let ops: Vec<_> = rec.ops().collect();
        assert_eq!(ops[0].id, OpId(7));
        assert_eq!(ops[0].value, 0.5);
        let brs: Vec<_> = rec.branches().collect();
        assert_eq!(brs[0].id, BranchId(3));
        assert!(brs[0].taken);
    }
}
