//! Cooperative cancellation shared by every layer of the workspace.
//!
//! The parallel execution engine (`wdm_engine`) races several searches on
//! the same problem: independent restart shards, or a portfolio of backends.
//! As soon as one of them finds a zero of the weak distance, the remaining
//! searches are wasted work; a [`CancelToken`] threaded into the
//! optimization problem lets the winner stop them at their next objective
//! evaluation without any backend-specific plumbing. The `fpir` interpreter
//! additionally polls its token *inside* the interpreter loop, so even a
//! single long-running interpreted execution stops promptly instead of
//! waiting for the next evaluation boundary.
//!
//! Tokens form a tree: [`CancelToken::child`] creates a token that can be
//! cancelled on its own but also observes every ancestor, so an engine can
//! cancel a whole campaign (root), one problem (inner node) or one shard
//! (leaf) with a single call.
//!
//! # Example
//!
//! ```
//! use fp_runtime::CancelToken;
//!
//! let campaign = CancelToken::new();
//! let shard = campaign.child();
//! assert!(!shard.is_cancelled());
//! campaign.cancel();
//! assert!(shard.is_cancelled(), "children observe ancestors");
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared, cloneable cancellation flag checked by every backend at each
/// objective evaluation (and by the `fpir` interpreter between
/// instructions).
///
/// Clones share the same flag; [`CancelToken::child`] creates a dependent
/// token with its own flag. A default token is never cancelled unless
/// [`CancelToken::cancel`] is called on it (or an ancestor).
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    flag: AtomicBool,
    parent: Option<CancelToken>,
}

impl CancelToken {
    /// Creates a fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a token that is cancelled when either it or `self` (or any
    /// further ancestor) is cancelled.
    pub fn child(&self) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                parent: Some(self.clone()),
            }),
        }
    }

    /// Requests cancellation. Every clone and descendant observes it.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Release);
    }

    /// Returns `true` once `self` or any ancestor has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.flag.load(Ordering::Acquire) {
            return true;
        }
        match &self.inner.parent {
            Some(parent) => parent.is_cancelled(),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_not_cancelled() {
        assert!(!CancelToken::new().is_cancelled());
    }

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        b.cancel();
        assert!(a.is_cancelled());
    }

    #[test]
    fn child_cancellation_does_not_affect_parent_or_sibling() {
        let root = CancelToken::new();
        let a = root.child();
        let b = root.child();
        a.cancel();
        assert!(a.is_cancelled());
        assert!(!root.is_cancelled());
        assert!(!b.is_cancelled());
    }

    #[test]
    fn grandchildren_observe_the_root() {
        let root = CancelToken::new();
        let leaf = root.child().child();
        root.cancel();
        assert!(leaf.is_cancelled());
    }

    #[test]
    fn tokens_cross_threads() {
        let token = CancelToken::new();
        let seen = std::thread::scope(|s| {
            let t = token.clone();
            let h = s.spawn(move || {
                while !t.is_cancelled() {
                    std::thread::yield_now();
                }
                true
            });
            token.cancel();
            h.join().unwrap()
        });
        assert!(seen);
    }
}
