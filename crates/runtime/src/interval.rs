//! Closed intervals of doubles used to describe search domains.

use std::fmt;

/// A closed interval `[lo, hi]` of finite doubles.
///
/// Intervals describe the box over which the mathematical-optimization
/// backend samples starting points. The paper's benchmarks use very wide
/// domains (up to the whole binary64 range) because overflow-triggering
/// inputs often have magnitudes near `1e308`.
///
/// # Example
///
/// ```
/// use fp_runtime::Interval;
/// let iv = Interval::new(-2.0, 3.0);
/// assert!(iv.contains(0.0));
/// assert_eq!(iv.clamp(10.0), 3.0);
/// assert_eq!(iv.width(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// Creates an interval from its two endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either endpoint is NaN.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(!lo.is_nan() && !hi.is_nan(), "interval endpoint is NaN");
        assert!(lo <= hi, "interval lower bound {lo} exceeds upper bound {hi}");
        Interval { lo, hi }
    }

    /// The whole finite binary64 range `[-f64::MAX, f64::MAX]`.
    pub fn whole() -> Self {
        Interval {
            lo: -f64::MAX,
            hi: f64::MAX,
        }
    }

    /// A symmetric interval `[-r, r]`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is negative or NaN.
    pub fn symmetric(r: f64) -> Self {
        assert!(r >= 0.0, "radius must be nonnegative");
        Interval { lo: -r, hi: r }
    }

    /// Lower endpoint.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper endpoint.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Width `hi - lo` (may be infinite for very wide intervals).
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint of the interval, computed without overflowing.
    pub fn midpoint(&self) -> f64 {
        self.lo / 2.0 + self.hi / 2.0
    }

    /// Returns `true` if `x` lies in the interval (NaN is never contained).
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }

    /// Clamps `x` into the interval; NaN is mapped to the midpoint.
    pub fn clamp(&self, x: f64) -> f64 {
        if x.is_nan() {
            return self.midpoint();
        }
        x.clamp(self.lo, self.hi)
    }

    /// Linear interpolation: `t = 0` gives `lo`, `t = 1` gives `hi`.
    ///
    /// Computed in a way that does not overflow for very wide intervals.
    pub fn lerp(&self, t: f64) -> f64 {
        let v = self.lo * (1.0 - t) + self.hi * t;
        self.clamp(v)
    }
}

impl Default for Interval {
    fn default() -> Self {
        Interval::whole()
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_properties() {
        let iv = Interval::new(-1.0, 4.0);
        assert_eq!(iv.lo(), -1.0);
        assert_eq!(iv.hi(), 4.0);
        assert_eq!(iv.width(), 5.0);
        assert_eq!(iv.midpoint(), 1.5);
        assert!(iv.contains(-1.0));
        assert!(iv.contains(4.0));
        assert!(!iv.contains(4.1));
        assert!(!iv.contains(f64::NAN));
    }

    #[test]
    fn clamp_and_lerp() {
        let iv = Interval::new(0.0, 10.0);
        assert_eq!(iv.clamp(-5.0), 0.0);
        assert_eq!(iv.clamp(5.0), 5.0);
        assert_eq!(iv.clamp(50.0), 10.0);
        assert_eq!(iv.clamp(f64::NAN), 5.0);
        assert_eq!(iv.lerp(0.0), 0.0);
        assert_eq!(iv.lerp(1.0), 10.0);
        assert_eq!(iv.lerp(0.5), 5.0);
    }

    #[test]
    fn whole_interval_does_not_overflow() {
        let iv = Interval::whole();
        assert!(iv.midpoint().is_finite());
        assert!(iv.contains(1.0e308));
        assert!(iv.lerp(0.5).is_finite());
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn rejects_inverted_bounds() {
        let _ = Interval::new(1.0, 0.0);
    }

    #[test]
    fn symmetric_constructor() {
        let iv = Interval::symmetric(2.5);
        assert_eq!(iv.lo(), -2.5);
        assert_eq!(iv.hi(), 2.5);
    }
}
