//! Execution-event model and probe API shared by every analysis in the
//! weak-distance-minimization workspace.
//!
//! The reduction theory of the paper ("Effective Floating-Point Analysis via
//! Weak-Distance Minimization", PLDI 2019) only ever needs to observe two
//! kinds of runtime facts about the program under analysis:
//!
//! * the value computed by each floating-point **operation** (needed by
//!   overflow detection, Instance 3), and
//! * the two operands and direction of each **branch** comparison (needed by
//!   boundary value analysis, path reachability and branch-coverage testing,
//!   Instances 1, 2 and 4).
//!
//! This crate defines those events ([`OpEvent`], [`BranchEvent`]), the
//! [`Observer`] trait that receives them, the [`Analyzable`] trait implemented
//! by every program that can be analysed (hand-instrumented Rust ports in
//! `mini-gsl`, interpreted IR programs in `fpir`), and a small probe context
//! ([`Ctx`]) that instrumented code uses to emit events.
//!
//! # Example
//!
//! ```
//! use fp_runtime::{Analyzable, BranchSite, Cmp, Ctx, Interval, NullObserver, OpSite};
//!
//! /// `if (x <= 1) x++;` from Fig. 2 of the paper, hand instrumented.
//! struct Half;
//!
//! impl Analyzable for Half {
//!     fn name(&self) -> &str { "half" }
//!     fn num_inputs(&self) -> usize { 1 }
//!     fn search_domain(&self) -> Vec<Interval> { vec![Interval::new(-1.0e3, 1.0e3)] }
//!     fn op_sites(&self) -> Vec<OpSite> { Vec::new() }
//!     fn branch_sites(&self) -> Vec<BranchSite> {
//!         vec![BranchSite::new(0, Cmp::Le, "x <= 1.0")]
//!     }
//!     fn execute(&self, input: &[f64], ctx: &mut Ctx<'_>) -> Option<f64> {
//!         let mut x = input[0];
//!         if ctx.branch(0, x, Cmp::Le, 1.0) {
//!             x += 1.0;
//!         }
//!         Some(x)
//!     }
//! }
//!
//! let mut obs = NullObserver;
//! let mut ctx = Ctx::new(&mut obs);
//! assert_eq!(Half.execute(&[0.0], &mut ctx), Some(1.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyzable;
pub mod cancel;
pub mod event;
pub mod interval;
pub mod probe;
pub mod recorder;

pub use analyzable::{
    Analyzable, BatchExecutor, ClosureProgram, KernelPolicy, ObservationSpec, OptPolicy,
    Reachability, SiteSet,
};
pub use cancel::CancelToken;
pub use event::{BranchEvent, BranchId, BranchSite, Cmp, Event, FpOp, OpEvent, OpId, OpSite};
pub use interval::Interval;
pub use probe::{Ctx, ProbeControl};
pub use recorder::{
    BranchCoverage, CountingObserver, MultiObserver, NullObserver, Observer, TraceRecorder,
};
