//! The lanewise structure-of-arrays kernel backend.
//!
//! The batch seam introduced by the batched-evaluation stack
//! ([`fp_runtime::BatchExecutor`]) lets a program amortize per-execution
//! setup over a whole batch. This module goes one step further and
//! amortizes the *interpretation* itself: [`KernelExecutor`] specializes a
//! module into a lane-parallel kernel that executes one instruction for
//! **all** inputs of a wave before moving to the next instruction, instead
//! of interpreting the whole program once per input.
//!
//! # Layout and execution model
//!
//! The register file is operand-major (structure of arrays): one
//! contiguous run of `lanes` binary64 values per virtual register, so the
//! per-opcode dispatch (`match inst`) runs once per instruction and the
//! inner loop over lanes is a tight stride-1 sweep — the compute-engine
//! layering of SIMT runtimes (cf. kubecl), scaled down to a CPU
//! interpreter. Global cells use the same layout. All lanes of a wave run
//! in lockstep and therefore share a single fuel counter and cancellation
//! poll schedule, which keeps the kernel's out-of-fuel and cancellation
//! behavior bit-identical to interpreting each input on its own.
//!
//! # Divergence and the scalar fallback
//!
//! Lanes leave the lockstep wave in three ways, all handled by resuming
//! the lane on the scalar interpreter from its exact machine state
//! (registers, globals, remaining fuel, probe context):
//!
//! * a **divergent branch** — the wave follows the better-populated side
//!   of a conditional branch; the other side's lanes finish scalar;
//! * an **observer stop** — a probe returned [`ProbeControl::Stop`]
//!   (e.g. the overflow weak distance found its overflow); the scalar
//!   resume reproduces the interpreter's stop-at-next-instruction (and
//!   run-the-terminator) behavior exactly;
//! * an **unsupported instruction** — `call` executes per lane on the
//!   scalar interpreter, so modules whose entry function calls helpers
//!   are only selected under [`KernelPolicy::Always`]
//!   ([`KernelPolicy::Auto`] picks the plain interpreter session for
//!   them; see [`supports_lanewise`]).
//!
//! Because each input owns its observer and IEEE lane operations are
//! deterministic, straight-line specialization preserves every bit: the
//! values, the per-input event streams and the stop/cancellation behavior
//! are all identical to [`Interpreter::execute`] — the workspace-level
//! `kernel_equivalence` proptests pin this down across every weak-distance
//! kind.
//!
//! [`ProbeControl::Stop`]: fp_runtime::ProbeControl::Stop
//! [`KernelPolicy::Always`]: fp_runtime::KernelPolicy::Always
//! [`KernelPolicy::Auto`]: fp_runtime::KernelPolicy::Auto
//! [`Interpreter::execute`]: crate::Interpreter::execute

use crate::interp::{run_session_one, ExecState, Interpreter, ModuleProgram, CANCEL_POLL_INTERVAL};
use crate::ir::{BlockId, FuncId, Inst, Module, Terminator};
use fp_runtime::{BatchExecutor, CancelToken, Ctx, Observer};

/// Maximum number of lanes executed in one lockstep wave. Bounds the SoA
/// register file to `num_regs * WAVE_LANES` values while amortizing the
/// per-instruction dispatch over enough lanes to make it disappear.
pub const WAVE_LANES: usize = 256;

/// Whether the lanewise kernel can specialize `entry` of `module` into a
/// wave: the entry function must be call-free (a `call` makes every lane
/// fall back to the scalar interpreter, so there is nothing to gain).
/// This is the eligibility test behind [`fp_runtime::KernelPolicy::Auto`].
pub fn supports_lanewise(module: &Module, entry: FuncId) -> bool {
    module
        .function(entry)
        .blocks
        .iter()
        .all(|b| !b.insts.iter().any(|i| matches!(i, Inst::Call { .. })))
}

/// The lanewise SoA kernel session handed out by
/// [`ModuleProgram`]'s [`fp_runtime::Analyzable::batch_executor`] under a
/// kernel-selecting policy.
///
/// Scratch buffers (register file, global file, lane masks) are owned by
/// the session and reused across waves, so a long batch allocates a
/// constant amount of memory.
pub struct KernelExecutor<'a> {
    program: &'a ModuleProgram,
    /// Whether the entry function is call-free ([`supports_lanewise`]):
    /// when it is not, every wave evicts all lanes at the first `call`,
    /// so batches effectively run on the scalar resume path.
    lanewise: bool,
    /// Scalar interpreter session backing [`BatchExecutor::execute_one`].
    scalar: ExecState<'a>,
    /// SoA register file: `regs[r * lanes + lane]`.
    regs: Vec<f64>,
    /// SoA global cells: `globals[g * lanes + lane]`.
    globals: Vec<f64>,
    /// Lanes still executing in lockstep.
    active: Vec<usize>,
    then_lanes: Vec<usize>,
    else_lanes: Vec<usize>,
    evicted: Vec<usize>,
    /// One lane's registers/globals, recycled across scalar resumes so an
    /// eviction allocates nothing (amortized).
    lane_regs: Vec<f64>,
    lane_globals: Vec<f64>,
}

impl<'a> KernelExecutor<'a> {
    /// Creates a kernel session over `program`.
    pub fn new(program: &'a ModuleProgram) -> Self {
        KernelExecutor {
            lanewise: supports_lanewise(program.module(), program.entry()),
            scalar: ExecState::new(program.interpreter(), program.module()),
            program,
            regs: Vec::new(),
            globals: Vec::new(),
            active: Vec::new(),
            then_lanes: Vec::new(),
            else_lanes: Vec::new(),
            evicted: Vec::new(),
            lane_regs: Vec::new(),
            lane_globals: Vec::new(),
        }
    }

    /// Whether batches stay lanewise to the end (`false` means the entry
    /// function contains calls, so every wave hands its lanes to the
    /// scalar resume path at the first `call` — correct, but with nothing
    /// left to amortize; [`fp_runtime::KernelPolicy::Auto`] picks the
    /// plain interpreter session for such modules).
    pub fn is_lanewise(&self) -> bool {
        self.lanewise
    }
}

impl BatchExecutor for KernelExecutor<'_> {
    fn execute_one(&mut self, input: &[f64], observer: &mut dyn Observer) -> Option<f64> {
        run_session_one(self.program, &mut self.scalar, input, observer)
    }

    fn execute_many(
        &mut self,
        inputs: &[Vec<f64>],
        observers: &mut [&mut dyn Observer],
        results: &mut Vec<Option<f64>>,
    ) {
        assert_eq!(
            inputs.len(),
            observers.len(),
            "one observer is required per batch input"
        );
        results.clear();
        results.resize(inputs.len(), None);
        let mut offset = 0;
        while offset < inputs.len() {
            let width = WAVE_LANES.min(inputs.len() - offset);
            let end = offset + width;
            let Self {
                program,
                regs,
                globals,
                active,
                then_lanes,
                else_lanes,
                evicted,
                lane_regs,
                lane_globals,
                ..
            } = self;
            run_wave(
                program,
                WaveScratch {
                    regs,
                    globals,
                    active,
                    then_lanes,
                    else_lanes,
                    evicted,
                    lane_regs,
                    lane_globals,
                },
                &inputs[offset..end],
                &mut observers[offset..end],
                &mut results[offset..end],
            );
            offset = end;
        }
    }
}

impl std::fmt::Debug for KernelExecutor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelExecutor")
            .field("lanewise", &self.lanewise)
            .finish_non_exhaustive()
    }
}

/// The session-owned scratch buffers a wave runs in.
struct WaveScratch<'s> {
    regs: &'s mut Vec<f64>,
    globals: &'s mut Vec<f64>,
    active: &'s mut Vec<usize>,
    then_lanes: &'s mut Vec<usize>,
    else_lanes: &'s mut Vec<usize>,
    evicted: &'s mut Vec<usize>,
    lane_regs: &'s mut Vec<f64>,
    lane_globals: &'s mut Vec<f64>,
}

/// One shared fuel/cancellation tick for the whole lockstep wave; returns
/// `true` when the wave must abort (out of fuel, or cancellation observed
/// at the same poll points as the scalar interpreter's
/// [`ExecState::tick`]). All lockstep lanes have consumed exactly the same
/// fuel, so one counter stands in for all of them.
fn wave_tick(fuel: &mut u64, cancel: &CancelToken) -> bool {
    if *fuel == 0 {
        return true;
    }
    *fuel -= 1;
    fuel.is_multiple_of(CANCEL_POLL_INTERVAL) && cancel.is_cancelled()
}

/// Copies one lane's registers and globals out of the SoA files into the
/// session's recycled scratch buffers, for the scalar resume path.
fn extract_lane_into(
    regs: &[f64],
    globals: &[f64],
    lanes: usize,
    lane: usize,
    lane_regs: &mut Vec<f64>,
    lane_globals: &mut Vec<f64>,
) {
    lane_regs.clear();
    lane_regs.extend((0..regs.len() / lanes).map(|r| regs[r * lanes + lane]));
    lane_globals.clear();
    lane_globals.extend((0..globals.len() / lanes).map(|g| globals[g * lanes + lane]));
}

/// Finishes one lane on the scalar interpreter from its exact wave state:
/// the continuation is bit-identical to having interpreted the lane from
/// scratch (same registers, globals, fuel and probe context). The scratch
/// buffers are borrowed for the resume and handed back afterwards.
#[allow(clippy::too_many_arguments)]
fn resume_lane(
    program: &ModuleProgram,
    fuel: u64,
    lane_regs: &mut [f64],
    lane_globals: &mut Vec<f64>,
    input: &[f64],
    ctx: &mut Ctx<'_>,
    block: BlockId,
    inst: usize,
) -> Option<f64> {
    let mut state = ExecState::for_resume(
        program.interpreter(),
        program.module(),
        fuel,
        std::mem::take(lane_globals),
    );
    let result = Interpreter::exec_in_frame(
        &mut state,
        program.entry(),
        lane_regs,
        input,
        ctx,
        0,
        block,
        inst,
    )
    .ok()
    .flatten();
    *lane_globals = state.into_globals();
    result
}

/// Executes up to [`WAVE_LANES`] inputs in lockstep over the entry
/// function, writing one result per lane.
fn run_wave(
    program: &ModuleProgram,
    scratch: WaveScratch<'_>,
    inputs: &[Vec<f64>],
    observers: &mut [&mut dyn Observer],
    results: &mut [Option<f64>],
) {
    let module = program.module();
    let interpreter = program.interpreter();
    let function = module.function(program.entry());
    let lanes = inputs.len();
    let WaveScratch {
        regs,
        globals,
        active,
        then_lanes,
        else_lanes,
        evicted,
        lane_regs,
        lane_globals,
    } = scratch;

    // Each input gets its own probe context over its own observer, exactly
    // like one scalar execution per input.
    let mut ctxs: Vec<Ctx<'_>> = observers.iter_mut().map(|o| Ctx::new(&mut **o)).collect();

    active.clear();
    for (lane, input) in inputs.iter().enumerate() {
        if input.len() == function.num_params {
            active.push(lane);
        }
        // Arity mismatches keep their `None` result without reporting any
        // event, matching the scalar session's pre-execution check.
    }

    regs.clear();
    regs.resize(function.num_regs * lanes, 0.0);
    globals.clear();
    globals.reserve(module.globals.len() * lanes);
    for g in &module.globals {
        for _ in 0..lanes {
            globals.push(g.init);
        }
    }

    let mut fuel = interpreter.fuel;
    let cancel = &interpreter.cancel;
    let mut block = function.entry();

    /// One lane leaves the wave: copy its state out of the SoA files and
    /// finish it on the scalar interpreter from `(resume_block, resume_inst)`.
    macro_rules! leave_wave {
        ($lane:expr, $resume_block:expr, $resume_inst:expr) => {{
            let lane = $lane;
            extract_lane_into(regs, globals, lanes, lane, lane_regs, lane_globals);
            results[lane] = resume_lane(
                program,
                fuel,
                lane_regs,
                lane_globals,
                &inputs[lane],
                &mut ctxs[lane],
                $resume_block,
                $resume_inst,
            );
        }};
    }

    /// The sited-op protocol shared by the `Bin` and `Un` arms: apply the
    /// op per lane (`$apply` maps a lane index to its value), report the
    /// event, store the result, and evict lanes whose observer requested a
    /// stop to the scalar resume path at the *next* instruction — the
    /// scalar interpreter's stop-at-next-instruction (and
    /// run-the-terminator) behavior.
    macro_rules! sited_op {
        ($site:expr, $event:expr, $dst:expr, $idx:expr, $apply:expr) => {{
            evicted.clear();
            for &lane in active.iter() {
                let v = ($apply)(lane);
                ctxs[lane].op($site.0, $event, v);
                regs[$dst.0 * lanes + lane] = v;
                if ctxs[lane].stopped() {
                    evicted.push(lane);
                }
            }
            if !evicted.is_empty() {
                for i in 0..evicted.len() {
                    leave_wave!(evicted[i], block, $idx + 1);
                }
                active.retain(|l| !evicted.contains(l));
            }
        }};
    }

    loop {
        let b = function.block(block);
        for (idx, inst) in b.insts.iter().enumerate() {
            if active.is_empty() {
                return;
            }
            if matches!(inst, Inst::Call { .. }) {
                // Calls run per lane on the scalar interpreter. Hand every
                // remaining lane to the resume path *before* charging the
                // instruction — the scalar loop charges it itself.
                for &lane in active.iter() {
                    leave_wave!(lane, block, idx);
                }
                active.clear();
                return;
            }
            if wave_tick(&mut fuel, cancel) {
                // Out of fuel or cancelled: every lockstep lane fails at
                // the same instruction, like the scalar interpreter would.
                for &lane in active.iter() {
                    results[lane] = None;
                }
                active.clear();
                return;
            }
            match inst {
                Inst::Const { dst, value } => {
                    for &lane in active.iter() {
                        regs[dst.0 * lanes + lane] = *value;
                    }
                }
                Inst::Copy { dst, src } => {
                    for &lane in active.iter() {
                        regs[dst.0 * lanes + lane] = regs[src.0 * lanes + lane];
                    }
                }
                Inst::Param { dst, index } => {
                    for &lane in active.iter() {
                        regs[dst.0 * lanes + lane] = inputs[lane][*index];
                    }
                }
                Inst::Bin {
                    dst,
                    op,
                    lhs,
                    rhs,
                    site,
                } => match site {
                    None => {
                        for &lane in active.iter() {
                            regs[dst.0 * lanes + lane] =
                                op.apply(regs[lhs.0 * lanes + lane], regs[rhs.0 * lanes + lane]);
                        }
                    }
                    Some(s) => sited_op!(s, op.event_kind(), dst, idx, |lane: usize| op
                        .apply(regs[lhs.0 * lanes + lane], regs[rhs.0 * lanes + lane])),
                },
                Inst::Un { dst, op, arg, site } => match site {
                    None => {
                        for &lane in active.iter() {
                            regs[dst.0 * lanes + lane] = op.apply(regs[arg.0 * lanes + lane]);
                        }
                    }
                    Some(s) => sited_op!(s, op.event_kind(), dst, idx, |lane: usize| op
                        .apply(regs[arg.0 * lanes + lane])),
                },
                Inst::Cmp { dst, cmp, lhs, rhs } => {
                    for &lane in active.iter() {
                        regs[dst.0 * lanes + lane] =
                            if cmp.eval(regs[lhs.0 * lanes + lane], regs[rhs.0 * lanes + lane]) {
                                1.0
                            } else {
                                0.0
                            };
                    }
                }
                Inst::Select {
                    dst,
                    cond,
                    if_true,
                    if_false,
                } => {
                    for &lane in active.iter() {
                        regs[dst.0 * lanes + lane] = if regs[cond.0 * lanes + lane] != 0.0 {
                            regs[if_true.0 * lanes + lane]
                        } else {
                            regs[if_false.0 * lanes + lane]
                        };
                    }
                }
                Inst::Call { .. } => unreachable!("calls are evicted before dispatch"),
                Inst::LoadGlobal { dst, global } => {
                    for &lane in active.iter() {
                        regs[dst.0 * lanes + lane] = globals[global.0 * lanes + lane];
                    }
                }
                Inst::StoreGlobal { global, src } => {
                    for &lane in active.iter() {
                        globals[global.0 * lanes + lane] = regs[src.0 * lanes + lane];
                    }
                }
            }
        }
        if active.is_empty() {
            return;
        }
        if wave_tick(&mut fuel, cancel) {
            for &lane in active.iter() {
                results[lane] = None;
            }
            active.clear();
            return;
        }
        match &b.term {
            Terminator::Jump(next) => block = *next,
            Terminator::Return(val) => {
                for &lane in active.iter() {
                    results[lane] = val.map(|r| regs[r.0 * lanes + lane]);
                }
                active.clear();
                return;
            }
            Terminator::CondBr {
                site,
                lhs,
                cmp,
                rhs,
                then_bb,
                else_bb,
            } => {
                then_lanes.clear();
                else_lanes.clear();
                for &lane in active.iter() {
                    let l = regs[lhs.0 * lanes + lane];
                    let r = regs[rhs.0 * lanes + lane];
                    let taken = if let Some(s) = site {
                        ctxs[lane].branch(s.0, l, *cmp, r)
                    } else {
                        cmp.eval(l, r)
                    };
                    if ctxs[lane].stopped() {
                        // The scalar interpreter returns no result right
                        // after a stop-requesting branch event.
                        results[lane] = None;
                    } else if taken {
                        then_lanes.push(lane);
                    } else {
                        else_lanes.push(lane);
                    }
                }
                // The wave follows the better-populated side (ties go to
                // the then-side); the other side's lanes finish scalar.
                let (next, stay, leave_bb, leave) = if then_lanes.len() >= else_lanes.len() {
                    (*then_bb, &mut *then_lanes, *else_bb, &mut *else_lanes)
                } else {
                    (*else_bb, &mut *else_lanes, *then_bb, &mut *then_lanes)
                };
                for &lane in leave.iter() {
                    leave_wave!(lane, leave_bb, 0);
                }
                std::mem::swap(active, stay);
                block = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::ir::{BinOp, UnOp};
    use fp_runtime::{
        Analyzable, BranchEvent, Cmp, KernelPolicy, NullObserver, OpEvent, ProbeControl,
        TraceRecorder,
    };

    /// `f(x) { if (x <= 1) x = x + 1; return x * x; }` — one divergent
    /// branch, sited ops and branch.
    fn square_gate() -> ModuleProgram {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.function("f", 1);
        let x = f.param(0);
        let one = f.constant(1.0);
        let xvar = f.copy(x);
        let then_bb = f.new_block();
        let join = f.new_block();
        f.cond_br(Some(0), xvar, Cmp::Le, one, then_bb, join);
        f.switch_to(then_bb);
        let inc = f.bin(BinOp::Add, xvar, one, Some(0));
        f.assign(xvar, inc);
        f.jump(join);
        f.switch_to(join);
        let sq = f.bin(BinOp::Mul, xvar, xvar, Some(1));
        f.ret(Some(sq));
        f.finish();
        ModuleProgram::new(mb.build(), "f").expect("entry exists")
    }

    /// A straight-line module mixing every lanewise opcode except `call`.
    fn straightline() -> ModuleProgram {
        let mut mb = ModuleBuilder::new();
        let w = mb.global("w", 1.0);
        let mut f = mb.function("f", 2);
        let x = f.param(0);
        let y = f.param(1);
        let s = f.bin(BinOp::Add, x, y, Some(0));
        let d = f.bin(BinOp::Sub, x, y, None);
        let p = f.bin(BinOp::Mul, s, d, Some(1));
        let a = f.un(UnOp::Abs, p, Some(2));
        let r = f.un(UnOp::Sqrt, a, None);
        let cmp = f.cmp(Cmp::Lt, r, s);
        let sel = f.select(cmp, r, a);
        let wv = f.load_global(w);
        let prod = f.bin(BinOp::Mul, wv, sel, None);
        f.store_global(w, prod);
        let out = f.load_global(w);
        f.ret(Some(out));
        f.finish();
        ModuleProgram::new(mb.build(), "f").expect("entry exists")
    }

    fn lane_inputs(n: usize, dim: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..dim)
                    .map(|d| (i as f64 * 0.37 - 3.0) * (d as f64 + 1.0))
                    .collect()
            })
            .collect()
    }

    fn assert_kernel_matches_scalar(program: &ModuleProgram, inputs: &[Vec<f64>]) {
        let mut session = program.batch_executor(KernelPolicy::Always);
        let mut kernel_recs: Vec<TraceRecorder> =
            inputs.iter().map(|_| TraceRecorder::new()).collect();
        let mut refs: Vec<&mut dyn Observer> = kernel_recs
            .iter_mut()
            .map(|o| o as &mut dyn Observer)
            .collect();
        let mut results = Vec::new();
        session.execute_many(inputs, &mut refs, &mut results);
        for (lane, input) in inputs.iter().enumerate() {
            let mut scalar_rec = TraceRecorder::new();
            let scalar = program.run(input, &mut scalar_rec);
            assert_eq!(
                results[lane].map(f64::to_bits),
                scalar.map(f64::to_bits),
                "lane {lane} ({input:?})"
            );
            assert_eq!(
                kernel_recs[lane].ops().collect::<Vec<_>>(),
                scalar_rec.ops().collect::<Vec<_>>(),
                "op events of lane {lane}"
            );
            assert_eq!(
                kernel_recs[lane].branches().collect::<Vec<_>>(),
                scalar_rec.branches().collect::<Vec<_>>(),
                "branch events of lane {lane}"
            );
        }
    }

    #[test]
    fn straightline_wave_is_bit_identical_to_scalar() {
        let p = straightline();
        assert!(p.kernel_eligible());
        assert_kernel_matches_scalar(&p, &lane_inputs(333, 2));
    }

    #[test]
    fn divergent_wave_is_bit_identical_to_scalar() {
        let p = square_gate();
        assert_kernel_matches_scalar(&p, &lane_inputs(100, 1));
    }

    #[test]
    fn wave_handles_arity_mismatch_lanes() {
        let p = square_gate();
        let mut session = p.batch_executor(KernelPolicy::Always);
        let inputs = vec![vec![0.0], vec![1.0, 2.0], vec![3.0]];
        let mut obs: Vec<NullObserver> = inputs.iter().map(|_| NullObserver).collect();
        let mut refs: Vec<&mut dyn Observer> =
            obs.iter_mut().map(|o| o as &mut dyn Observer).collect();
        let mut results = Vec::new();
        session.execute_many(&inputs, &mut refs, &mut results);
        assert_eq!(results, vec![Some(1.0), None, Some(9.0)]);
    }

    #[test]
    fn observer_stop_mid_wave_matches_scalar() {
        // Stop as soon as a sited op produces a value above a threshold:
        // exercises the stop-eviction path (the lane must still traverse
        // the terminator exactly like the scalar interpreter does).
        struct StopAbove(f64);
        impl Observer for StopAbove {
            fn on_op(&mut self, ev: &OpEvent) -> ProbeControl {
                if ev.value > self.0 {
                    ProbeControl::Stop
                } else {
                    ProbeControl::Continue
                }
            }
        }
        let p = square_gate();
        let inputs = lane_inputs(64, 1);
        let mut session = p.batch_executor(KernelPolicy::Always);
        let mut obs: Vec<StopAbove> = inputs.iter().map(|_| StopAbove(4.0)).collect();
        let mut refs: Vec<&mut dyn Observer> =
            obs.iter_mut().map(|o| o as &mut dyn Observer).collect();
        let mut results = Vec::new();
        session.execute_many(&inputs, &mut refs, &mut results);
        for (lane, input) in inputs.iter().enumerate() {
            let mut scalar_obs = StopAbove(4.0);
            let scalar = p.run(input, &mut scalar_obs);
            assert_eq!(results[lane], scalar, "lane {lane} ({input:?})");
        }
    }

    #[test]
    fn branch_observer_stop_matches_scalar() {
        struct StopAtBranch;
        impl Observer for StopAtBranch {
            fn on_branch(&mut self, _ev: &BranchEvent) -> ProbeControl {
                ProbeControl::Stop
            }
        }
        let p = square_gate();
        let inputs = lane_inputs(16, 1);
        let mut session = p.batch_executor(KernelPolicy::Always);
        let mut obs: Vec<StopAtBranch> = inputs.iter().map(|_| StopAtBranch).collect();
        let mut refs: Vec<&mut dyn Observer> =
            obs.iter_mut().map(|o| o as &mut dyn Observer).collect();
        let mut results = Vec::new();
        session.execute_many(&inputs, &mut refs, &mut results);
        for (lane, input) in inputs.iter().enumerate() {
            assert_eq!(results[lane], p.run(input, &mut StopAtBranch), "lane {lane}");
        }
    }

    #[test]
    fn modules_with_calls_fall_back_per_lane_and_match_scalar() {
        // main(x) calls callee(x) which scales a global: under `Always`
        // the kernel evicts every lane at the call; results and events
        // still match the scalar interpreter bit for bit.
        let mut mb = ModuleBuilder::new();
        let w = mb.global("w", 1.0);
        let mut callee = mb.function("callee", 1);
        let x = callee.param(0);
        let a = callee.un(UnOp::Abs, x, Some(0));
        let wv = callee.load_global(w);
        let prod = callee.bin(BinOp::Mul, wv, a, Some(1));
        callee.store_global(w, prod);
        callee.ret(Some(x));
        let callee_id = callee.finish();
        let mut main = mb.function("main", 1);
        let x = main.param(0);
        let one = main.constant(1.0);
        let scaled = main.bin(BinOp::Mul, x, one, None);
        let _ = main.call(callee_id, vec![scaled]);
        let back = main.load_global(w);
        main.ret(Some(back));
        main.finish();
        let p = ModuleProgram::new(mb.build(), "main").expect("entry exists");
        assert!(!p.kernel_eligible());
        assert_kernel_matches_scalar(&p, &lane_inputs(40, 1));
    }

    #[test]
    fn precancelled_token_stops_every_lane() {
        // A countdown loop long enough to reach a cancellation poll (the
        // wave polls at the same fuel points as the scalar interpreter).
        let mut mb = ModuleBuilder::new();
        let mut f = mb.function("count", 1);
        let x = f.param(0);
        let zero = f.constant(0.0);
        let one = f.constant(1.0);
        let i = f.copy(x);
        let header = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.jump(header);
        f.switch_to(header);
        f.cond_br(None, i, Cmp::Gt, zero, body, exit);
        f.switch_to(body);
        let ni = f.bin(BinOp::Sub, i, one, None);
        f.assign(i, ni);
        f.jump(header);
        f.switch_to(exit);
        f.ret(Some(i));
        f.finish();
        let token = CancelToken::new();
        token.cancel();
        let p = ModuleProgram::new(mb.build(), "count")
            .expect("entry exists")
            .with_cancel(token);
        let mut session = p.batch_executor(KernelPolicy::Always);
        let inputs: Vec<Vec<f64>> = (0..8).map(|_| vec![100_000.0]).collect();
        let mut obs: Vec<NullObserver> = inputs.iter().map(|_| NullObserver).collect();
        let mut refs: Vec<&mut dyn Observer> =
            obs.iter_mut().map(|o| o as &mut dyn Observer).collect();
        let mut results = Vec::new();
        session.execute_many(&inputs, &mut refs, &mut results);
        assert!(results.iter().all(Option::is_none));
        // Scalar agrees: a cancelled execution reports no result.
        assert_eq!(p.run(&[100_000.0], &mut NullObserver), None);
    }

    #[test]
    fn fuel_exhaustion_matches_scalar_per_lane() {
        // A loop whose iteration count depends on the input: lanes with
        // big inputs burn more fuel. Divergent lanes carry their exact
        // remaining fuel into the scalar resume, so out-of-fuel lanes are
        // the same set under both backends.
        let mut mb = ModuleBuilder::new();
        let mut f = mb.function("count", 1);
        let x = f.param(0);
        let zero = f.constant(0.0);
        let one = f.constant(1.0);
        let i = f.copy(x);
        let header = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.jump(header);
        f.switch_to(header);
        f.cond_br(None, i, Cmp::Gt, zero, body, exit);
        f.switch_to(body);
        let ni = f.bin(BinOp::Sub, i, one, None);
        f.assign(i, ni);
        f.jump(header);
        f.switch_to(exit);
        f.ret(Some(i));
        f.finish();
        let p = ModuleProgram::new(mb.build(), "count")
            .expect("entry exists")
            .with_interpreter(Interpreter::default().with_fuel(300));
        let inputs: Vec<Vec<f64>> = (0..24).map(|i| vec![(i * 7) as f64]).collect();
        let mut session = p.batch_executor(KernelPolicy::Always);
        let mut obs: Vec<NullObserver> = inputs.iter().map(|_| NullObserver).collect();
        let mut refs: Vec<&mut dyn Observer> =
            obs.iter_mut().map(|o| o as &mut dyn Observer).collect();
        let mut results = Vec::new();
        session.execute_many(&inputs, &mut refs, &mut results);
        for (lane, input) in inputs.iter().enumerate() {
            assert_eq!(
                results[lane],
                p.run(input, &mut NullObserver),
                "lane {lane} ({input:?})"
            );
        }
    }

    #[test]
    fn execute_one_matches_the_interpreter() {
        let p = square_gate();
        let mut session = KernelExecutor::new(&p);
        assert_eq!(session.execute_one(&[3.0], &mut NullObserver), Some(9.0));
        assert_eq!(session.execute_one(&[0.0], &mut NullObserver), Some(1.0));
        assert_eq!(session.execute_one(&[1.0, 2.0], &mut NullObserver), None);
        assert!(format!("{session:?}").contains("lanewise"));
    }

    #[test]
    fn waves_chunk_batches_larger_than_wave_lanes() {
        let p = straightline();
        assert_kernel_matches_scalar(&p, &lane_inputs(WAVE_LANES * 2 + 17, 2));
    }
}
