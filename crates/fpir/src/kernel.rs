//! The lanewise structure-of-arrays kernel backend.
//!
//! The batch seam introduced by the batched-evaluation stack
//! ([`fp_runtime::BatchExecutor`]) lets a program amortize per-execution
//! setup over a whole batch. This module goes one step further and
//! amortizes the *interpretation* itself: [`KernelExecutor`] specializes a
//! module into a lane-parallel kernel that executes one instruction for
//! **all** inputs of a wave before moving to the next instruction, instead
//! of interpreting the whole program once per input.
//!
//! # Layout and execution model
//!
//! The register file is operand-major (structure of arrays): one
//! contiguous run of `lanes` binary64 values per register *slot*, so the
//! per-opcode dispatch (`match inst`) runs once per instruction and the
//! inner loop over lanes is a tight stride-1 sweep — the compute-engine
//! layering of SIMT runtimes (cf. kubecl), scaled down to a CPU
//! interpreter. Registers are mapped to slots by the liveness-compacted
//! [`FrameLayout`] of [`crate::analysis`]: registers that are never
//! simultaneously live share a slot, shrinking the wave's footprint from
//! `num_regs * lanes` to `num_slots * lanes` cells without changing a
//! single bit (compaction is disabled for functions where a register may
//! be read before it is written, preserving the zero-fill semantics).
//! Global cells use the same SoA layout. All lanes of a wave run in
//! lockstep and therefore share a single fuel counter and cancellation
//! poll schedule, which keeps the kernel's out-of-fuel and cancellation
//! behavior bit-identical to interpreting each input on its own.
//!
//! # Calls
//!
//! A call to a *wave-safe* callee (see [`crate::analysis::eligibility`]:
//! non-recursive, existing target, matching arity, transitively wave-safe)
//! stays in lockstep: the wave pushes the caller's SoA frame onto an
//! explicit frame stack, marshals the arguments column-wise and continues
//! at the callee's entry — mirroring the scalar interpreter's call
//! protocol (charge the call instruction, then check the depth limit)
//! tick for tick. A `ret` pops the stack, writes the return column into
//! the caller's destination slot (`NaN` for a bare `ret`, like the scalar
//! `unwrap_or(NAN)`) and resumes after the call. Calls to non-wave-safe
//! callees evict the whole wave to the scalar resume path *at* the call
//! instruction, which charges and executes it exactly as a from-scratch
//! interpretation would.
//!
//! # Divergence and the scalar fallback
//!
//! Lanes leave the lockstep wave in three ways, all handled by resuming
//! the lane on the scalar interpreter from its exact machine state —
//! including the whole stack of suspended wave frames, which the resume
//! unwinds frame by frame (registers, globals, remaining fuel, probe
//! context all carried over):
//!
//! * a **divergent branch** — the wave follows the better-populated side
//!   of a conditional branch; the other side's lanes finish scalar;
//! * an **observer stop** — a probe returned [`ProbeControl::Stop`]
//!   (e.g. the overflow weak distance found its overflow); the scalar
//!   resume reproduces the interpreter's stop-at-next-instruction (and
//!   run-the-terminator) behavior exactly;
//! * a **non-wave-safe call** — recursion or an ill-formed call target
//!   executes per lane on the scalar interpreter (reachable only under
//!   [`KernelPolicy::Always`]; [`KernelPolicy::Auto`] never selects the
//!   kernel for such modules).
//!
//! Because each input owns its observer and IEEE lane operations are
//! deterministic, lockstep specialization preserves every bit: the
//! values, the per-input event streams and the stop/cancellation behavior
//! are all identical to [`Interpreter::execute`] — the workspace-level
//! `kernel_equivalence` proptests pin this down across every weak-distance
//! kind.
//!
//! [`ProbeControl::Stop`]: fp_runtime::ProbeControl::Stop
//! [`KernelPolicy::Always`]: fp_runtime::KernelPolicy::Always
//! [`KernelPolicy::Auto`]: fp_runtime::KernelPolicy::Auto
//! [`Interpreter::execute`]: crate::Interpreter::execute

use crate::analysis::FrameLayout;
use crate::interp::{run_session_one, ExecState, Interpreter, ModuleProgram, CANCEL_POLL_INTERVAL};
use crate::ir::{BlockId, FuncId, Inst, Module, Reg, Terminator};
use fp_runtime::{BatchExecutor, CancelToken, Ctx, Observer};

/// Maximum number of lanes executed in one lockstep wave. Bounds the SoA
/// register file to `num_slots * WAVE_LANES` values while amortizing the
/// per-instruction dispatch over enough lanes to make it disappear.
pub const WAVE_LANES: usize = 256;

/// Legacy conservative check: whether `entry` of `module` is call-free.
///
/// This used to be the eligibility test behind
/// [`fp_runtime::KernelPolicy::Auto`]; the structural wave-safety pass of
/// [`crate::analysis::eligibility`] (see
/// [`ModuleProgram::kernel_eligible`]) has replaced it — calls to
/// non-recursive, arity-correct callees now run in lockstep. A call-free
/// entry is trivially wave-safe, so this remains a sound (if needlessly
/// strict) approximation for callers that only have a bare [`Module`].
pub fn supports_lanewise(module: &Module, entry: FuncId) -> bool {
    module
        .function(entry)
        .blocks
        .iter()
        .all(|b| !b.insts.iter().any(|i| matches!(i, Inst::Call { .. })))
}

/// A suspended caller frame of the lockstep wave: everything needed to
/// resume the caller when the callee returns (or to unwind the lane on the
/// scalar interpreter after an eviction).
struct WaveFrame {
    /// The suspended function.
    func: FuncId,
    /// Destination register of the call (in `func`'s numbering).
    ret_dst: Reg,
    /// Block containing the call instruction.
    block: BlockId,
    /// Index of the call instruction in that block.
    inst: usize,
    /// The caller's SoA register file (laid out by `func`'s
    /// [`FrameLayout`]).
    regs: Vec<f64>,
    /// The caller's SoA argument file (`num_params * lanes`).
    args: Vec<f64>,
}

/// The lanewise SoA kernel session handed out by
/// [`ModuleProgram`]'s [`fp_runtime::Analyzable::batch_executor`] under a
/// kernel-selecting policy.
///
/// Scratch buffers (register file, global file, lane masks, the wave
/// frame stack) are owned by the session and reused across waves, so a
/// long batch allocates a near-constant amount of memory.
pub struct KernelExecutor<'a> {
    program: &'a ModuleProgram,
    /// Whether the entry function is wave-safe
    /// ([`ModuleProgram::kernel_eligible`]): when it is not, waves evict
    /// all lanes at the first non-wave-safe `call`, so batches effectively
    /// run on the scalar resume path.
    lanewise: bool,
    /// Scalar interpreter session backing [`BatchExecutor::execute_one`].
    scalar: ExecState<'a>,
    /// SoA register file of the current frame: `regs[slot * lanes + lane]`.
    regs: Vec<f64>,
    /// SoA argument file of the current frame: `args[i * lanes + lane]`.
    args: Vec<f64>,
    /// SoA global cells: `globals[g * lanes + lane]`.
    globals: Vec<f64>,
    /// Suspended caller frames (lockstep calls in flight).
    frames: Vec<WaveFrame>,
    /// Lanes still executing in lockstep.
    active: Vec<usize>,
    then_lanes: Vec<usize>,
    else_lanes: Vec<usize>,
    evicted: Vec<usize>,
    /// One lane's registers/arguments/globals, recycled across scalar
    /// resumes so an eviction allocates nothing (amortized).
    lane_regs: Vec<f64>,
    lane_args: Vec<f64>,
    lane_globals: Vec<f64>,
}

impl<'a> KernelExecutor<'a> {
    /// Creates a kernel session over `program`.
    pub fn new(program: &'a ModuleProgram) -> Self {
        KernelExecutor {
            lanewise: program.kernel_eligible(),
            scalar: ExecState::new(program.interpreter(), program.module()),
            program,
            regs: Vec::new(),
            args: Vec::new(),
            globals: Vec::new(),
            frames: Vec::new(),
            active: Vec::new(),
            then_lanes: Vec::new(),
            else_lanes: Vec::new(),
            evicted: Vec::new(),
            lane_regs: Vec::new(),
            lane_args: Vec::new(),
            lane_globals: Vec::new(),
        }
    }

    /// Whether batches stay lanewise to the end (`false` means the entry
    /// function is not wave-safe — recursion or an ill-formed call — so
    /// every wave hands its lanes to the scalar resume path at the first
    /// such call; [`fp_runtime::KernelPolicy::Auto`] picks the plain
    /// interpreter session for such modules).
    pub fn is_lanewise(&self) -> bool {
        self.lanewise
    }
}

impl BatchExecutor for KernelExecutor<'_> {
    fn execute_one(&mut self, input: &[f64], observer: &mut dyn Observer) -> Option<f64> {
        run_session_one(self.program, &mut self.scalar, input, observer)
    }

    fn execute_many(
        &mut self,
        inputs: &[Vec<f64>],
        observers: &mut [&mut dyn Observer],
        results: &mut Vec<Option<f64>>,
    ) {
        assert_eq!(
            inputs.len(),
            observers.len(),
            "one observer is required per batch input"
        );
        results.clear();
        results.resize(inputs.len(), None);
        let mut offset = 0;
        while offset < inputs.len() {
            let width = WAVE_LANES.min(inputs.len() - offset);
            let end = offset + width;
            let Self {
                program,
                regs,
                args,
                globals,
                frames,
                active,
                then_lanes,
                else_lanes,
                evicted,
                lane_regs,
                lane_args,
                lane_globals,
                ..
            } = self;
            run_wave(
                program,
                WaveScratch {
                    regs,
                    args,
                    globals,
                    frames,
                    active,
                    then_lanes,
                    else_lanes,
                    evicted,
                    lane_regs,
                    lane_args,
                    lane_globals,
                },
                &inputs[offset..end],
                &mut observers[offset..end],
                &mut results[offset..end],
            );
            offset = end;
        }
    }
}

impl std::fmt::Debug for KernelExecutor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelExecutor")
            .field("lanewise", &self.lanewise)
            .finish_non_exhaustive()
    }
}

/// The session-owned scratch buffers a wave runs in.
struct WaveScratch<'s> {
    regs: &'s mut Vec<f64>,
    args: &'s mut Vec<f64>,
    globals: &'s mut Vec<f64>,
    frames: &'s mut Vec<WaveFrame>,
    active: &'s mut Vec<usize>,
    then_lanes: &'s mut Vec<usize>,
    else_lanes: &'s mut Vec<usize>,
    evicted: &'s mut Vec<usize>,
    lane_regs: &'s mut Vec<f64>,
    lane_args: &'s mut Vec<f64>,
    lane_globals: &'s mut Vec<f64>,
}

/// One shared fuel/cancellation tick for the whole lockstep wave; returns
/// `true` when the wave must abort (out of fuel, or cancellation observed
/// at the same poll points as the scalar interpreter's
/// [`ExecState::tick`]). All lockstep lanes have consumed exactly the same
/// fuel, so one counter stands in for all of them.
fn wave_tick(fuel: &mut u64, cancel: &CancelToken) -> bool {
    if *fuel == 0 {
        return true;
    }
    *fuel -= 1;
    fuel.is_multiple_of(CANCEL_POLL_INTERVAL) && cancel.is_cancelled()
}

/// Finishes one lane on the scalar interpreter from its exact wave state,
/// unwinding the whole stack of suspended wave frames: the innermost frame
/// resumes at `(block, inst)`, and each suspended caller receives the
/// callee's return value in its destination register before resuming after
/// its call — bit-identical to having interpreted the lane from scratch
/// (same registers, globals, fuel and probe context). One [`ExecState`]
/// carries the remaining fuel across every unwound frame.
#[allow(clippy::too_many_arguments)]
fn resume_lane_stack(
    program: &ModuleProgram,
    layouts: &[FrameLayout],
    frames: &[WaveFrame],
    cur_func: FuncId,
    regs: &[f64],
    args: &[f64],
    globals: &[f64],
    lanes: usize,
    lane: usize,
    fuel: u64,
    ctx: &mut Ctx<'_>,
    block: BlockId,
    inst: usize,
    lane_regs: &mut Vec<f64>,
    lane_args: &mut Vec<f64>,
    lane_globals: &mut Vec<f64>,
) -> Option<f64> {
    let module = program.module();
    lane_globals.clear();
    lane_globals.extend((0..module.globals.len()).map(|g| globals[g * lanes + lane]));
    let mut state = ExecState::for_resume(
        program.interpreter(),
        module,
        fuel,
        std::mem::take(lane_globals),
    );

    // Materialize one lane of an SoA frame as the full scalar register
    // file: slot-sharing is invisible here because a dead register's stale
    // cell is never read before the scalar code rewrites it (the layout is
    // only compacted under that proof).
    fn extract(
        layout: &FrameLayout,
        soa: &[f64],
        num_regs: usize,
        lanes: usize,
        lane: usize,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.extend((0..num_regs).map(|r| soa[layout.slot[r] * lanes + lane]));
    }
    fn extract_args(soa: &[f64], num_params: usize, lanes: usize, lane: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..num_params).map(|i| soa[i * lanes + lane]));
    }

    let function = module.function(cur_func);
    extract(
        &layouts[cur_func.0],
        regs,
        function.num_regs,
        lanes,
        lane,
        lane_regs,
    );
    extract_args(args, function.num_params, lanes, lane, lane_args);
    let mut val = Interpreter::exec_in_frame(
        &mut state,
        cur_func,
        lane_regs,
        lane_args,
        ctx,
        frames.len(),
        block,
        inst,
    );
    for (depth, frame) in frames.iter().enumerate().rev() {
        let ret = match &val {
            Err(_) => break,
            Ok(v) => v.unwrap_or(f64::NAN),
        };
        let function = module.function(frame.func);
        extract(
            &layouts[frame.func.0],
            &frame.regs,
            function.num_regs,
            lanes,
            lane,
            lane_regs,
        );
        lane_regs[frame.ret_dst.0] = ret;
        if ctx.stopped() {
            // The scalar cascade returns `None` from every suspended caller
            // once the observer has stopped; nothing further is observable.
            val = Ok(None);
            break;
        }
        extract_args(&frame.args, function.num_params, lanes, lane, lane_args);
        val = Interpreter::exec_in_frame(
            &mut state,
            frame.func,
            lane_regs,
            lane_args,
            ctx,
            depth,
            frame.block,
            frame.inst + 1,
        );
    }
    *lane_globals = state.into_globals();
    val.ok().flatten()
}

/// Executes up to [`WAVE_LANES`] inputs in lockstep over the entry
/// function (and, via the wave frame stack, its wave-safe callees),
/// writing one result per lane.
fn run_wave(
    program: &ModuleProgram,
    scratch: WaveScratch<'_>,
    inputs: &[Vec<f64>],
    observers: &mut [&mut dyn Observer],
    results: &mut [Option<f64>],
) {
    let module = program.module();
    let interpreter = program.interpreter();
    let info = program.static_info();
    let layouts = &info.analysis.layouts;
    let wave_safe = &info.analysis.wave_safe;
    let lanes = inputs.len();
    let WaveScratch {
        regs,
        args,
        globals,
        frames,
        active,
        then_lanes,
        else_lanes,
        evicted,
        lane_regs,
        lane_args,
        lane_globals,
    } = scratch;

    let mut cur_func = program.entry();
    let mut function = module.function(cur_func);
    let mut layout = &layouts[cur_func.0];

    // Each input gets its own probe context over its own observer, exactly
    // like one scalar execution per input.
    let mut ctxs: Vec<Ctx<'_>> = observers.iter_mut().map(|o| Ctx::new(&mut **o)).collect();

    active.clear();
    for (lane, input) in inputs.iter().enumerate() {
        if input.len() == function.num_params {
            active.push(lane);
        }
        // Arity mismatches keep their `None` result without reporting any
        // event, matching the scalar session's pre-execution check.
    }

    regs.clear();
    regs.resize(layout.num_slots * lanes, 0.0);
    args.clear();
    args.resize(function.num_params * lanes, 0.0);
    for &lane in active.iter() {
        for (i, &v) in inputs[lane].iter().enumerate() {
            args[i * lanes + lane] = v;
        }
    }
    frames.clear();
    globals.clear();
    globals.reserve(module.globals.len() * lanes);
    for g in &module.globals {
        for _ in 0..lanes {
            globals.push(g.init);
        }
    }

    let mut fuel = interpreter.fuel;
    let cancel = &interpreter.cancel;
    let mut block = function.entry();
    let mut first = 0usize;

    /// One lane leaves the wave: resume it on the scalar interpreter from
    /// `(resume_block, resume_inst)` of the current frame, unwinding every
    /// suspended wave frame behind it.
    macro_rules! leave_wave {
        ($lane:expr, $resume_block:expr, $resume_inst:expr) => {{
            let lane = $lane;
            results[lane] = resume_lane_stack(
                program,
                layouts,
                frames,
                cur_func,
                regs,
                args,
                globals,
                lanes,
                lane,
                fuel,
                &mut ctxs[lane],
                $resume_block,
                $resume_inst,
                lane_regs,
                lane_args,
                lane_globals,
            );
        }};
    }

    /// The sited-op protocol shared by the `Bin` and `Un` arms: apply the
    /// op per lane (`$apply` maps a lane index to its value), report the
    /// event, store the result, and evict lanes whose observer requested a
    /// stop to the scalar resume path at the *next* instruction — the
    /// scalar interpreter's stop-at-next-instruction (and
    /// run-the-terminator) behavior.
    macro_rules! sited_op {
        ($site:expr, $event:expr, $dst:expr, $idx:expr, $apply:expr) => {{
            let dcol = layout.slot[$dst.0] * lanes;
            evicted.clear();
            for &lane in active.iter() {
                let v = ($apply)(lane);
                ctxs[lane].op($site.0, $event, v);
                regs[dcol + lane] = v;
                if ctxs[lane].stopped() {
                    evicted.push(lane);
                }
            }
            if !evicted.is_empty() {
                for i in 0..evicted.len() {
                    leave_wave!(evicted[i], block, $idx + 1);
                }
                active.retain(|l| !evicted.contains(l));
            }
        }};
    }

    'blocks: loop {
        let b = function.block(block);
        let start = first.min(b.insts.len());
        first = 0;
        for idx in start..b.insts.len() {
            let inst = &b.insts[idx];
            if active.is_empty() {
                return;
            }
            if let Inst::Call { func: callee, .. } = inst {
                if !wave_safe.get(callee.0).copied().unwrap_or(false) {
                    // Non-wave-safe callee (recursion, ill-formed call):
                    // hand every remaining lane to the resume path *before*
                    // charging the instruction — the scalar loop charges it
                    // itself.
                    for &lane in active.iter() {
                        leave_wave!(lane, block, idx);
                    }
                    active.clear();
                    return;
                }
            }
            if wave_tick(&mut fuel, cancel) {
                // Out of fuel or cancelled: every lockstep lane fails at
                // the same instruction, like the scalar interpreter would.
                for &lane in active.iter() {
                    results[lane] = None;
                }
                active.clear();
                return;
            }
            match inst {
                Inst::Const { dst, value } => {
                    let dcol = layout.slot[dst.0] * lanes;
                    for &lane in active.iter() {
                        regs[dcol + lane] = *value;
                    }
                }
                Inst::Copy { dst, src } => {
                    let (dcol, scol) = (layout.slot[dst.0] * lanes, layout.slot[src.0] * lanes);
                    for &lane in active.iter() {
                        regs[dcol + lane] = regs[scol + lane];
                    }
                }
                Inst::Param { dst, index } => {
                    let (dcol, icol) = (layout.slot[dst.0] * lanes, *index * lanes);
                    for &lane in active.iter() {
                        regs[dcol + lane] = args[icol + lane];
                    }
                }
                Inst::Bin {
                    dst,
                    op,
                    lhs,
                    rhs,
                    site,
                } => {
                    let (lcol, rcol) = (layout.slot[lhs.0] * lanes, layout.slot[rhs.0] * lanes);
                    match site {
                        None => {
                            let dcol = layout.slot[dst.0] * lanes;
                            for &lane in active.iter() {
                                regs[dcol + lane] =
                                    op.apply(regs[lcol + lane], regs[rcol + lane]);
                            }
                        }
                        Some(s) => sited_op!(s, op.event_kind(), dst, idx, |lane: usize| op
                            .apply(regs[lcol + lane], regs[rcol + lane])),
                    }
                }
                Inst::Un { dst, op, arg, site } => {
                    let acol = layout.slot[arg.0] * lanes;
                    match site {
                        None => {
                            let dcol = layout.slot[dst.0] * lanes;
                            for &lane in active.iter() {
                                regs[dcol + lane] = op.apply(regs[acol + lane]);
                            }
                        }
                        Some(s) => sited_op!(s, op.event_kind(), dst, idx, |lane: usize| op
                            .apply(regs[acol + lane])),
                    }
                }
                Inst::Cmp { dst, cmp, lhs, rhs } => {
                    let dcol = layout.slot[dst.0] * lanes;
                    let (lcol, rcol) = (layout.slot[lhs.0] * lanes, layout.slot[rhs.0] * lanes);
                    for &lane in active.iter() {
                        regs[dcol + lane] = if cmp.eval(regs[lcol + lane], regs[rcol + lane]) {
                            1.0
                        } else {
                            0.0
                        };
                    }
                }
                Inst::Select {
                    dst,
                    cond,
                    if_true,
                    if_false,
                } => {
                    let dcol = layout.slot[dst.0] * lanes;
                    let ccol = layout.slot[cond.0] * lanes;
                    let (tcol, fcol) = (
                        layout.slot[if_true.0] * lanes,
                        layout.slot[if_false.0] * lanes,
                    );
                    for &lane in active.iter() {
                        regs[dcol + lane] = if regs[ccol + lane] != 0.0 {
                            regs[tcol + lane]
                        } else {
                            regs[fcol + lane]
                        };
                    }
                }
                Inst::Call {
                    dst,
                    func: callee,
                    args: call_args,
                } => {
                    // Lockstep call: the scalar interpreter's exec_function
                    // rejects depth `frames.len() + 1` past the limit — all
                    // lanes fail identically, with the call already charged.
                    if frames.len() + 1 > interpreter.max_call_depth {
                        for &lane in active.iter() {
                            results[lane] = None;
                        }
                        active.clear();
                        return;
                    }
                    let callee_fn = module.function(*callee);
                    let callee_layout = &layouts[callee.0];
                    let mut new_args = vec![0.0; callee_fn.num_params * lanes];
                    for (i, r) in call_args.iter().enumerate() {
                        let scol = layout.slot[r.0] * lanes;
                        for &lane in active.iter() {
                            new_args[i * lanes + lane] = regs[scol + lane];
                        }
                    }
                    // The callee's frame zero-fills like a scalar frame
                    // (observable only under an identity layout, where a
                    // register may be read before any write).
                    let new_regs = vec![0.0; callee_layout.num_slots * lanes];
                    frames.push(WaveFrame {
                        func: cur_func,
                        ret_dst: *dst,
                        block,
                        inst: idx,
                        regs: std::mem::replace(regs, new_regs),
                        args: std::mem::replace(args, new_args),
                    });
                    cur_func = *callee;
                    function = callee_fn;
                    layout = callee_layout;
                    block = function.entry();
                    first = 0;
                    continue 'blocks;
                }
                Inst::LoadGlobal { dst, global } => {
                    let (dcol, gcol) = (layout.slot[dst.0] * lanes, global.0 * lanes);
                    for &lane in active.iter() {
                        regs[dcol + lane] = globals[gcol + lane];
                    }
                }
                Inst::StoreGlobal { global, src } => {
                    let (gcol, scol) = (global.0 * lanes, layout.slot[src.0] * lanes);
                    for &lane in active.iter() {
                        globals[gcol + lane] = regs[scol + lane];
                    }
                }
            }
        }
        if active.is_empty() {
            return;
        }
        if wave_tick(&mut fuel, cancel) {
            for &lane in active.iter() {
                results[lane] = None;
            }
            active.clear();
            return;
        }
        match &b.term {
            Terminator::Jump(next) => block = *next,
            Terminator::Return(val) => {
                if let Some(mut frame) = frames.pop() {
                    // Lockstep return: write the return column into the
                    // caller's destination slot (`NaN` for a bare `ret`)
                    // and resume the caller after its call instruction.
                    let parent_layout = &layouts[frame.func.0];
                    let dcol = parent_layout.slot[frame.ret_dst.0] * lanes;
                    match val {
                        Some(r) => {
                            let rcol = layout.slot[r.0] * lanes;
                            for &lane in active.iter() {
                                frame.regs[dcol + lane] = regs[rcol + lane];
                            }
                        }
                        None => {
                            for &lane in active.iter() {
                                frame.regs[dcol + lane] = f64::NAN;
                            }
                        }
                    }
                    *regs = frame.regs;
                    *args = frame.args;
                    cur_func = frame.func;
                    function = module.function(cur_func);
                    layout = parent_layout;
                    block = frame.block;
                    first = frame.inst + 1;
                } else {
                    for &lane in active.iter() {
                        results[lane] = val.map(|r| regs[layout.slot[r.0] * lanes + lane]);
                    }
                    active.clear();
                    return;
                }
            }
            Terminator::CondBr {
                site,
                lhs,
                cmp,
                rhs,
                then_bb,
                else_bb,
            } => {
                let (lcol, rcol) = (layout.slot[lhs.0] * lanes, layout.slot[rhs.0] * lanes);
                then_lanes.clear();
                else_lanes.clear();
                for &lane in active.iter() {
                    let l = regs[lcol + lane];
                    let r = regs[rcol + lane];
                    let taken = if let Some(s) = site {
                        ctxs[lane].branch(s.0, l, *cmp, r)
                    } else {
                        cmp.eval(l, r)
                    };
                    if ctxs[lane].stopped() {
                        // The scalar interpreter returns no result right
                        // after a stop-requesting branch event (suspended
                        // callers cascade the `None` without another
                        // observable step).
                        results[lane] = None;
                    } else if taken {
                        then_lanes.push(lane);
                    } else {
                        else_lanes.push(lane);
                    }
                }
                // The wave follows the better-populated side (ties go to
                // the then-side); the other side's lanes finish scalar.
                let (next, stay, leave_bb, leave) = if then_lanes.len() >= else_lanes.len() {
                    (*then_bb, &mut *then_lanes, *else_bb, &mut *else_lanes)
                } else {
                    (*else_bb, &mut *else_lanes, *then_bb, &mut *then_lanes)
                };
                for &lane in leave.iter() {
                    leave_wave!(lane, leave_bb, 0);
                }
                std::mem::swap(active, stay);
                block = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::ir::{BinOp, UnOp};
    use fp_runtime::{
        Analyzable, BranchEvent, Cmp, KernelPolicy, NullObserver, OpEvent, ProbeControl,
        TraceRecorder,
    };

    /// `f(x) { if (x <= 1) x = x + 1; return x * x; }` — one divergent
    /// branch, sited ops and branch.
    fn square_gate() -> ModuleProgram {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.function("f", 1);
        let x = f.param(0);
        let one = f.constant(1.0);
        let xvar = f.copy(x);
        let then_bb = f.new_block();
        let join = f.new_block();
        f.cond_br(Some(0), xvar, Cmp::Le, one, then_bb, join);
        f.switch_to(then_bb);
        let inc = f.bin(BinOp::Add, xvar, one, Some(0));
        f.assign(xvar, inc);
        f.jump(join);
        f.switch_to(join);
        let sq = f.bin(BinOp::Mul, xvar, xvar, Some(1));
        f.ret(Some(sq));
        f.finish();
        ModuleProgram::new(mb.build(), "f").expect("entry exists")
    }

    /// A straight-line module mixing every lanewise opcode except `call`.
    fn straightline() -> ModuleProgram {
        let mut mb = ModuleBuilder::new();
        let w = mb.global("w", 1.0);
        let mut f = mb.function("f", 2);
        let x = f.param(0);
        let y = f.param(1);
        let s = f.bin(BinOp::Add, x, y, Some(0));
        let d = f.bin(BinOp::Sub, x, y, None);
        let p = f.bin(BinOp::Mul, s, d, Some(1));
        let a = f.un(UnOp::Abs, p, Some(2));
        let r = f.un(UnOp::Sqrt, a, None);
        let cmp = f.cmp(Cmp::Lt, r, s);
        let sel = f.select(cmp, r, a);
        let wv = f.load_global(w);
        let prod = f.bin(BinOp::Mul, wv, sel, None);
        f.store_global(w, prod);
        let out = f.load_global(w);
        f.ret(Some(out));
        f.finish();
        ModuleProgram::new(mb.build(), "f").expect("entry exists")
    }

    fn lane_inputs(n: usize, dim: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..dim)
                    .map(|d| (i as f64 * 0.37 - 3.0) * (d as f64 + 1.0))
                    .collect()
            })
            .collect()
    }

    fn assert_kernel_matches_scalar(program: &ModuleProgram, inputs: &[Vec<f64>]) {
        let mut session = program.batch_executor(KernelPolicy::Always);
        let mut kernel_recs: Vec<TraceRecorder> =
            inputs.iter().map(|_| TraceRecorder::new()).collect();
        let mut refs: Vec<&mut dyn Observer> = kernel_recs
            .iter_mut()
            .map(|o| o as &mut dyn Observer)
            .collect();
        let mut results = Vec::new();
        session.execute_many(inputs, &mut refs, &mut results);
        for (lane, input) in inputs.iter().enumerate() {
            let mut scalar_rec = TraceRecorder::new();
            let scalar = program.run(input, &mut scalar_rec);
            assert_eq!(
                results[lane].map(f64::to_bits),
                scalar.map(f64::to_bits),
                "lane {lane} ({input:?})"
            );
            assert_eq!(
                kernel_recs[lane].ops().collect::<Vec<_>>(),
                scalar_rec.ops().collect::<Vec<_>>(),
                "op events of lane {lane}"
            );
            assert_eq!(
                kernel_recs[lane].branches().collect::<Vec<_>>(),
                scalar_rec.branches().collect::<Vec<_>>(),
                "branch events of lane {lane}"
            );
        }
    }

    #[test]
    fn straightline_wave_is_bit_identical_to_scalar() {
        let p = straightline();
        assert!(p.kernel_eligible());
        assert_kernel_matches_scalar(&p, &lane_inputs(333, 2));
    }

    #[test]
    fn straightline_wave_compacts_its_register_file() {
        let p = straightline();
        let info = p.static_info();
        let layout = &info.analysis.layouts[p.entry().0];
        assert!(layout.compacted, "chain values share slots");
        assert!(layout.num_slots < p.module().function(p.entry()).num_regs);
    }

    #[test]
    fn divergent_wave_is_bit_identical_to_scalar() {
        let p = square_gate();
        assert_kernel_matches_scalar(&p, &lane_inputs(100, 1));
    }

    #[test]
    fn wave_handles_arity_mismatch_lanes() {
        let p = square_gate();
        let mut session = p.batch_executor(KernelPolicy::Always);
        let inputs = vec![vec![0.0], vec![1.0, 2.0], vec![3.0]];
        let mut obs: Vec<NullObserver> = inputs.iter().map(|_| NullObserver).collect();
        let mut refs: Vec<&mut dyn Observer> =
            obs.iter_mut().map(|o| o as &mut dyn Observer).collect();
        let mut results = Vec::new();
        session.execute_many(&inputs, &mut refs, &mut results);
        assert_eq!(results, vec![Some(1.0), None, Some(9.0)]);
    }

    #[test]
    fn observer_stop_mid_wave_matches_scalar() {
        // Stop as soon as a sited op produces a value above a threshold:
        // exercises the stop-eviction path (the lane must still traverse
        // the terminator exactly like the scalar interpreter does).
        struct StopAbove(f64);
        impl Observer for StopAbove {
            fn on_op(&mut self, ev: &OpEvent) -> ProbeControl {
                if ev.value > self.0 {
                    ProbeControl::Stop
                } else {
                    ProbeControl::Continue
                }
            }
        }
        let p = square_gate();
        let inputs = lane_inputs(64, 1);
        let mut session = p.batch_executor(KernelPolicy::Always);
        let mut obs: Vec<StopAbove> = inputs.iter().map(|_| StopAbove(4.0)).collect();
        let mut refs: Vec<&mut dyn Observer> =
            obs.iter_mut().map(|o| o as &mut dyn Observer).collect();
        let mut results = Vec::new();
        session.execute_many(&inputs, &mut refs, &mut results);
        for (lane, input) in inputs.iter().enumerate() {
            let mut scalar_obs = StopAbove(4.0);
            let scalar = p.run(input, &mut scalar_obs);
            assert_eq!(results[lane], scalar, "lane {lane} ({input:?})");
        }
    }

    #[test]
    fn branch_observer_stop_matches_scalar() {
        struct StopAtBranch;
        impl Observer for StopAtBranch {
            fn on_branch(&mut self, _ev: &BranchEvent) -> ProbeControl {
                ProbeControl::Stop
            }
        }
        let p = square_gate();
        let inputs = lane_inputs(16, 1);
        let mut session = p.batch_executor(KernelPolicy::Always);
        let mut obs: Vec<StopAtBranch> = inputs.iter().map(|_| StopAtBranch).collect();
        let mut refs: Vec<&mut dyn Observer> =
            obs.iter_mut().map(|o| o as &mut dyn Observer).collect();
        let mut results = Vec::new();
        session.execute_many(&inputs, &mut refs, &mut results);
        for (lane, input) in inputs.iter().enumerate() {
            assert_eq!(results[lane], p.run(input, &mut StopAtBranch), "lane {lane}");
        }
    }

    /// main(x) calls callee(x·1) which scales a global through sited ops.
    fn call_module() -> ModuleProgram {
        let mut mb = ModuleBuilder::new();
        let w = mb.global("w", 1.0);
        let mut callee = mb.function("callee", 1);
        let x = callee.param(0);
        let a = callee.un(UnOp::Abs, x, Some(0));
        let wv = callee.load_global(w);
        let prod = callee.bin(BinOp::Mul, wv, a, Some(1));
        callee.store_global(w, prod);
        callee.ret(Some(x));
        let callee_id = callee.finish();
        let mut main = mb.function("main", 1);
        let x = main.param(0);
        let one = main.constant(1.0);
        let scaled = main.bin(BinOp::Mul, x, one, None);
        let _ = main.call(callee_id, vec![scaled]);
        let back = main.load_global(w);
        main.ret(Some(back));
        main.finish();
        ModuleProgram::new(mb.build(), "main").expect("entry exists")
    }

    #[test]
    fn lockstep_calls_stay_in_the_wave_and_match_scalar() {
        // The call is non-recursive with matching arity, so the wave pushes
        // a frame and runs the callee in lockstep; results and events match
        // the scalar interpreter bit for bit.
        let p = call_module();
        assert!(p.kernel_eligible(), "wave-safe calls are kernel-eligible");
        assert_kernel_matches_scalar(&p, &lane_inputs(40, 1));
    }

    #[test]
    fn divergence_inside_a_callee_unwinds_the_frame_stack() {
        // callee(x) = |x| via a branch (divergent across lanes); evicted
        // lanes must unwind through the suspended caller frame.
        let mut mb = ModuleBuilder::new();
        let mut callee = mb.function("my_abs", 1);
        let x = callee.param(0);
        let z = callee.constant(0.0);
        let neg_bb = callee.new_block();
        let pos_bb = callee.new_block();
        callee.cond_br(Some(0), x, Cmp::Lt, z, neg_bb, pos_bb);
        callee.switch_to(neg_bb);
        let n = callee.bin(BinOp::Sub, z, x, Some(0));
        callee.ret(Some(n));
        callee.switch_to(pos_bb);
        callee.ret(Some(x));
        let callee_id = callee.finish();
        let mut main = mb.function("main", 1);
        let x = main.param(0);
        let a = main.call(callee_id, vec![x]);
        let one = main.constant(1.0);
        let out = main.bin(BinOp::Add, a, one, Some(1));
        main.ret(Some(out));
        main.finish();
        let p = ModuleProgram::new(mb.build(), "main").expect("entry exists");
        assert!(p.kernel_eligible());
        // Mixed signs force divergence inside the callee.
        assert_kernel_matches_scalar(&p, &lane_inputs(64, 1));
    }

    #[test]
    fn nested_calls_run_lockstep_and_match_scalar() {
        // main -> outer -> inner: two suspended frames on the wave stack.
        let mut mb = ModuleBuilder::new();
        let mut inner = mb.function("inner", 2);
        let a = inner.param(0);
        let b = inner.param(1);
        let s = inner.bin(BinOp::Add, a, b, Some(0));
        inner.ret(Some(s));
        let inner_id = inner.finish();
        let mut outer = mb.function("outer", 1);
        let x = outer.param(0);
        let two = outer.constant(2.0);
        let d = outer.call(inner_id, vec![x, two]);
        let m = outer.bin(BinOp::Mul, d, d, Some(1));
        outer.ret(Some(m));
        let outer_id = outer.finish();
        let mut main = mb.function("main", 1);
        let x = main.param(0);
        let r = main.call(outer_id, vec![x]);
        let half = main.constant(0.5);
        let out = main.bin(BinOp::Mul, r, half, None);
        main.ret(Some(out));
        main.finish();
        let p = ModuleProgram::new(mb.build(), "main").expect("entry exists");
        assert!(p.kernel_eligible());
        assert_kernel_matches_scalar(&p, &lane_inputs(96, 1));
    }

    #[test]
    fn bare_ret_in_a_callee_yields_nan_like_scalar() {
        let mut mb = ModuleBuilder::new();
        let mut callee = mb.function("void_fn", 1);
        let _ = callee.param(0);
        callee.ret(None);
        let callee_id = callee.finish();
        let mut main = mb.function("main", 1);
        let x = main.param(0);
        let r = main.call(callee_id, vec![x]);
        let out = main.bin(BinOp::Add, r, x, None);
        main.ret(Some(out));
        main.finish();
        let p = ModuleProgram::new(mb.build(), "main").expect("entry exists");
        assert!(p.kernel_eligible());
        assert_kernel_matches_scalar(&p, &lane_inputs(8, 1));
    }

    #[test]
    fn recursive_modules_fall_back_per_lane_and_match_scalar() {
        // fact(n): n <= 0 ? 1 : n * fact(n - 1) — recursion is never
        // wave-safe, so under `Always` the kernel evicts every lane at the
        // call; results still match the scalar interpreter bit for bit.
        let mut mb = ModuleBuilder::new();
        let mut f = mb.function("fact", 1);
        let n = f.param(0);
        let zero = f.constant(0.0);
        let one = f.constant(1.0);
        let base_bb = f.new_block();
        let rec_bb = f.new_block();
        f.cond_br(Some(0), n, Cmp::Le, zero, base_bb, rec_bb);
        f.switch_to(base_bb);
        f.ret(Some(one));
        f.switch_to(rec_bb);
        let nm1 = f.bin(BinOp::Sub, n, one, None);
        let sub = f.call(FuncId(0), vec![nm1]);
        let prod = f.bin(BinOp::Mul, n, sub, Some(1));
        f.ret(Some(prod));
        f.finish();
        let p = ModuleProgram::new(mb.build(), "fact").expect("entry exists");
        assert!(!p.kernel_eligible(), "recursion is not wave-safe");
        let inputs: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64]).collect();
        assert_kernel_matches_scalar(&p, &inputs);
    }

    #[test]
    fn observer_stop_inside_a_callee_matches_scalar() {
        struct StopAbove(f64);
        impl Observer for StopAbove {
            fn on_op(&mut self, ev: &OpEvent) -> ProbeControl {
                if ev.value > self.0 {
                    ProbeControl::Stop
                } else {
                    ProbeControl::Continue
                }
            }
        }
        let p = call_module();
        let inputs = lane_inputs(48, 1);
        let mut session = p.batch_executor(KernelPolicy::Always);
        let mut obs: Vec<StopAbove> = inputs.iter().map(|_| StopAbove(2.0)).collect();
        let mut refs: Vec<&mut dyn Observer> =
            obs.iter_mut().map(|o| o as &mut dyn Observer).collect();
        let mut results = Vec::new();
        session.execute_many(&inputs, &mut refs, &mut results);
        for (lane, input) in inputs.iter().enumerate() {
            let mut scalar_obs = StopAbove(2.0);
            assert_eq!(
                results[lane],
                p.run(input, &mut scalar_obs),
                "lane {lane} ({input:?})"
            );
        }
    }

    #[test]
    fn fuel_exhaustion_inside_a_callee_matches_scalar() {
        // A tight budget that runs out mid-callee for later lanes: the
        // shared wave fuel counter must fail the same lanes the per-input
        // scalar budget fails.
        let p = call_module()
            .with_interpreter(Interpreter::default().with_fuel(9));
        assert_kernel_matches_scalar(&p, &lane_inputs(16, 1));
    }

    #[test]
    fn precancelled_token_stops_every_lane() {
        // A countdown loop long enough to reach a cancellation poll (the
        // wave polls at the same fuel points as the scalar interpreter).
        let mut mb = ModuleBuilder::new();
        let mut f = mb.function("count", 1);
        let x = f.param(0);
        let zero = f.constant(0.0);
        let one = f.constant(1.0);
        let i = f.copy(x);
        let header = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.jump(header);
        f.switch_to(header);
        f.cond_br(None, i, Cmp::Gt, zero, body, exit);
        f.switch_to(body);
        let ni = f.bin(BinOp::Sub, i, one, None);
        f.assign(i, ni);
        f.jump(header);
        f.switch_to(exit);
        f.ret(Some(i));
        f.finish();
        let token = CancelToken::new();
        token.cancel();
        let p = ModuleProgram::new(mb.build(), "count")
            .expect("entry exists")
            .with_cancel(token);
        let mut session = p.batch_executor(KernelPolicy::Always);
        let inputs: Vec<Vec<f64>> = (0..8).map(|_| vec![100_000.0]).collect();
        let mut obs: Vec<NullObserver> = inputs.iter().map(|_| NullObserver).collect();
        let mut refs: Vec<&mut dyn Observer> =
            obs.iter_mut().map(|o| o as &mut dyn Observer).collect();
        let mut results = Vec::new();
        session.execute_many(&inputs, &mut refs, &mut results);
        assert!(results.iter().all(Option::is_none));
        // Scalar agrees: a cancelled execution reports no result.
        assert_eq!(p.run(&[100_000.0], &mut NullObserver), None);
    }

    #[test]
    fn fuel_exhaustion_matches_scalar_per_lane() {
        // A loop whose iteration count depends on the input: lanes with
        // big inputs burn more fuel. Divergent lanes carry their exact
        // remaining fuel into the scalar resume, so out-of-fuel lanes are
        // the same set under both backends.
        let mut mb = ModuleBuilder::new();
        let mut f = mb.function("count", 1);
        let x = f.param(0);
        let zero = f.constant(0.0);
        let one = f.constant(1.0);
        let i = f.copy(x);
        let header = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.jump(header);
        f.switch_to(header);
        f.cond_br(None, i, Cmp::Gt, zero, body, exit);
        f.switch_to(body);
        let ni = f.bin(BinOp::Sub, i, one, None);
        f.assign(i, ni);
        f.jump(header);
        f.switch_to(exit);
        f.ret(Some(i));
        f.finish();
        let p = ModuleProgram::new(mb.build(), "count")
            .expect("entry exists")
            .with_interpreter(Interpreter::default().with_fuel(300));
        let inputs: Vec<Vec<f64>> = (0..24).map(|i| vec![(i * 7) as f64]).collect();
        let mut session = p.batch_executor(KernelPolicy::Always);
        let mut obs: Vec<NullObserver> = inputs.iter().map(|_| NullObserver).collect();
        let mut refs: Vec<&mut dyn Observer> =
            obs.iter_mut().map(|o| o as &mut dyn Observer).collect();
        let mut results = Vec::new();
        session.execute_many(&inputs, &mut refs, &mut results);
        for (lane, input) in inputs.iter().enumerate() {
            assert_eq!(
                results[lane],
                p.run(input, &mut NullObserver),
                "lane {lane} ({input:?})"
            );
        }
    }

    #[test]
    fn execute_one_matches_the_interpreter() {
        let p = square_gate();
        let mut session = KernelExecutor::new(&p);
        assert_eq!(session.execute_one(&[3.0], &mut NullObserver), Some(9.0));
        assert_eq!(session.execute_one(&[0.0], &mut NullObserver), Some(1.0));
        assert_eq!(session.execute_one(&[1.0, 2.0], &mut NullObserver), None);
        assert!(format!("{session:?}").contains("lanewise"));
    }

    #[test]
    fn waves_chunk_batches_larger_than_wave_lanes() {
        let p = straightline();
        assert_kernel_matches_scalar(&p, &lane_inputs(WAVE_LANES * 2 + 17, 2));
    }
}
