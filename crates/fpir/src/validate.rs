//! Structural validation of IR modules.

use crate::ir::{FuncId, Inst, Module, Terminator};
use std::fmt;

/// A structural error found in a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A function has no blocks.
    EmptyFunction {
        /// The offending function.
        func: FuncId,
    },
    /// A register index is out of range.
    BadRegister {
        /// The offending function.
        func: FuncId,
        /// Details of the offence.
        detail: String,
    },
    /// A block target is out of range.
    BadBlockTarget {
        /// The offending function.
        func: FuncId,
        /// Details of the offence.
        detail: String,
    },
    /// A parameter index is out of range.
    BadParamIndex {
        /// The offending function.
        func: FuncId,
        /// Details of the offence.
        detail: String,
    },
    /// A call references a missing function or has the wrong arity.
    BadCall {
        /// The offending function.
        func: FuncId,
        /// Details of the offence.
        detail: String,
    },
    /// A global cell index is out of range.
    BadGlobal {
        /// The offending function.
        func: FuncId,
        /// Details of the offence.
        detail: String,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::EmptyFunction { func } => {
                write!(f, "function {func} has no blocks")
            }
            ValidationError::BadRegister { func, detail } => {
                write!(f, "bad register in {func}: {detail}")
            }
            ValidationError::BadBlockTarget { func, detail } => {
                write!(f, "bad block target in {func}: {detail}")
            }
            ValidationError::BadParamIndex { func, detail } => {
                write!(f, "bad parameter index in {func}: {detail}")
            }
            ValidationError::BadCall { func, detail } => {
                write!(f, "bad call in {func}: {detail}")
            }
            ValidationError::BadGlobal { func, detail } => {
                write!(f, "bad global in {func}: {detail}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates every function of a module; returns the first error found, or
/// `Ok(())`.
///
/// # Errors
///
/// Returns a [`ValidationError`] describing the first structural problem:
/// out-of-range registers, blocks, parameters, globals, or ill-formed calls.
pub fn validate(module: &Module) -> Result<(), ValidationError> {
    for (fi, func) in module.functions.iter().enumerate() {
        let fid = FuncId(fi);
        if func.blocks.is_empty() {
            return Err(ValidationError::EmptyFunction { func: fid });
        }
        let check_reg = |r: crate::ir::Reg, what: &str| {
            if r.0 >= func.num_regs {
                Err(ValidationError::BadRegister {
                    func: fid,
                    detail: format!("{what} uses {r} but the function has {} registers", func.num_regs),
                })
            } else {
                Ok(())
            }
        };
        let check_block = |b: crate::ir::BlockId| {
            if b.0 >= func.blocks.len() {
                Err(ValidationError::BadBlockTarget {
                    func: fid,
                    detail: format!("target {b} out of {} blocks", func.blocks.len()),
                })
            } else {
                Ok(())
            }
        };
        for block in &func.blocks {
            for inst in &block.insts {
                if let Some(dst) = inst.dst() {
                    check_reg(dst, "destination")?;
                }
                match inst {
                    Inst::Const { .. } => {}
                    Inst::Copy { src, .. } => check_reg(*src, "copy source")?,
                    Inst::Param { index, .. } => {
                        if *index >= func.num_params {
                            return Err(ValidationError::BadParamIndex {
                                func: fid,
                                detail: format!(
                                    "parameter {index} of {} parameters",
                                    func.num_params
                                ),
                            });
                        }
                    }
                    Inst::Bin { lhs, rhs, .. } => {
                        check_reg(*lhs, "binary lhs")?;
                        check_reg(*rhs, "binary rhs")?;
                    }
                    Inst::Un { arg, .. } => check_reg(*arg, "unary operand")?,
                    Inst::Cmp { lhs, rhs, .. } => {
                        check_reg(*lhs, "compare lhs")?;
                        check_reg(*rhs, "compare rhs")?;
                    }
                    Inst::Select {
                        cond,
                        if_true,
                        if_false,
                        ..
                    } => {
                        check_reg(*cond, "select condition")?;
                        check_reg(*if_true, "select true value")?;
                        check_reg(*if_false, "select false value")?;
                    }
                    Inst::Call { func: callee, args, .. } => {
                        if callee.0 >= module.functions.len() {
                            return Err(ValidationError::BadCall {
                                func: fid,
                                detail: format!("callee {callee} does not exist"),
                            });
                        }
                        let expected = module.functions[callee.0].num_params;
                        if args.len() != expected {
                            return Err(ValidationError::BadCall {
                                func: fid,
                                detail: format!(
                                    "callee {callee} expects {expected} arguments, got {}",
                                    args.len()
                                ),
                            });
                        }
                        for a in args {
                            check_reg(*a, "call argument")?;
                        }
                    }
                    Inst::LoadGlobal { global, .. } | Inst::StoreGlobal { global, .. } => {
                        if global.0 >= module.globals.len() {
                            return Err(ValidationError::BadGlobal {
                                func: fid,
                                detail: format!("global {global} does not exist"),
                            });
                        }
                        if let Inst::StoreGlobal { src, .. } = inst {
                            check_reg(*src, "store source")?;
                        }
                    }
                }
            }
            match &block.term {
                Terminator::Jump(b) => check_block(*b)?,
                Terminator::CondBr {
                    lhs,
                    rhs,
                    then_bb,
                    else_bb,
                    ..
                } => {
                    check_reg(*lhs, "branch lhs")?;
                    check_reg(*rhs, "branch rhs")?;
                    check_block(*then_bb)?;
                    check_block(*else_bb)?;
                }
                Terminator::Return(Some(r)) => check_reg(*r, "return value")?,
                Terminator::Return(None) => {}
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::ir::{BinOp, Block, BlockId, Function, Reg};
    use fp_runtime::Cmp;

    fn good_module() -> Module {
        let mut mb = ModuleBuilder::new();
        let w = mb.global("w", 1.0);
        let mut f = mb.function("f", 1);
        let x = f.param(0);
        let one = f.constant(1.0);
        let y = f.bin(BinOp::Add, x, one, Some(0));
        f.store_global(w, y);
        let t = f.new_block();
        let e = f.new_block();
        f.cond_br(Some(0), y, Cmp::Le, one, t, e);
        f.switch_to(t);
        f.ret(Some(y));
        f.switch_to(e);
        f.ret(None);
        f.finish();
        mb.build()
    }

    #[test]
    fn accepts_well_formed_module() {
        assert_eq!(validate(&good_module()), Ok(()));
    }

    #[test]
    fn rejects_out_of_range_register() {
        let mut m = good_module();
        m.functions[0].blocks[0].insts.push(crate::ir::Inst::Copy {
            dst: Reg(0),
            src: Reg(999),
        });
        let err = validate(&m).unwrap_err();
        assert!(matches!(err, ValidationError::BadRegister { .. }));
        assert!(err.to_string().contains("register"));
    }

    #[test]
    fn rejects_bad_block_target() {
        let mut m = good_module();
        m.functions[0].blocks[1].term = crate::ir::Terminator::Jump(BlockId(77));
        assert!(matches!(
            validate(&m).unwrap_err(),
            ValidationError::BadBlockTarget { .. }
        ));
    }

    #[test]
    fn rejects_bad_call_arity() {
        let mut m = good_module();
        // Add a caller passing no arguments to the unary function 0.
        m.functions.push(Function {
            name: "caller".into(),
            num_params: 0,
            num_regs: 1,
            blocks: vec![Block {
                insts: vec![crate::ir::Inst::Call {
                    dst: Reg(0),
                    func: crate::ir::FuncId(0),
                    args: vec![],
                }],
                term: crate::ir::Terminator::Return(None),
            }],
        });
        assert!(matches!(
            validate(&m).unwrap_err(),
            ValidationError::BadCall { .. }
        ));
    }

    #[test]
    fn rejects_missing_global() {
        let mut m = good_module();
        m.globals.clear();
        assert!(matches!(
            validate(&m).unwrap_err(),
            ValidationError::BadGlobal { .. }
        ));
    }

    #[test]
    fn rejects_empty_function() {
        let mut m = good_module();
        m.functions[0].blocks.clear();
        assert!(matches!(
            validate(&m).unwrap_err(),
            ValidationError::EmptyFunction { .. }
        ));
    }

    #[test]
    fn rejects_bad_param_index() {
        let mut m = good_module();
        m.functions[0].blocks[0].insts.push(crate::ir::Inst::Param {
            dst: Reg(0),
            index: 5,
        });
        assert!(matches!(
            validate(&m).unwrap_err(),
            ValidationError::BadParamIndex { .. }
        ));
    }
}
