//! Strict verification of IR modules.
//!
//! [`validate`] combines the structural checks (index ranges, arities)
//! with a dominance-based definite-assignment pass: a register read must be
//! preceded by a write on *every* path from the function entry, so a value
//! defined in only one branch arm cannot leak through the join as a silent
//! `0.0`. [`diagnostics`] reports the non-fatal findings — unreachable
//! blocks and (mutual) recursion — that are legal to execute (the
//! interpreter zero-fills frames and bounds call depth) but usually
//! indicate an instrumentation bug.

use crate::analysis::{self, Cfg};
use crate::ir::{FuncId, Inst, Module, Terminator};
use std::fmt;

/// A structural error found in a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A function has no blocks.
    EmptyFunction {
        /// The offending function.
        func: FuncId,
    },
    /// A register index is out of range.
    BadRegister {
        /// The offending function.
        func: FuncId,
        /// Details of the offence.
        detail: String,
    },
    /// A block target is out of range.
    BadBlockTarget {
        /// The offending function.
        func: FuncId,
        /// Details of the offence.
        detail: String,
    },
    /// A parameter index is out of range.
    BadParamIndex {
        /// The offending function.
        func: FuncId,
        /// Details of the offence.
        detail: String,
    },
    /// A call references a missing function or has the wrong arity.
    BadCall {
        /// The offending function.
        func: FuncId,
        /// Details of the offence.
        detail: String,
    },
    /// A global cell index is out of range.
    BadGlobal {
        /// The offending function.
        func: FuncId,
        /// Details of the offence.
        detail: String,
    },
    /// A register is read on some path before any write reaches it (for
    /// example, defined in one branch arm and read after the join).
    UseBeforeDef {
        /// The offending function.
        func: FuncId,
        /// Details of the offence.
        detail: String,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::EmptyFunction { func } => {
                write!(f, "function {func} has no blocks")
            }
            ValidationError::BadRegister { func, detail } => {
                write!(f, "bad register in {func}: {detail}")
            }
            ValidationError::BadBlockTarget { func, detail } => {
                write!(f, "bad block target in {func}: {detail}")
            }
            ValidationError::BadParamIndex { func, detail } => {
                write!(f, "bad parameter index in {func}: {detail}")
            }
            ValidationError::BadCall { func, detail } => {
                write!(f, "bad call in {func}: {detail}")
            }
            ValidationError::BadGlobal { func, detail } => {
                write!(f, "bad global in {func}: {detail}")
            }
            ValidationError::UseBeforeDef { func, detail } => {
                write!(f, "use before definition in {func}: {detail}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates every function of a module; returns the first error found, or
/// `Ok(())`.
///
/// # Errors
///
/// Returns a [`ValidationError`] describing the first problem: out-of-range
/// registers, blocks, parameters, globals, ill-formed calls, or a register
/// read that is not dominated by a write (definite assignment over every
/// reachable path — the structural checks run first so the dataflow pass
/// only ever sees in-range indices).
pub fn validate(module: &Module) -> Result<(), ValidationError> {
    for (fi, func) in module.functions.iter().enumerate() {
        validate_structure(module, FuncId(fi), func)?;
    }
    for (fi, func) in module.functions.iter().enumerate() {
        let cfg = Cfg::new(func);
        if let Some((block, inst, reg)) = analysis::liveness::first_use_before_def(func, &cfg) {
            let at = match inst {
                Some(i) => format!("instruction {i} of {block}"),
                None => format!("the terminator of {block}"),
            };
            return Err(ValidationError::UseBeforeDef {
                func: FuncId(fi),
                detail: format!("{reg} is read at {at} but not written on every path from entry"),
            });
        }
    }
    Ok(())
}

fn validate_structure(
    module: &Module,
    fid: FuncId,
    func: &crate::ir::Function,
) -> Result<(), ValidationError> {
    {
        if func.blocks.is_empty() {
            return Err(ValidationError::EmptyFunction { func: fid });
        }
        let check_reg = |r: crate::ir::Reg, what: &str| {
            if r.0 >= func.num_regs {
                Err(ValidationError::BadRegister {
                    func: fid,
                    detail: format!("{what} uses {r} but the function has {} registers", func.num_regs),
                })
            } else {
                Ok(())
            }
        };
        let check_block = |b: crate::ir::BlockId| {
            if b.0 >= func.blocks.len() {
                Err(ValidationError::BadBlockTarget {
                    func: fid,
                    detail: format!("target {b} out of {} blocks", func.blocks.len()),
                })
            } else {
                Ok(())
            }
        };
        for block in &func.blocks {
            for inst in &block.insts {
                if let Some(dst) = inst.dst() {
                    check_reg(dst, "destination")?;
                }
                match inst {
                    Inst::Const { .. } => {}
                    Inst::Copy { src, .. } => check_reg(*src, "copy source")?,
                    Inst::Param { index, .. } => {
                        if *index >= func.num_params {
                            return Err(ValidationError::BadParamIndex {
                                func: fid,
                                detail: format!(
                                    "parameter {index} of {} parameters",
                                    func.num_params
                                ),
                            });
                        }
                    }
                    Inst::Bin { lhs, rhs, .. } => {
                        check_reg(*lhs, "binary lhs")?;
                        check_reg(*rhs, "binary rhs")?;
                    }
                    Inst::Un { arg, .. } => check_reg(*arg, "unary operand")?,
                    Inst::Cmp { lhs, rhs, .. } => {
                        check_reg(*lhs, "compare lhs")?;
                        check_reg(*rhs, "compare rhs")?;
                    }
                    Inst::Select {
                        cond,
                        if_true,
                        if_false,
                        ..
                    } => {
                        check_reg(*cond, "select condition")?;
                        check_reg(*if_true, "select true value")?;
                        check_reg(*if_false, "select false value")?;
                    }
                    Inst::Call { func: callee, args, .. } => {
                        if callee.0 >= module.functions.len() {
                            return Err(ValidationError::BadCall {
                                func: fid,
                                detail: format!("callee {callee} does not exist"),
                            });
                        }
                        let expected = module.functions[callee.0].num_params;
                        if args.len() != expected {
                            return Err(ValidationError::BadCall {
                                func: fid,
                                detail: format!(
                                    "callee {callee} expects {expected} arguments, got {}",
                                    args.len()
                                ),
                            });
                        }
                        for a in args {
                            check_reg(*a, "call argument")?;
                        }
                    }
                    Inst::LoadGlobal { global, .. } | Inst::StoreGlobal { global, .. } => {
                        if global.0 >= module.globals.len() {
                            return Err(ValidationError::BadGlobal {
                                func: fid,
                                detail: format!("global {global} does not exist"),
                            });
                        }
                        if let Inst::StoreGlobal { src, .. } = inst {
                            check_reg(*src, "store source")?;
                        }
                    }
                }
            }
            match &block.term {
                Terminator::Jump(b) => check_block(*b)?,
                Terminator::CondBr {
                    lhs,
                    rhs,
                    then_bb,
                    else_bb,
                    ..
                } => {
                    check_reg(*lhs, "branch lhs")?;
                    check_reg(*rhs, "branch rhs")?;
                    check_block(*then_bb)?;
                    check_block(*else_bb)?;
                }
                Terminator::Return(Some(r)) => check_reg(*r, "return value")?,
                Terminator::Return(None) => {}
            }
        }
    }
    Ok(())
}

/// A non-fatal finding of the strict verifier.
///
/// Both conditions execute fine — the interpreter zero-fills frames, never
/// enters unreachable blocks and bounds call depth — but they are almost
/// always instrumentation bugs, so the `analyze` bench surfaces them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Diagnostic {
    /// A block no path from the function entry reaches.
    UnreachableBlock {
        /// The containing function.
        func: FuncId,
        /// The unreachable block.
        block: crate::ir::BlockId,
    },
    /// A function that can reach itself through calls; such functions never
    /// run lockstep in the lanewise kernel.
    RecursiveFunction {
        /// The recursive function.
        func: FuncId,
    },
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Diagnostic::UnreachableBlock { func, block } => {
                write!(f, "{block} of {func} is unreachable from the entry")
            }
            Diagnostic::RecursiveFunction { func } => {
                write!(f, "{func} is (mutually) recursive")
            }
        }
    }
}

/// Reports every non-fatal [`Diagnostic`] of `module`, in function order.
pub fn diagnostics(module: &Module) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let call_graph = analysis::CallGraph::new(module);
    for (fi, func) in module.functions.iter().enumerate() {
        let cfg = Cfg::new(func);
        for b in 0..cfg.num_blocks() {
            let block = crate::ir::BlockId(b);
            if !cfg.is_reachable(block) {
                out.push(Diagnostic::UnreachableBlock {
                    func: FuncId(fi),
                    block,
                });
            }
        }
        if call_graph.recursive[fi] {
            out.push(Diagnostic::RecursiveFunction { func: FuncId(fi) });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::ir::{BinOp, Block, BlockId, Function, Reg};
    use fp_runtime::Cmp;

    fn good_module() -> Module {
        let mut mb = ModuleBuilder::new();
        let w = mb.global("w", 1.0);
        let mut f = mb.function("f", 1);
        let x = f.param(0);
        let one = f.constant(1.0);
        let y = f.bin(BinOp::Add, x, one, Some(0));
        f.store_global(w, y);
        let t = f.new_block();
        let e = f.new_block();
        f.cond_br(Some(0), y, Cmp::Le, one, t, e);
        f.switch_to(t);
        f.ret(Some(y));
        f.switch_to(e);
        f.ret(None);
        f.finish();
        mb.build()
    }

    #[test]
    fn accepts_well_formed_module() {
        assert_eq!(validate(&good_module()), Ok(()));
    }

    #[test]
    fn rejects_out_of_range_register() {
        let mut m = good_module();
        m.functions[0].blocks[0].insts.push(crate::ir::Inst::Copy {
            dst: Reg(0),
            src: Reg(999),
        });
        let err = validate(&m).unwrap_err();
        assert!(matches!(err, ValidationError::BadRegister { .. }));
        assert!(err.to_string().contains("register"));
    }

    #[test]
    fn rejects_bad_block_target() {
        let mut m = good_module();
        m.functions[0].blocks[1].term = crate::ir::Terminator::Jump(BlockId(77));
        assert!(matches!(
            validate(&m).unwrap_err(),
            ValidationError::BadBlockTarget { .. }
        ));
    }

    #[test]
    fn rejects_bad_call_arity() {
        let mut m = good_module();
        // Add a caller passing no arguments to the unary function 0.
        m.functions.push(Function {
            name: "caller".into(),
            num_params: 0,
            num_regs: 1,
            blocks: vec![Block {
                insts: vec![crate::ir::Inst::Call {
                    dst: Reg(0),
                    func: crate::ir::FuncId(0),
                    args: vec![],
                }],
                term: crate::ir::Terminator::Return(None),
            }],
        });
        assert!(matches!(
            validate(&m).unwrap_err(),
            ValidationError::BadCall { .. }
        ));
    }

    #[test]
    fn rejects_missing_global() {
        let mut m = good_module();
        m.globals.clear();
        assert!(matches!(
            validate(&m).unwrap_err(),
            ValidationError::BadGlobal { .. }
        ));
    }

    #[test]
    fn rejects_empty_function() {
        let mut m = good_module();
        m.functions[0].blocks.clear();
        assert!(matches!(
            validate(&m).unwrap_err(),
            ValidationError::EmptyFunction { .. }
        ));
    }

    #[test]
    fn rejects_one_arm_definition_read_after_the_join() {
        // if (x < 0) { y = x + x } ; return y — the classic bug the old
        // structural validator waved through (the join read silently saw
        // 0.0 on the else path).
        let mut mb = ModuleBuilder::new();
        let mut f = mb.function("j", 1);
        let t = f.new_block();
        let e = f.new_block();
        let j = f.new_block();
        let x = f.param(0);
        let z = f.constant(0.0);
        f.cond_br(None, x, Cmp::Lt, z, t, e);
        f.switch_to(t);
        let y = f.bin(BinOp::Add, x, x, None);
        let _ = y;
        f.jump(j);
        f.switch_to(e);
        f.jump(j);
        f.switch_to(j);
        f.ret(Some(y));
        f.finish();
        let m = mb.build();
        let err = validate(&m).unwrap_err();
        assert!(matches!(err, ValidationError::UseBeforeDef { .. }));
        assert!(err.to_string().contains("not written on every path"));
    }

    #[test]
    fn accepts_both_arm_definitions_read_after_the_join() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.function("j", 1);
        let t = f.new_block();
        let e = f.new_block();
        let j = f.new_block();
        let x = f.param(0);
        let z = f.constant(0.0);
        f.cond_br(None, x, Cmp::Lt, z, t, e);
        f.switch_to(t);
        let y = f.copy(x);
        f.jump(j);
        f.switch_to(e);
        f.assign(y, z);
        f.jump(j);
        f.switch_to(j);
        f.ret(Some(y));
        f.finish();
        assert_eq!(validate(&mb.build()), Ok(()));
    }

    #[test]
    fn diagnostics_report_unreachable_blocks_and_recursion() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.function("r", 1);
        let dead = f.new_block();
        let x = f.param(0);
        let r = f.call(crate::ir::FuncId(0), vec![x]);
        f.ret(Some(r));
        f.switch_to(dead);
        f.ret(None);
        f.finish();
        let m = mb.build();
        assert_eq!(validate(&m), Ok(()), "diagnostics are not errors");
        let diags = diagnostics(&m);
        assert!(diags.contains(&Diagnostic::UnreachableBlock {
            func: crate::ir::FuncId(0),
            block: dead,
        }));
        assert!(diags.contains(&Diagnostic::RecursiveFunction {
            func: crate::ir::FuncId(0)
        }));
    }

    /// A buggy slice that deletes the definition of a register whose uses
    /// survive must not pass the post-optimization verifier: the
    /// zero-filled frame would silently change the surviving branch and
    /// store.
    #[test]
    fn rejects_slice_that_drops_a_live_definition() {
        let mut m = good_module();
        // "Slice away" y = x + 1 while its branch/store/return uses stay.
        m.functions[0].blocks[0]
            .insts
            .retain(|i| !matches!(i, crate::ir::Inst::Bin { .. }));
        let err = validate(&m).unwrap_err();
        assert!(matches!(err, ValidationError::UseBeforeDef { .. }));
        assert!(err.to_string().contains("not written on every path"));
    }

    /// A buggy slice that drops a function from the table while a call to
    /// it survives (the W-driver shape: entry calling the subject) must be
    /// rejected, not resolved to garbage.
    #[test]
    fn rejects_slice_that_removes_a_called_function() {
        let mut mb = ModuleBuilder::new();
        let mut d = mb.function("driver", 1);
        let x = d.param(0);
        let r = d.call(crate::ir::FuncId(1), vec![x]);
        d.ret(Some(r));
        d.finish();
        let mut c = mb.function("callee", 1);
        let y = c.param(0);
        c.ret(Some(y));
        c.finish();
        let mut m = mb.build();
        assert_eq!(validate(&m), Ok(()));
        m.functions.pop();
        let err = validate(&m).unwrap_err();
        assert!(matches!(err, ValidationError::BadCall { .. }));
        assert!(err.to_string().contains("does not exist"));
    }

    /// A buggy slice that compacts the global table while a surviving load
    /// still reads the dropped cell must be rejected.
    #[test]
    fn rejects_slice_that_drops_a_loaded_global() {
        let mut mb = ModuleBuilder::new();
        let w = mb.global("w", 0.0);
        let mut f = mb.function("reader", 0);
        let v = f.load_global(w);
        f.ret(Some(v));
        f.finish();
        let mut m = mb.build();
        assert_eq!(validate(&m), Ok(()));
        m.globals.clear();
        assert!(matches!(
            validate(&m).unwrap_err(),
            ValidationError::BadGlobal { .. }
        ));
    }

    #[test]
    fn rejects_bad_param_index() {
        let mut m = good_module();
        m.functions[0].blocks[0].insts.push(crate::ir::Inst::Param {
            dst: Reg(0),
            index: 5,
        });
        assert!(matches!(
            validate(&m).unwrap_err(),
            ValidationError::BadParamIndex { .. }
        ));
    }
}
