//! IR versions of the example programs used throughout the paper.

use crate::builder::ModuleBuilder;
use crate::ir::{BinOp, Module, UnOp};
use fp_runtime::Cmp;

/// Fig. 2 of the paper:
///
/// ```c
/// void Prog(double x) {
///     if (x <= 1.0) x++;
///     double y = x * x;
///     if (y <= 4.0) x--;
/// }
/// ```
///
/// The function is built as `prog` returning the final `x`. Branch site 0 is
/// `x <= 1.0`, branch site 1 is `y <= 4.0`; op sites 0..=2 are the three
/// arithmetic operations.
pub fn fig2_program() -> Module {
    let mut mb = ModuleBuilder::new();
    let mut f = mb.function("prog", 1);
    let x0 = f.param(0);
    let one = f.constant(1.0);
    let four = f.constant(4.0);
    let x = f.copy(x0);

    let inc_bb = f.new_block();
    let after_first = f.new_block();
    f.cond_br(Some(0), x, Cmp::Le, one, inc_bb, after_first);

    f.switch_to(inc_bb);
    let xp = f.bin(BinOp::Add, x, one, Some(0));
    f.assign(x, xp);
    f.jump(after_first);

    f.switch_to(after_first);
    let y = f.bin(BinOp::Mul, x, x, Some(1));
    let dec_bb = f.new_block();
    let exit = f.new_block();
    f.cond_br(Some(1), y, Cmp::Le, four, dec_bb, exit);

    f.switch_to(dec_bb);
    let xm = f.bin(BinOp::Sub, x, one, Some(2));
    f.assign(x, xm);
    f.jump(exit);

    f.switch_to(exit);
    f.ret(Some(x));
    f.finish();
    mb.build()
}

/// Fig. 1(a) of the paper:
///
/// ```c
/// void Prog(double x) {
///     if (x < 1) { x = x + 1; assert(x < 2); }
/// }
/// ```
///
/// The assertion is modelled as a second conditional branch (site 1); the
/// function returns 1.0 when the assertion holds on the taken path and 0.0
/// when it is violated, making assertion failures observable.
pub fn fig1a_program() -> Module {
    let mut mb = ModuleBuilder::new();
    let mut f = mb.function("prog", 1);
    let x0 = f.param(0);
    let one = f.constant(1.0);
    let two = f.constant(2.0);
    let ok = f.constant(1.0);
    let fail = f.constant(0.0);
    let x = f.copy(x0);

    let then_bb = f.new_block();
    let exit_ok = f.new_block();
    f.cond_br(Some(0), x, Cmp::Lt, one, then_bb, exit_ok);

    f.switch_to(then_bb);
    let xp = f.bin(BinOp::Add, x, one, Some(0));
    f.assign(x, xp);
    let assert_ok = f.new_block();
    let assert_fail = f.new_block();
    f.cond_br(Some(1), x, Cmp::Lt, two, assert_ok, assert_fail);
    f.switch_to(assert_ok);
    f.ret(Some(ok));
    f.switch_to(assert_fail);
    f.ret(Some(fail));

    f.switch_to(exit_ok);
    f.ret(Some(ok));
    f.finish();
    mb.build()
}

/// Fig. 1(b) of the paper: as [`fig1a_program`] but with `x = x + tan(x)`,
/// the variant SMT solvers struggle with because `tan` is not standardized.
pub fn fig1b_program() -> Module {
    let mut mb = ModuleBuilder::new();
    let mut f = mb.function("prog", 1);
    let x0 = f.param(0);
    let one = f.constant(1.0);
    let two = f.constant(2.0);
    let ok = f.constant(1.0);
    let fail = f.constant(0.0);
    let x = f.copy(x0);

    let then_bb = f.new_block();
    let exit_ok = f.new_block();
    f.cond_br(Some(0), x, Cmp::Lt, one, then_bb, exit_ok);

    f.switch_to(then_bb);
    let t = f.un(UnOp::Tan, x, Some(0));
    let xp = f.bin(BinOp::Add, x, t, Some(1));
    f.assign(x, xp);
    let assert_ok = f.new_block();
    let assert_fail = f.new_block();
    f.cond_br(Some(1), x, Cmp::Lt, two, assert_ok, assert_fail);
    f.switch_to(assert_ok);
    f.ret(Some(ok));
    f.switch_to(assert_fail);
    f.ret(Some(fail));

    f.switch_to(exit_ok);
    f.ret(Some(ok));
    f.finish();
    mb.build()
}

/// The Section 5.2 example `void Prog(double x){ if (x == 0) ...; }` used to
/// illustrate Limitation 2 (a naively constructed weak distance `w += x*x`
/// underflows to zero for tiny nonzero `x`).
pub fn eq_zero_program() -> Module {
    let mut mb = ModuleBuilder::new();
    let mut f = mb.function("prog", 1);
    let x = f.param(0);
    let zero = f.constant(0.0);
    let hit = f.new_block();
    let miss = f.new_block();
    f.cond_br(Some(0), x, Cmp::Eq, zero, hit, miss);
    f.switch_to(hit);
    let one = f.constant(1.0);
    f.ret(Some(one));
    f.switch_to(miss);
    f.ret(Some(zero));
    f.finish();
    mb.build()
}

/// A straight-line polynomial evaluation with one guarded comparison at the
/// end: `prog(x) = |p(x)| where p is a degree-`degree` Horner chain`, every
/// multiply-add pair carrying an instrumentation site (like an
/// overflow-instrumented numeric kernel). The single conditional branch
/// compares the result against 1 with both successors returning, so the
/// program has no loops and no calls — the best case for the lanewise
/// kernel backend and the reference workload of the `kernel_speedup`
/// experiment.
pub fn horner_program(degree: usize) -> Module {
    let mut mb = ModuleBuilder::new();
    let mut f = mb.function("prog", 1);
    let x = f.param(0);
    let mut acc = f.constant(1.0);
    let mut site = 0u32;
    for i in 0..degree {
        // Alternate small coefficients so intermediate values stay finite
        // over wide input ranges.
        let c = f.constant(if i % 2 == 0 { 0.5 } else { -0.25 });
        let m = f.bin(BinOp::Mul, acc, x, Some(site));
        let a = f.bin(BinOp::Add, m, c, Some(site + 1));
        site += 2;
        acc = a;
    }
    let absval = f.un(UnOp::Abs, acc, Some(site));
    let one = f.constant(1.0);
    let small = f.new_block();
    let large = f.new_block();
    f.cond_br(Some(0), absval, Cmp::Le, one, small, large);
    f.switch_to(small);
    f.ret(Some(absval));
    f.switch_to(large);
    let inv = f.bin(BinOp::Div, one, absval, None);
    f.ret(Some(inv));
    f.finish();
    mb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::ModuleProgram;
    use crate::validate::validate;
    use fp_runtime::{Analyzable, NullObserver, TraceRecorder};

    #[test]
    fn all_example_programs_validate() {
        for m in [
            fig2_program(),
            fig1a_program(),
            fig1b_program(),
            eq_zero_program(),
            horner_program(8),
        ] {
            assert_eq!(validate(&m), Ok(()));
        }
    }

    #[test]
    fn horner_program_is_kernel_eligible_and_bounded() {
        let p = ModuleProgram::new(horner_program(12), "prog").unwrap();
        assert!(p.kernel_eligible());
        let v = p.run(&[0.75], &mut NullObserver).unwrap();
        assert!(v.is_finite() && (0.0..=1.0).contains(&v), "v = {v}");
        let mut rec = TraceRecorder::new();
        p.run(&[2.0], &mut rec);
        assert_eq!(rec.ops().count(), 12 * 2 + 1);
        assert_eq!(rec.branches().count(), 1);
    }

    #[test]
    fn fig2_semantics_match_the_paper() {
        let p = ModuleProgram::new(fig2_program(), "prog").unwrap();
        // x = 0.5: both branches taken, result 0.5 + 1 - 1 = 0.5.
        assert_eq!(p.run(&[0.5], &mut NullObserver), Some(0.5));
        // x = 3: no branch taken.
        assert_eq!(p.run(&[3.0], &mut NullObserver), Some(3.0));
        // x = -3: first branch taken (x becomes -2), y = 4 <= 4 so second taken.
        assert_eq!(p.run(&[-3.0], &mut NullObserver), Some(-3.0));
        // x = 1.5: first branch not taken, y = 2.25 <= 4 so second taken.
        assert_eq!(p.run(&[1.5], &mut NullObserver), Some(0.5));
    }

    #[test]
    fn fig2_branch_events_expose_boundary_residuals() {
        let p = ModuleProgram::new(fig2_program(), "prog").unwrap();
        let mut rec = TraceRecorder::new();
        p.run(&[2.0], &mut rec);
        let branches: Vec<_> = rec.branches().collect();
        assert_eq!(branches.len(), 2);
        // x = 2: |x - 1| = 1 at the first branch, y = 4 so |y - 4| = 0 at the second.
        assert_eq!(branches[0].boundary_residual(), 1.0);
        assert_eq!(branches[1].boundary_residual(), 0.0);
    }

    #[test]
    fn fig1a_assertion_fails_for_the_motivating_input() {
        let p = ModuleProgram::new(fig1a_program(), "prog").unwrap();
        // The counterexample of Section 1: 0.9999999999999999 + 1 rounds to 2.
        assert_eq!(p.run(&[0.999_999_999_999_999_9], &mut NullObserver), Some(0.0));
        // An ordinary input satisfies the assertion.
        assert_eq!(p.run(&[0.5], &mut NullObserver), Some(1.0));
        // Inputs >= 1 never reach the assertion.
        assert_eq!(p.run(&[1.5], &mut NullObserver), Some(1.0));
    }

    #[test]
    fn fig1b_uses_tan() {
        let p = ModuleProgram::new(fig1b_program(), "prog").unwrap();
        let mut rec = TraceRecorder::new();
        p.run(&[0.5], &mut rec);
        assert!(rec
            .ops()
            .any(|o| o.op == fp_runtime::FpOp::Tan), "tan site not observed");
    }

    #[test]
    fn eq_zero_program_distinguishes_zero() {
        let p = ModuleProgram::new(eq_zero_program(), "prog").unwrap();
        assert_eq!(p.run(&[0.0], &mut NullObserver), Some(1.0));
        assert_eq!(p.run(&[1.0e-200], &mut NullObserver), Some(0.0));
    }
}
