//! The IR interpreter and its [`Analyzable`] adapter.
//!
//! # Batch interpretation
//!
//! Interpreting one input pays a fixed setup cost — allocating a register
//! frame, materializing the module's global variables, looking up the entry
//! function. [`Interpreter::execute_batch`] and the [`BatchExecutor`]
//! returned by [`ModuleProgram`]'s [`Analyzable::batch_executor`] pay that
//! cost once and run N inputs over the decoded program, reusing register
//! frames (a per-state frame pool also serves recursive calls) and the
//! globals buffer. Results and reported events are bit-identical to
//! interpreting each input on its own.
//!
//! # Cancellation
//!
//! The interpreter polls a [`CancelToken`] every
//! [`CANCEL_POLL_INTERVAL`] executed instructions, so a long-running
//! interpreted program stops promptly when the parallel engine cancels a
//! losing portfolio backend — instead of ignoring the token until the next
//! evaluation boundary. A cancelled execution returns
//! [`ExecError::Cancelled`].

use crate::analysis::StaticInfo;
use crate::ir::{BlockId, FuncId, Inst, Module, Terminator};
use fp_runtime::{
    Analyzable, BatchExecutor, BranchId, BranchSite, CancelToken, Ctx, Interval, KernelPolicy,
    Observer, OpId, OpSite, Reachability,
};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// How often (in executed instructions) the interpreter polls its
/// [`CancelToken`]. Polling is a relaxed atomic load; every 256
/// instructions keeps the overhead unmeasurable while bounding the
/// response latency to cancellation.
pub const CANCEL_POLL_INTERVAL: u64 = 256;

/// Errors raised while interpreting a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The per-execution instruction budget was exhausted (runaway loop).
    OutOfFuel,
    /// The call stack exceeded its depth limit (runaway recursion).
    CallDepthExceeded,
    /// The named entry function does not exist.
    NoSuchFunction(String),
    /// The number of arguments did not match the entry function's arity.
    ArityMismatch {
        /// Expected number of parameters.
        expected: usize,
        /// Provided number of arguments.
        got: usize,
    },
    /// The execution's [`CancelToken`] was cancelled mid-interpretation.
    Cancelled,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::OutOfFuel => write!(f, "execution exceeded its instruction budget"),
            ExecError::CallDepthExceeded => write!(f, "call depth limit exceeded"),
            ExecError::NoSuchFunction(name) => write!(f, "no function named `{name}`"),
            ExecError::ArityMismatch { expected, got } => {
                write!(f, "expected {expected} arguments, got {got}")
            }
            ExecError::Cancelled => write!(f, "execution was cancelled"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Interprets IR modules, reporting instrumented operations and branches as
/// [`fp_runtime`] events.
#[derive(Debug, Clone)]
pub struct Interpreter {
    /// Maximum number of instructions executed per call to
    /// [`Interpreter::execute`] (guards against non-terminating loops).
    pub fuel: u64,
    /// Maximum call depth.
    pub max_call_depth: usize,
    /// Cooperative cancellation, polled every [`CANCEL_POLL_INTERVAL`]
    /// instructions. The default token is never cancelled.
    pub cancel: CancelToken,
}

impl Default for Interpreter {
    fn default() -> Self {
        Interpreter {
            fuel: 2_000_000,
            max_call_depth: 64,
            cancel: CancelToken::new(),
        }
    }
}

pub(crate) struct ExecState<'a> {
    globals: Vec<f64>,
    fuel: u64,
    max_depth: usize,
    module: &'a Module,
    cancel: &'a CancelToken,
    /// Retired register frames, reused by later calls (and later batch
    /// inputs) instead of allocating a fresh `Vec` per frame.
    frames: Vec<Vec<f64>>,
}

impl<'a> ExecState<'a> {
    pub(crate) fn new(interpreter: &'a Interpreter, module: &'a Module) -> Self {
        ExecState {
            globals: module.globals.iter().map(|g| g.init).collect(),
            fuel: interpreter.fuel,
            max_depth: interpreter.max_call_depth,
            module,
            cancel: &interpreter.cancel,
            frames: Vec::new(),
        }
    }

    /// A state for resuming one lane of the lanewise kernel on the scalar
    /// interpreter: the lane's globals and the fuel it has left, exactly as
    /// a from-scratch scalar execution would hold at the same point.
    pub(crate) fn for_resume(
        interpreter: &'a Interpreter,
        module: &'a Module,
        fuel: u64,
        globals: Vec<f64>,
    ) -> Self {
        ExecState {
            globals,
            fuel,
            max_depth: interpreter.max_call_depth,
            module,
            cancel: &interpreter.cancel,
            frames: Vec::new(),
        }
    }

    /// Hands the globals buffer back, so the lanewise kernel can recycle
    /// the allocation across lane resumes.
    pub(crate) fn into_globals(self) -> Vec<f64> {
        self.globals
    }

    /// Rearms the state for the next input of a batch: fresh fuel, globals
    /// back to their initial values. Pooled frames stay pooled.
    pub(crate) fn reset(&mut self, interpreter: &Interpreter) {
        self.fuel = interpreter.fuel;
        self.globals.clear();
        self.globals.extend(self.module.globals.iter().map(|g| g.init));
    }

    /// Charges one instruction: fuel accounting plus the periodic
    /// cancellation poll.
    fn tick(&mut self) -> Result<(), ExecError> {
        if self.fuel == 0 {
            return Err(ExecError::OutOfFuel);
        }
        self.fuel -= 1;
        if self.fuel.is_multiple_of(CANCEL_POLL_INTERVAL) && self.cancel.is_cancelled() {
            return Err(ExecError::Cancelled);
        }
        Ok(())
    }

    fn take_frame(&mut self, num_regs: usize) -> Vec<f64> {
        let mut frame = self.frames.pop().unwrap_or_default();
        frame.clear();
        frame.resize(num_regs, 0.0);
        frame
    }

    fn put_frame(&mut self, frame: Vec<f64>) {
        self.frames.push(frame);
    }
}

impl Interpreter {
    /// Creates an interpreter with the default fuel and call-depth limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the instruction budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Shares a cancellation token with this interpreter: once the token
    /// (or an ancestor) is cancelled, in-flight executions stop within
    /// [`CANCEL_POLL_INTERVAL`] instructions and report
    /// [`ExecError::Cancelled`].
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Executes `func` of `module` on `args`.
    ///
    /// Returns the function's return value (`None` for a `ret` without
    /// value, or when an observer requested early termination).
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on arity mismatch, fuel exhaustion, call
    /// stack overflow or cancellation.
    pub fn execute(
        &self,
        module: &Module,
        func: FuncId,
        args: &[f64],
        ctx: &mut Ctx<'_>,
    ) -> Result<Option<f64>, ExecError> {
        let function = module.function(func);
        if args.len() != function.num_params {
            return Err(ExecError::ArityMismatch {
                expected: function.num_params,
                got: args.len(),
            });
        }
        let mut state = ExecState::new(self, module);
        Self::exec_function(&mut state, func, args, ctx, 0)
    }

    /// Executes and also returns the final values of the module's globals
    /// (used by weak-distance wrappers that read `w` after the call).
    ///
    /// # Errors
    ///
    /// Same as [`Interpreter::execute`].
    pub fn execute_with_globals(
        &self,
        module: &Module,
        func: FuncId,
        args: &[f64],
        ctx: &mut Ctx<'_>,
    ) -> Result<(Option<f64>, Vec<f64>), ExecError> {
        let function = module.function(func);
        if args.len() != function.num_params {
            return Err(ExecError::ArityMismatch {
                expected: function.num_params,
                got: args.len(),
            });
        }
        let mut state = ExecState::new(self, module);
        let ret = Self::exec_function(&mut state, func, args, ctx, 0)?;
        Ok((ret, state.globals))
    }

    /// Executes and also reports how many instructions ran (the fuel
    /// consumed), the measurement behind the `opt_speedup` benchmark's
    /// per-evaluation instruction counts.
    ///
    /// # Errors
    ///
    /// Same as [`Interpreter::execute`].
    pub fn execute_counting(
        &self,
        module: &Module,
        func: FuncId,
        args: &[f64],
        ctx: &mut Ctx<'_>,
    ) -> Result<(Option<f64>, u64), ExecError> {
        let function = module.function(func);
        if args.len() != function.num_params {
            return Err(ExecError::ArityMismatch {
                expected: function.num_params,
                got: args.len(),
            });
        }
        let mut state = ExecState::new(self, module);
        let ret = Self::exec_function(&mut state, func, args, ctx, 0)?;
        Ok((ret, self.fuel - state.fuel))
    }

    /// Batch-interpret mode: sets the program up once (entry lookup,
    /// globals buffer, register-frame pool) and runs every input of
    /// `inputs` over it, giving each input a fresh probe context over
    /// `observer` and its full fuel budget. Results and reported events are
    /// bit-identical to calling [`Interpreter::execute`] once per input.
    ///
    /// # Errors
    ///
    /// Stops at the first input whose execution fails, propagating its
    /// [`ExecError`].
    pub fn execute_batch(
        &self,
        module: &Module,
        func: FuncId,
        inputs: &[Vec<f64>],
        observer: &mut dyn Observer,
    ) -> Result<Vec<Option<f64>>, ExecError> {
        let function = module.function(func);
        let mut state = ExecState::new(self, module);
        let mut results = Vec::with_capacity(inputs.len());
        for input in inputs {
            if input.len() != function.num_params {
                return Err(ExecError::ArityMismatch {
                    expected: function.num_params,
                    got: input.len(),
                });
            }
            state.reset(self);
            let mut ctx = Ctx::new(observer);
            results.push(Self::exec_function(&mut state, func, input, &mut ctx, 0)?);
        }
        Ok(results)
    }

    pub(crate) fn exec_function(
        state: &mut ExecState<'_>,
        func: FuncId,
        args: &[f64],
        ctx: &mut Ctx<'_>,
        depth: usize,
    ) -> Result<Option<f64>, ExecError> {
        if depth > state.max_depth {
            return Err(ExecError::CallDepthExceeded);
        }
        let function = state.module.function(func);
        let mut regs = state.take_frame(function.num_regs);
        let result =
            Self::exec_in_frame(state, func, &mut regs, args, ctx, depth, function.entry(), 0);
        state.put_frame(regs);
        result
    }

    /// The interpreter core loop, entered at `(start_block, start_inst)`.
    ///
    /// Fresh executions enter at `(entry, 0)`; the lanewise kernel enters
    /// mid-function to finish a lane that left the lockstep wave (a
    /// divergent branch, an observer stop, an unsupported instruction) with
    /// the lane's registers, globals and remaining fuel carried over — so
    /// the continuation is bit-identical to having interpreted the lane
    /// from scratch.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn exec_in_frame(
        state: &mut ExecState<'_>,
        func: FuncId,
        regs: &mut [f64],
        args: &[f64],
        ctx: &mut Ctx<'_>,
        depth: usize,
        start_block: BlockId,
        start_inst: usize,
    ) -> Result<Option<f64>, ExecError> {
        let function = state.module.function(func);
        let mut block = start_block;
        let mut first = start_inst;
        loop {
            let b = function.block(block);
            for inst in &b.insts[first.min(b.insts.len())..] {
                state.tick()?;
                if ctx.stopped() {
                    return Ok(None);
                }
                match inst {
                    Inst::Const { dst, value } => regs[dst.0] = *value,
                    Inst::Copy { dst, src } => regs[dst.0] = regs[src.0],
                    Inst::Param { dst, index } => regs[dst.0] = args[*index],
                    Inst::Bin {
                        dst,
                        op,
                        lhs,
                        rhs,
                        site,
                    } => {
                        let v = op.apply(regs[lhs.0], regs[rhs.0]);
                        if let Some(s) = site {
                            ctx.op(s.0, op.event_kind(), v);
                        }
                        regs[dst.0] = v;
                    }
                    Inst::Un { dst, op, arg, site } => {
                        let v = op.apply(regs[arg.0]);
                        if let Some(s) = site {
                            ctx.op(s.0, op.event_kind(), v);
                        }
                        regs[dst.0] = v;
                    }
                    Inst::Cmp { dst, cmp, lhs, rhs } => {
                        regs[dst.0] = if cmp.eval(regs[lhs.0], regs[rhs.0]) {
                            1.0
                        } else {
                            0.0
                        };
                    }
                    Inst::Select {
                        dst,
                        cond,
                        if_true,
                        if_false,
                    } => {
                        regs[dst.0] = if regs[cond.0] != 0.0 {
                            regs[if_true.0]
                        } else {
                            regs[if_false.0]
                        };
                    }
                    Inst::Call { dst, func, args: call_args } => {
                        let vals: Vec<f64> = call_args.iter().map(|r| regs[r.0]).collect();
                        let ret = Self::exec_function(state, *func, &vals, ctx, depth + 1)?;
                        regs[dst.0] = ret.unwrap_or(f64::NAN);
                        if ctx.stopped() {
                            return Ok(None);
                        }
                    }
                    Inst::LoadGlobal { dst, global } => regs[dst.0] = state.globals[global.0],
                    Inst::StoreGlobal { global, src } => state.globals[global.0] = regs[src.0],
                }
            }
            first = 0;
            state.tick()?;
            match &b.term {
                Terminator::Jump(next) => block = *next,
                Terminator::CondBr {
                    site,
                    lhs,
                    cmp,
                    rhs,
                    then_bb,
                    else_bb,
                } => {
                    let taken = if let Some(s) = site {
                        ctx.branch(s.0, regs[lhs.0], *cmp, regs[rhs.0])
                    } else {
                        cmp.eval(regs[lhs.0], regs[rhs.0])
                    };
                    if ctx.stopped() {
                        return Ok(None);
                    }
                    block = if taken { *then_bb } else { *else_bb };
                }
                Terminator::Return(val) => return Ok(val.map(|r| regs[r.0])),
            }
        }
    }
}

/// An IR program exposed to the analyses: a module, an entry function and a
/// search domain.
///
/// Sites are reported with labels derived from the IR text, which is what an
/// automatic instrumentation pipeline can reasonably produce.
#[derive(Debug, Clone)]
pub struct ModuleProgram {
    module: Module,
    entry: FuncId,
    name: String,
    domain: Vec<Interval>,
    interpreter: Interpreter,
    /// Lazily computed static analysis (CFGs, liveness layouts, wave
    /// safety, interval reachability), shared with every clone taken after
    /// the first query. Reset by [`ModuleProgram::with_domain`] — the
    /// interval pass is seeded from the domain.
    statics: OnceLock<Arc<StaticInfo>>,
}

impl ModuleProgram {
    /// Wraps `module` with the function named `entry` as the program under
    /// analysis. Returns `None` if the function does not exist.
    pub fn new(module: Module, entry: &str) -> Option<Self> {
        let id = module.function_by_name(entry)?;
        let num_params = module.function(id).num_params;
        Some(ModuleProgram {
            name: format!("{entry} (fpir)"),
            entry: id,
            module,
            domain: vec![Interval::whole(); num_params],
            interpreter: Interpreter::default(),
            statics: OnceLock::new(),
        })
    }

    /// Sets the search domain.
    ///
    /// # Panics
    ///
    /// Panics if the arity does not match the entry function.
    pub fn with_domain(mut self, domain: Vec<Interval>) -> Self {
        assert_eq!(
            domain.len(),
            self.module.function(self.entry).num_params,
            "domain arity mismatch"
        );
        self.domain = domain;
        // The interval abstract interpreter is seeded from the domain, so
        // any cached analysis is stale now.
        self.statics = OnceLock::new();
        self
    }

    /// Sets the interpreter configuration.
    pub fn with_interpreter(mut self, interpreter: Interpreter) -> Self {
        self.interpreter = interpreter;
        self
    }

    /// Shares a cancellation token with the program's interpreter (see
    /// [`Interpreter::with_cancel`]); a cancelled execution reports no
    /// result, exactly like an observer-initiated stop.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.interpreter.cancel = cancel;
        self
    }

    /// The underlying module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The entry function.
    pub fn entry(&self) -> FuncId {
        self.entry
    }

    /// The interpreter configuration (fuel, call depth, cancellation),
    /// shared with the lanewise kernel so both backends stop at exactly
    /// the same points.
    pub(crate) fn interpreter(&self) -> &Interpreter {
        &self.interpreter
    }

    /// The cached static analysis of this program: CFGs, dominators,
    /// liveness frame layouts, wave safety and interval reachability
    /// (computed on first use, seeded from the search domain).
    pub fn static_info(&self) -> &StaticInfo {
        self.statics
            .get_or_init(|| Arc::new(StaticInfo::compute(&self.module, self.entry, &self.domain)))
    }

    /// Whether [`Analyzable::batch_executor`] hands out the lanewise kernel
    /// under [`KernelPolicy::Auto`]: the entry function must be *wave-safe*
    /// per [`crate::analysis::eligibility`] — non-recursive, with every
    /// reachable call naming an existing function of matching arity whose
    /// callee is itself wave-safe, so the whole call tree runs as lockstep
    /// frames. (The old heuristic demanded a call-free entry, which forced
    /// every instrumented `W` module onto the scalar interpreter.)
    pub fn kernel_eligible(&self) -> bool {
        self.static_info().eligible
    }

    /// Executes the entry function and also returns the final global values.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors ([`ExecError`]).
    pub fn run_with_globals(
        &self,
        input: &[f64],
        observer: &mut dyn fp_runtime::Observer,
    ) -> Result<(Option<f64>, Vec<f64>), ExecError> {
        let mut ctx = Ctx::new(observer);
        self.interpreter
            .execute_with_globals(&self.module, self.entry, input, &mut ctx)
    }

    /// Executes the entry function on `input` under a silent observer and
    /// returns how many instructions ran, or `None` if the execution
    /// errored. Used by benchmarks to measure specialization wins.
    pub fn instructions_executed(&self, input: &[f64]) -> Option<u64> {
        let mut observer = fp_runtime::NullObserver;
        let mut ctx = Ctx::new(&mut observer);
        self.interpreter
            .execute_counting(&self.module, self.entry, input, &mut ctx)
            .ok()
            .map(|(_, n)| n)
    }

    /// Runs the optimizing pass pipeline ([`crate::opt::specialize`])
    /// against `spec` and returns the specialized program together with the
    /// pipeline's statistics, or `None` when the policy forbids it, the
    /// rewrite failed translation validation, or (`Auto`) nothing was
    /// removed.
    ///
    /// The specialized program keeps this program's domain and interpreter
    /// configuration; its static analysis is recomputed from the optimized
    /// module, so liveness-compacted frame layouts shrink along with the
    /// code.
    pub fn specialized_with_stats(
        &self,
        spec: &fp_runtime::ObservationSpec,
        policy: fp_runtime::OptPolicy,
    ) -> Option<(ModuleProgram, crate::opt::OptStats)> {
        use fp_runtime::OptPolicy;
        if matches!(policy, OptPolicy::Never) {
            return None;
        }
        let (module, stats) =
            crate::opt::specialize(&self.module, self.entry, &self.domain, spec).ok()?;
        if matches!(policy, OptPolicy::Auto) && !stats.removed_anything() {
            return None;
        }
        let program = ModuleProgram {
            module,
            entry: self.entry,
            name: format!("{} [opt]", self.name),
            domain: self.domain.clone(),
            interpreter: self.interpreter.clone(),
            statics: OnceLock::new(),
        };
        Some((program, stats))
    }

    /// [`ModuleProgram::specialized_with_stats`] without the statistics.
    pub fn specialized(
        &self,
        spec: &fp_runtime::ObservationSpec,
        policy: fp_runtime::OptPolicy,
    ) -> Option<ModuleProgram> {
        self.specialized_with_stats(spec, policy).map(|(p, _)| p)
    }
}

/// One scalar-session execution: the arity check, state rearm and
/// entry-function run shared by the interpreter session and the lanewise
/// kernel's [`BatchExecutor::execute_one`] — one definition, so the two
/// backends cannot drift apart.
pub(crate) fn run_session_one(
    program: &ModuleProgram,
    state: &mut ExecState<'_>,
    input: &[f64],
    observer: &mut dyn Observer,
) -> Option<f64> {
    if input.len() != program.module.function(program.entry).num_params {
        return None;
    }
    state.reset(&program.interpreter);
    let mut ctx = Ctx::new(observer);
    Interpreter::exec_function(state, program.entry, input, &mut ctx, 0)
        .ok()
        .flatten()
}

/// The batch-interpret session handed out by [`ModuleProgram`]'s
/// [`Analyzable::batch_executor`]: one [`ExecState`] (globals buffer +
/// register-frame pool) reused across every input of the batch.
struct InterpSession<'a> {
    program: &'a ModuleProgram,
    state: ExecState<'a>,
}

impl BatchExecutor for InterpSession<'_> {
    fn execute_one(&mut self, input: &[f64], observer: &mut dyn Observer) -> Option<f64> {
        run_session_one(self.program, &mut self.state, input, observer)
    }
}

impl Analyzable for ModuleProgram {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_inputs(&self) -> usize {
        self.module.function(self.entry).num_params
    }

    fn search_domain(&self) -> Vec<Interval> {
        self.domain.clone()
    }

    fn op_sites(&self) -> Vec<OpSite> {
        self.static_info().op_sites.clone()
    }

    fn branch_sites(&self) -> Vec<BranchSite> {
        self.static_info().branch_sites.clone()
    }

    fn branch_side_reachability(&self, site: BranchId, taken: bool) -> Reachability {
        match self.static_info().reach.branches.get(&site.0) {
            Some(b) if taken => b.then_reach,
            Some(b) => b.else_reach,
            None => Reachability::Unknown,
        }
    }

    fn branch_boundary_reachability(&self, site: BranchId) -> Reachability {
        match self.static_info().reach.branches.get(&site.0) {
            Some(b) => b.boundary_reach,
            None => Reachability::Unknown,
        }
    }

    fn op_site_reachability(&self, site: OpId) -> Reachability {
        match self.static_info().reach.ops.get(&site.0) {
            Some(o) => o.reach,
            None => Reachability::Unknown,
        }
    }

    fn execute(&self, input: &[f64], ctx: &mut Ctx<'_>) -> Option<f64> {
        self.interpreter
            .execute(&self.module, self.entry, input, ctx)
            .ok()
            .flatten()
    }

    /// Selects the batch backend: the lanewise SoA kernel
    /// ([`crate::kernel::KernelExecutor`]) when the policy and the module
    /// allow it, the per-input interpreter session otherwise. Both are
    /// bit-identical to [`Interpreter::execute`] per input.
    fn batch_executor(&self, policy: KernelPolicy) -> Box<dyn BatchExecutor + '_> {
        let use_kernel = match policy {
            KernelPolicy::Never => false,
            KernelPolicy::Always => true,
            KernelPolicy::Auto => self.kernel_eligible(),
        };
        if use_kernel {
            Box::new(crate::kernel::KernelExecutor::new(self))
        } else {
            Box::new(InterpSession {
                state: ExecState::new(&self.interpreter, &self.module),
                program: self,
            })
        }
    }

    /// Runs the optimizing pipeline and hands the result back as a boxed
    /// [`Analyzable`] (see [`ModuleProgram::specialized_with_stats`]).
    fn specialize(
        &self,
        spec: &fp_runtime::ObservationSpec,
        policy: fp_runtime::OptPolicy,
    ) -> Option<Box<dyn Analyzable>> {
        self.specialized(spec, policy)
            .map(|p| Box::new(p) as Box<dyn Analyzable>)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::ir::{BinOp, UnOp};
    use fp_runtime::{Cmp, NullObserver, TraceRecorder};

    /// `double f(double x) { if (x <= 1) x = x + 1; return x * x; }`
    fn square_gate() -> Module {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.function("f", 1);
        let x = f.param(0);
        let one = f.constant(1.0);
        let xvar = f.copy(x);
        let then_bb = f.new_block();
        let join = f.new_block();
        f.cond_br(Some(0), xvar, Cmp::Le, one, then_bb, join);
        f.switch_to(then_bb);
        let inc = f.bin(BinOp::Add, xvar, one, Some(0));
        f.assign(xvar, inc);
        f.jump(join);
        f.switch_to(join);
        let sq = f.bin(BinOp::Mul, xvar, xvar, Some(1));
        f.ret(Some(sq));
        f.finish();
        mb.build()
    }

    /// `while (x > 0) x = x + 1;` — never terminates for positive inputs.
    fn spin_module() -> Module {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.function("spin", 1);
        let x = f.param(0);
        let zero = f.constant(0.0);
        let one = f.constant(1.0);
        let xvar = f.copy(x);
        let header = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.jump(header);
        f.switch_to(header);
        f.cond_br(None, xvar, Cmp::Gt, zero, body, exit);
        f.switch_to(body);
        let next = f.bin(BinOp::Add, xvar, one, None);
        f.assign(xvar, next);
        f.jump(header);
        f.switch_to(exit);
        f.ret(Some(xvar));
        f.finish();
        mb.build()
    }

    #[test]
    fn interprets_branches_and_arithmetic() {
        let m = square_gate();
        let p = ModuleProgram::new(m, "f").unwrap();
        assert_eq!(p.run(&[0.0], &mut NullObserver), Some(1.0));
        assert_eq!(p.run(&[3.0], &mut NullObserver), Some(9.0));
        assert_eq!(p.run(&[1.0], &mut NullObserver), Some(4.0));
    }

    #[test]
    fn emits_events_for_labelled_sites() {
        let m = square_gate();
        let p = ModuleProgram::new(m, "f").unwrap();
        let mut rec = TraceRecorder::new();
        p.run(&[0.5], &mut rec);
        assert_eq!(rec.branches().count(), 1);
        assert_eq!(rec.ops().count(), 2);
        let br = rec.branches().next().unwrap();
        assert_eq!(br.lhs, 0.5);
        assert_eq!(br.rhs, 1.0);
        assert!(br.taken);
    }

    #[test]
    fn site_metadata_is_reported() {
        let p = ModuleProgram::new(square_gate(), "f").unwrap();
        assert_eq!(p.num_inputs(), 1);
        assert_eq!(p.op_sites().len(), 2);
        assert_eq!(p.branch_sites().len(), 1);
        assert!(p.branch_sites()[0].label.contains("<="));
    }

    #[test]
    fn loops_terminate_via_fuel() {
        let m = spin_module();
        let interp = Interpreter::default().with_fuel(10_000);
        let id = m.function_by_name("spin").unwrap();
        let mut obs = NullObserver;
        let mut ctx = Ctx::new(&mut obs);
        let err = interp.execute(&m, id, &[1.0], &mut ctx).unwrap_err();
        assert_eq!(err, ExecError::OutOfFuel);
        // Negative input exits immediately.
        let mut ctx = Ctx::new(&mut obs);
        assert_eq!(interp.execute(&m, id, &[-1.0], &mut ctx), Ok(Some(-1.0)));
    }

    #[test]
    fn loops_compute_iteratively() {
        // sum = 0; i = x; while (i > 0) { sum = sum + i; i = i - 1; } return sum
        let mut mb = ModuleBuilder::new();
        let mut f = mb.function("tri", 1);
        let x = f.param(0);
        let zero = f.constant(0.0);
        let one = f.constant(1.0);
        let sum = f.copy(zero);
        let i = f.copy(x);
        let header = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.jump(header);
        f.switch_to(header);
        f.cond_br(None, i, Cmp::Gt, zero, body, exit);
        f.switch_to(body);
        let ns = f.bin(BinOp::Add, sum, i, None);
        f.assign(sum, ns);
        let ni = f.bin(BinOp::Sub, i, one, None);
        f.assign(i, ni);
        f.jump(header);
        f.switch_to(exit);
        f.ret(Some(sum));
        f.finish();
        let m = mb.build();
        let p = ModuleProgram::new(m, "tri").unwrap();
        assert_eq!(p.run(&[5.0], &mut NullObserver), Some(15.0));
        assert_eq!(p.run(&[0.0], &mut NullObserver), Some(0.0));
    }

    #[test]
    fn calls_and_globals_work() {
        let mut mb = ModuleBuilder::new();
        let w = mb.global("w", 1.0);
        // callee(x): w = w * |x|; return x
        let mut callee = mb.function("callee", 1);
        let x = callee.param(0);
        let a = callee.un(UnOp::Abs, x, None);
        let wv = callee.load_global(w);
        let prod = callee.bin(BinOp::Mul, wv, a, None);
        callee.store_global(w, prod);
        callee.ret(Some(x));
        let callee_id = callee.finish();
        // main(x): callee(x); callee(x+1); return w
        let mut main = mb.function("main", 1);
        let x = main.param(0);
        let one = main.constant(1.0);
        let _ = main.call(callee_id, vec![x]);
        let xp1 = main.bin(BinOp::Add, x, one, None);
        let _ = main.call(callee_id, vec![xp1]);
        let back = main.load_global(w);
        main.ret(Some(back));
        main.finish();
        let m = mb.build();
        let p = ModuleProgram::new(m, "main").unwrap();
        assert_eq!(p.run(&[-3.0], &mut NullObserver), Some(6.0));
        // run_with_globals exposes the final w.
        let mut obs = NullObserver;
        let (ret, globals) = p.run_with_globals(&[2.0], &mut obs).unwrap();
        assert_eq!(ret, Some(6.0));
        assert_eq!(globals, vec![6.0]);
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let m = square_gate();
        let id = m.function_by_name("f").unwrap();
        let mut obs = NullObserver;
        let mut ctx = Ctx::new(&mut obs);
        let err = Interpreter::default()
            .execute(&m, id, &[1.0, 2.0], &mut ctx)
            .unwrap_err();
        assert_eq!(err, ExecError::ArityMismatch { expected: 1, got: 2 });
        assert!(err.to_string().contains("expected 1"));
    }

    #[test]
    fn precancelled_token_stops_a_high_iteration_program_immediately() {
        // The regression this pins down: the interpreter used to ignore
        // CancelToken entirely, so this program would grind through its
        // whole 100M-instruction budget before anyone could stop it.
        let m = spin_module();
        let id = m.function_by_name("spin").unwrap();
        let token = CancelToken::new();
        token.cancel();
        let interp = Interpreter::default()
            .with_fuel(100_000_000)
            .with_cancel(token);
        let mut obs = NullObserver;
        let mut ctx = Ctx::new(&mut obs);
        let started = std::time::Instant::now();
        let err = interp.execute(&m, id, &[1.0], &mut ctx).unwrap_err();
        assert_eq!(err, ExecError::Cancelled);
        // A poll fires within CANCEL_POLL_INTERVAL instructions; even a
        // slow CI machine interprets a few hundred instructions instantly.
        assert!(started.elapsed().as_secs() < 5);
    }

    #[test]
    fn concurrent_cancellation_interrupts_a_running_loop() {
        let m = spin_module();
        let id = m.function_by_name("spin").unwrap();
        let token = CancelToken::new();
        // Effectively unbounded fuel: only cancellation can stop the loop.
        let interp = Interpreter::default()
            .with_fuel(u64::MAX / 2)
            .with_cancel(token.clone());
        let err = std::thread::scope(|s| {
            let handle = s.spawn(|| {
                let mut obs = NullObserver;
                let mut ctx = Ctx::new(&mut obs);
                interp.execute(&m, id, &[1.0], &mut ctx).unwrap_err()
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            token.cancel();
            handle.join().expect("interpreter thread panicked")
        });
        assert_eq!(err, ExecError::Cancelled);
    }

    #[test]
    fn module_program_with_cancel_reports_no_result() {
        let token = CancelToken::new();
        token.cancel();
        let p = ModuleProgram::new(spin_module(), "spin")
            .unwrap()
            .with_interpreter(Interpreter::default().with_fuel(100_000_000))
            .with_cancel(token);
        assert_eq!(p.run(&[1.0], &mut NullObserver), None);
    }

    #[test]
    fn execute_batch_matches_scalar_execution() {
        let m = square_gate();
        let id = m.function_by_name("f").unwrap();
        let interp = Interpreter::default();
        let inputs: Vec<Vec<f64>> = (-10..10).map(|i| vec![i as f64 * 0.37]).collect();
        let mut obs = NullObserver;
        let batch = interp
            .execute_batch(&m, id, &inputs, &mut obs)
            .expect("batch runs");
        for (input, batched) in inputs.iter().zip(&batch) {
            let mut ctx = Ctx::new(&mut obs);
            let scalar = interp.execute(&m, id, input, &mut ctx).unwrap();
            assert_eq!(*batched, scalar, "input {input:?}");
        }
    }

    #[test]
    fn execute_batch_rejects_bad_arity_mid_batch() {
        let m = square_gate();
        let id = m.function_by_name("f").unwrap();
        let mut obs = NullObserver;
        let err = Interpreter::default()
            .execute_batch(&m, id, &[vec![1.0], vec![1.0, 2.0]], &mut obs)
            .unwrap_err();
        assert_eq!(err, ExecError::ArityMismatch { expected: 1, got: 2 });
    }

    #[test]
    fn batch_executor_reuses_state_without_changing_results_or_events() {
        // Globals must reset between batch inputs, frames must be reused,
        // and the event stream must be identical to scalar runs.
        let mut mb = ModuleBuilder::new();
        let w = mb.global("w", 1.0);
        let mut callee = mb.function("callee", 1);
        let x = callee.param(0);
        let a = callee.un(UnOp::Abs, x, Some(0));
        let wv = callee.load_global(w);
        let prod = callee.bin(BinOp::Mul, wv, a, Some(1));
        callee.store_global(w, prod);
        callee.ret(Some(x));
        let callee_id = callee.finish();
        let mut main = mb.function("main", 1);
        let x = main.param(0);
        let _ = main.call(callee_id, vec![x]);
        let back = main.load_global(w);
        main.ret(Some(back));
        main.finish();
        let p = ModuleProgram::new(mb.build(), "main").unwrap();

        let inputs: Vec<Vec<f64>> = vec![vec![-3.0], vec![2.0], vec![-0.5]];
        // The helper call is non-recursive with matching arity, so the
        // eligibility pass keeps the module on the lanewise kernel under
        // `Auto`; results and events must stay identical to scalar runs.
        assert!(p.kernel_eligible());
        let mut session = p.batch_executor(KernelPolicy::Auto);
        for input in &inputs {
            let mut batch_rec = TraceRecorder::new();
            let batched = session.execute_one(input, &mut batch_rec);
            let mut scalar_rec = TraceRecorder::new();
            let scalar = p.run(input, &mut scalar_rec);
            // w resets to 1.0 for every input, so main returns |x|.
            assert_eq!(batched, Some(input[0].abs()));
            assert_eq!(batched, scalar);
            assert_eq!(
                batch_rec.ops().collect::<Vec<_>>(),
                scalar_rec.ops().collect::<Vec<_>>()
            );
        }
        // Bad arity through the session reports "no result", like execute.
        assert_eq!(session.execute_one(&[1.0, 2.0], &mut NullObserver), None);
    }
}
