//! The IR interpreter and its [`Analyzable`] adapter.

use crate::ir::{FuncId, Inst, Module, Terminator};
use fp_runtime::{Analyzable, BranchSite, Ctx, Interval, OpSite};
use std::fmt;

/// Errors raised while interpreting a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The per-execution instruction budget was exhausted (runaway loop).
    OutOfFuel,
    /// The call stack exceeded its depth limit (runaway recursion).
    CallDepthExceeded,
    /// The named entry function does not exist.
    NoSuchFunction(String),
    /// The number of arguments did not match the entry function's arity.
    ArityMismatch {
        /// Expected number of parameters.
        expected: usize,
        /// Provided number of arguments.
        got: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::OutOfFuel => write!(f, "execution exceeded its instruction budget"),
            ExecError::CallDepthExceeded => write!(f, "call depth limit exceeded"),
            ExecError::NoSuchFunction(name) => write!(f, "no function named `{name}`"),
            ExecError::ArityMismatch { expected, got } => {
                write!(f, "expected {expected} arguments, got {got}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Interprets IR modules, reporting instrumented operations and branches as
/// [`fp_runtime`] events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interpreter {
    /// Maximum number of instructions executed per call to
    /// [`Interpreter::execute`] (guards against non-terminating loops).
    pub fuel: u64,
    /// Maximum call depth.
    pub max_call_depth: usize,
}

impl Default for Interpreter {
    fn default() -> Self {
        Interpreter {
            fuel: 2_000_000,
            max_call_depth: 64,
        }
    }
}

struct ExecState<'a> {
    globals: Vec<f64>,
    fuel: u64,
    max_depth: usize,
    module: &'a Module,
}

impl Interpreter {
    /// Creates an interpreter with the default fuel and call-depth limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the instruction budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Executes `func` of `module` on `args`.
    ///
    /// Returns the function's return value (`None` for a `ret` without
    /// value, or when an observer requested early termination).
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on arity mismatch, fuel exhaustion or call
    /// stack overflow.
    pub fn execute(
        &self,
        module: &Module,
        func: FuncId,
        args: &[f64],
        ctx: &mut Ctx<'_>,
    ) -> Result<Option<f64>, ExecError> {
        let function = module.function(func);
        if args.len() != function.num_params {
            return Err(ExecError::ArityMismatch {
                expected: function.num_params,
                got: args.len(),
            });
        }
        let mut state = ExecState {
            globals: module.globals.iter().map(|g| g.init).collect(),
            fuel: self.fuel,
            max_depth: self.max_call_depth,
            module,
        };
        Self::exec_function(&mut state, func, args, ctx, 0)
    }

    /// Executes and also returns the final values of the module's globals
    /// (used by weak-distance wrappers that read `w` after the call).
    ///
    /// # Errors
    ///
    /// Same as [`Interpreter::execute`].
    pub fn execute_with_globals(
        &self,
        module: &Module,
        func: FuncId,
        args: &[f64],
        ctx: &mut Ctx<'_>,
    ) -> Result<(Option<f64>, Vec<f64>), ExecError> {
        let function = module.function(func);
        if args.len() != function.num_params {
            return Err(ExecError::ArityMismatch {
                expected: function.num_params,
                got: args.len(),
            });
        }
        let mut state = ExecState {
            globals: module.globals.iter().map(|g| g.init).collect(),
            fuel: self.fuel,
            max_depth: self.max_call_depth,
            module,
        };
        let ret = Self::exec_function(&mut state, func, args, ctx, 0)?;
        Ok((ret, state.globals))
    }

    fn exec_function(
        state: &mut ExecState<'_>,
        func: FuncId,
        args: &[f64],
        ctx: &mut Ctx<'_>,
        depth: usize,
    ) -> Result<Option<f64>, ExecError> {
        if depth > state.max_depth {
            return Err(ExecError::CallDepthExceeded);
        }
        let function = state.module.function(func);
        let mut regs = vec![0.0f64; function.num_regs];
        let mut block = function.entry();
        loop {
            let b = function.block(block);
            for inst in &b.insts {
                if state.fuel == 0 {
                    return Err(ExecError::OutOfFuel);
                }
                state.fuel -= 1;
                if ctx.stopped() {
                    return Ok(None);
                }
                match inst {
                    Inst::Const { dst, value } => regs[dst.0] = *value,
                    Inst::Copy { dst, src } => regs[dst.0] = regs[src.0],
                    Inst::Param { dst, index } => regs[dst.0] = args[*index],
                    Inst::Bin {
                        dst,
                        op,
                        lhs,
                        rhs,
                        site,
                    } => {
                        let v = op.apply(regs[lhs.0], regs[rhs.0]);
                        if let Some(s) = site {
                            ctx.op(s.0, op.event_kind(), v);
                        }
                        regs[dst.0] = v;
                    }
                    Inst::Un { dst, op, arg, site } => {
                        let v = op.apply(regs[arg.0]);
                        if let Some(s) = site {
                            ctx.op(s.0, op.event_kind(), v);
                        }
                        regs[dst.0] = v;
                    }
                    Inst::Cmp { dst, cmp, lhs, rhs } => {
                        regs[dst.0] = if cmp.eval(regs[lhs.0], regs[rhs.0]) {
                            1.0
                        } else {
                            0.0
                        };
                    }
                    Inst::Select {
                        dst,
                        cond,
                        if_true,
                        if_false,
                    } => {
                        regs[dst.0] = if regs[cond.0] != 0.0 {
                            regs[if_true.0]
                        } else {
                            regs[if_false.0]
                        };
                    }
                    Inst::Call { dst, func, args: call_args } => {
                        let vals: Vec<f64> = call_args.iter().map(|r| regs[r.0]).collect();
                        let ret = Self::exec_function(state, *func, &vals, ctx, depth + 1)?;
                        regs[dst.0] = ret.unwrap_or(f64::NAN);
                        if ctx.stopped() {
                            return Ok(None);
                        }
                    }
                    Inst::LoadGlobal { dst, global } => regs[dst.0] = state.globals[global.0],
                    Inst::StoreGlobal { global, src } => state.globals[global.0] = regs[src.0],
                }
            }
            if state.fuel == 0 {
                return Err(ExecError::OutOfFuel);
            }
            state.fuel -= 1;
            match &b.term {
                Terminator::Jump(next) => block = *next,
                Terminator::CondBr {
                    site,
                    lhs,
                    cmp,
                    rhs,
                    then_bb,
                    else_bb,
                } => {
                    let taken = if let Some(s) = site {
                        ctx.branch(s.0, regs[lhs.0], *cmp, regs[rhs.0])
                    } else {
                        cmp.eval(regs[lhs.0], regs[rhs.0])
                    };
                    if ctx.stopped() {
                        return Ok(None);
                    }
                    block = if taken { *then_bb } else { *else_bb };
                }
                Terminator::Return(val) => return Ok(val.map(|r| regs[r.0])),
            }
        }
    }
}

/// An IR program exposed to the analyses: a module, an entry function and a
/// search domain.
///
/// Sites are reported with labels derived from the IR text, which is what an
/// automatic instrumentation pipeline can reasonably produce.
#[derive(Debug, Clone)]
pub struct ModuleProgram {
    module: Module,
    entry: FuncId,
    name: String,
    domain: Vec<Interval>,
    interpreter: Interpreter,
}

impl ModuleProgram {
    /// Wraps `module` with the function named `entry` as the program under
    /// analysis. Returns `None` if the function does not exist.
    pub fn new(module: Module, entry: &str) -> Option<Self> {
        let id = module.function_by_name(entry)?;
        let num_params = module.function(id).num_params;
        Some(ModuleProgram {
            name: format!("{entry} (fpir)"),
            entry: id,
            module,
            domain: vec![Interval::whole(); num_params],
            interpreter: Interpreter::default(),
        })
    }

    /// Sets the search domain.
    ///
    /// # Panics
    ///
    /// Panics if the arity does not match the entry function.
    pub fn with_domain(mut self, domain: Vec<Interval>) -> Self {
        assert_eq!(
            domain.len(),
            self.module.function(self.entry).num_params,
            "domain arity mismatch"
        );
        self.domain = domain;
        self
    }

    /// Sets the interpreter configuration.
    pub fn with_interpreter(mut self, interpreter: Interpreter) -> Self {
        self.interpreter = interpreter;
        self
    }

    /// The underlying module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The entry function.
    pub fn entry(&self) -> FuncId {
        self.entry
    }

    /// Executes the entry function and also returns the final global values.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors ([`ExecError`]).
    pub fn run_with_globals(
        &self,
        input: &[f64],
        observer: &mut dyn fp_runtime::Observer,
    ) -> Result<(Option<f64>, Vec<f64>), ExecError> {
        let mut ctx = Ctx::new(observer);
        self.interpreter
            .execute_with_globals(&self.module, self.entry, input, &mut ctx)
    }
}

impl Analyzable for ModuleProgram {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_inputs(&self) -> usize {
        self.module.function(self.entry).num_params
    }

    fn search_domain(&self) -> Vec<Interval> {
        self.domain.clone()
    }

    fn op_sites(&self) -> Vec<OpSite> {
        let mut sites = Vec::new();
        for block in &self.module.function(self.entry).blocks {
            for inst in &block.insts {
                match inst {
                    Inst::Bin { op, site: Some(s), .. } => {
                        sites.push(OpSite::new(s.0, op.event_kind(), inst.to_string()));
                    }
                    Inst::Un { op, site: Some(s), .. } => {
                        sites.push(OpSite::new(s.0, op.event_kind(), inst.to_string()));
                    }
                    _ => {}
                }
            }
        }
        sites
    }

    fn branch_sites(&self) -> Vec<BranchSite> {
        let mut sites = Vec::new();
        for block in &self.module.function(self.entry).blocks {
            if let Terminator::CondBr {
                site: Some(s), cmp, ..
            } = &block.term
            {
                sites.push(BranchSite::new(s.0, *cmp, block.term.to_string()));
            }
        }
        sites
    }

    fn execute(&self, input: &[f64], ctx: &mut Ctx<'_>) -> Option<f64> {
        self.interpreter
            .execute(&self.module, self.entry, input, ctx)
            .ok()
            .flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::ir::{BinOp, UnOp};
    use fp_runtime::{Cmp, NullObserver, TraceRecorder};

    /// `double f(double x) { if (x <= 1) x = x + 1; return x * x; }`
    fn square_gate() -> Module {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.function("f", 1);
        let x = f.param(0);
        let one = f.constant(1.0);
        let xvar = f.copy(x);
        let then_bb = f.new_block();
        let join = f.new_block();
        f.cond_br(Some(0), xvar, Cmp::Le, one, then_bb, join);
        f.switch_to(then_bb);
        let inc = f.bin(BinOp::Add, xvar, one, Some(0));
        f.assign(xvar, inc);
        f.jump(join);
        f.switch_to(join);
        let sq = f.bin(BinOp::Mul, xvar, xvar, Some(1));
        f.ret(Some(sq));
        f.finish();
        mb.build()
    }

    #[test]
    fn interprets_branches_and_arithmetic() {
        let m = square_gate();
        let p = ModuleProgram::new(m, "f").unwrap();
        assert_eq!(p.run(&[0.0], &mut NullObserver), Some(1.0));
        assert_eq!(p.run(&[3.0], &mut NullObserver), Some(9.0));
        assert_eq!(p.run(&[1.0], &mut NullObserver), Some(4.0));
    }

    #[test]
    fn emits_events_for_labelled_sites() {
        let m = square_gate();
        let p = ModuleProgram::new(m, "f").unwrap();
        let mut rec = TraceRecorder::new();
        p.run(&[0.5], &mut rec);
        assert_eq!(rec.branches().count(), 1);
        assert_eq!(rec.ops().count(), 2);
        let br = rec.branches().next().unwrap();
        assert_eq!(br.lhs, 0.5);
        assert_eq!(br.rhs, 1.0);
        assert!(br.taken);
    }

    #[test]
    fn site_metadata_is_reported() {
        let p = ModuleProgram::new(square_gate(), "f").unwrap();
        assert_eq!(p.num_inputs(), 1);
        assert_eq!(p.op_sites().len(), 2);
        assert_eq!(p.branch_sites().len(), 1);
        assert!(p.branch_sites()[0].label.contains("<="));
    }

    #[test]
    fn loops_terminate_via_fuel() {
        // while (x > 0) x = x + 1;  -- never terminates for positive x.
        let mut mb = ModuleBuilder::new();
        let mut f = mb.function("spin", 1);
        let x = f.param(0);
        let zero = f.constant(0.0);
        let one = f.constant(1.0);
        let xvar = f.copy(x);
        let header = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.jump(header);
        f.switch_to(header);
        f.cond_br(None, xvar, Cmp::Gt, zero, body, exit);
        f.switch_to(body);
        let next = f.bin(BinOp::Add, xvar, one, None);
        f.assign(xvar, next);
        f.jump(header);
        f.switch_to(exit);
        f.ret(Some(xvar));
        f.finish();
        let m = mb.build();
        let interp = Interpreter::default().with_fuel(10_000);
        let id = m.function_by_name("spin").unwrap();
        let mut obs = NullObserver;
        let mut ctx = Ctx::new(&mut obs);
        let err = interp.execute(&m, id, &[1.0], &mut ctx).unwrap_err();
        assert_eq!(err, ExecError::OutOfFuel);
        // Negative input exits immediately.
        let mut ctx = Ctx::new(&mut obs);
        assert_eq!(interp.execute(&m, id, &[-1.0], &mut ctx), Ok(Some(-1.0)));
    }

    #[test]
    fn loops_compute_iteratively() {
        // sum = 0; i = x; while (i > 0) { sum = sum + i; i = i - 1; } return sum
        let mut mb = ModuleBuilder::new();
        let mut f = mb.function("tri", 1);
        let x = f.param(0);
        let zero = f.constant(0.0);
        let one = f.constant(1.0);
        let sum = f.copy(zero);
        let i = f.copy(x);
        let header = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.jump(header);
        f.switch_to(header);
        f.cond_br(None, i, Cmp::Gt, zero, body, exit);
        f.switch_to(body);
        let ns = f.bin(BinOp::Add, sum, i, None);
        f.assign(sum, ns);
        let ni = f.bin(BinOp::Sub, i, one, None);
        f.assign(i, ni);
        f.jump(header);
        f.switch_to(exit);
        f.ret(Some(sum));
        f.finish();
        let m = mb.build();
        let p = ModuleProgram::new(m, "tri").unwrap();
        assert_eq!(p.run(&[5.0], &mut NullObserver), Some(15.0));
        assert_eq!(p.run(&[0.0], &mut NullObserver), Some(0.0));
    }

    #[test]
    fn calls_and_globals_work() {
        let mut mb = ModuleBuilder::new();
        let w = mb.global("w", 1.0);
        // callee(x): w = w * |x|; return x
        let mut callee = mb.function("callee", 1);
        let x = callee.param(0);
        let a = callee.un(UnOp::Abs, x, None);
        let wv = callee.load_global(w);
        let prod = callee.bin(BinOp::Mul, wv, a, None);
        callee.store_global(w, prod);
        callee.ret(Some(x));
        let callee_id = callee.finish();
        // main(x): callee(x); callee(x+1); return w
        let mut main = mb.function("main", 1);
        let x = main.param(0);
        let one = main.constant(1.0);
        let _ = main.call(callee_id, vec![x]);
        let xp1 = main.bin(BinOp::Add, x, one, None);
        let _ = main.call(callee_id, vec![xp1]);
        let back = main.load_global(w);
        main.ret(Some(back));
        main.finish();
        let m = mb.build();
        let p = ModuleProgram::new(m, "main").unwrap();
        assert_eq!(p.run(&[-3.0], &mut NullObserver), Some(6.0));
        // run_with_globals exposes the final w.
        let mut obs = NullObserver;
        let (ret, globals) = p.run_with_globals(&[2.0], &mut obs).unwrap();
        assert_eq!(ret, Some(6.0));
        assert_eq!(globals, vec![6.0]);
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let m = square_gate();
        let id = m.function_by_name("f").unwrap();
        let mut obs = NullObserver;
        let mut ctx = Ctx::new(&mut obs);
        let err = Interpreter::default()
            .execute(&m, id, &[1.0, 2.0], &mut ctx)
            .unwrap_err();
        assert_eq!(err, ExecError::ArityMismatch { expected: 1, got: 2 });
        assert!(err.to_string().contains("expected 1"));
    }
}
