//! The IR data structures.
//!
//! A [`Module`] holds global cells and functions; a [`Function`] is a control
//! flow graph of [`Block`]s over mutable virtual registers; each instruction
//! computes one binary64 value. Floating-point operations and conditional
//! branches can carry site labels ([`fp_runtime::OpId`],
//! [`fp_runtime::BranchId`]) so that the interpreter reports them as runtime
//! events.

use fp_runtime::{Cmp, OpId};
use std::fmt;

/// Index of a function within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub usize);

/// Index of a basic block within a [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub usize);

/// Index of a virtual register within a [`Function`].
///
/// Registers are mutable (this is a register machine, not SSA), which keeps
/// loops simple: a loop-carried variable is just a register assigned in the
/// loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub usize);

/// Index of a global cell within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub usize);

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

impl fmt::Display for GlobalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Binary floating-point operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// `lhs.powf(rhs)`.
    Pow,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl BinOp {
    /// Applies the operation.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
            BinOp::Pow => a.powf(b),
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
        }
    }

    /// The corresponding runtime event kind.
    pub fn event_kind(self) -> fp_runtime::FpOp {
        match self {
            BinOp::Add => fp_runtime::FpOp::Add,
            BinOp::Sub => fp_runtime::FpOp::Sub,
            BinOp::Mul => fp_runtime::FpOp::Mul,
            BinOp::Div => fp_runtime::FpOp::Div,
            BinOp::Pow => fp_runtime::FpOp::Pow,
            BinOp::Min | BinOp::Max => fp_runtime::FpOp::Other,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "fadd",
            BinOp::Sub => "fsub",
            BinOp::Mul => "fmul",
            BinOp::Div => "fdiv",
            BinOp::Pow => "fpow",
            BinOp::Min => "fmin",
            BinOp::Max => "fmax",
        };
        f.write_str(s)
    }
}

/// Unary floating-point operations (including the math-library calls used by
/// the benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Negation.
    Neg,
    /// Absolute value.
    Abs,
    /// Square root.
    Sqrt,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Tangent.
    Tan,
    /// Exponential.
    Exp,
    /// Natural logarithm.
    Log,
    /// Floor.
    Floor,
}

impl UnOp {
    /// Applies the operation.
    pub fn apply(self, a: f64) -> f64 {
        match self {
            UnOp::Neg => -a,
            UnOp::Abs => a.abs(),
            UnOp::Sqrt => a.sqrt(),
            UnOp::Sin => a.sin(),
            UnOp::Cos => a.cos(),
            UnOp::Tan => a.tan(),
            UnOp::Exp => a.exp(),
            UnOp::Log => a.ln(),
            UnOp::Floor => a.floor(),
        }
    }

    /// The corresponding runtime event kind.
    pub fn event_kind(self) -> fp_runtime::FpOp {
        match self {
            UnOp::Neg => fp_runtime::FpOp::Neg,
            UnOp::Abs => fp_runtime::FpOp::Abs,
            UnOp::Sqrt => fp_runtime::FpOp::Sqrt,
            UnOp::Sin => fp_runtime::FpOp::Sin,
            UnOp::Cos => fp_runtime::FpOp::Cos,
            UnOp::Tan => fp_runtime::FpOp::Tan,
            UnOp::Exp => fp_runtime::FpOp::Exp,
            UnOp::Log => fp_runtime::FpOp::Log,
            UnOp::Floor => fp_runtime::FpOp::Floor,
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnOp::Neg => "fneg",
            UnOp::Abs => "fabs",
            UnOp::Sqrt => "fsqrt",
            UnOp::Sin => "fsin",
            UnOp::Cos => "fcos",
            UnOp::Tan => "ftan",
            UnOp::Exp => "fexp",
            UnOp::Log => "flog",
            UnOp::Floor => "ffloor",
        };
        f.write_str(s)
    }
}

/// One IR instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// `dst = value`
    Const {
        /// Destination register.
        dst: Reg,
        /// Constant value.
        value: f64,
    },
    /// `dst = src`
    Copy {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = param[index]`
    Param {
        /// Destination register.
        dst: Reg,
        /// Parameter index.
        index: usize,
    },
    /// `dst = lhs op rhs`; if `site` is set the interpreter reports an
    /// [`fp_runtime::OpEvent`].
    Bin {
        /// Destination register.
        dst: Reg,
        /// The operation.
        op: BinOp,
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Reg,
        /// Optional instrumentation site.
        site: Option<OpId>,
    },
    /// `dst = op arg`; if `site` is set the interpreter reports an
    /// [`fp_runtime::OpEvent`].
    Un {
        /// Destination register.
        dst: Reg,
        /// The operation.
        op: UnOp,
        /// Operand.
        arg: Reg,
        /// Optional instrumentation site.
        site: Option<OpId>,
    },
    /// `dst = (lhs cmp rhs) ? 1.0 : 0.0`
    Cmp {
        /// Destination register.
        dst: Reg,
        /// Comparison operator.
        cmp: Cmp,
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Reg,
    },
    /// `dst = cond != 0 ? if_true : if_false`
    Select {
        /// Destination register.
        dst: Reg,
        /// Condition register (nonzero means true).
        cond: Reg,
        /// Value when the condition holds.
        if_true: Reg,
        /// Value when the condition does not hold.
        if_false: Reg,
    },
    /// `dst = call func(args...)`
    Call {
        /// Destination register.
        dst: Reg,
        /// Callee.
        func: FuncId,
        /// Argument registers.
        args: Vec<Reg>,
    },
    /// `dst = global`
    LoadGlobal {
        /// Destination register.
        dst: Reg,
        /// The global cell.
        global: GlobalId,
    },
    /// `global = src`
    StoreGlobal {
        /// The global cell.
        global: GlobalId,
        /// Source register.
        src: Reg,
    },
}

impl Inst {
    /// The destination register, if the instruction writes one.
    pub fn dst(&self) -> Option<Reg> {
        match self {
            Inst::Const { dst, .. }
            | Inst::Copy { dst, .. }
            | Inst::Param { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Cmp { dst, .. }
            | Inst::Select { dst, .. }
            | Inst::Call { dst, .. }
            | Inst::LoadGlobal { dst, .. } => Some(*dst),
            Inst::StoreGlobal { .. } => None,
        }
    }

    /// The instrumentation site of the instruction, if any.
    pub fn site(&self) -> Option<OpId> {
        match self {
            Inst::Bin { site, .. } | Inst::Un { site, .. } => *site,
            _ => None,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Const { dst, value } => write!(f, "{dst} = fconst {value}"),
            Inst::Copy { dst, src } => write!(f, "{dst} = {src}"),
            Inst::Param { dst, index } => write!(f, "{dst} = param {index}"),
            Inst::Bin {
                dst,
                op,
                lhs,
                rhs,
                site,
            } => {
                write!(f, "{dst} = {op} {lhs}, {rhs}")?;
                if let Some(s) = site {
                    write!(f, "  ; site {s}")?;
                }
                Ok(())
            }
            Inst::Un { dst, op, arg, site } => {
                write!(f, "{dst} = {op} {arg}")?;
                if let Some(s) = site {
                    write!(f, "  ; site {s}")?;
                }
                Ok(())
            }
            Inst::Cmp { dst, cmp, lhs, rhs } => write!(f, "{dst} = fcmp {cmp} {lhs}, {rhs}"),
            Inst::Select {
                dst,
                cond,
                if_true,
                if_false,
            } => write!(f, "{dst} = select {cond}, {if_true}, {if_false}"),
            Inst::Call { dst, func, args } => {
                write!(f, "{dst} = call {func}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Inst::LoadGlobal { dst, global } => write!(f, "{dst} = load {global}"),
            Inst::StoreGlobal { global, src } => write!(f, "store {global}, {src}"),
        }
    }
}

/// Block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Conditional branch on `lhs cmp rhs`; if `site` is set the interpreter
    /// reports an [`fp_runtime::BranchEvent`].
    CondBr {
        /// Optional instrumentation site.
        site: Option<fp_runtime::BranchId>,
        /// Left comparison operand.
        lhs: Reg,
        /// Comparison operator.
        cmp: Cmp,
        /// Right comparison operand.
        rhs: Reg,
        /// Successor when the comparison holds.
        then_bb: BlockId,
        /// Successor when the comparison does not hold.
        else_bb: BlockId,
    },
    /// Return from the function, optionally with a value.
    Return(Option<Reg>),
}

impl Terminator {
    /// The successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        self.successors_iter().collect()
    }

    /// The successor blocks of this terminator, without allocating.
    ///
    /// Every terminator has at most two successors, so the iterator is
    /// backed by a fixed two-slot array; hot CFG walks (interpreter,
    /// kernel, analysis passes) should prefer this over
    /// [`Terminator::successors`].
    pub fn successors_iter(&self) -> impl Iterator<Item = BlockId> + '_ {
        let pair = match self {
            Terminator::Jump(b) => [Some(*b), None],
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => [Some(*then_bb), Some(*else_bb)],
            Terminator::Return(_) => [None, None],
        };
        pair.into_iter().flatten()
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Jump(b) => write!(f, "jump {b}"),
            Terminator::CondBr {
                site,
                lhs,
                cmp,
                rhs,
                then_bb,
                else_bb,
            } => {
                write!(f, "br ({lhs} {cmp} {rhs}) ? {then_bb} : {else_bb}")?;
                if let Some(s) = site {
                    write!(f, "  ; site {s}")?;
                }
                Ok(())
            }
            Terminator::Return(Some(r)) => write!(f, "ret {r}"),
            Terminator::Return(None) => write!(f, "ret"),
        }
    }
}

/// A basic block: straight-line instructions followed by a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Instructions, executed in order.
    pub insts: Vec<Inst>,
    /// The terminator.
    pub term: Terminator,
}

impl Block {
    /// Creates a block ending in `ret` with no instructions.
    pub fn new() -> Self {
        Block {
            insts: Vec::new(),
            term: Terminator::Return(None),
        }
    }
}

impl Default for Block {
    fn default() -> Self {
        Self::new()
    }
}

/// A function: a CFG over mutable registers.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Number of floating-point parameters.
    pub num_params: usize,
    /// Number of virtual registers.
    pub num_regs: usize,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
}

impl Function {
    /// The entry block id (always block 0).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Looks up a block.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0]
    }

    /// Mutable block lookup.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.0]
    }

    /// Allocates a fresh register.
    pub fn fresh_reg(&mut self) -> Reg {
        let r = Reg(self.num_regs);
        self.num_regs += 1;
        r
    }
}

/// A global binary64 cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Name of the cell (e.g. `"w"`).
    pub name: String,
    /// Initial value at the start of each execution.
    pub init: f64,
}

/// A module: global cells plus functions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Global cells.
    pub globals: Vec<Global>,
    /// Functions.
    pub functions: Vec<Function>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finds a function by name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(FuncId)
    }

    /// Looks up a function.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.0]
    }

    /// Mutable function lookup.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.0]
    }

    /// Finds a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(GlobalId)
    }

    /// Adds a global cell and returns its id.
    pub fn add_global(&mut self, name: impl Into<String>, init: f64) -> GlobalId {
        self.globals.push(Global {
            name: name.into(),
            init,
        });
        GlobalId(self.globals.len() - 1)
    }

    /// All instrumentation sites of floating-point operations in `func`,
    /// in block/instruction order.
    pub fn op_sites_of(&self, func: FuncId) -> Vec<OpId> {
        crate::analysis::op_site_ids(self.function(func))
    }

    /// All instrumentation sites of conditional branches in `func`.
    pub fn branch_sites_of(&self, func: FuncId) -> Vec<fp_runtime::BranchId> {
        crate::analysis::branch_site_ids(self.function(func))
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, g) in self.globals.iter().enumerate() {
            writeln!(f, "global g{} \"{}\" = {}", i, g.name, g.init)?;
        }
        for (fi, func) in self.functions.iter().enumerate() {
            writeln!(
                f,
                "func @{} \"{}\" (params: {}, regs: {}) {{",
                fi, func.name, func.num_params, func.num_regs
            )?;
            for (bi, block) in func.blocks.iter().enumerate() {
                writeln!(f, "bb{bi}:")?;
                for inst in &block.insts {
                    writeln!(f, "  {inst}")?;
                }
                writeln!(f, "  {}", block.term)?;
            }
            writeln!(f, "}}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_apply_matches_ieee() {
        assert_eq!(BinOp::Add.apply(0.1, 0.2), 0.1 + 0.2);
        assert_eq!(BinOp::Div.apply(1.0, 0.0), f64::INFINITY);
        assert_eq!(BinOp::Pow.apply(2.0, 10.0), 1024.0);
        assert_eq!(BinOp::Min.apply(1.0, -2.0), -2.0);
        assert_eq!(BinOp::Max.apply(1.0, -2.0), 1.0);
    }

    #[test]
    fn unop_apply_matches_ieee() {
        assert_eq!(UnOp::Abs.apply(-3.0), 3.0);
        assert_eq!(UnOp::Sqrt.apply(4.0), 2.0);
        assert!(UnOp::Sqrt.apply(-1.0).is_nan());
        assert_eq!(UnOp::Floor.apply(2.7), 2.0);
        assert_eq!(UnOp::Neg.apply(5.0), -5.0);
    }

    #[test]
    fn inst_dst_and_site() {
        let i = Inst::Bin {
            dst: Reg(3),
            op: BinOp::Mul,
            lhs: Reg(1),
            rhs: Reg(2),
            site: Some(OpId(7)),
        };
        assert_eq!(i.dst(), Some(Reg(3)));
        assert_eq!(i.site(), Some(OpId(7)));
        let s = Inst::StoreGlobal {
            global: GlobalId(0),
            src: Reg(1),
        };
        assert_eq!(s.dst(), None);
        assert_eq!(s.site(), None);
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Jump(BlockId(2)).successors(), vec![BlockId(2)]);
        assert!(Terminator::Return(None).successors().is_empty());
        let br = Terminator::CondBr {
            site: None,
            lhs: Reg(0),
            cmp: Cmp::Le,
            rhs: Reg(1),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(br.successors(), vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn module_lookup_and_globals() {
        let mut m = Module::new();
        let g = m.add_global("w", 1.0);
        assert_eq!(m.global_by_name("w"), Some(g));
        assert_eq!(m.global_by_name("missing"), None);
        m.functions.push(Function {
            name: "f".into(),
            num_params: 1,
            num_regs: 0,
            blocks: vec![Block::new()],
        });
        assert_eq!(m.function_by_name("f"), Some(FuncId(0)));
        assert_eq!(m.function(FuncId(0)).entry(), BlockId(0));
    }

    #[test]
    fn display_is_nonempty() {
        let mut m = Module::new();
        m.add_global("w", 0.0);
        m.functions.push(Function {
            name: "f".into(),
            num_params: 0,
            num_regs: 1,
            blocks: vec![Block {
                insts: vec![Inst::Const {
                    dst: Reg(0),
                    value: 2.5,
                }],
                term: Terminator::Return(Some(Reg(0))),
            }],
        });
        let text = m.to_string();
        assert!(text.contains("fconst 2.5"));
        assert!(text.contains("ret %0"));
        assert!(text.contains("global g0"));
    }
}
