//! Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm.
//!
//! "A Simple, Fast Dominance Algorithm" (Cooper, Harvey & Kennedy, 2001):
//! iterate `idom[b] = intersect(processed predecessors of b)` over the
//! reverse postorder until a fixed point, with `intersect` walking the two
//! finger pointers up the current tree by postorder number. On the small,
//! mostly acyclic functions fpir sees this converges in one or two sweeps
//! and avoids the bookkeeping of Lengauer–Tarjan.

use super::cfg::Cfg;
use crate::ir::BlockId;

/// Immediate-dominator table for the reachable blocks of one function.
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `idom[b]` is the immediate dominator of `bb b`; the entry maps to
    /// itself, unreachable blocks to `None`.
    idom: Vec<Option<BlockId>>,
}

impl Dominators {
    /// Computes the dominator tree of `cfg`.
    pub fn new(cfg: &Cfg) -> Self {
        let n = cfg.num_blocks();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        if n == 0 {
            return Dominators { idom };
        }
        idom[0] = Some(BlockId(0));
        let mut changed = true;
        while changed {
            changed = false;
            // Skip the entry itself: its idom is fixed.
            for &b in cfg.rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &cfg.preds[b.0] {
                    if idom[p.0].is_none() {
                        continue; // not processed yet this sweep
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &cfg.rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.0] != Some(ni) {
                        idom[b.0] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators { idom }
    }

    /// The immediate dominator of `b` (`None` for the entry block and for
    /// unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b.0 == 0 {
            return None;
        }
        self.idom.get(b.0).copied().flatten()
    }

    /// True if `a` dominates `b` (reflexive: every block dominates itself).
    ///
    /// Both blocks must be reachable; queries involving unreachable blocks
    /// return `false`.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom.get(a.0).copied().flatten().is_none()
            || self.idom.get(b.0).copied().flatten().is_none()
        {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur.0 == 0 {
                return false;
            }
            cur = self.idom[cur.0].expect("reachable block has an idom");
        }
    }
}

/// The CHK two-finger intersection: walk the deeper node up the current
/// tree (deeper = larger reverse-postorder index) until the fingers meet.
fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[a.0] > rpo_index[b.0] {
            a = idom[a.0].expect("processed block has an idom");
        }
        while rpo_index[b.0] > rpo_index[a.0] {
            b = idom[b.0].expect("processed block has an idom");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::ir::FuncId;
    use fp_runtime::Cmp;

    #[test]
    fn diamond_join_is_dominated_by_the_branch_block() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.function("d", 1);
        let t = f.new_block();
        let e = f.new_block();
        let j = f.new_block();
        let x = f.param(0);
        let z = f.constant(0.0);
        f.cond_br(None, x, Cmp::Lt, z, t, e);
        f.switch_to(t);
        f.jump(j);
        f.switch_to(e);
        f.jump(j);
        f.switch_to(j);
        f.ret(Some(x));
        f.finish();
        let m = mb.build();
        let cfg = Cfg::new(m.function(FuncId(0)));
        let dom = Dominators::new(&cfg);
        assert_eq!(dom.idom(j), Some(BlockId(0)), "join's idom is the branch");
        assert_eq!(dom.idom(t), Some(BlockId(0)));
        assert!(dom.dominates(BlockId(0), j));
        assert!(dom.dominates(j, j), "dominance is reflexive");
        assert!(!dom.dominates(t, j), "one arm does not dominate the join");
        assert_eq!(dom.idom(BlockId(0)), None, "entry has no idom");
    }

    #[test]
    fn loop_header_dominates_body_and_exit() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.function("l", 1);
        let head = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        let x = f.param(0);
        let z = f.constant(0.0);
        f.jump(head);
        f.switch_to(head);
        f.cond_br(None, x, Cmp::Lt, z, body, exit);
        f.switch_to(body);
        f.jump(head);
        f.switch_to(exit);
        f.ret(Some(x));
        f.finish();
        let m = mb.build();
        let cfg = Cfg::new(m.function(FuncId(0)));
        let dom = Dominators::new(&cfg);
        assert!(dom.dominates(head, body));
        assert!(dom.dominates(head, exit));
        assert!(!dom.dominates(body, exit));
    }
}
