//! Backward liveness and the slot-sharing register allocation that lets the
//! lanewise kernel size its SoA wave register file by *live* registers
//! instead of `num_regs`.
//!
//! The allocation follows the classic Chaitin interference rule: at every
//! definition, the defined register interferes with everything live out of
//! that definition (including dead definitions, which still clobber their
//! slot). Two registers may share a slot only if they never interfere, which
//! guarantees the invariant the kernel's eviction path relies on: **at any
//! program point, every live register's slot holds that register's own last
//! written value.** Dead registers may observe a sharing partner's value,
//! but a register that is dead is by definition never read before being
//! redefined, so a scalar resume from any point still computes bit-identical
//! results.
//!
//! Sharing is only sound if no reachable path reads a register before
//! writing it, so [`FrameLayout::of`] gates compaction on the
//! definite-assignment analysis and falls back to the identity layout
//! otherwise (preserving today's behavior for modules that strict
//! validation would reject but that still execute under
//! `KernelPolicy::Always`).

use super::cfg::Cfg;
use crate::ir::{BlockId, Function, Inst, Reg, Terminator};

/// A dense bitset over register indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    pub(crate) fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
        }
    }

    pub(crate) fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        let old = self.words[w];
        self.words[w] |= 1 << b;
        old & (1 << b) == 0
    }

    pub(crate) fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    pub(crate) fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// `self |= other`; returns true if `self` changed.
    pub(crate) fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | *b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// `self &= other`.
    pub(crate) fn intersect_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            (0..64)
                .filter(move |b| word & (1 << b) != 0)
                .map(move |b| w * 64 + b)
        })
    }
}

/// Calls `f` for every register read by `inst`.
pub fn for_each_use(inst: &Inst, mut f: impl FnMut(Reg)) {
    match inst {
        Inst::Const { .. } | Inst::Param { .. } | Inst::LoadGlobal { .. } => {}
        Inst::Copy { src, .. } => f(*src),
        Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => {
            f(*lhs);
            f(*rhs);
        }
        Inst::Un { arg, .. } => f(*arg),
        Inst::Select {
            cond,
            if_true,
            if_false,
            ..
        } => {
            f(*cond);
            f(*if_true);
            f(*if_false);
        }
        Inst::Call { args, .. } => {
            for a in args {
                f(*a);
            }
        }
        Inst::StoreGlobal { src, .. } => f(*src),
    }
}

/// Calls `f` for every register read by `term`.
pub fn for_each_term_use(term: &Terminator, mut f: impl FnMut(Reg)) {
    match term {
        Terminator::Jump(_) => {}
        Terminator::CondBr { lhs, rhs, .. } => {
            f(*lhs);
            f(*rhs);
        }
        Terminator::Return(Some(r)) => f(*r),
        Terminator::Return(None) => {}
    }
}

/// Forward definite-assignment analysis.
///
/// `IN[entry] = ∅` (fpir parameters arrive through `Inst::Param`, not
/// pre-assigned registers) and `IN[b] = ⋂ OUT[pred]`: a register counts as
/// assigned at a use only if **every** path from the entry writes it first.
/// Returns the first offending `(block, inst_index_or_none_for_terminator,
/// register)` in RPO/instruction order, or `None` if the function is
/// definitely assigned on all reachable paths.
pub fn first_use_before_def(function: &Function, cfg: &Cfg) -> Option<(BlockId, Option<usize>, Reg)> {
    let nr = function.num_regs;
    let nb = function.blocks.len();
    // OUT[b] per block; None = not yet computed (⊤ for the intersection).
    let mut out: Vec<Option<BitSet>> = vec![None; nb];
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &cfg.rpo {
            let mut live = BitSet::new(nr);
            let mut first = true;
            for &p in &cfg.preds[b.0] {
                // An unprocessed predecessor (`None`) is ⊤ (all assigned):
                // skipping it keeps the intersection an over-approx of the
                // final value, and the fixpoint corrects it.
                if let Some(po) = &out[p.0] {
                    if first {
                        live = po.clone();
                        first = false;
                    } else {
                        live.intersect_with(po);
                    }
                }
            }
            if b.0 == 0 {
                live = BitSet::new(nr); // the entry starts with nothing assigned
            }
            for inst in &function.blocks[b.0].insts {
                if let Some(d) = inst.dst() {
                    if d.0 < nr {
                        live.insert(d.0);
                    }
                }
            }
            if out[b.0].as_ref() != Some(&live) {
                out[b.0] = Some(live);
                changed = true;
            }
        }
    }

    // Re-walk in RPO and report the first read of an unassigned register.
    for &b in &cfg.rpo {
        let mut assigned = BitSet::new(nr);
        let mut first = true;
        for &p in &cfg.preds[b.0] {
            if let Some(po) = &out[p.0] {
                if first {
                    assigned = po.clone();
                    first = false;
                } else {
                    assigned.intersect_with(po);
                }
            }
        }
        if b.0 == 0 {
            assigned = BitSet::new(nr);
        }
        for (i, inst) in function.blocks[b.0].insts.iter().enumerate() {
            let mut bad = None;
            for_each_use(inst, |r| {
                if bad.is_none() && r.0 < nr && !assigned.contains(r.0) {
                    bad = Some(r);
                }
            });
            if let Some(r) = bad {
                return Some((b, Some(i), r));
            }
            if let Some(d) = inst.dst() {
                if d.0 < nr {
                    assigned.insert(d.0);
                }
            }
        }
        let mut bad = None;
        for_each_term_use(&function.blocks[b.0].term, |r| {
            if bad.is_none() && r.0 < nr && !assigned.contains(r.0) {
                bad = Some(r);
            }
        });
        if let Some(r) = bad {
            return Some((b, None, r));
        }
    }
    None
}

/// Per-block liveness sets of one function (reachable blocks only).
#[derive(Debug, Clone)]
pub struct Liveness {
    /// `live_in[b]`: registers live on entry to `bb b`.
    live_in: Vec<BitSet>,
    /// `live_out[b]`: registers live on exit from `bb b`.
    live_out: Vec<BitSet>,
}

impl Liveness {
    /// Computes backward liveness over the reachable blocks of `function`.
    pub fn new(function: &Function, cfg: &Cfg) -> Self {
        let nr = function.num_regs;
        let nb = function.blocks.len();
        let mut use_b = vec![BitSet::new(nr); nb];
        let mut def_b = vec![BitSet::new(nr); nb];
        for &b in &cfg.rpo {
            let (ub, db) = (&mut use_b[b.0], &mut def_b[b.0]);
            for inst in &function.blocks[b.0].insts {
                for_each_use(inst, |r| {
                    if r.0 < nr && !db.contains(r.0) {
                        ub.insert(r.0);
                    }
                });
                if let Some(d) = inst.dst() {
                    if d.0 < nr {
                        db.insert(d.0);
                    }
                }
            }
            for_each_term_use(&function.blocks[b.0].term, |r| {
                if r.0 < nr && !db.contains(r.0) {
                    ub.insert(r.0);
                }
            });
        }

        let mut live_in = vec![BitSet::new(nr); nb];
        let mut live_out = vec![BitSet::new(nr); nb];
        let mut changed = true;
        while changed {
            changed = false;
            // Postorder (reverse RPO) converges fastest for backward flow.
            for &b in cfg.rpo.iter().rev() {
                let mut new_out = BitSet::new(nr);
                for &s in &cfg.succs[b.0] {
                    new_out.union_with(&live_in[s.0]);
                }
                // IN = use ∪ (OUT − def)
                let mut new_in = new_out.clone();
                for r in def_b[b.0].iter() {
                    new_in.remove(r);
                }
                new_in.union_with(&use_b[b.0]);
                if new_out != live_out[b.0] || new_in != live_in[b.0] {
                    live_out[b.0] = new_out;
                    live_in[b.0] = new_in;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Number of registers live on entry to `b` (for reporting).
    pub fn num_live_in(&self, b: BlockId) -> usize {
        self.live_in[b.0].iter().count()
    }
}

/// A register-to-slot mapping for one function's SoA wave frame.
#[derive(Debug, Clone)]
pub struct FrameLayout {
    /// `slot[r]` is the wave-file slot backing register `%r`.
    pub slot: Vec<usize>,
    /// Number of distinct slots (the wave file holds `num_slots * lanes`
    /// cells instead of `num_regs * lanes`).
    pub num_slots: usize,
    /// True if sharing actually happened (`num_slots < num_regs`).
    pub compacted: bool,
}

impl FrameLayout {
    /// The identity layout (one slot per register).
    pub fn identity(num_regs: usize) -> Self {
        FrameLayout {
            slot: (0..num_regs).collect(),
            num_slots: num_regs,
            compacted: false,
        }
    }

    /// Computes the slot-sharing layout of `function`, or the identity
    /// layout if any reachable path may read a register before writing it
    /// (see the module docs for why that gate is required).
    pub fn of(function: &Function, cfg: &Cfg) -> Self {
        let nr = function.num_regs;
        if nr == 0 {
            return FrameLayout::identity(0);
        }
        if first_use_before_def(function, cfg).is_some() {
            return FrameLayout::identity(nr);
        }
        let liveness = Liveness::new(function, cfg);

        // Interference: def × live-out-at-def, built by walking each block
        // backward from its live-out set.
        let mut interferes = vec![BitSet::new(nr); nr];
        for &b in &cfg.rpo {
            let mut live = liveness.live_out[b.0].clone();
            for_each_term_use(&function.blocks[b.0].term, |r| {
                if r.0 < nr {
                    live.insert(r.0);
                }
            });
            for inst in function.blocks[b.0].insts.iter().rev() {
                if let Some(d) = inst.dst() {
                    if d.0 < nr {
                        for r in live.iter() {
                            if r != d.0 {
                                interferes[d.0].insert(r);
                                interferes[r].insert(d.0);
                            }
                        }
                        live.remove(d.0);
                    }
                }
                for_each_use(inst, |r| {
                    if r.0 < nr {
                        live.insert(r.0);
                    }
                });
            }
        }

        // Greedy coloring in register order: lowest slot not taken by an
        // interfering neighbor. Register order keeps the result
        // deterministic and cheap; optimal coloring is not the point.
        let mut slot = vec![usize::MAX; nr];
        let mut num_slots = 0;
        let mut taken: Vec<bool> = Vec::new();
        for r in 0..nr {
            taken.clear();
            taken.resize(num_slots.max(1), false);
            for n in interferes[r].iter() {
                if slot[n] != usize::MAX && slot[n] < taken.len() {
                    taken[slot[n]] = true;
                }
            }
            let s = taken.iter().position(|&t| !t).unwrap_or(taken.len());
            slot[r] = s;
            num_slots = num_slots.max(s + 1);
        }
        FrameLayout {
            compacted: num_slots < nr,
            slot,
            num_slots,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::ir::{BinOp, FuncId};
    use fp_runtime::Cmp;

    #[test]
    fn straightline_chain_shares_slots() {
        // t1 = t0+t0; t2 = t1*t1; t3 = t1-t2; ret t3 — `t1` stays live
        // across `t2`'s definition (they interfere), but at most two values
        // are live at once, so the frame compacts below num_regs.
        let mut mb = ModuleBuilder::new();
        let mut f = mb.function("c", 1);
        let p = f.param(0);
        let a = f.bin(BinOp::Add, p, p, None);
        let b = f.bin(BinOp::Mul, a, a, None);
        let c = f.bin(BinOp::Sub, a, b, None);
        f.ret(Some(c));
        f.finish();
        let m = mb.build();
        let function = m.function(FuncId(0));
        let cfg = Cfg::new(function);
        let layout = FrameLayout::of(function, &cfg);
        assert!(layout.compacted);
        assert!(layout.num_slots < function.num_regs);
        assert_ne!(layout.slot[a.0], layout.slot[b.0], "a live across b's def");
        assert_eq!(layout.slot[c.0], layout.slot[a.0], "a dead once c defined");
    }

    #[test]
    fn use_before_def_disables_compaction() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.function("u", 1);
        let p = f.param(0);
        let s = f.bin(BinOp::Add, p, p, None);
        f.ret(Some(s));
        f.finish();
        let mut m = mb.build();
        // Point the second operand at a register nothing ever writes.
        let function = m.function_mut(FuncId(0));
        let ghost = function.fresh_reg();
        if let crate::ir::Inst::Bin { rhs, .. } = &mut function.blocks[0].insts[1] {
            *rhs = ghost;
        }
        let function = m.function(FuncId(0));
        let cfg = Cfg::new(function);
        assert!(first_use_before_def(function, &cfg).is_some());
        let layout = FrameLayout::of(function, &cfg);
        assert!(!layout.compacted);
        assert_eq!(layout.num_slots, function.num_regs);
    }

    #[test]
    fn one_arm_def_read_after_join_is_flagged() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.function("j", 1);
        let t = f.new_block();
        let e = f.new_block();
        let j = f.new_block();
        let x = f.param(0);
        let z = f.constant(0.0);
        f.cond_br(None, x, Cmp::Lt, z, t, e);
        f.switch_to(t);
        let y = f.bin(BinOp::Add, x, x, None); // defined only on this arm
        let _ = y;
        f.jump(j);
        f.switch_to(e);
        f.jump(j);
        f.switch_to(j);
        f.ret(Some(y)); // read after the join
        f.finish();
        let m = mb.build();
        let function = m.function(FuncId(0));
        let cfg = Cfg::new(function);
        let bad = first_use_before_def(function, &cfg);
        assert_eq!(bad, Some((j, None, y)));
    }

    #[test]
    fn values_live_across_a_branch_keep_distinct_slots() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.function("d", 2);
        let t = f.new_block();
        let e = f.new_block();
        let x = f.param(0);
        let y = f.param(1);
        f.cond_br(None, x, Cmp::Lt, y, t, e);
        f.switch_to(t);
        let s = f.bin(BinOp::Add, x, y, None);
        f.ret(Some(s));
        f.switch_to(e);
        let d = f.bin(BinOp::Sub, x, y, None);
        f.ret(Some(d));
        f.finish();
        let m = mb.build();
        let function = m.function(FuncId(0));
        let cfg = Cfg::new(function);
        let layout = FrameLayout::of(function, &cfg);
        assert_ne!(layout.slot[x.0], layout.slot[y.0]);
    }
}
