//! Forward interval abstract interpretation over `f64` with NaN and ±inf
//! tracking.
//!
//! Abstract values are `(numeric range, may-be-NaN)` pairs where the range
//! endpoints may be infinite — `fp_runtime::Interval` is finite-only and
//! cannot represent the overflow/NaN states this analysis exists to reason
//! about. Soundness leans on two facts:
//!
//! * IEEE-754 basic operations (`+ - * /`, `sqrt`, `abs`, `neg`, `floor`,
//!   `min`, `max`) are correctly rounded, and rounding is monotone, so
//!   endpoint/corner evaluation in the *same* arithmetic bounds every
//!   interior result;
//! * libm transcendentals (`exp`, `log`) are *not* correctly rounded, so
//!   their endpoints are padded outward by a few ulps; `sin`/`cos`/`tan`/
//!   `pow` fall back to trivially sound ranges.
//!
//! The interpreter runs a per-function fixpoint with widening, descends
//! into non-recursive calls (memoized, with a global step budget), and
//! classifies every instrumentation site as `Reachable`/`Unreachable`/
//! `Unknown`. `Unreachable` verdicts are **proofs** relative to the seeded
//! input domain — they are what lets `wdm_core` short-circuit minimization
//! of dead targets — so every imprecise case must degrade to `Unknown`,
//! never to a false proof.

use std::collections::{BTreeMap, HashMap};

use super::cfg::{CallGraph, Cfg};
use crate::ir::{BinOp, BlockId, FuncId, Inst, Module, Terminator, UnOp};
use fp_runtime::Cmp;
use fp_runtime::{Interval, Reachability};

/// An abstract `f64`: a closed numeric range (endpoints may be ±inf) plus a
/// may-be-NaN flag. `lo > hi` encodes an empty numeric range (the value is
/// then necessarily NaN, or the state unreachable).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbsVal {
    /// Lower numeric bound (may be `-inf`).
    pub lo: f64,
    /// Upper numeric bound (may be `+inf`).
    pub hi: f64,
    /// True if the value may be NaN.
    pub nan: bool,
}

impl AbsVal {
    /// The top element: any double, including NaN.
    pub fn top() -> Self {
        AbsVal {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
            nan: true,
        }
    }

    /// The abstraction of one concrete value.
    pub fn exact(v: f64) -> Self {
        if v.is_nan() {
            AbsVal::empty_num(true)
        } else {
            AbsVal {
                lo: v,
                hi: v,
                nan: false,
            }
        }
    }

    /// A non-NaN numeric range.
    pub fn num(lo: f64, hi: f64) -> Self {
        debug_assert!(!lo.is_nan() && !hi.is_nan());
        AbsVal { lo, hi, nan: false }
    }

    /// An empty numeric range (value is NaN if `nan`, otherwise bottom).
    fn empty_num(nan: bool) -> Self {
        AbsVal {
            lo: f64::INFINITY,
            hi: f64::NEG_INFINITY,
            nan,
        }
    }

    /// True if the numeric range is non-empty.
    pub(crate) fn has_num(&self) -> bool {
        self.lo <= self.hi
    }

    /// True if this abstraction admits exactly one bit pattern — the value
    /// the optimizer's constant propagation may fold. Bit-level equality of
    /// the endpoints (not `==`) keeps `-0.0`/`0.0` distinct, and a NaN
    /// possibility disqualifies the value outright (NaN payloads are not
    /// tracked, so "the" NaN is not a single bit pattern).
    pub(crate) fn singleton(&self) -> Option<f64> {
        if !self.nan && self.has_num() && self.lo.to_bits() == self.hi.to_bits() {
            Some(self.lo)
        } else {
            None
        }
    }

    /// True if the numeric range may contain `v` (exact comparison; `-0.0`
    /// and `0.0` compare equal, which is what IEEE comparisons need).
    pub(crate) fn may_be(&self, v: f64) -> bool {
        self.has_num() && self.lo <= v && v <= self.hi
    }

    /// True if an infinite value is possible.
    fn may_be_inf(&self) -> bool {
        self.has_num() && (self.lo == f64::NEG_INFINITY || self.hi == f64::INFINITY)
    }

    /// True if the concrete value `v` is covered by this abstraction.
    pub fn contains(&self, v: f64) -> bool {
        if v.is_nan() {
            self.nan
        } else {
            self.may_be(v)
        }
    }

    /// Least upper bound.
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        let mut r = AbsVal {
            lo: self.lo,
            hi: self.hi,
            nan: self.nan || other.nan,
        };
        if !self.has_num() {
            r.lo = other.lo;
            r.hi = other.hi;
        } else if other.has_num() {
            r.lo = r.lo.min(other.lo);
            r.hi = r.hi.max(other.hi);
        }
        r
    }

    /// Join only the numeric part of `other` (used by min/max transfer).
    fn join_num(&self, other: &AbsVal) -> AbsVal {
        let mut o = *other;
        o.nan = false;
        self.join(&o)
    }

    /// Widening: any endpoint that moved since `older` goes straight to its
    /// infinity, guaranteeing termination of the block fixpoint.
    pub(crate) fn widen_from(&self, older: &AbsVal) -> AbsVal {
        let mut r = *self;
        if older.has_num() && self.has_num() {
            if self.lo < older.lo {
                r.lo = f64::NEG_INFINITY;
            }
            if self.hi > older.hi {
                r.hi = f64::INFINITY;
            }
        } else if self.has_num() != older.has_num() && self.has_num() {
            // Range newly became non-empty: jump straight to top range.
            r.lo = f64::NEG_INFINITY;
            r.hi = f64::INFINITY;
        }
        r
    }
}

/// `x` moved a few ulps toward -inf: a sound lower-bound pad for libm calls
/// that are accurate but not correctly rounded.
fn pad_down(x: f64) -> f64 {
    let mut v = x;
    for _ in 0..4 {
        v = next_down(v);
    }
    v
}

/// `x` moved a few ulps toward +inf.
fn pad_up(x: f64) -> f64 {
    -pad_down(-x)
}

fn next_down(x: f64) -> f64 {
    if x.is_nan() || x == f64::NEG_INFINITY {
        return x;
    }
    if x == f64::INFINITY {
        return f64::MAX;
    }
    let b = x.to_bits();
    f64::from_bits(if x == 0.0 {
        0x8000_0000_0000_0001 // smallest-magnitude negative subnormal
    } else if x > 0.0 {
        b - 1
    } else {
        b + 1
    })
}

/// Builds an abstract value from candidate extrema computed in f64 itself;
/// NaN candidates are skipped but recorded in the NaN flag.
fn from_corners(corners: &[f64], mut nan: bool) -> AbsVal {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &c in corners {
        if c.is_nan() {
            nan = true;
        } else {
            lo = lo.min(c);
            hi = hi.max(c);
        }
    }
    AbsVal { lo, hi, nan }
}

/// Abstract transfer of a binary operation.
pub fn abs_bin(op: BinOp, a: AbsVal, b: AbsVal) -> AbsVal {
    // NaN operands propagate through arithmetic; min/max absorb them, and
    // pow does not propagate unconditionally (`powf(NaN, 0) == 1.0` and
    // `powf(1.0, NaN) == 1.0`), so both skip the short-circuit.
    let prop_nan = a.nan || b.nan;
    if !matches!(op, BinOp::Min | BinOp::Max | BinOp::Pow) && (!a.has_num() || !b.has_num()) {
        return AbsVal::empty_num(prop_nan || !a.has_num() || !b.has_num());
    }
    match op {
        BinOp::Add => from_corners(&[a.lo + b.lo, a.hi + b.hi], prop_nan),
        BinOp::Sub => from_corners(&[a.lo - b.hi, a.hi - b.lo], prop_nan),
        BinOp::Mul => {
            // 0 × ±inf can produce NaN away from the corners.
            let zero_inf = (a.may_be(0.0) && b.may_be_inf()) || (b.may_be(0.0) && a.may_be_inf());
            from_corners(
                &[a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi],
                prop_nan || zero_inf,
            )
        }
        BinOp::Div => {
            if b.may_be(0.0) {
                // x/0 = ±inf and 0/0 = NaN: give up on precision, stay sound.
                return AbsVal::top();
            }
            let inf_inf = a.may_be_inf() && b.may_be_inf();
            from_corners(
                &[a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi],
                prop_nan || inf_inf,
            )
        }
        BinOp::Pow => AbsVal::top(),
        BinOp::Min | BinOp::Max => {
            // Rust f64::min/max return the *other* operand when one is NaN,
            // so a NaN side substitutes the full other range.
            let (an, bn) = (a.has_num(), b.has_num());
            let mut r = if an && bn {
                if matches!(op, BinOp::Min) {
                    AbsVal::num(a.lo.min(b.lo), a.hi.min(b.hi))
                } else {
                    AbsVal::num(a.lo.max(b.lo), a.hi.max(b.hi))
                }
            } else {
                AbsVal::empty_num(false)
            };
            if a.nan {
                r = r.join_num(&b);
            }
            if b.nan {
                r = r.join_num(&a);
            }
            r.nan = a.nan && b.nan;
            r
        }
    }
}

/// Abstract transfer of a unary operation.
pub fn abs_un(op: UnOp, a: AbsVal) -> AbsVal {
    if !a.has_num() {
        return AbsVal::empty_num(a.nan);
    }
    match op {
        UnOp::Neg => AbsVal {
            lo: -a.hi,
            hi: -a.lo,
            nan: a.nan,
        },
        UnOp::Abs => {
            if a.lo >= 0.0 {
                a
            } else if a.hi <= 0.0 {
                AbsVal {
                    lo: -a.hi,
                    hi: -a.lo,
                    nan: a.nan,
                }
            } else {
                AbsVal {
                    lo: 0.0,
                    hi: (-a.lo).max(a.hi),
                    nan: a.nan,
                }
            }
        }
        UnOp::Sqrt => {
            let nan = a.nan || a.lo < 0.0;
            if a.hi < 0.0 {
                AbsVal::empty_num(nan)
            } else {
                AbsVal {
                    lo: a.lo.max(0.0).sqrt(),
                    hi: a.hi.sqrt(),
                    nan,
                }
            }
        }
        UnOp::Sin | UnOp::Cos => AbsVal {
            lo: -1.0,
            hi: 1.0,
            nan: a.nan || a.may_be_inf(),
        },
        UnOp::Tan => AbsVal {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
            nan: true,
        },
        UnOp::Exp => AbsVal {
            lo: pad_down(a.lo.exp()).max(0.0),
            hi: pad_up(a.hi.exp()),
            nan: a.nan,
        },
        UnOp::Log => {
            let nan = a.nan || a.lo < 0.0;
            if a.hi < 0.0 {
                AbsVal::empty_num(nan)
            } else {
                AbsVal {
                    lo: pad_down(a.lo.max(0.0).ln()),
                    hi: pad_up(a.hi.ln()),
                    nan,
                }
            }
        }
        UnOp::Floor => AbsVal {
            lo: a.lo.floor(),
            hi: a.hi.floor(),
            nan: a.nan,
        },
    }
}

/// Three-valued comparison: `Some(b)` if `lhs cmp rhs` is `b` for **every**
/// pair of concrete values covered by the operands, `None` otherwise.
pub fn abs_cmp(cmp: Cmp, a: AbsVal, b: AbsVal) -> Option<bool> {
    let (t, f) = cmp_possibilities(cmp, a, b);
    match (t, f) {
        (true, false) => Some(true),
        (false, true) => Some(false),
        // Neither possible only in unreachable states; stay undecided.
        _ => None,
    }
}

/// `(may_be_true, may_be_false)` of `lhs cmp rhs` over the operand ranges,
/// with IEEE NaN semantics (every comparison involving NaN is false, except
/// `!=` which is true). Shared with the optimizer's sparse conditional
/// constant propagation, which folds a branch only when one side is
/// impossible.
pub(crate) fn cmp_possibilities(cmp: Cmp, a: AbsVal, b: AbsVal) -> (bool, bool) {
    let mut may_true = false;
    let mut may_false = false;
    if a.nan || b.nan {
        match cmp {
            Cmp::Ne => may_true = true,
            _ => may_false = true,
        }
    }
    if a.has_num() && b.has_num() {
        let overlap = a.lo <= b.hi && b.lo <= a.hi;
        let both_singleton_eq = overlap && a.lo == a.hi && b.lo == b.hi && a.lo == b.lo;
        match cmp {
            Cmp::Lt => {
                may_true |= a.lo < b.hi;
                may_false |= a.hi >= b.lo;
            }
            Cmp::Le => {
                may_true |= a.lo <= b.hi;
                may_false |= a.hi > b.lo;
            }
            Cmp::Gt => {
                may_true |= a.hi > b.lo;
                may_false |= a.lo <= b.hi;
            }
            Cmp::Ge => {
                may_true |= a.hi >= b.lo;
                may_false |= a.lo < b.hi;
            }
            Cmp::Eq => {
                may_true |= overlap;
                may_false |= !both_singleton_eq;
            }
            Cmp::Ne => {
                may_true |= !both_singleton_eq;
                may_false |= overlap;
            }
        }
    }
    (may_true, may_false)
}

/// Joined operand/observation facts about one branch site.
#[derive(Debug, Clone)]
pub struct BranchInfo {
    /// Can the branch be taken (comparison true)?
    pub then_reach: Reachability,
    /// Can the branch fall through (comparison false)?
    pub else_reach: Reachability,
    /// Can an execution put the two operands exactly on the boundary
    /// (`lhs == rhs`, the target of boundary value analysis)?
    pub boundary_reach: Reachability,
}

/// Facts about one operation site.
#[derive(Debug, Clone)]
pub struct OpInfo {
    /// Can the site execute at all?
    pub reach: Reachability,
    /// Abstraction of every value the site can compute (top when unknown).
    pub value: AbsVal,
}

/// Result of the whole-module reachability analysis from one entry.
#[derive(Debug, Clone, Default)]
pub struct ReachSummary {
    /// Per operation-site facts, keyed by raw `OpId`.
    pub ops: BTreeMap<u32, OpInfo>,
    /// Per branch-site facts, keyed by raw `BranchId`.
    pub branches: BTreeMap<u32, BranchInfo>,
}

impl ReachSummary {
    /// The trivial summary: every site `Unknown` (used when the module does
    /// not pass strict validation, so no proof is ever built on it).
    pub fn unknown_for(module: &Module) -> Self {
        let mut s = ReachSummary::default();
        for function in &module.functions {
            for id in super::op_site_ids(function) {
                s.ops.insert(
                    id.0,
                    OpInfo {
                        reach: Reachability::Unknown,
                        value: AbsVal::top(),
                    },
                );
            }
            for id in super::branch_site_ids(function) {
                s.branches.insert(
                    id.0,
                    BranchInfo {
                        then_reach: Reachability::Unknown,
                        else_reach: Reachability::Unknown,
                        boundary_reach: Reachability::Unknown,
                    },
                );
            }
        }
        s
    }
}

/// Per-site observations accumulated while interpreting abstractly.
#[derive(Default, Clone)]
struct BranchObs {
    then_possible: bool,
    else_possible: bool,
    eq_possible: bool,
    tainted: bool,
}

#[derive(Clone)]
struct OpObs {
    seen: bool,
    tainted: bool,
    value: AbsVal,
}

impl Default for OpObs {
    fn default() -> Self {
        OpObs {
            seen: false,
            tainted: false,
            value: AbsVal::empty_num(false),
        }
    }
}

/// Abstract machine state at a block boundary.
#[derive(Clone, PartialEq)]
struct Env {
    regs: Vec<AbsVal>,
    globals: Vec<AbsVal>,
}

impl Env {
    fn join_widen(&mut self, other: &Env, widen: bool) -> bool {
        let mut changed = false;
        for (a, b) in self
            .regs
            .iter_mut()
            .chain(self.globals.iter_mut())
            .zip(other.regs.iter().chain(other.globals.iter()))
        {
            let mut j = a.join(b);
            if widen {
                j = j.widen_from(a);
            }
            if j != *a {
                *a = j;
                changed = true;
            }
        }
        changed
    }
}

/// Number of joins into one block before widening kicks in.
const WIDEN_AFTER: u32 = 8;
/// Analysis call-depth cap; deeper calls are tainted conservatively.
const MAX_ANALYSIS_DEPTH: usize = 16;
/// Global budget of abstract block transfers; exhausted analyses taint the
/// remaining work (everything degrades to `Unknown`, never to a bad proof).
const STEP_BUDGET: usize = 50_000;

/// Memo key of one abstract call: callee index plus the bit patterns of
/// every argument and global abstraction at the call.
type CallKey = (usize, Vec<(u64, u64, bool)>);
/// Memoized abstract call result: the return abstraction and the global
/// state after the call (`None` while a cycle is being unrolled).
type CallResult = Option<(AbsVal, Vec<AbsVal>)>;

struct Analyzer<'m> {
    module: &'m Module,
    cfgs: &'m [Cfg],
    call_graph: &'m CallGraph,
    ops: BTreeMap<u32, OpObs>,
    branches: BTreeMap<u32, BranchObs>,
    /// Memoized call results keyed by (callee, arg/global bit patterns).
    call_memo: HashMap<CallKey, CallResult>,
    steps: usize,
}

impl<'m> Analyzer<'m> {
    /// Marks every site in `f` and its transitive callees as tainted
    /// (classification `Unknown`) — used when the analyzer cannot or will
    /// not descend into a call.
    fn taint_function(&mut self, f: FuncId) {
        let mut stack = vec![f];
        let mut visited = vec![false; self.module.functions.len()];
        while let Some(g) = stack.pop() {
            if g.0 >= self.module.functions.len() || visited[g.0] {
                continue;
            }
            visited[g.0] = true;
            let function = self.module.function(g);
            for id in super::op_site_ids(function) {
                let o = self.ops.entry(id.0).or_default();
                o.tainted = true;
            }
            for id in super::branch_site_ids(function) {
                let b = self.branches.entry(id.0).or_default();
                b.tainted = true;
            }
            for &c in &self.call_graph.callees[g.0] {
                stack.push(c);
            }
        }
    }

    /// Abstractly interprets `f` on `args`/`globals_in`. Returns the joined
    /// return value and global state over all reachable `Return`s, or `None`
    /// if no return is reachable (the caller's continuation is then dead on
    /// this path) or the analysis gave up (caller must taint).
    fn analyze_function(
        &mut self,
        f: FuncId,
        args: &[AbsVal],
        globals_in: &[AbsVal],
        depth: usize,
    ) -> Result<Option<(AbsVal, Vec<AbsVal>)>, ()> {
        if depth >= MAX_ANALYSIS_DEPTH || self.call_graph.recursive[f.0] {
            return Err(());
        }
        let key = (
            f.0,
            args.iter()
                .chain(globals_in.iter())
                .map(|v| (v.lo.to_bits(), v.hi.to_bits(), v.nan))
                .collect::<Vec<_>>(),
        );
        if let Some(cached) = self.call_memo.get(&key) {
            return Ok(cached.clone());
        }

        let function = self.module.function(f);
        let cfg = &self.cfgs[f.0];
        let nb = function.blocks.len();
        let mut states: Vec<Option<Env>> = vec![None; nb];
        let mut visits: Vec<u32> = vec![0; nb];
        states[0] = Some(Env {
            // Scalar frames are zero-filled, so unwritten registers read 0.0.
            regs: vec![AbsVal::exact(0.0); function.num_regs],
            globals: globals_in.to_vec(),
        });
        let mut ret: Option<(AbsVal, Vec<AbsVal>)> = None;

        let mut changed = true;
        while changed {
            changed = false;
            for &b in &cfg.rpo {
                let Some(env) = states[b.0].clone() else {
                    continue;
                };
                if self.steps >= STEP_BUDGET {
                    return Err(());
                }
                self.steps += 1;
                let (outs, block_ret) = self.transfer_block(f, b, env, args, depth)?;
                if let Some((rv, rg)) = block_ret {
                    let joined = match &ret {
                        None => (rv, rg),
                        Some((pv, pg)) => (
                            pv.join(&rv),
                            pg.iter().zip(&rg).map(|(a, b)| a.join(b)).collect(),
                        ),
                    };
                    if ret.as_ref() != Some(&joined) {
                        ret = Some(joined);
                        changed = true;
                    }
                }
                for (succ, out_env) in outs {
                    match &mut states[succ.0] {
                        None => {
                            states[succ.0] = Some(out_env);
                            visits[succ.0] += 1;
                            changed = true;
                        }
                        Some(cur) => {
                            visits[succ.0] += 1;
                            let widen = visits[succ.0] > WIDEN_AFTER;
                            if cur.join_widen(&out_env, widen) {
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        self.call_memo.insert(key, ret.clone());
        Ok(ret)
    }

    /// Transfers one block: returns the successor environments and, if the
    /// terminator is a reachable `Return`, the returned value and globals.
    #[allow(clippy::type_complexity)]
    fn transfer_block(
        &mut self,
        f: FuncId,
        b: BlockId,
        mut env: Env,
        args: &[AbsVal],
        depth: usize,
    ) -> Result<(Vec<(BlockId, Env)>, Option<(AbsVal, Vec<AbsVal>)>), ()> {
        let function = self.module.function(f);
        for inst in &function.blocks[b.0].insts {
            match inst {
                Inst::Const { dst, value } => env.regs[dst.0] = AbsVal::exact(*value),
                Inst::Copy { dst, src } => env.regs[dst.0] = env.regs[src.0],
                Inst::Param { dst, index } => {
                    env.regs[dst.0] = args.get(*index).copied().unwrap_or_else(AbsVal::top);
                }
                Inst::Bin {
                    dst,
                    op,
                    lhs,
                    rhs,
                    site,
                } => {
                    let v = abs_bin(*op, env.regs[lhs.0], env.regs[rhs.0]);
                    if let Some(s) = site {
                        let o = self.ops.entry(s.0).or_default();
                        o.seen = true;
                        o.value = o.value.join(&v);
                    }
                    env.regs[dst.0] = v;
                }
                Inst::Un { dst, op, arg, site } => {
                    let v = abs_un(*op, env.regs[arg.0]);
                    if let Some(s) = site {
                        let o = self.ops.entry(s.0).or_default();
                        o.seen = true;
                        o.value = o.value.join(&v);
                    }
                    env.regs[dst.0] = v;
                }
                Inst::Cmp { dst, cmp, lhs, rhs } => {
                    let (t, fl) = cmp_possibilities(*cmp, env.regs[lhs.0], env.regs[rhs.0]);
                    env.regs[dst.0] = match (t, fl) {
                        (true, false) => AbsVal::exact(1.0),
                        (false, true) => AbsVal::exact(0.0),
                        _ => AbsVal::num(0.0, 1.0),
                    };
                }
                Inst::Select {
                    dst,
                    cond,
                    if_true,
                    if_false,
                } => {
                    // Select tests `cond != 0.0`; NaN counts as true.
                    let c = env.regs[cond.0];
                    let true_possible = c.nan || (c.has_num() && !(c.lo == 0.0 && c.hi == 0.0));
                    let false_possible = c.may_be(0.0);
                    env.regs[dst.0] = match (true_possible, false_possible) {
                        (true, false) => env.regs[if_true.0],
                        (false, true) => env.regs[if_false.0],
                        _ => env.regs[if_true.0].join(&env.regs[if_false.0]),
                    };
                }
                Inst::Call { dst, func, args: call_args } => {
                    if func.0 >= self.module.functions.len()
                        || call_args.len() != self.module.function(*func).num_params
                    {
                        // The interpreter raises an ExecError here on every
                        // input: nothing after this point executes.
                        return Ok((Vec::new(), None));
                    }
                    let vals: Vec<AbsVal> = call_args.iter().map(|r| env.regs[r.0]).collect();
                    match self.analyze_function(*func, &vals, &env.globals, depth + 1) {
                        Ok(Some((rv, rg))) => {
                            env.regs[dst.0] = rv;
                            env.globals = rg;
                        }
                        Ok(None) => {
                            // No return is reachable in the callee: the rest
                            // of this block never executes.
                            return Ok((Vec::new(), None));
                        }
                        Err(()) => {
                            // Couldn't analyze the callee: taint its sites
                            // and assume it may return anything / write any
                            // global.
                            self.taint_function(*func);
                            env.regs[dst.0] = AbsVal::top();
                            for g in &mut env.globals {
                                *g = AbsVal::top();
                            }
                        }
                    }
                }
                Inst::LoadGlobal { dst, global } => env.regs[dst.0] = env.globals[global.0],
                Inst::StoreGlobal { global, src } => env.globals[global.0] = env.regs[src.0],
            }
        }
        match &function.blocks[b.0].term {
            Terminator::Jump(t) => Ok((vec![(*t, env)], None)),
            Terminator::CondBr {
                site,
                lhs,
                cmp,
                rhs,
                then_bb,
                else_bb,
            } => {
                let (a, bb) = (env.regs[lhs.0], env.regs[rhs.0]);
                let (may_true, may_false) = cmp_possibilities(*cmp, a, bb);
                if let Some(s) = site {
                    let o = self.branches.entry(s.0).or_default();
                    o.then_possible |= may_true;
                    o.else_possible |= may_false;
                    o.eq_possible |= equality_possible(a, bb);
                }
                let mut outs = Vec::new();
                if may_true {
                    outs.push((*then_bb, env.clone()));
                }
                if may_false {
                    outs.push((*else_bb, env));
                }
                Ok((outs, None))
            }
            Terminator::Return(r) => {
                let rv = match r {
                    Some(reg) => env.regs[reg.0],
                    // `Call` writes `ret.unwrap_or(NAN)` into its dst.
                    None => AbsVal::exact(f64::NAN),
                };
                Ok((Vec::new(), Some((rv, env.globals))))
            }
        }
    }
}

/// Can `lhs == rhs` hold with both operands on the numeric boundary?
fn equality_possible(a: AbsVal, b: AbsVal) -> bool {
    a.has_num() && b.has_num() && a.lo <= b.hi && b.lo <= a.hi
}

/// Runs the interval analysis of `module` from `entry`, seeding parameters
/// from `domain` (one interval per entry parameter; missing entries default
/// to the whole finite range).
///
/// The module must already have passed strict validation — callers are
/// expected to fall back to [`ReachSummary::unknown_for`] otherwise.
pub fn analyze(
    module: &Module,
    entry: FuncId,
    domain: &[Interval],
    cfgs: &[Cfg],
    call_graph: &CallGraph,
) -> ReachSummary {
    let entry_fn = module.function(entry);
    let args: Vec<AbsVal> = (0..entry_fn.num_params)
        .map(|i| match domain.get(i) {
            Some(iv) => AbsVal::num(iv.lo(), iv.hi()),
            None => AbsVal::num(-f64::MAX, f64::MAX),
        })
        .collect();
    let globals: Vec<AbsVal> = module.globals.iter().map(|g| AbsVal::exact(g.init)).collect();

    let mut az = Analyzer {
        module,
        cfgs,
        call_graph,
        ops: BTreeMap::new(),
        branches: BTreeMap::new(),
        call_memo: HashMap::new(),
        steps: 0,
    };
    // The entry itself may be recursive or over budget; taint everything in
    // that case so all sites classify as Unknown.
    match az.analyze_function(entry, &args, &globals, 0) {
        Ok(_) => {}
        Err(()) => az.taint_function(entry),
    }

    // Blocks that execute on *every* (sufficiently fueled, unstopped) run:
    // walk the entry function from bb0 through unconditional jumps and
    // definite branch directions, stopping at calls, cycles and undecided
    // branches. Sites on this spine upgrade to `Reachable`.
    let mut proven_ops: Vec<u32> = Vec::new();
    let mut proven_branches: Vec<u32> = Vec::new();
    let mut cur = entry_fn.entry();
    let mut visited = vec![false; entry_fn.blocks.len()];
    'walk: while !visited[cur.0] {
        visited[cur.0] = true;
        for inst in &entry_fn.blocks[cur.0].insts {
            if matches!(inst, Inst::Call { .. }) {
                break 'walk;
            }
            if let Some(s) = inst.site() {
                proven_ops.push(s.0);
            }
        }
        match &entry_fn.blocks[cur.0].term {
            Terminator::Jump(t) => cur = *t,
            Terminator::CondBr {
                site,
                then_bb,
                else_bb,
                ..
            } => {
                let Some(s) = site else { break };
                proven_branches.push(s.0);
                let obs = az.branches.get(&s.0).cloned().unwrap_or_default();
                if obs.tainted {
                    break;
                }
                match (obs.then_possible, obs.else_possible) {
                    (true, false) => cur = *then_bb,
                    (false, true) => cur = *else_bb,
                    _ => break,
                }
            }
            Terminator::Return(_) => break,
        }
    }

    // Fold observations into the final classification. Sites never observed
    // (and not tainted) are proven unreachable from the entry.
    let mut summary = ReachSummary::unknown_for(module);
    for (id, info) in summary.ops.iter_mut() {
        let obs = az.ops.get(id).cloned().unwrap_or_default();
        if obs.tainted {
            info.reach = Reachability::Unknown;
            info.value = AbsVal::top();
        } else if !obs.seen {
            info.reach = Reachability::Unreachable;
            info.value = AbsVal::empty_num(false);
        } else {
            info.reach = if proven_ops.contains(id) {
                Reachability::Reachable
            } else {
                Reachability::Unknown
            };
            info.value = obs.value;
        }
    }
    for (id, info) in summary.branches.iter_mut() {
        let obs = az.branches.get(id).cloned().unwrap_or_default();
        if obs.tainted {
            continue; // stays Unknown on every axis
        }
        let executes_always = proven_branches.contains(id);
        let side = |possible: bool, other_possible: bool| -> Reachability {
            if !possible {
                Reachability::Unreachable
            } else if executes_always && !other_possible {
                Reachability::Reachable
            } else {
                Reachability::Unknown
            }
        };
        info.then_reach = side(obs.then_possible, obs.else_possible);
        info.else_reach = side(obs.else_possible, obs.then_possible);
        info.boundary_reach = if obs.eq_possible {
            Reachability::Unknown
        } else {
            Reachability::Unreachable
        };
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(lo: f64, hi: f64) -> AbsVal {
        AbsVal::num(lo, hi)
    }

    #[test]
    fn arithmetic_transfer_is_sound_on_spot_checks() {
        let r = abs_bin(BinOp::Add, v(1.0, 2.0), v(10.0, 20.0));
        assert!(r.contains(11.0) && r.contains(22.0) && !r.nan);
        let r = abs_bin(BinOp::Mul, v(-1.0, 1.0), v(f64::INFINITY, f64::INFINITY));
        assert!(r.nan, "0 * inf possible away from corners");
        assert!(r.contains(f64::NEG_INFINITY) && r.contains(f64::INFINITY));
        let r = abs_bin(BinOp::Div, v(1.0, 1.0), v(-1.0, 1.0));
        assert_eq!(r, AbsVal::top());
        let r = abs_bin(BinOp::Min, AbsVal::exact(f64::NAN), v(3.0, 4.0));
        assert!(r.contains(3.5) && !r.nan, "min(NaN, x) = x");
    }

    #[test]
    fn exp_log_endpoints_are_padded_outward() {
        let r = abs_un(UnOp::Exp, v(0.0, 1.0));
        assert!(r.lo < 1.0 && r.hi > std::f64::consts::E - 1e-10);
        assert!(r.lo > 0.9999999);
        let r = abs_un(UnOp::Log, v(0.0, 1.0));
        assert_eq!(r.lo, f64::NEG_INFINITY, "ln(0) = -inf");
        assert!(r.hi >= 0.0 && !r.nan);
        let r = abs_un(UnOp::Log, v(-1.0, 1.0));
        assert!(r.nan, "ln of a negative is NaN");
    }

    #[test]
    fn sqrt_of_possibly_negative_sets_nan() {
        let r = abs_un(UnOp::Sqrt, v(-4.0, 9.0));
        assert!(r.nan);
        assert!(r.contains(3.0) && r.contains(0.0));
        assert!(!r.contains(-1.0));
    }

    /// The concrete values whose interactions make `min`/`max`/`powf`
    /// NaN-interesting: signed zeros, infinities, NaN, ordinary numbers.
    fn specials() -> Vec<f64> {
        vec![
            f64::NAN,
            f64::NEG_INFINITY,
            f64::INFINITY,
            -0.0,
            0.0,
            -1.0,
            1.0,
            0.5,
            -2.5,
            f64::MAX,
            f64::MIN_POSITIVE,
        ]
    }

    #[test]
    fn min_max_transfer_covers_every_special_pair() {
        // SCCP folds `min`/`max` results out of singleton operands, so the
        // abstract transfer must cover the *exact* `f64::min`/`f64::max`
        // result — including the NaN-absorbing cases where Rust returns the
        // non-NaN operand, not NaN.
        for op in [BinOp::Min, BinOp::Max] {
            for &a in &specials() {
                for &b in &specials() {
                    let concrete = op.apply(a, b);
                    let abs = abs_bin(op, AbsVal::exact(a), AbsVal::exact(b));
                    assert!(
                        abs.contains(concrete),
                        "{op:?}({a}, {b}) = {concrete} escapes {abs:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn min_max_nan_flag_requires_both_operands_nan() {
        // min(NaN, x) = x and max(x, NaN) = x in Rust: the result is NaN
        // only when *both* operands are NaN. A spurious NaN flag would be
        // sound but would block folding; a missing one would be a bug.
        let num = v(3.0, 4.0);
        let nan = AbsVal::exact(f64::NAN);
        for op in [BinOp::Min, BinOp::Max] {
            assert!(!abs_bin(op, nan, num).nan, "{op:?}(NaN, num) is numeric");
            assert!(!abs_bin(op, num, nan).nan, "{op:?}(num, NaN) is numeric");
            assert!(abs_bin(op, nan, nan).nan, "{op:?}(NaN, NaN) is NaN");
            let maybe = AbsVal {
                lo: 1.0,
                hi: 2.0,
                nan: true,
            };
            let r = abs_bin(op, maybe, num);
            assert!(!r.nan, "a may-NaN side still yields the other range");
            assert!(r.contains(3.5), "NaN side substitutes the other range");
        }
    }

    #[test]
    fn min_max_singletons_fold_to_apply_bits() {
        // The folding rule: singleton operands fold to BinOp::apply's exact
        // bit pattern. min(-0.0, 0.0) is whichever operand Rust's
        // `f64::min` picks — assert the abstract transfer admits it and
        // that the fold source (`apply`) is what the interpreter runs.
        let cases = [(-0.0, 0.0), (0.0, -0.0), (1.0, 1.0), (-1.0, 2.0)];
        for op in [BinOp::Min, BinOp::Max] {
            for (a, b) in cases {
                let folded = op.apply(a, b);
                let abs = abs_bin(op, AbsVal::exact(a), AbsVal::exact(b));
                assert!(abs.contains(folded), "{op:?}({a:?}, {b:?})");
            }
        }
        // Signed-zero singletons stay distinguishable at the bit level:
        // an abstraction spanning [-0.0, 0.0] must not report a singleton.
        assert_eq!(AbsVal::exact(-0.0).singleton().map(f64::to_bits),
                   Some((-0.0f64).to_bits()));
        assert_eq!(AbsVal::num(-0.0, 0.0).singleton(), None);
        assert_eq!(AbsVal::exact(f64::NAN).singleton(), None);
    }

    #[test]
    fn pow_transfer_covers_every_special_pair() {
        // Pow's abstract transfer is `top`; folding relies on the singleton
        // path computing `powf` itself. Pin both: top covers every special
        // pair (including the NaN results of e.g. (-1.5).powf(0.5)), and
        // NaN results are flagged so SCCP refuses to fold them.
        for &a in &specials() {
            for &b in &specials() {
                let concrete = BinOp::Pow.apply(a, b);
                let abs = abs_bin(BinOp::Pow, AbsVal::exact(a), AbsVal::exact(b));
                assert!(
                    abs.contains(concrete),
                    "powf({a}, {b}) = {concrete} escapes {abs:?}"
                );
            }
        }
        assert!(
            BinOp::Pow.apply(-1.5, 0.5).is_nan(),
            "negative base, fractional exponent is the NaN case folding must skip"
        );
    }

    #[test]
    fn comparison_tri_state() {
        assert_eq!(abs_cmp(Cmp::Lt, v(0.0, 1.0), v(2.0, 3.0)), Some(true));
        assert_eq!(abs_cmp(Cmp::Lt, v(2.0, 3.0), v(0.0, 1.0)), Some(false));
        assert_eq!(abs_cmp(Cmp::Lt, v(0.0, 2.5), v(2.0, 3.0)), None);
        // NaN forces "may be false" on everything but Ne.
        let mut nanny = v(0.0, 1.0);
        nanny.nan = true;
        assert_eq!(abs_cmp(Cmp::Lt, nanny, v(2.0, 3.0)), None);
    }
}
