//! Per-function control-flow graph and per-module call graph.
//!
//! The CFG caches exactly the derived structure every other pass needs:
//! successor and predecessor lists, the set of blocks reachable from the
//! entry, a reverse-postorder numbering for fast forward dataflow, and a
//! loop classification (which blocks sit on a CFG cycle). The call graph
//! adds recursion detection via Tarjan-style SCC discovery so the kernel
//! eligibility pass can tell inlinable lockstep calls from calls that must
//! fall back to the scalar interpreter.

use crate::ir::{BlockId, FuncId, Function, Module, Terminator};

/// Control-flow graph of one function, with the derived orderings every
/// analysis pass shares.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Successor lists, indexed by block.
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessor lists, indexed by block (entry-reachable edges only).
    pub preds: Vec<Vec<BlockId>>,
    /// `reachable[b]` is true if `bb b` is reachable from the entry block.
    pub reachable: Vec<bool>,
    /// Reachable blocks in reverse postorder (entry first).
    pub rpo: Vec<BlockId>,
    /// `rpo_index[b]` is the position of `bb b` in [`Cfg::rpo`]
    /// (`usize::MAX` for unreachable blocks).
    pub rpo_index: Vec<usize>,
    /// `in_cycle[b]` is true if `bb b` lies on a CFG cycle (it belongs to a
    /// non-trivial strongly connected component or has a self edge).
    pub in_cycle: Vec<bool>,
}

impl Cfg {
    /// Builds the CFG of `function`.
    pub fn new(function: &Function) -> Self {
        let n = function.blocks.len();
        let mut succs = vec![Vec::new(); n];
        for (b, block) in function.blocks.iter().enumerate() {
            succs[b] = block
                .term
                .successors_iter()
                .filter(|s| s.0 < n)
                .collect::<Vec<_>>();
        }

        // Depth-first search from the entry for reachability and postorder.
        let mut reachable = vec![false; n];
        let mut post = Vec::with_capacity(n);
        if n > 0 {
            // Iterative DFS; the second stack slot tracks the next successor
            // to visit so blocks are emitted in true postorder.
            let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
            reachable[0] = true;
            while let Some(&mut (b, ref mut next)) = stack.last_mut() {
                if *next < succs[b].len() {
                    let s = succs[b][*next].0;
                    *next += 1;
                    if !reachable[s] {
                        reachable[s] = true;
                        stack.push((s, 0));
                    }
                } else {
                    post.push(BlockId(b));
                    stack.pop();
                }
            }
        }
        let mut rpo: Vec<BlockId> = post.into_iter().rev().collect();
        debug_assert!(rpo.first().map(|b| b.0) == if n > 0 { Some(0) } else { None });
        if n > 0 && rpo.first() != Some(&BlockId(0)) {
            // Defensive: the entry always heads the ordering.
            rpo.retain(|b| b.0 != 0);
            rpo.insert(0, BlockId(0));
        }
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.0] = i;
        }

        let mut preds = vec![Vec::new(); n];
        for b in 0..n {
            if !reachable[b] {
                continue;
            }
            for &s in &succs[b] {
                preds[s.0].push(BlockId(b));
            }
        }

        let in_cycle = cycle_blocks(&succs, &reachable);

        Cfg {
            succs,
            preds,
            reachable,
            rpo,
            rpo_index,
            in_cycle,
        }
    }

    /// Number of blocks in the function (reachable or not).
    pub fn num_blocks(&self) -> usize {
        self.succs.len()
    }

    /// Number of blocks reachable from the entry.
    pub fn num_reachable(&self) -> usize {
        self.rpo.len()
    }

    /// True if `b` is reachable from the entry block.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.reachable.get(b.0).copied().unwrap_or(false)
    }
}

/// Marks blocks on a CFG cycle using an iterative Tarjan SCC pass restricted
/// to reachable blocks: members of non-trivial SCCs, plus self loops.
fn cycle_blocks(succs: &[Vec<BlockId>], reachable: &[bool]) -> Vec<bool> {
    let n = succs.len();
    let mut in_cycle = vec![false; n];
    for scc in sccs(n, reachable, |b| succs[b].iter().map(|s| s.0)) {
        if scc.len() > 1 {
            for b in scc {
                in_cycle[b] = true;
            }
        } else {
            let b = scc[0];
            if succs[b].iter().any(|s| s.0 == b) {
                in_cycle[b] = true;
            }
        }
    }
    in_cycle
}

/// Iterative Tarjan SCC over nodes `0..n` with `enabled` filtering, generic
/// over the successor function so the CFG and call graph share it.
fn sccs<I, F>(n: usize, enabled: &[bool], succ: F) -> Vec<Vec<usize>>
where
    I: Iterator<Item = usize>,
    F: Fn(usize) -> I,
{
    const UNSEEN: usize = usize::MAX;
    let mut index = vec![UNSEEN; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out = Vec::new();

    // Explicit DFS frames: (node, successors already consumed).
    for root in 0..n {
        if !enabled[root] || index[root] != UNSEEN {
            continue;
        }
        let mut frames: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        let children: Vec<usize> = succ(root).filter(|&s| s < n && enabled[s]).collect();
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        frames.push((root, children, 0));
        while let Some(&mut (v, ref children, ref mut next)) = frames.last_mut() {
            if *next < children.len() {
                let w = children[*next];
                *next += 1;
                if index[w] == UNSEEN {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    let grand: Vec<usize> = succ(w).filter(|&s| s < n && enabled[s]).collect();
                    frames.push((w, grand, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&mut (p, _, _)) = frames.last_mut() {
                    lowlink[p] = lowlink[p].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    out.push(scc);
                }
            }
        }
    }
    out
}

/// Per-module call graph with recursion classification.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Deduplicated callee lists, indexed by caller. Out-of-range callee ids
    /// (rejected by [`crate::validate::validate`]) are kept so diagnostics
    /// can report them, but clamped out of the SCC walk.
    pub callees: Vec<Vec<FuncId>>,
    /// `recursive[f]` is true if `@f` can reach itself through calls
    /// (directly or mutually).
    pub recursive: Vec<bool>,
}

impl CallGraph {
    /// Builds the call graph of `module`, scanning every block of every
    /// function (unreachable blocks included: a call that validation would
    /// reject should still show up in diagnostics).
    pub fn new(module: &Module) -> Self {
        let n = module.functions.len();
        let mut callees: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        for (f, function) in module.functions.iter().enumerate() {
            for block in &function.blocks {
                for inst in &block.insts {
                    if let crate::ir::Inst::Call { func, .. } = inst {
                        if !callees[f].contains(func) {
                            callees[f].push(*func);
                        }
                    }
                }
            }
        }
        let enabled = vec![true; n];
        let mut recursive = vec![false; n];
        for scc in sccs(n, &enabled, |f| {
            callees[f].iter().map(|c| c.0).filter(move |&c| c < n)
        }) {
            if scc.len() > 1 {
                for f in scc {
                    recursive[f] = true;
                }
            } else if callees[scc[0]].contains(&FuncId(scc[0])) {
                recursive[scc[0]] = true;
            }
        }
        CallGraph { callees, recursive }
    }
}

/// Classifies which terminator kind ends each reachable block — used by the
/// strict verifier to phrase diagnostics.
pub fn is_branch(term: &Terminator) -> bool {
    matches!(term, Terminator::CondBr { .. })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use fp_runtime::Cmp;

    fn diamond() -> Module {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.function("d", 1);
        let t = f.new_block();
        let e = f.new_block();
        let j = f.new_block();
        let x = f.param(0);
        let z = f.constant(0.0);
        f.cond_br(None, x, Cmp::Lt, z, t, e);
        f.switch_to(t);
        f.jump(j);
        f.switch_to(e);
        f.jump(j);
        f.switch_to(j);
        f.ret(Some(x));
        f.finish();
        mb.build()
    }

    #[test]
    fn diamond_cfg_shape() {
        let m = diamond();
        let cfg = Cfg::new(m.function(FuncId(0)));
        assert_eq!(cfg.num_blocks(), 4);
        assert_eq!(cfg.num_reachable(), 4);
        assert_eq!(cfg.rpo[0], BlockId(0));
        assert_eq!(cfg.preds[3], vec![BlockId(1), BlockId(2)]);
        assert!(cfg.in_cycle.iter().all(|&c| !c));
    }

    #[test]
    fn loops_and_unreachable_blocks_are_classified() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.function("l", 1);
        let body = f.new_block();
        let exit = f.new_block();
        let dead = f.new_block();
        let x = f.param(0);
        f.jump(body);
        f.switch_to(body);
        let z = f.constant(0.0);
        f.cond_br(None, x, Cmp::Lt, z, body, exit);
        f.switch_to(exit);
        f.ret(Some(x));
        f.switch_to(dead);
        f.ret(None);
        f.finish();
        let m = mb.build();
        let cfg = Cfg::new(m.function(FuncId(0)));
        assert!(cfg.is_reachable(BlockId(1)));
        assert!(!cfg.is_reachable(dead));
        assert!(cfg.in_cycle[1], "loop body is on a cycle");
        assert!(!cfg.in_cycle[0]);
        assert!(!cfg.in_cycle[2]);
    }

    #[test]
    fn call_graph_detects_mutual_recursion() {
        let mut mb = ModuleBuilder::new();
        let mut a = mb.function("a", 1);
        let x = a.param(0);
        let r = a.call(FuncId(1), vec![x]);
        a.ret(Some(r));
        a.finish();
        let mut b = mb.function("b", 1);
        let x = b.param(0);
        let r = b.call(FuncId(0), vec![x]);
        b.ret(Some(r));
        b.finish();
        let mut c = mb.function("c", 1);
        let x = c.param(0);
        let r = c.call(FuncId(0), vec![x]);
        c.ret(Some(r));
        c.finish();
        let m = mb.build();
        let cg = CallGraph::new(&m);
        assert!(cg.recursive[0] && cg.recursive[1]);
        assert!(!cg.recursive[2], "calling a recursive fn is not recursion");
    }
}
