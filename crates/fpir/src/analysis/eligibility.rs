//! Structural wave-safety: which functions the lanewise SoA kernel can run
//! in lockstep, calls included.
//!
//! A function is *wave-safe* when every call the wave can reach executes a
//! callee that can itself run as a nested lockstep frame:
//!
//! * the function is not (mutually) recursive — lockstep frames have a
//!   statically bounded stack;
//! * every call in a reachable block names an existing function with
//!   matching arity, and that callee is transitively wave-safe.
//!
//! Divergent branches and loops are allowed — the kernel already manages
//! divergence by evicting minority lanes — so this strictly widens the old
//! `Auto` heuristic ("entry is call-free"): instrumented `W` modules, whose
//! entry wraps the original program in a call, become kernel-eligible.

use super::cfg::{CallGraph, Cfg};
use crate::ir::{FuncId, Inst, Module};

/// Per-function structural summary used for eligibility decisions and the
/// `analyze` bench report.
#[derive(Debug, Clone)]
pub struct FunctionEligibility {
    /// Function name.
    pub name: String,
    /// Total number of blocks.
    pub total_blocks: usize,
    /// Blocks reachable from the function entry.
    pub reachable_blocks: usize,
    /// Reachable blocks not on any CFG cycle (straight-line or
    /// reconvergent-diamond regions, where the wave reconverges).
    pub convergent_blocks: usize,
    /// True if the function is on a call-graph cycle.
    pub recursive: bool,
    /// True if the function can run fully lockstep (see module docs).
    pub wave_safe: bool,
}

/// Computes `wave_safe` for every function of `module`.
pub fn wave_safety(module: &Module, cfgs: &[Cfg], call_graph: &CallGraph) -> Vec<bool> {
    let n = module.functions.len();
    let mut memo: Vec<Option<bool>> = vec![None; n];
    for f in 0..n {
        decide(module, cfgs, call_graph, FuncId(f), &mut memo);
    }
    memo.into_iter().map(|m| m.unwrap_or(false)).collect()
}

fn decide(
    module: &Module,
    cfgs: &[Cfg],
    call_graph: &CallGraph,
    f: FuncId,
    memo: &mut Vec<Option<bool>>,
) -> bool {
    if let Some(v) = memo[f.0] {
        return v;
    }
    if call_graph.recursive[f.0] {
        memo[f.0] = Some(false);
        return false;
    }
    // Non-recursive functions form a DAG, so this recursion terminates; seed
    // the memo pessimistically anyway so a rogue cycle cannot loop.
    memo[f.0] = Some(false);
    let function = module.function(f);
    let cfg = &cfgs[f.0];
    let mut safe = true;
    'blocks: for &b in &cfg.rpo {
        for inst in &function.blocks[b.0].insts {
            if let Inst::Call { func, args, .. } = inst {
                if func.0 >= module.functions.len()
                    || args.len() != module.function(*func).num_params
                    || !decide(module, cfgs, call_graph, *func, memo)
                {
                    safe = false;
                    break 'blocks;
                }
            }
        }
    }
    memo[f.0] = Some(safe);
    safe
}

/// Builds the per-function eligibility table of `module`.
pub fn function_eligibility(
    module: &Module,
    cfgs: &[Cfg],
    call_graph: &CallGraph,
    wave_safe: &[bool],
) -> Vec<FunctionEligibility> {
    module
        .functions
        .iter()
        .enumerate()
        .map(|(f, function)| {
            let cfg = &cfgs[f];
            FunctionEligibility {
                name: function.name.clone(),
                total_blocks: cfg.num_blocks(),
                reachable_blocks: cfg.num_reachable(),
                convergent_blocks: cfg.rpo.iter().filter(|b| !cfg.in_cycle[b.0]).count(),
                recursive: call_graph.recursive[f],
                wave_safe: wave_safe[f],
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::ModuleAnalysis;
    use crate::builder::ModuleBuilder;
    use crate::instrument;
    use crate::programs;

    #[test]
    fn instrumented_w_modules_are_wave_safe() {
        let fig2 = programs::fig2_program();
        let entry = fig2.function_by_name("prog").unwrap();
        let w = instrument::instrument_boundary(&fig2, entry);
        let ma = ModuleAnalysis::new(&w);
        let w_entry = w.function_by_name(instrument::W_FUNCTION).unwrap();
        assert!(
            ma.wave_safe[w_entry.0],
            "W driver calls a non-recursive program, so it runs lockstep"
        );
    }

    #[test]
    fn recursion_and_bad_arity_disqualify() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.function("self", 1);
        let x = f.param(0);
        let r = f.call(FuncId(0), vec![x]);
        f.ret(Some(r));
        f.finish();
        let mut g = mb.function("caller", 1);
        let x = g.param(0);
        let r = g.call(FuncId(0), vec![x]);
        g.ret(Some(r));
        g.finish();
        let mut h = mb.function("bad_arity", 1);
        let x = h.param(0);
        let r = h.call(FuncId(3), vec![x, x]); // leaf takes 1 param
        h.ret(Some(r));
        h.finish();
        let mut leaf = mb.function("leaf", 1);
        let x = leaf.param(0);
        leaf.ret(Some(x));
        leaf.finish();
        let m = mb.build();
        let ma = ModuleAnalysis::new(&m);
        assert!(!ma.wave_safe[0], "direct recursion");
        assert!(!ma.wave_safe[1], "calls a recursive function");
        assert!(!ma.wave_safe[2], "arity mismatch");
        assert!(ma.wave_safe[3]);
    }
}
