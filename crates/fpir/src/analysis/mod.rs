//! Static analysis over fpir modules: CFG, dominance, liveness, interval
//! abstract interpretation and kernel eligibility.
//!
//! The pass pipeline is deliberately layered:
//!
//! 1. [`cfg`] — per-function control-flow graphs (successors, predecessors,
//!    reverse postorder, reachability, cycle membership) and the module
//!    call graph with recursion detection;
//! 2. [`dom`] — dominator trees (Cooper–Harvey–Kennedy), powering the
//!    strict verifier's def-before-use check;
//! 3. [`liveness`] — backward liveness and the slot-sharing
//!    [`FrameLayout`] the lanewise kernel uses to shrink its SoA register
//!    file;
//! 4. [`eligibility`] — structural wave-safety replacing the old
//!    `KernelPolicy::Auto` "entry is call-free" heuristic;
//! 5. [`interval`] — a forward interval abstract interpreter with NaN/±inf
//!    tracking that classifies branch sides, branch boundaries and
//!    operation sites as `Reachable`/`Unreachable`/`Unknown`, letting
//!    `wdm_core` prune provably-dead targets before any minimizer runs.
//!
//! Everything below 5 is input-independent; the interval pass is seeded
//! from the program's search domain, so its `Unreachable` verdicts are
//! proofs *relative to that domain* (exactly the set minimizers sample
//! from, which clamp into the domain box).

pub mod cfg;
pub mod dom;
pub mod eligibility;
pub mod interval;
pub mod liveness;

pub use cfg::{CallGraph, Cfg};
pub use dom::Dominators;
pub use eligibility::FunctionEligibility;
pub use interval::{AbsVal, BranchInfo, OpInfo, ReachSummary};
pub use liveness::{FrameLayout, Liveness};

use crate::ir::{FuncId, Function, Inst, Module, Terminator};
use fp_runtime::{BranchId, BranchSite, Interval, OpId, OpSite};

/// All instrumented operation sites of `function`, in block/instruction
/// order — the single traversal behind [`Module::op_sites_of`] and the
/// cached site tables.
pub fn op_site_ids(function: &Function) -> Vec<OpId> {
    let mut sites = Vec::new();
    for block in &function.blocks {
        for inst in &block.insts {
            if let Some(s) = inst.site() {
                sites.push(s);
            }
        }
    }
    sites
}

/// All instrumented branch sites of `function`, in block order.
pub fn branch_site_ids(function: &Function) -> Vec<BranchId> {
    let mut sites = Vec::new();
    for block in &function.blocks {
        if let Terminator::CondBr { site: Some(s), .. } = block.term {
            sites.push(s);
        }
    }
    sites
}

/// The labelled [`OpSite`] table of `function` (same order and labels the
/// interpreter's `Analyzable::op_sites` always produced).
pub fn op_site_table(function: &Function) -> Vec<OpSite> {
    let mut sites = Vec::new();
    for block in &function.blocks {
        for inst in &block.insts {
            match inst {
                Inst::Bin {
                    op, site: Some(s), ..
                } => sites.push(OpSite::new(s.0, op.event_kind(), inst.to_string())),
                Inst::Un {
                    op, site: Some(s), ..
                } => sites.push(OpSite::new(s.0, op.event_kind(), inst.to_string())),
                _ => {}
            }
        }
    }
    sites
}

/// The labelled [`BranchSite`] table of `function`.
pub fn branch_site_table(function: &Function) -> Vec<BranchSite> {
    let mut sites = Vec::new();
    for block in &function.blocks {
        if let Terminator::CondBr {
            site: Some(s), cmp, ..
        } = &block.term
        {
            sites.push(BranchSite::new(s.0, *cmp, block.term.to_string()));
        }
    }
    sites
}

/// The input-independent analysis results of one module: CFGs, dominator
/// trees, call graph, wave layouts and wave-safety.
///
/// Building one walks every function once per pass; callers cache it
/// (`ModuleProgram` holds one behind a `OnceLock`).
#[derive(Debug, Clone)]
pub struct ModuleAnalysis {
    /// Per-function CFG.
    pub cfgs: Vec<Cfg>,
    /// Per-function dominator tree.
    pub doms: Vec<Dominators>,
    /// The module call graph.
    pub call_graph: CallGraph,
    /// Per-function SoA frame layout (liveness-compacted when sound).
    pub layouts: Vec<FrameLayout>,
    /// Per-function wave-safety (see [`eligibility`]).
    pub wave_safe: Vec<bool>,
    /// Per-function structural summaries.
    pub functions: Vec<FunctionEligibility>,
}

impl ModuleAnalysis {
    /// Analyzes every function of `module`.
    pub fn new(module: &Module) -> Self {
        let cfgs: Vec<Cfg> = module.functions.iter().map(Cfg::new).collect();
        let doms: Vec<Dominators> = cfgs.iter().map(Dominators::new).collect();
        let call_graph = CallGraph::new(module);
        let layouts: Vec<FrameLayout> = module
            .functions
            .iter()
            .zip(&cfgs)
            .map(|(f, cfg)| FrameLayout::of(f, cfg))
            .collect();
        let wave_safe = eligibility::wave_safety(module, &cfgs, &call_graph);
        let functions = eligibility::function_eligibility(module, &cfgs, &call_graph, &wave_safe);
        ModuleAnalysis {
            cfgs,
            doms,
            call_graph,
            layouts,
            wave_safe,
            functions,
        }
    }
}

/// Everything a [`crate::ModuleProgram`] derives statically from its module
/// and search domain, computed once and cached.
#[derive(Debug, Clone)]
pub struct StaticInfo {
    /// Whole-module structural analysis.
    pub analysis: ModuleAnalysis,
    /// True if the entry function is wave-safe — the new
    /// `KernelPolicy::Auto` eligibility test.
    pub eligible: bool,
    /// Cached `Analyzable::op_sites` table (entry function, historical
    /// contract).
    pub op_sites: Vec<OpSite>,
    /// Cached `Analyzable::branch_sites` table (entry function).
    pub branch_sites: Vec<BranchSite>,
    /// Reachability classification of every site in the module (module
    /// wide: instrumented callees included), seeded from the search domain.
    /// Trivially `Unknown` when the module fails strict validation.
    pub reach: ReachSummary,
    /// True if strict validation passed (reachability proofs are only
    /// built on validated modules).
    pub validated: bool,
}

impl StaticInfo {
    /// Computes the full static summary of (`module`, `entry`, `domain`).
    pub fn compute(module: &Module, entry: FuncId, domain: &[Interval]) -> Self {
        let analysis = ModuleAnalysis::new(module);
        let eligible = analysis.wave_safe.get(entry.0).copied().unwrap_or(false);
        let entry_fn = module.function(entry);
        let op_sites = op_site_table(entry_fn);
        let branch_sites = branch_site_table(entry_fn);
        let validated = crate::validate::validate(module).is_ok();
        let reach = if validated {
            interval::analyze(module, entry, domain, &analysis.cfgs, &analysis.call_graph)
        } else {
            ReachSummary::unknown_for(module)
        };
        StaticInfo {
            analysis,
            eligible,
            op_sites,
            branch_sites,
            reach,
            validated,
        }
    }
}
