//! Backward slicing / dead-code elimination from the observation set.
//!
//! An instruction survives only if it can affect something the
//! [`ObservationSpec`] observes:
//!
//! * **roots** — instrumented operations (their event is the observation),
//!   every `Call` (the callee may emit events or store observed globals),
//!   and `StoreGlobal` to a *needed* global;
//! * **flow** — any instruction whose destination some live instruction or
//!   terminator reads (branch operands always stay live: control flow is
//!   never rewritten here).
//!
//! The entry function's `Return` operand is an observation root only when
//! the spec observes return values (or the entry is also called from
//! inside the module); otherwise the return is rewritten to `ret` with no
//! value and its computation chain becomes eligible for deletion — the
//! core of target-directed slicing, since the event-folding weak distances
//! never read the program's result.
//!
//! Liveness is iterated to a **least** fixpoint starting from the roots
//! (faint-variable style): a definition only used by other dead
//! definitions is itself dead, so whole chains disappear in one pass. The
//! needed-globals set is likewise a fixpoint: a global is needed if the
//! spec observes globals or some *live* `LoadGlobal` reads it, and stores
//! to needed globals are roots — the two analyses iterate together until
//! neither grows.

use super::OptStats;
use crate::analysis::liveness::{for_each_term_use, for_each_use};
use crate::ir::{Function, Inst, Module, Terminator};
use fp_runtime::ObservationSpec;
use std::collections::BTreeSet;

/// Runs the pass over `module`. Returns the number of instructions
/// deleted plus return rewrites (0 = fixpoint reached).
pub(crate) fn run(
    module: &mut Module,
    entry: crate::ir::FuncId,
    spec: &ObservationSpec,
    stats: &mut OptStats,
) -> usize {
    let _ = stats;
    let mut changes = 0usize;

    // The entry's return value may only be dropped when nothing observes
    // it: the spec does not, and no internal call reads it either.
    let entry_called = module
        .functions
        .iter()
        .flat_map(|f| &f.blocks)
        .flat_map(|b| &b.insts)
        .any(|i| matches!(i, Inst::Call { func, .. } if *func == entry));
    if !spec.return_value && !entry_called {
        for block in &mut module.functions[entry.0].blocks {
            if matches!(block.term, Terminator::Return(Some(_))) {
                block.term = Terminator::Return(None);
                changes += 1;
            }
        }
    }

    // Needed globals ∪ per-function liveness, iterated together.
    let mut needed: BTreeSet<usize> = if spec.globals {
        (0..module.globals.len()).collect()
    } else {
        BTreeSet::new()
    };
    let live: Vec<Vec<Vec<bool>>> = loop {
        let live: Vec<Vec<Vec<bool>>> = module
            .functions
            .iter()
            .map(|f| function_liveness(f, spec, &needed))
            .collect();
        let mut grown = needed.clone();
        for (f, function) in module.functions.iter().enumerate() {
            for (b, block) in function.blocks.iter().enumerate() {
                for (i, inst) in block.insts.iter().enumerate() {
                    if live[f][b][i] {
                        if let Inst::LoadGlobal { global, .. } = inst {
                            grown.insert(global.0);
                        }
                    }
                }
            }
        }
        if grown == needed {
            break live;
        }
        needed = grown;
    };

    for (f, function) in module.functions.iter_mut().enumerate() {
        for (b, block) in function.blocks.iter_mut().enumerate() {
            let keep = &live[f][b];
            if keep.iter().all(|&k| k) {
                continue;
            }
            let mut i = 0usize;
            block.insts.retain(|_| {
                let k = keep[i];
                i += 1;
                k
            });
            changes += keep.iter().filter(|&&k| !k).count();
        }
    }
    changes
}

/// True if `inst` is an observation root under `spec`/`needed`.
fn is_root(inst: &Inst, needed: &BTreeSet<usize>) -> bool {
    match inst {
        // A surviving site label means the spec observes this event
        // (unobserved labels were stripped before the pipeline ran).
        Inst::Bin { site: Some(_), .. } | Inst::Un { site: Some(_), .. } => true,
        Inst::Call { .. } => true,
        Inst::StoreGlobal { global, .. } => needed.contains(&global.0),
        _ => false,
    }
}

/// Per-instruction liveness of one function: `result[block][inst]`.
fn function_liveness(
    function: &Function,
    _spec: &ObservationSpec,
    needed: &BTreeSet<usize>,
) -> Vec<Vec<bool>> {
    let nb = function.blocks.len();
    let nr = function.num_regs;

    let succs: Vec<Vec<usize>> = function
        .blocks
        .iter()
        .map(|b| b.term.successors_iter().map(|s| s.0).collect())
        .collect();

    // live_in[b]: registers whose values may still reach an observation
    // when control enters `b`.
    let mut live_in: Vec<Vec<bool>> = vec![vec![false; nr]; nb];
    loop {
        let mut changed = false;
        for b in (0..nb).rev() {
            let mut live = vec![false; nr];
            for &s in &succs[b] {
                for r in 0..nr {
                    live[r] = live[r] || live_in[s][r];
                }
            }
            for_each_term_use(&function.blocks[b].term, |r| live[r.0] = true);
            for inst in function.blocks[b].insts.iter().rev() {
                let inst_live =
                    is_root(inst, needed) || inst.dst().map(|d| live[d.0]).unwrap_or(false);
                if inst_live {
                    if let Some(d) = inst.dst() {
                        live[d.0] = false;
                    }
                    for_each_use(inst, |r| live[r.0] = true);
                }
                // A dead instruction will be deleted: it neither defines
                // nor uses anything.
            }
            if live != live_in[b] {
                live_in[b] = live;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Final forward-order decision pass per block, walking backward from
    // the converged live-out sets.
    let mut result: Vec<Vec<bool>> = Vec::with_capacity(nb);
    for (b, block_succs) in succs.iter().enumerate() {
        let mut live = vec![false; nr];
        for &s in block_succs {
            for r in 0..nr {
                live[r] = live[r] || live_in[s][r];
            }
        }
        for_each_term_use(&function.blocks[b].term, |r| live[r.0] = true);
        let mut keep = vec![false; function.blocks[b].insts.len()];
        for (i, inst) in function.blocks[b].insts.iter().enumerate().rev() {
            let inst_live =
                is_root(inst, needed) || inst.dst().map(|d| live[d.0]).unwrap_or(false);
            keep[i] = inst_live;
            if inst_live {
                if let Some(d) = inst.dst() {
                    live[d.0] = false;
                }
                for_each_use(inst, |r| live[r.0] = true);
            }
        }
        result.push(keep);
    }
    result
}
