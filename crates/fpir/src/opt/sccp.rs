//! Sparse conditional constant propagation over the interval domain.
//!
//! A forward abstract interpretation with
//! [`AbsVal`](crate::analysis::interval::AbsVal) computes, for every
//! reachable block, a sound abstraction of each register at block entry —
//! propagating only along branch sides the
//! [`cmp_possibilities`](comparison feasibility) cannot rule out, the
//! "sparse conditional" part. The rewrite phase then replays each block
//! under its fixed entry environment and:
//!
//! * folds an **unobserved** `Bin`/`Un` whose operands are both single bit
//!   patterns into a `Const`, computing the value with the *same*
//!   `apply` the interpreter runs — and only when the result is non-NaN
//!   (NaN payloads are platform-shaped, never baked into constants);
//! * folds a `Cmp` the abstraction decides into its 1.0/0.0 constant;
//! * rewrites a `Select` whose condition is decided into a `Copy`;
//! * folds an **unobserved** `CondBr` with a provably impossible side into
//!   a `Jump` (observed branches always keep emitting their event, so they
//!   are never folded);
//! * empties blocks that folding made unreachable.
//!
//! Live floating-point operations are never reassociated, reordered or
//! strength-reduced — an instruction either survives verbatim or becomes a
//! bit-exact constant/copy.
//!
//! Entry-function parameters are seeded from the search domain (the same
//! assumption the zero-eval static pruning makes); every other function's
//! parameters, every `Call` result and every `LoadGlobal` are `top`.

use super::OptStats;
use crate::analysis::cfg::Cfg;
use crate::analysis::interval::{abs_bin, abs_cmp, abs_un, cmp_possibilities, AbsVal};
use crate::ir::{Block, BlockId, FuncId, Inst, Module, Terminator};
use fp_runtime::Interval;

/// Joins per block before endpoints widen to infinity.
const WIDEN_AFTER: usize = 8;

/// Cap on fixpoint sweeps (widening guarantees far earlier convergence).
const MAX_SWEEPS: usize = 64;

/// Runs the pass over every function of `module`. Returns the number of
/// rewrites performed (0 = fixpoint reached).
pub(crate) fn run(
    module: &mut Module,
    entry: FuncId,
    domain: &[Interval],
    stats: &mut OptStats,
) -> usize {
    let mut changed = 0usize;
    for f in 0..module.functions.len() {
        let params: Vec<AbsVal> = (0..module.functions[f].num_params)
            .map(|i| {
                if f == entry.0 {
                    match domain.get(i) {
                        Some(iv) if !iv.lo().is_nan() && !iv.hi().is_nan() => {
                            AbsVal::num(iv.lo(), iv.hi())
                        }
                        _ => AbsVal::top(),
                    }
                } else {
                    AbsVal::top()
                }
            })
            .collect();
        changed += run_function(module, f, &params, stats);
    }
    changed
}

/// Abstract-transfers `inst` over `env`, writing the destination register.
fn transfer(inst: &Inst, env: &mut [AbsVal], params: &[AbsVal]) {
    match inst {
        Inst::Const { dst, value } => env[dst.0] = AbsVal::exact(*value),
        Inst::Copy { dst, src } => env[dst.0] = env[src.0],
        Inst::Param { dst, index } => {
            env[dst.0] = params.get(*index).copied().unwrap_or_else(AbsVal::top)
        }
        Inst::Bin { dst, op, lhs, rhs, .. } => env[dst.0] = abs_bin(*op, env[lhs.0], env[rhs.0]),
        Inst::Un { dst, op, arg, .. } => env[dst.0] = abs_un(*op, env[arg.0]),
        Inst::Cmp { dst, cmp, lhs, rhs } => {
            env[dst.0] = match abs_cmp(*cmp, env[lhs.0], env[rhs.0]) {
                Some(true) => AbsVal::exact(1.0),
                Some(false) => AbsVal::exact(0.0),
                None => AbsVal::num(0.0, 1.0),
            }
        }
        Inst::Select {
            dst,
            cond,
            if_true,
            if_false,
        } => {
            let (may_true, may_false) = select_sides(env[cond.0]);
            env[dst.0] = match (may_true, may_false) {
                (true, false) => env[if_true.0],
                (false, true) => env[if_false.0],
                _ => env[if_true.0].join(&env[if_false.0]),
            };
        }
        // Interprocedural and global flow stay unknown by design.
        Inst::Call { dst, .. } => env[dst.0] = AbsVal::top(),
        Inst::LoadGlobal { dst, .. } => env[dst.0] = AbsVal::top(),
        Inst::StoreGlobal { .. } => {}
    }
}

/// `(may_be_nonzero, may_be_zero)` of a `Select` condition. The
/// interpreter's condition test is `c != 0.0`: NaN is truthy (`NaN != 0.0`
/// holds) and `-0.0` is falsy (`-0.0 != 0.0` does not).
fn select_sides(c: AbsVal) -> (bool, bool) {
    let may_true = c.nan || cmp_possibilities(fp_runtime::Cmp::Ne, c, AbsVal::exact(0.0)).0;
    let may_false = c.may_be(0.0);
    (may_true, may_false)
}

/// The feasible successors of a terminator under `env`.
fn feasible_successors(term: &Terminator, env: &[AbsVal]) -> Vec<BlockId> {
    match term {
        Terminator::Jump(b) => vec![*b],
        Terminator::Return(_) => Vec::new(),
        Terminator::CondBr {
            lhs,
            cmp,
            rhs,
            then_bb,
            else_bb,
            ..
        } => {
            let (may_true, may_false) = cmp_possibilities(*cmp, env[lhs.0], env[rhs.0]);
            let mut out = Vec::new();
            if may_true {
                out.push(*then_bb);
            }
            if may_false {
                out.push(*else_bb);
            }
            if out.is_empty() {
                // Unreachable state (empty operand ranges): stay sound by
                // keeping both edges rather than proving anything from ⊥.
                out.push(*then_bb);
                out.push(*else_bb);
            }
            out
        }
    }
}

fn join_env(into: &mut [AbsVal], from: &[AbsVal]) -> bool {
    let mut changed = false;
    for (a, b) in into.iter_mut().zip(from) {
        let j = a.join(b);
        if j != *a {
            *a = j;
            changed = true;
        }
    }
    changed
}

fn run_function(module: &mut Module, f: usize, params: &[AbsVal], stats: &mut OptStats) -> usize {
    let function = &module.functions[f];
    let nb = function.blocks.len();
    let nr = function.num_regs;
    let cfg = Cfg::new(function);

    // Block-entry environments; `None` = not proved reachable yet. The
    // entry block starts with every register zero (frames are
    // zero-initialized).
    let mut in_env: Vec<Option<Vec<AbsVal>>> = vec![None; nb];
    in_env[0] = Some(vec![AbsVal::exact(0.0); nr]);
    let mut joins: Vec<usize> = vec![0; nb];

    let mut sweeps = 0usize;
    loop {
        sweeps += 1;
        let mut changed = false;
        for &b in &cfg.rpo {
            let Some(mut env) = in_env[b.0].clone() else {
                continue;
            };
            for inst in &function.blocks[b.0].insts {
                transfer(inst, &mut env, params);
            }
            for succ in feasible_successors(&function.blocks[b.0].term, &env) {
                match &mut in_env[succ.0] {
                    Some(old) => {
                        let before = old.clone();
                        if join_env(old, &env) {
                            joins[succ.0] += 1;
                            if joins[succ.0] > WIDEN_AFTER {
                                for (n, o) in old.iter_mut().zip(&before) {
                                    *n = n.widen_from(o);
                                }
                            }
                            changed = true;
                        }
                    }
                    slot @ None => {
                        *slot = Some(env.clone());
                        changed = true;
                    }
                }
            }
        }
        if !changed || sweeps >= MAX_SWEEPS {
            break;
        }
    }

    // Rewrite phase: replay each reachable block under its fixed entry
    // environment.
    let mut changes = 0usize;
    let function = &mut module.functions[f];
    for (b, entry_env) in in_env.iter().enumerate() {
        let Some(env0) = entry_env else {
            continue;
        };
        let mut env = env0.clone();
        let block = &mut function.blocks[b];
        for inst in &mut block.insts {
            let rewritten = fold_inst(inst, &env);
            if let Some(new_inst) = rewritten {
                *inst = new_inst;
                changes += 1;
                stats.constants_folded += 1;
            }
            transfer(inst, &mut env, params);
        }
        if let Terminator::CondBr {
            site: None,
            lhs,
            cmp,
            rhs,
            then_bb,
            else_bb,
        } = block.term
        {
            let (may_true, may_false) = cmp_possibilities(cmp, env[lhs.0], env[rhs.0]);
            match (may_true, may_false) {
                (true, false) => {
                    block.term = Terminator::Jump(then_bb);
                    stats.branches_folded += 1;
                    changes += 1;
                }
                (false, true) => {
                    block.term = Terminator::Jump(else_bb);
                    stats.branches_folded += 1;
                    changes += 1;
                }
                _ => {}
            }
        }
    }

    // Empty every block the rewritten terminators no longer reach.
    let empty = Block::new();
    let mut reachable = vec![false; nb];
    let mut stack = vec![BlockId(0)];
    while let Some(b) = stack.pop() {
        if std::mem::replace(&mut reachable[b.0], true) {
            continue;
        }
        for s in function.blocks[b.0].term.successors_iter() {
            stack.push(s);
        }
    }
    for (b, block) in function.blocks.iter_mut().enumerate() {
        if !reachable[b] && *block != empty {
            *block = empty.clone();
            changes += 1;
        }
    }
    changes
}

/// The constant/copy `inst` folds to under `env`, if any. Instrumented
/// operations (site label present) always survive: their event is the
/// observation.
fn fold_inst(inst: &Inst, env: &[AbsVal]) -> Option<Inst> {
    match inst {
        Inst::Bin {
            dst,
            op,
            lhs,
            rhs,
            site: None,
        } => {
            let (a, b) = (env[lhs.0].singleton()?, env[rhs.0].singleton()?);
            let v = op.apply(a, b);
            if v.is_nan() {
                return None;
            }
            Some(Inst::Const { dst: *dst, value: v })
        }
        Inst::Un {
            dst,
            op,
            arg,
            site: None,
        } => {
            let a = env[arg.0].singleton()?;
            let v = op.apply(a);
            if v.is_nan() {
                return None;
            }
            Some(Inst::Const { dst: *dst, value: v })
        }
        Inst::Cmp { dst, cmp, lhs, rhs } => {
            abs_cmp(*cmp, env[lhs.0], env[rhs.0]).map(|t| Inst::Const {
                dst: *dst,
                value: if t { 1.0 } else { 0.0 },
            })
        }
        Inst::Select {
            dst,
            cond,
            if_true,
            if_false,
        } => match select_sides(env[cond.0]) {
            (true, false) => Some(Inst::Copy {
                dst: *dst,
                src: *if_true,
            }),
            (false, true) => Some(Inst::Copy {
                dst: *dst,
                src: *if_false,
            }),
            _ => None,
        },
        _ => None,
    }
}
