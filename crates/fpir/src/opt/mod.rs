//! Target-directed optimizing passes over fpir modules, with translation
//! validation.
//!
//! Every weak-distance analysis evaluates its objective by *executing* the
//! subject program millions of times, so any instruction that provably
//! cannot affect what the analysis observes is pure per-eval overhead. This
//! module specializes a module against an [`ObservationSpec`] — which event
//! sites the target folds over, and whether the returned value or globals
//! are read — through three semantics-preserving passes:
//!
//! 1. **Site stripping + SCCP** ([`sccp`]): unobserved instrumentation
//!    sites are erased (the instruction stays, its event goes away), then a
//!    sparse conditional constant propagation over the
//!    [`analysis::interval`](crate::analysis::interval) domain folds
//!    comparisons and *unobserved* branches proved one-sided, and
//!    propagates singleton intervals as constants. Folding is bitwise
//!    exact: a constant is only substituted when both operands are single
//!    bit patterns and the folded result (computed by the same
//!    [`BinOp::apply`](crate::ir::BinOp::apply) the interpreter runs) is
//!    non-NaN — live FP operations are never reassociated or reordered.
//! 2. **Dominator-based CSE** ([`cse`]): a pure, unobserved operation
//!    dominated by an identical operation on identical single-assignment
//!    operands is replaced by a register copy.
//! 3. **Backward slicing / DCE** ([`dce`]): liveness seeded from the
//!    observation set — observed event sites, calls, observed globals, and
//!    the entry return when observed — iterated to a least fixpoint, so
//!    chains of mutually-dead definitions disappear together. Control flow
//!    is never rewritten here; only non-root instructions whose results
//!    provably cannot reach an observation are deleted.
//!
//! The specialized module is then **translation validated**: it must pass
//! the strict verifier ([`crate::validate::validate`], in release builds
//! too), and a differential check executes both modules over a
//! deterministic sample of the search domain, requiring bit-identical
//! observed event streams (and return/global bits where observed). Any
//! failure is an error — callers fall back to the unoptimized module, so a
//! validator miss can cost throughput but never correctness.
//!
//! Equivalence is guaranteed **for inputs inside the search domain**: the
//! constant propagation seeds the entry parameters from the domain
//! intervals, mirroring the assumption the zero-eval static pruning already
//! makes, and the analyses' evaluation pipeline clamps every candidate into
//! the domain before evaluating.
//!
//! Identical full event streams imply identical stop behavior for any
//! deterministic stopping observer: the observer sees the same prefix of
//! events in the same order, so it issues a stop (if any) at the same
//! event, and both executions return `None` past it.

pub mod cse;
pub mod dce;
pub mod sccp;

use crate::interp::Interpreter;
use crate::ir::{FuncId, Inst, Module, Terminator};
use crate::validate::{self, ValidationError};
use fp_runtime::{
    BranchEvent, Cmp, Ctx, FpOp, Interval, ObservationSpec, Observer, OpEvent, ProbeControl,
};
use std::fmt;

/// Why [`specialize`] refused to produce an optimized module.
///
/// Every variant means "use the original module"; none of them is a
/// correctness problem for the caller.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecializeError {
    /// The input module does not pass strict validation, so no proof can be
    /// built on it.
    InputInvalid(ValidationError),
    /// The optimized module failed the strict verifier — a pass bug caught
    /// by the checked seam.
    OutputInvalid(ValidationError),
    /// The differential check observed diverging behavior between the
    /// original and optimized module.
    Differs(String),
}

impl fmt::Display for SpecializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecializeError::InputInvalid(e) => write!(f, "input module invalid: {e}"),
            SpecializeError::OutputInvalid(e) => write!(f, "optimized module invalid: {e}"),
            SpecializeError::Differs(why) => write!(f, "translation validation failed: {why}"),
        }
    }
}

impl std::error::Error for SpecializeError {}

/// What the pass pipeline did to one module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Instructions in the original module (all functions).
    pub original_insts: usize,
    /// Instructions in the optimized module.
    pub optimized_insts: usize,
    /// Instrumentation sites erased because the observation spec does not
    /// observe them.
    pub sites_stripped: usize,
    /// Conditional branches folded to unconditional jumps.
    pub branches_folded: usize,
    /// Instructions folded to constants or decided selects/comparisons.
    pub constants_folded: usize,
    /// Instructions replaced by register copies via CSE.
    pub cse_replaced: usize,
    /// Sample points executed by the differential validator.
    pub validation_points: usize,
}

impl OptStats {
    /// Instructions deleted by the pipeline.
    pub fn insts_removed(&self) -> usize {
        self.original_insts.saturating_sub(self.optimized_insts)
    }

    /// Fraction of the original instructions the slice kept (1.0 = nothing
    /// removed).
    pub fn slice_ratio(&self) -> f64 {
        if self.original_insts == 0 {
            1.0
        } else {
            self.optimized_insts as f64 / self.original_insts as f64
        }
    }

    /// True if the pipeline changed anything worth keeping: fewer
    /// instructions, a folded branch, or a stripped instrumentation site
    /// (stripping alone already removes per-event observer calls).
    pub fn removed_anything(&self) -> bool {
        self.insts_removed() > 0 || self.branches_folded > 0 || self.sites_stripped > 0
    }
}

/// Specializes `module` against `spec`: strips unobserved instrumentation,
/// runs the SCCP → CSE → DCE pipeline to a fixpoint (bounded), and
/// translation-validates the result against the original.
///
/// On success the returned module has bit-identical observed semantics to
/// `module` for every input in `domain` (see the module docs for the exact
/// contract). On any error the caller must keep using `module`.
///
/// # Errors
///
/// [`SpecializeError::InputInvalid`] if `module` fails strict validation,
/// [`SpecializeError::OutputInvalid`] if the optimized module does
/// (a pass bug), [`SpecializeError::Differs`] if the differential check
/// observes any divergence.
pub fn specialize(
    module: &Module,
    entry: FuncId,
    domain: &[Interval],
    spec: &ObservationSpec,
) -> Result<(Module, OptStats), SpecializeError> {
    validate::validate(module).map_err(SpecializeError::InputInvalid)?;
    let mut out = module.clone();
    let mut stats = OptStats {
        original_insts: count_insts(module),
        ..OptStats::default()
    };
    stats.sites_stripped = strip_unobserved_sites(&mut out, spec);
    // Each pass can expose work for the others (a folded branch makes a
    // block unreachable, whose deletion kills definitions, ...). Three
    // rounds reach the fixpoint on everything this IR produces; the bound
    // only caps pathological inputs.
    for _ in 0..3 {
        let mut changed = 0usize;
        changed += sccp::run(&mut out, entry, domain, &mut stats);
        changed += cse::run(&mut out, &mut stats);
        changed += dce::run(&mut out, entry, spec, &mut stats);
        if changed == 0 {
            break;
        }
    }
    stats.optimized_insts = count_insts(&out);
    validate::validate(&out).map_err(SpecializeError::OutputInvalid)?;
    differential_check(module, &out, entry, domain, spec, &mut stats)?;
    Ok((out, stats))
}

/// Total instruction count across all functions (terminators excluded).
pub fn count_insts(module: &Module) -> usize {
    module
        .functions
        .iter()
        .flat_map(|f| &f.blocks)
        .map(|b| b.insts.len())
        .sum()
}

/// Erases the site label of every instrumented operation and branch the
/// spec does not observe, module-wide. The instruction or branch itself is
/// untouched — it simply stops emitting events (and stops being a DCE
/// root). Returns the number of labels erased.
fn strip_unobserved_sites(module: &mut Module, spec: &ObservationSpec) -> usize {
    let mut stripped = 0usize;
    for function in &mut module.functions {
        for block in &mut function.blocks {
            for inst in &mut block.insts {
                match inst {
                    Inst::Bin { site, .. } | Inst::Un { site, .. } => {
                        if let Some(id) = site {
                            if !spec.ops.contains(id.0) {
                                *site = None;
                                stripped += 1;
                            }
                        }
                    }
                    _ => {}
                }
            }
            if let Terminator::CondBr { site, .. } = &mut block.term {
                if let Some(id) = site {
                    if !spec.branches.contains(id.0) {
                        *site = None;
                        stripped += 1;
                    }
                }
            }
        }
    }
    stripped
}

/// A comparable, NaN-safe rendering of one event: site, operator and the
/// raw bit patterns of every floating-point payload.
#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKey {
    Op {
        id: u32,
        op: FpOp,
        value: u64,
    },
    Branch {
        id: u32,
        lhs: u64,
        cmp: Cmp,
        rhs: u64,
        taken: bool,
    },
}

/// Records the events the spec observes, as bit-exact keys.
struct FilterRecorder<'s> {
    spec: &'s ObservationSpec,
    events: Vec<EventKey>,
}

impl Observer for FilterRecorder<'_> {
    fn on_op(&mut self, ev: &OpEvent) -> ProbeControl {
        if self.spec.ops.contains(ev.id.0) {
            self.events.push(EventKey::Op {
                id: ev.id.0,
                op: ev.op,
                value: ev.value.to_bits(),
            });
        }
        ProbeControl::Continue
    }

    fn on_branch(&mut self, ev: &BranchEvent) -> ProbeControl {
        if self.spec.branches.contains(ev.id.0) {
            self.events.push(EventKey::Branch {
                id: ev.id.0,
                lhs: ev.lhs.to_bits(),
                cmp: ev.cmp,
                rhs: ev.rhs.to_bits(),
                taken: ev.taken,
            });
        }
        ProbeControl::Continue
    }
}

/// SplitMix64 step, the same deterministic mixer the test suites use.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic in-domain sample points: the center, the domain corners
/// (the full product for up to 4 dimensions, per-axis extremes above that)
/// and 32 pseudo-random points from a fixed seed.
fn sample_points(domain: &[Interval]) -> Vec<Vec<f64>> {
    let n = domain.len();
    let mut pts: Vec<Vec<f64>> = Vec::new();
    if n == 0 {
        pts.push(Vec::new());
        return pts;
    }
    let center: Vec<f64> = domain.iter().map(|iv| iv.midpoint()).collect();
    pts.push(center.clone());
    if n <= 4 {
        for mask in 0u32..(1 << n) {
            pts.push(
                domain
                    .iter()
                    .enumerate()
                    .map(|(i, iv)| if mask >> i & 1 == 1 { iv.hi() } else { iv.lo() })
                    .collect(),
            );
        }
    } else {
        for i in 0..n {
            for v in [domain[i].lo(), domain[i].hi()] {
                let mut p = center.clone();
                p[i] = v;
                pts.push(p);
            }
        }
    }
    let mut state = 0x243F_6A88_85A3_08D3u64;
    for _ in 0..32 {
        pts.push(
            domain
                .iter()
                .map(|iv| {
                    let u = (splitmix(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
                    iv.lerp(u)
                })
                .collect(),
        );
    }
    pts
}

/// One side of the differential check: the observed event stream, the
/// return value and the final globals of executing `module` on `input` —
/// or `None` if execution errored (fuel, depth), in which case validation
/// conservatively fails.
fn observed_run(
    module: &Module,
    entry: FuncId,
    input: &[f64],
    spec: &ObservationSpec,
) -> Option<(Vec<EventKey>, Option<u64>, Vec<u64>)> {
    let mut rec = FilterRecorder {
        spec,
        events: Vec::new(),
    };
    let mut ctx = Ctx::new(&mut rec);
    let (ret, globals) = Interpreter::default()
        .execute_with_globals(module, entry, input, &mut ctx)
        .ok()?;
    Some((
        rec.events,
        ret.map(f64::to_bits),
        globals.iter().map(|g| g.to_bits()).collect(),
    ))
}

/// The differential half of the translation validator: executes original
/// and optimized module over [`sample_points`] and requires bit-identical
/// observed event streams, plus bit-identical return values and globals
/// where the spec observes them.
///
/// Execution errors on **either** side fail validation: the optimized
/// module charges less fuel, so a fuel-exhaustion boundary could otherwise
/// mask a real divergence. (Programs that exhaust the default fuel budget
/// on validation inputs simply never specialize.)
fn differential_check(
    original: &Module,
    optimized: &Module,
    entry: FuncId,
    domain: &[Interval],
    spec: &ObservationSpec,
    stats: &mut OptStats,
) -> Result<(), SpecializeError> {
    let points = sample_points(domain);
    stats.validation_points = points.len();
    for (i, x) in points.iter().enumerate() {
        let a = observed_run(original, entry, x, spec);
        let b = observed_run(optimized, entry, x, spec);
        let (a, b) = match (a, b) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(SpecializeError::Differs(format!(
                    "execution error at sample point {i}"
                )))
            }
        };
        if a.0 != b.0 {
            return Err(SpecializeError::Differs(format!(
                "observed event streams differ at sample point {i}: {} vs {} events",
                a.0.len(),
                b.0.len()
            )));
        }
        if spec.return_value && a.1 != b.1 {
            return Err(SpecializeError::Differs(format!(
                "return values differ at sample point {i}"
            )));
        }
        if spec.globals && a.2 != b.2 {
            return Err(SpecializeError::Differs(format!(
                "global cells differ at sample point {i}"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::instrument;
    use crate::ir::{BinOp, UnOp};
    use crate::programs;
    use fp_runtime::{Analyzable, SiteSet, TraceRecorder};

    fn domain1(r: f64) -> Vec<Interval> {
        vec![Interval::symmetric(r)]
    }

    /// The `|x| + 1 < 0` guard of the pruning tests: branch 0 is provably
    /// one-sided, the then-arm dead.
    fn guarded_module() -> Module {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.function("guarded", 1);
        let x = f.param(0);
        let one = f.constant(1.0);
        let zero = f.constant(0.0);
        let a = f.un(UnOp::Abs, x, None);
        let y = f.bin(BinOp::Add, a, one, None);
        let dead = f.new_block();
        let live = f.new_block();
        f.cond_br(None, y, Cmp::Lt, zero, dead, live);
        f.switch_to(dead);
        f.ret(Some(y));
        f.switch_to(live);
        let neg = f.new_block();
        let pos = f.new_block();
        f.cond_br(Some(0), x, Cmp::Lt, zero, neg, pos);
        f.switch_to(neg);
        f.ret(Some(x));
        f.switch_to(pos);
        f.ret(Some(y));
        f.finish();
        mb.build()
    }

    #[test]
    fn specialize_preserves_fig2_under_everything() {
        let module = programs::fig2_program();
        let entry = module.function_by_name("prog").unwrap();
        let (opt, stats) =
            specialize(&module, entry, &domain1(1.0e3), &ObservationSpec::everything())
                .expect("fig2 specializes");
        assert_eq!(stats.original_insts, count_insts(&module));
        assert_eq!(stats.optimized_insts, count_insts(&opt));
        assert!(stats.validation_points > 0);
        // Everything observed: the branch events and return must survive.
        let p = crate::ModuleProgram::new(opt, "prog").unwrap();
        let mut rec = TraceRecorder::new();
        let ret = p.run(&[0.5], &mut rec);
        assert_eq!(ret.map(f64::to_bits), Some(0.5f64.to_bits()));
        assert_eq!(rec.branches().count(), 2);
    }

    #[test]
    fn unobserved_branch_with_dead_arm_folds_away() {
        let module = guarded_module();
        let entry = module.function_by_name("guarded").unwrap();
        // Target branch 0 only: the unlabeled `|x|+1 < 0` guard is proved
        // one-sided over the domain and folds to a jump; its dead arm and
        // the return-value chain (unobserved) disappear.
        let spec = ObservationSpec::branches(SiteSet::Only([0u32].into_iter().collect()));
        let (opt, stats) =
            specialize(&module, entry, &domain1(1.0e3), &spec).expect("guarded specializes");
        assert!(stats.branches_folded >= 1, "{stats:?}");
        assert!(stats.insts_removed() > 0, "{stats:?}");
        // The observed branch still fires with identical operands.
        let p = crate::ModuleProgram::new(opt, "guarded").unwrap();
        let orig = crate::ModuleProgram::new(module, "guarded").unwrap();
        for x in [-3.0, -0.5, 0.0, 0.25, 7.0] {
            let mut ra = TraceRecorder::new();
            let mut rb = TraceRecorder::new();
            orig.run(&[x], &mut ra);
            p.run(&[x], &mut rb);
            let a: Vec<_> = ra.branches().map(|e| (e.id, e.lhs.to_bits(), e.taken)).collect();
            let b: Vec<_> = rb.branches().map(|e| (e.id, e.lhs.to_bits(), e.taken)).collect();
            assert_eq!(a, b, "at {x}");
        }
    }

    #[test]
    fn observed_sites_never_fold_even_when_one_sided() {
        let module = guarded_module();
        let entry = module.function_by_name("guarded").unwrap();
        // Give the one-sided guard a site label and observe everything:
        // the branch event must survive, so the CondBr cannot fold.
        let mut labeled = module.clone();
        if let Terminator::CondBr { site, .. } =
            &mut labeled.function_mut(entry).blocks[0].term
        {
            *site = Some(fp_runtime::BranchId(7));
        }
        let (opt, _) = specialize(
            &labeled,
            entry,
            &domain1(1.0e3),
            &ObservationSpec::everything(),
        )
        .expect("specializes");
        let p = crate::ModuleProgram::new(opt, "guarded").unwrap();
        let mut rec = TraceRecorder::new();
        p.run(&[2.0], &mut rec);
        assert!(
            rec.branches().any(|e| e.id.0 == 7),
            "observed branch event was dropped"
        );
    }

    #[test]
    fn instrumented_w_module_slices_when_events_unobserved() {
        // The boundary-instrumented W module updates the global `w` purely
        // for the benefit of run_with_globals readers; an event-only
        // observation spec slices that bookkeeping away while keeping every
        // branch event bit-identical.
        let base = programs::fig2_program();
        let entry = base.function_by_name("prog").unwrap();
        let w = instrument::instrument_boundary(&base, entry);
        let w_entry = w.function_by_name(instrument::W_FUNCTION).unwrap();
        let spec = ObservationSpec::branches(SiteSet::All);
        let (opt, stats) =
            specialize(&w, w_entry, &domain1(1.0e3), &spec).expect("W specializes");
        assert!(stats.insts_removed() > 0, "{stats:?}");
        let orig = crate::ModuleProgram::new(w.clone(), instrument::W_FUNCTION).unwrap();
        let sliced = crate::ModuleProgram::new(opt, instrument::W_FUNCTION).unwrap();
        for x in [-2.0, 0.0, 0.5, 1.0, 3.5] {
            let mut ra = TraceRecorder::new();
            let mut rb = TraceRecorder::new();
            orig.run(&[x], &mut ra);
            sliced.run(&[x], &mut rb);
            let a: Vec<_> = ra
                .branches()
                .map(|e| (e.id, e.lhs.to_bits(), e.rhs.to_bits(), e.taken))
                .collect();
            let b: Vec<_> = rb
                .branches()
                .map(|e| (e.id, e.lhs.to_bits(), e.rhs.to_bits(), e.taken))
                .collect();
            assert_eq!(a, b, "at {x}");
        }
    }

    #[test]
    fn invalid_input_is_rejected_not_optimized() {
        let mut module = programs::fig2_program();
        let entry = module.function_by_name("prog").unwrap();
        module.function_mut(entry).blocks.clear();
        match specialize(&module, entry, &domain1(1.0), &ObservationSpec::everything()) {
            Err(SpecializeError::InputInvalid(_)) => {}
            other => panic!("expected InputInvalid, got {other:?}"),
        }
    }

    #[test]
    fn sample_points_are_deterministic_and_in_domain() {
        let domain = vec![Interval::new(-2.0, 5.0), Interval::symmetric(1.0)];
        let a = sample_points(&domain);
        let b = sample_points(&domain);
        assert_eq!(a, b);
        assert!(a.len() > 32);
        for p in &a {
            assert_eq!(p.len(), 2);
            for (v, iv) in p.iter().zip(&domain) {
                assert!(*v >= iv.lo() && *v <= iv.hi(), "{v} outside {iv:?}");
            }
        }
        // High-dimensional fall-back stays bounded.
        let big = sample_points(&[Interval::symmetric(1.0); 6]);
        assert_eq!(big.len(), 1 + 12 + 32);
    }
}
