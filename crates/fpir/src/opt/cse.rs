//! Dominator-based common-subexpression elimination.
//!
//! fpir is a register machine, not SSA, so availability is restricted to
//! the easy case that is still sound: an operation is a candidate only if
//! its operands **and** its destination each have exactly one static
//! definition in the whole function. A strictly-validated module has no
//! use-before-def on any reachable path, so a single-definition register
//! holds the same value at every read — which makes "identical pure op on
//! identical operands, dominated by an earlier copy of itself" replaceable
//! by a register copy of the earlier destination, with bit-identical
//! semantics.
//!
//! Only unobserved (`site: None`) `Bin`/`Un` and `Cmp` instructions
//! participate: an instrumented operation's event is an observation that
//! must keep firing. Floating-point operations are matched exactly —
//! same operator, same operand registers, in order — so no reassociation
//! or commutation ever happens.

use super::OptStats;
use crate::analysis::cfg::Cfg;
use crate::analysis::dom::Dominators;
use crate::ir::{BinOp, BlockId, Inst, Module, Reg, UnOp};
use fp_runtime::Cmp;
use std::collections::HashMap;

/// A pure expression, keyed for availability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ExprKey {
    Bin(BinOp, Reg, Reg),
    Un(UnOp, Reg),
    Cmp(Cmp, Reg, Reg),
}

/// Runs the pass over every function of `module`. Returns the number of
/// instructions replaced by copies.
pub(crate) fn run(module: &mut Module, stats: &mut OptStats) -> usize {
    let mut replaced = 0usize;
    for function in &mut module.functions {
        let cfg = Cfg::new(function);
        let doms = Dominators::new(&cfg);

        // Static definition counts (Param and every dst-writing inst).
        let mut defs = vec![0usize; function.num_regs];
        for block in &function.blocks {
            for inst in &block.insts {
                if let Some(d) = inst.dst() {
                    defs[d.0] += 1;
                }
            }
        }
        let single = |r: Reg| defs[r.0] == 1;

        // Dominator-tree preorder DFS with a scoped availability map: what
        // is available in a block is whatever its dominators computed.
        let mut children: Vec<Vec<BlockId>> = vec![Vec::new(); function.blocks.len()];
        for b in 1..function.blocks.len() {
            if let Some(p) = doms.idom(BlockId(b)) {
                children[p.0].push(BlockId(b));
            }
        }
        let mut stack: Vec<(BlockId, HashMap<ExprKey, Reg>)> =
            vec![(BlockId(0), HashMap::new())];
        while let Some((b, mut avail)) = stack.pop() {
            for inst in &mut function.blocks[b.0].insts {
                let key = match inst {
                    Inst::Bin {
                        op,
                        lhs,
                        rhs,
                        site: None,
                        dst,
                    } if single(*lhs) && single(*rhs) && single(*dst) => {
                        Some((ExprKey::Bin(*op, *lhs, *rhs), *dst))
                    }
                    Inst::Un {
                        op,
                        arg,
                        site: None,
                        dst,
                    } if single(*arg) && single(*dst) => Some((ExprKey::Un(*op, *arg), *dst)),
                    Inst::Cmp { cmp, lhs, rhs, dst }
                        if single(*lhs) && single(*rhs) && single(*dst) =>
                    {
                        Some((ExprKey::Cmp(*cmp, *lhs, *rhs), *dst))
                    }
                    _ => None,
                };
                if let Some((key, dst)) = key {
                    match avail.get(&key) {
                        Some(&prev) if prev != dst => {
                            *inst = Inst::Copy { dst, src: prev };
                            replaced += 1;
                        }
                        Some(_) => {}
                        None => {
                            avail.insert(key, dst);
                        }
                    }
                }
            }
            for &c in &children[b.0] {
                stack.push((c, avail.clone()));
            }
        }
    }
    stats.cse_replaced += replaced;
    replaced
}
