//! A small register-machine IR for floating-point programs, with an
//! interpreter and the instrumentation passes of the paper's Reduction
//! Kernel.
//!
//! The original implementation of weak-distance minimization instruments C
//! programs with an LLVM pass (Section 5.3): a global variable `w` is added
//! and a small stub is injected before every conditional branch (boundary
//! value analysis, path reachability) or after every floating-point
//! operation (overflow detection). This crate reproduces that layer without
//! a C toolchain:
//!
//! * [`ir`] defines a compact CFG-based IR whose instructions each perform
//!   one binary64 operation, mirroring the paper's "each FP operation
//!   corresponds to exactly one instruction in the IR";
//! * [`builder`] provides an `IRBuilder`-style API for constructing
//!   programs;
//! * [`interp`] executes a program while reporting
//!   [`fp_runtime`] events, so IR programs are
//!   [`Analyzable`](fp_runtime::Analyzable) like any hand-instrumented Rust
//!   port;
//! * [`kernel`] specializes a module into a lanewise structure-of-arrays
//!   kernel that evaluates whole batches in lockstep (the SIMD-style
//!   backend behind [`fp_runtime::KernelPolicy`]), bit-identical to the
//!   interpreter;
//! * [`instrument`] contains the *transformation-based* weak-distance
//!   constructions: given a program, it injects the `w` updates of Figures
//!   3(a), 4(a) and Algorithm 3 step 2 and produces a new entry point `W`;
//! * [`programs`] has ready-made IR versions of the paper's example
//!   programs (Figures 1 and 2).
//!
//! # Example
//!
//! ```
//! use fpir::programs::fig2_program;
//! use fpir::ModuleProgram;
//! use fp_runtime::{Analyzable, NullObserver};
//!
//! let module = fig2_program();
//! let prog = ModuleProgram::new(module, "prog").unwrap();
//! // Fig. 2: Prog(0.5) takes both branches and returns 0.5 + 1 - 1.
//! assert_eq!(prog.run(&[0.5], &mut NullObserver), Some(0.5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod instrument;
pub mod interp;
pub mod ir;
pub mod kernel;
pub mod opt;
pub mod programs;
pub mod validate;

pub use analysis::{ModuleAnalysis, StaticInfo};
pub use builder::{FunctionBuilder, ModuleBuilder};
pub use interp::{ExecError, Interpreter, ModuleProgram};
pub use kernel::{supports_lanewise, KernelExecutor};
pub use opt::{specialize, OptStats, SpecializeError};
pub use ir::{
    BinOp, Block, BlockId, FuncId, Function, GlobalId, Inst, Module, Reg, Terminator, UnOp,
};
pub use validate::{validate, ValidationError};
