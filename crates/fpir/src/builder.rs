//! Ergonomic construction of IR modules, in the spirit of LLVM's `IRBuilder`.

use crate::ir::{
    BinOp, Block, BlockId, FuncId, Function, GlobalId, Inst, Module, Reg, Terminator, UnOp,
};
use fp_runtime::{BranchId, Cmp, OpId};

/// Builds a [`Module`] function by function.
///
/// # Example
///
/// ```
/// use fpir::{BinOp, ModuleBuilder};
/// use fp_runtime::Cmp;
///
/// // double f(double x) { if (x <= 1.0) return x + 1.0; return x; }
/// let mut mb = ModuleBuilder::new();
/// let mut f = mb.function("f", 1);
/// let x = f.param(0);
/// let one = f.constant(1.0);
/// let (then_bb, else_bb) = (f.new_block(), f.new_block());
/// f.cond_br(Some(0), x, Cmp::Le, one, then_bb, else_bb);
/// f.switch_to(then_bb);
/// let y = f.bin(BinOp::Add, x, one, Some(0));
/// f.ret(Some(y));
/// f.switch_to(else_bb);
/// f.ret(Some(x));
/// let _fid = f.finish();
/// let module = mb.build();
/// assert_eq!(module.functions.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Creates an empty module builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a global cell.
    pub fn global(&mut self, name: impl Into<String>, init: f64) -> GlobalId {
        self.module.add_global(name, init)
    }

    /// Starts building a function with `num_params` parameters.
    pub fn function(&mut self, name: impl Into<String>, num_params: usize) -> FunctionBuilder<'_> {
        FunctionBuilder::new(&mut self.module, name.into(), num_params)
    }

    /// Finishes and returns the module.
    pub fn build(self) -> Module {
        self.module
    }
}

/// Builds one [`Function`]; instructions are appended to the *current block*,
/// which starts as the entry block and can be changed with
/// [`FunctionBuilder::switch_to`].
#[derive(Debug)]
pub struct FunctionBuilder<'m> {
    module: &'m mut Module,
    func: Function,
    current: BlockId,
    next_op_site: u32,
    next_branch_site: u32,
}

impl<'m> FunctionBuilder<'m> {
    fn new(module: &'m mut Module, name: String, num_params: usize) -> Self {
        FunctionBuilder {
            module,
            func: Function {
                name,
                num_params,
                num_regs: 0,
                blocks: vec![Block::new()],
            },
            current: BlockId(0),
            next_op_site: 0,
            next_branch_site: 0,
        }
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Allocates a new empty block (terminated by `ret` until overwritten).
    pub fn new_block(&mut self) -> BlockId {
        self.func.blocks.push(Block::new());
        BlockId(self.func.blocks.len() - 1)
    }

    /// Makes `block` the current insertion point.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(block.0 < self.func.blocks.len(), "unknown block {block}");
        self.current = block;
    }

    /// The current insertion block.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    fn push(&mut self, inst: Inst) {
        self.func.blocks[self.current.0].insts.push(inst);
    }

    fn fresh(&mut self) -> Reg {
        self.func.fresh_reg()
    }

    /// Allocates the next unused floating-point operation site label.
    pub fn fresh_op_site(&mut self) -> OpId {
        let s = OpId(self.next_op_site);
        self.next_op_site += 1;
        s
    }

    /// Allocates the next unused branch site label.
    pub fn fresh_branch_site(&mut self) -> BranchId {
        let s = BranchId(self.next_branch_site);
        self.next_branch_site += 1;
        s
    }

    /// `dst = constant`
    pub fn constant(&mut self, value: f64) -> Reg {
        let dst = self.fresh();
        self.push(Inst::Const { dst, value });
        dst
    }

    /// `dst = param[index]`
    pub fn param(&mut self, index: usize) -> Reg {
        assert!(index < self.func.num_params, "parameter index out of range");
        let dst = self.fresh();
        self.push(Inst::Param { dst, index });
        dst
    }

    /// `dst = src` (copy).
    pub fn copy(&mut self, src: Reg) -> Reg {
        let dst = self.fresh();
        self.push(Inst::Copy { dst, src });
        dst
    }

    /// Copies `src` into the existing register `dst` (for loop-carried
    /// variables).
    pub fn assign(&mut self, dst: Reg, src: Reg) {
        self.push(Inst::Copy { dst, src });
    }

    /// Binary operation. If `site` is `Some(n)` the operation is labelled as
    /// instrumentation site `n` (auto-numbered labels are available through
    /// [`FunctionBuilder::bin_site`]).
    pub fn bin(&mut self, op: BinOp, lhs: Reg, rhs: Reg, site: Option<u32>) -> Reg {
        let dst = self.fresh();
        self.push(Inst::Bin {
            dst,
            op,
            lhs,
            rhs,
            site: site.map(OpId),
        });
        dst
    }

    /// Binary operation with an automatically numbered site label.
    pub fn bin_site(&mut self, op: BinOp, lhs: Reg, rhs: Reg) -> Reg {
        let site = self.fresh_op_site();
        let dst = self.fresh();
        self.push(Inst::Bin {
            dst,
            op,
            lhs,
            rhs,
            site: Some(site),
        });
        dst
    }

    /// Unary operation.
    pub fn un(&mut self, op: UnOp, arg: Reg, site: Option<u32>) -> Reg {
        let dst = self.fresh();
        self.push(Inst::Un {
            dst,
            op,
            arg,
            site: site.map(OpId),
        });
        dst
    }

    /// Unary operation with an automatically numbered site label.
    pub fn un_site(&mut self, op: UnOp, arg: Reg) -> Reg {
        let site = self.fresh_op_site();
        let dst = self.fresh();
        self.push(Inst::Un {
            dst,
            op,
            arg,
            site: Some(site),
        });
        dst
    }

    /// Comparison producing 1.0 / 0.0.
    pub fn cmp(&mut self, cmp: Cmp, lhs: Reg, rhs: Reg) -> Reg {
        let dst = self.fresh();
        self.push(Inst::Cmp { dst, cmp, lhs, rhs });
        dst
    }

    /// Select between two registers on a condition register.
    pub fn select(&mut self, cond: Reg, if_true: Reg, if_false: Reg) -> Reg {
        let dst = self.fresh();
        self.push(Inst::Select {
            dst,
            cond,
            if_true,
            if_false,
        });
        dst
    }

    /// Call another function of the module.
    pub fn call(&mut self, func: FuncId, args: Vec<Reg>) -> Reg {
        let dst = self.fresh();
        self.push(Inst::Call { dst, func, args });
        dst
    }

    /// Load a global cell.
    pub fn load_global(&mut self, global: GlobalId) -> Reg {
        let dst = self.fresh();
        self.push(Inst::LoadGlobal { dst, global });
        dst
    }

    /// Store into a global cell.
    pub fn store_global(&mut self, global: GlobalId, src: Reg) {
        self.push(Inst::StoreGlobal { global, src });
    }

    /// Terminates the current block with an unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        self.func.blocks[self.current.0].term = Terminator::Jump(target);
    }

    /// Terminates the current block with a conditional branch comparing
    /// `lhs cmp rhs`. `site` is the instrumentation label of the branch.
    #[allow(clippy::too_many_arguments)]
    pub fn cond_br(
        &mut self,
        site: Option<u32>,
        lhs: Reg,
        cmp: Cmp,
        rhs: Reg,
        then_bb: BlockId,
        else_bb: BlockId,
    ) {
        self.func.blocks[self.current.0].term = Terminator::CondBr {
            site: site.map(BranchId),
            lhs,
            cmp,
            rhs,
            then_bb,
            else_bb,
        };
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<Reg>) {
        self.func.blocks[self.current.0].term = Terminator::Return(value);
    }

    /// Finishes the function, adds it to the module and returns its id.
    pub fn finish(self) -> FuncId {
        self.module.functions.push(self.func);
        FuncId(self.module.functions.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_straight_line_function() {
        let mut mb = ModuleBuilder::new();
        let w = mb.global("w", 1.0);
        let mut f = mb.function("f", 2);
        let a = f.param(0);
        let b = f.param(1);
        let s = f.bin(BinOp::Add, a, b, Some(0));
        f.store_global(w, s);
        let back = f.load_global(w);
        f.ret(Some(back));
        let id = f.finish();
        let m = mb.build();
        assert_eq!(id, FuncId(0));
        assert_eq!(m.functions[0].num_regs, 4);
        assert_eq!(m.functions[0].blocks.len(), 1);
        assert_eq!(m.op_sites_of(id), vec![OpId(0)]);
    }

    #[test]
    fn builds_branching_function_with_sites() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.function("branchy", 1);
        let x = f.param(0);
        let one = f.constant(1.0);
        let bb_then = f.new_block();
        let bb_else = f.new_block();
        let site = f.fresh_branch_site();
        f.cond_br(Some(site.0), x, Cmp::Lt, one, bb_then, bb_else);
        f.switch_to(bb_then);
        f.ret(Some(one));
        f.switch_to(bb_else);
        f.ret(Some(x));
        let id = f.finish();
        let m = mb.build();
        assert_eq!(m.branch_sites_of(id), vec![BranchId(0)]);
        assert_eq!(m.functions[0].blocks.len(), 3);
    }

    #[test]
    fn fresh_sites_are_sequential() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.function("g", 0);
        assert_eq!(f.fresh_op_site(), OpId(0));
        assert_eq!(f.fresh_op_site(), OpId(1));
        assert_eq!(f.fresh_branch_site(), BranchId(0));
        assert_eq!(f.fresh_branch_site(), BranchId(1));
        f.ret(None);
        f.finish();
    }

    #[test]
    #[should_panic(expected = "parameter index out of range")]
    fn param_out_of_range_panics() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.function("f", 1);
        let _ = f.param(1);
    }

    #[test]
    fn call_and_select_and_cmp() {
        let mut mb = ModuleBuilder::new();
        let mut callee = mb.function("callee", 1);
        let x = callee.param(0);
        callee.ret(Some(x));
        let callee_id = callee.finish();

        let mut f = mb.function("caller", 1);
        let x = f.param(0);
        let zero = f.constant(0.0);
        let c = f.cmp(Cmp::Ge, x, zero);
        let called = f.call(callee_id, vec![x]);
        let neg = f.un(UnOp::Neg, x, None);
        let sel = f.select(c, called, neg);
        f.ret(Some(sel));
        f.finish();
        let m = mb.build();
        assert_eq!(m.functions.len(), 2);
        assert_eq!(m.function_by_name("caller"), Some(FuncId(1)));
    }
}
