//! Transformation-based weak-distance construction (the Reduction Kernel of
//! Section 5.3).
//!
//! Each pass takes a module and an entry function `Prog` and produces a new
//! module containing an instrumented copy `Prog_w` plus a driver function
//! `W` that initializes the global `w`, invokes `Prog_w` and returns `w` —
//! exactly the construction of Figures 3(a), 4(a) and Algorithm 3 steps
//! (1)–(3). The resulting module's `W` function *is* the weak distance; it
//! can be handed to any MO backend through
//! [`ModuleProgram`](crate::ModuleProgram).

use crate::ir::{
    BinOp, Block, BlockId, FuncId, Function, GlobalId, Inst, Module, Reg, Terminator, UnOp,
};
use fp_runtime::{BranchId, Cmp, OpId};
use std::collections::BTreeSet;

/// Name of the injected global weak-distance variable.
pub const W_GLOBAL: &str = "w";
/// Name of the generated driver function.
pub const W_FUNCTION: &str = "W";

/// Builds the driver `double W(x1, ..., xN) { w = w_init; Prog_w(...); return w; }`.
fn add_driver(module: &mut Module, entry: FuncId, w: GlobalId, w_init: f64) -> FuncId {
    let num_params = module.function(entry).num_params;
    let mut func = Function {
        name: W_FUNCTION.to_string(),
        num_params,
        num_regs: 0,
        blocks: vec![Block::new()],
    };
    let mut insts = Vec::new();
    let init_reg = func.fresh_reg();
    insts.push(Inst::Const {
        dst: init_reg,
        value: w_init,
    });
    insts.push(Inst::StoreGlobal {
        global: w,
        src: init_reg,
    });
    let mut args = Vec::with_capacity(num_params);
    for i in 0..num_params {
        let r = func.fresh_reg();
        insts.push(Inst::Param { dst: r, index: i });
        args.push(r);
    }
    let call_dst = func.fresh_reg();
    insts.push(Inst::Call {
        dst: call_dst,
        func: entry,
        args,
    });
    let w_reg = func.fresh_reg();
    insts.push(Inst::LoadGlobal { dst: w_reg, global: w });
    func.blocks[0].insts = insts;
    func.blocks[0].term = Terminator::Return(Some(w_reg));
    module.functions.push(func);
    FuncId(module.functions.len() - 1)
}

fn get_or_add_w(module: &mut Module, init: f64) -> GlobalId {
    match module.global_by_name(W_GLOBAL) {
        Some(g) => {
            module.globals[g.0].init = init;
            g
        }
        None => module.add_global(W_GLOBAL, init),
    }
}

/// Boundary value analysis instrumentation (Fig. 3(a)).
///
/// Before every labelled conditional branch `lhs cmp rhs` in every function
/// of the module, injects `w = w * |lhs - rhs|`; adds the driver `W` with
/// `w` initialized to 1. The zeros of `W` are exactly the inputs that
/// trigger some boundary condition.
pub fn instrument_boundary(module: &Module, entry: FuncId) -> Module {
    let mut out = module.clone();
    let w = get_or_add_w(&mut out, 1.0);
    for func in &mut out.functions {
        for bi in 0..func.blocks.len() {
            let Terminator::CondBr {
                site: Some(_),
                lhs,
                rhs,
                ..
            } = func.blocks[bi].term
            else {
                continue;
            };
            let diff = func.fresh_reg();
            let absval = func.fresh_reg();
            let wreg = func.fresh_reg();
            let prod = func.fresh_reg();
            let block = &mut func.blocks[bi];
            block.insts.push(Inst::Bin {
                dst: diff,
                op: BinOp::Sub,
                lhs,
                rhs,
                site: None,
            });
            block.insts.push(Inst::Un {
                dst: absval,
                op: UnOp::Abs,
                arg: diff,
                site: None,
            });
            block.insts.push(Inst::LoadGlobal { dst: wreg, global: w });
            block.insts.push(Inst::Bin {
                dst: prod,
                op: BinOp::Mul,
                lhs: wreg,
                rhs: absval,
                site: None,
            });
            block.insts.push(Inst::StoreGlobal { global: w, src: prod });
        }
    }
    add_driver(&mut out, entry, w, 1.0);
    out
}

/// Path reachability instrumentation (Fig. 4(a)).
///
/// `path` lists the branch sites that must be taken in the given direction.
/// Before each such branch the pass injects
/// `w = w + (branch satisfied in the required direction ? 0 : gap)`, where
/// `gap` is the Korel branch distance; the driver initializes `w` to 0.
/// A program input minimizes `W` to 0 iff it drives every listed branch in
/// the required direction.
pub fn instrument_path(module: &Module, entry: FuncId, path: &[(BranchId, bool)]) -> Module {
    let mut out = module.clone();
    let w = get_or_add_w(&mut out, 0.0);
    for func in &mut out.functions {
        for bi in 0..func.blocks.len() {
            let Terminator::CondBr {
                site: Some(site),
                lhs,
                cmp,
                rhs,
                ..
            } = func.blocks[bi].term
            else {
                continue;
            };
            let Some(&(_, dir)) = path.iter().find(|(s, _)| *s == site) else {
                continue;
            };
            let required = if dir { cmp } else { cmp.negate() };
            let dist = emit_branch_distance(func, bi, lhs, required, rhs);
            let wreg = func.fresh_reg();
            let sum = func.fresh_reg();
            let block = &mut func.blocks[bi];
            block.insts.push(Inst::LoadGlobal { dst: wreg, global: w });
            block.insts.push(Inst::Bin {
                dst: sum,
                op: BinOp::Add,
                lhs: wreg,
                rhs: dist,
                site: None,
            });
            block.insts.push(Inst::StoreGlobal { global: w, src: sum });
        }
    }
    add_driver(&mut out, entry, w, 0.0);
    out
}

/// Emits instructions computing the Korel branch distance of
/// `lhs required rhs` into block `bi` of `func` and returns the register
/// holding it.
fn emit_branch_distance(func: &mut Function, bi: usize, lhs: Reg, required: Cmp, rhs: Reg) -> Reg {
    let cond = func.fresh_reg();
    let gap = func.fresh_reg();
    let diff = func.fresh_reg();
    let zero = func.fresh_reg();
    let dist = func.fresh_reg();
    let block = &mut func.blocks[bi];
    block.insts.push(Inst::Cmp {
        dst: cond,
        cmp: required,
        lhs,
        rhs,
    });
    match required {
        Cmp::Lt | Cmp::Le => block.insts.push(Inst::Bin {
            dst: gap,
            op: BinOp::Sub,
            lhs,
            rhs,
            site: None,
        }),
        Cmp::Gt | Cmp::Ge => block.insts.push(Inst::Bin {
            dst: gap,
            op: BinOp::Sub,
            lhs: rhs,
            rhs: lhs,
            site: None,
        }),
        Cmp::Eq => {
            block.insts.push(Inst::Bin {
                dst: diff,
                op: BinOp::Sub,
                lhs,
                rhs,
                site: None,
            });
            block.insts.push(Inst::Un {
                dst: gap,
                op: UnOp::Abs,
                arg: diff,
                site: None,
            });
        }
        Cmp::Ne => block.insts.push(Inst::Const { dst: gap, value: 1.0 }),
    }
    block.insts.push(Inst::Const { dst: zero, value: 0.0 });
    block.insts.push(Inst::Select {
        dst: dist,
        cond,
        if_true: zero,
        if_false: gap,
    });
    dist
}

/// Overflow detection instrumentation (Algorithm 3 steps (1)–(3)).
///
/// After every labelled floating-point operation whose site is *not* in
/// `already_overflowed` (the set `L`), injects
///
/// ```text
/// w = (|a| < MAX) ? MAX - |a| : 0;
/// if (w == 0) return;
/// ```
///
/// where `a` is the operation's assignee, and adds the driver `W` with `w`
/// initialized to 1. Because later assignments overwrite `w`, minimizing `W`
/// targets the *last executed* not-yet-overflowed operation, which is the
/// heuristic step (7) of Algorithm 3 exploits.
pub fn instrument_overflow(
    module: &Module,
    entry: FuncId,
    already_overflowed: &BTreeSet<OpId>,
) -> Module {
    let mut out = module.clone();
    let w = get_or_add_w(&mut out, 1.0);
    for func in &mut out.functions {
        let mut new_blocks: Vec<Block> = Vec::with_capacity(func.blocks.len());
        // First pass: we rebuild blocks one by one; because splitting appends
        // continuation blocks at the end, original block indices stay valid.
        let original_len = func.blocks.len();
        let old_blocks = std::mem::take(&mut func.blocks);
        let mut pending: Vec<Block> = Vec::new();
        for block in old_blocks.into_iter().take(original_len) {
            let mut current = Block {
                insts: Vec::new(),
                term: block.term.clone(),
            };
            let mut chain: Vec<Block> = Vec::new();
            for inst in block.insts {
                let site = inst.site();
                let dst = inst.dst();
                current.insts.push(inst);
                let (Some(site), Some(dst)) = (site, dst) else {
                    continue;
                };
                if already_overflowed.contains(&site) {
                    continue;
                }
                // w = (|a| < MAX) ? MAX - |a| : 0
                let absval = func_fresh(func);
                current.insts.push(Inst::Un {
                    dst: absval,
                    op: UnOp::Abs,
                    arg: dst,
                    site: None,
                });
                let maxreg = func_fresh(func);
                current.insts.push(Inst::Const {
                    dst: maxreg,
                    value: f64::MAX,
                });
                let cond = func_fresh(func);
                current.insts.push(Inst::Cmp {
                    dst: cond,
                    cmp: Cmp::Lt,
                    lhs: absval,
                    rhs: maxreg,
                });
                let gap = func_fresh(func);
                current.insts.push(Inst::Bin {
                    dst: gap,
                    op: BinOp::Sub,
                    lhs: maxreg,
                    rhs: absval,
                    site: None,
                });
                let zero = func_fresh(func);
                current.insts.push(Inst::Const { dst: zero, value: 0.0 });
                let new_w = func_fresh(func);
                current.insts.push(Inst::Select {
                    dst: new_w,
                    cond,
                    if_true: gap,
                    if_false: zero,
                });
                current.insts.push(Inst::StoreGlobal { global: w, src: new_w });
                // if (w == 0) return; -- split the block here.
                let bail_index = original_len + pending.len() + chain.len();
                let cont_index = bail_index + 1;
                let finished = Block {
                    insts: std::mem::take(&mut current.insts),
                    term: Terminator::CondBr {
                        site: None,
                        lhs: new_w,
                        cmp: Cmp::Eq,
                        rhs: zero,
                        then_bb: BlockId(bail_index),
                        else_bb: BlockId(cont_index),
                    },
                };
                chain.push(finished);
                chain.push(Block {
                    insts: Vec::new(),
                    term: Terminator::Return(None),
                });
                // `current` continues with the original terminator.
            }
            if chain.is_empty() {
                new_blocks.push(current);
            } else {
                // The head of the chain replaces the original block; the rest
                // (bail blocks and the final continuation) are appended after
                // all original blocks, in order.
                let mut iter = chain.into_iter();
                new_blocks.push(iter.next().expect("chain is nonempty"));
                let mut rest: Vec<Block> = iter.collect();
                // The final continuation (holding the original terminator and
                // trailing instructions) goes at the end of this block's chain.
                rest.push(current);
                pending.extend(rest);
            }
        }
        new_blocks.extend(pending);
        func.blocks = new_blocks;
    }
    add_driver(&mut out, entry, w, 1.0);
    out
}

fn func_fresh(func: &mut Function) -> Reg {
    func.fresh_reg()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::ModuleProgram;
    use crate::programs::fig2_program;
    use crate::validate::validate;
    use fp_runtime::{Analyzable, NullObserver};

    fn weak_distance(module: Module) -> ModuleProgram {
        ModuleProgram::new(module, W_FUNCTION).expect("driver W exists")
    }

    #[test]
    fn boundary_instrumentation_matches_fig3() {
        let m = fig2_program();
        let entry = m.function_by_name("prog").unwrap();
        let inst = instrument_boundary(&m, entry);
        assert_eq!(validate(&inst), Ok(()));
        let wd = weak_distance(inst);
        // Known boundary values of Fig. 3: -3, 1 and 2 give W = 0.
        for x in [-3.0, 1.0, 2.0] {
            assert_eq!(wd.run(&[x], &mut NullObserver), Some(0.0), "x = {x}");
        }
        // A non-boundary input gives a strictly positive W.
        let v = wd.run(&[0.5], &mut NullObserver).unwrap();
        assert!(v > 0.0);
        // Fig. 3(b): W(0.5) = |0.5-1| * |(1.5)^2 - 4| = 0.5 * 1.75.
        assert!((v - 0.875).abs() < 1e-12, "W(0.5) = {v}");
    }

    #[test]
    fn boundary_weak_distance_is_nonnegative_everywhere() {
        let m = fig2_program();
        let entry = m.function_by_name("prog").unwrap();
        let wd = weak_distance(instrument_boundary(&m, entry));
        for i in -40..40 {
            let x = i as f64 * 0.37;
            let v = wd.run(&[x], &mut NullObserver).unwrap();
            assert!(v >= 0.0, "W({x}) = {v}");
        }
    }

    #[test]
    fn path_instrumentation_matches_fig4() {
        let m = fig2_program();
        let entry = m.function_by_name("prog").unwrap();
        // Target path: both branches taken (Fig. 4).
        let path = [(BranchId(0), true), (BranchId(1), true)];
        let inst = instrument_path(&m, entry, &path);
        assert_eq!(validate(&inst), Ok(()));
        let wd = weak_distance(inst);
        // Solution space is [-3, 1]: W = 0 inside.
        for x in [-3.0, -1.0, 0.0, 1.0] {
            assert_eq!(wd.run(&[x], &mut NullObserver), Some(0.0), "x = {x}");
        }
        // Outside the solution space W is positive.
        for x in [1.5, 2.0, 5.0, -3.5] {
            let v = wd.run(&[x], &mut NullObserver).unwrap();
            assert!(v > 0.0, "W({x}) = {v}");
        }
        // Fig. 4(b): for x = 2 (first branch violated by 1, y = 4 satisfies
        // the second), W = 1.
        assert_eq!(wd.run(&[2.0], &mut NullObserver), Some(1.0));
    }

    #[test]
    fn path_instrumentation_other_direction() {
        let m = fig2_program();
        let entry = m.function_by_name("prog").unwrap();
        // Path: first branch NOT taken, second taken → x in (1, 2].
        let path = [(BranchId(0), false), (BranchId(1), true)];
        let wd = weak_distance(instrument_path(&m, entry, &path));
        assert_eq!(wd.run(&[1.5], &mut NullObserver), Some(0.0));
        assert_eq!(wd.run(&[2.0], &mut NullObserver), Some(0.0));
        assert!(wd.run(&[0.5], &mut NullObserver).unwrap() > 0.0);
        assert!(wd.run(&[3.0], &mut NullObserver).unwrap() > 0.0);
    }

    #[test]
    fn overflow_instrumentation_tracks_last_unoverflowed_op() {
        // prog(x): a = x * x (site 0); b = a + 1 (site 1); return b.
        let mut mb = crate::builder::ModuleBuilder::new();
        let mut f = mb.function("prog", 1);
        let x = f.param(0);
        let one = f.constant(1.0);
        let a = f.bin(BinOp::Mul, x, x, Some(0));
        let b = f.bin(BinOp::Add, a, one, Some(1));
        f.ret(Some(b));
        let entry = f.finish();
        let m = mb.build();

        let inst = instrument_overflow(&m, entry, &BTreeSet::new());
        assert_eq!(validate(&inst), Ok(()));
        let wd = weak_distance(inst);
        // Small input: neither op overflows; w is MAX - |b| (huge but positive).
        let v = wd.run(&[2.0], &mut NullObserver).unwrap();
        assert!(v > 0.0 && v.is_finite());
        // Input that overflows the multiplication: w becomes 0 at site 0 and
        // the injected early return fires.
        let v = wd.run(&[1.0e200], &mut NullObserver).unwrap();
        assert_eq!(v, 0.0);

        // With site 0 already in L, the instrumentation at site 0 disappears:
        // overflowing the multiplication alone no longer drives w to 0 …
        let skip: BTreeSet<OpId> = [OpId(0)].into_iter().collect();
        let wd2 = weak_distance(instrument_overflow(&m, entry, &skip));
        let v = wd2.run(&[1.0e200], &mut NullObserver).unwrap();
        // … because site 1 computes inf + 1 = inf, which also overflows, so w
        // is 0 there instead; use an input where only the product overflows.
        assert_eq!(v, 0.0);
        let v = wd2.run(&[2.0], &mut NullObserver).unwrap();
        assert!(v > 0.0);
    }

    #[test]
    fn overflow_driver_reads_w_after_early_return() {
        let m = fig2_program();
        let entry = m.function_by_name("prog").unwrap();
        let inst = instrument_overflow(&m, entry, &BTreeSet::new());
        assert_eq!(validate(&inst), Ok(()));
        let wd = weak_distance(inst);
        // No op of Fig. 2 overflows for moderate inputs: w stays positive.
        let v = wd.run(&[1.0], &mut NullObserver).unwrap();
        assert!(v > 0.0);
        // Huge input: x*x overflows, w becomes 0.
        let v = wd.run(&[1.0e200], &mut NullObserver).unwrap();
        assert_eq!(v, 0.0);
    }

    #[test]
    fn instrumented_modules_leave_original_function_usable() {
        let m = fig2_program();
        let entry = m.function_by_name("prog").unwrap();
        let inst = instrument_boundary(&m, entry);
        // The original (now instrumented) prog still computes its result.
        let p = ModuleProgram::new(inst, "prog").unwrap();
        assert_eq!(p.run(&[3.0], &mut NullObserver), Some(3.0));
    }
}
