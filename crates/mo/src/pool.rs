//! A std-only worker pool: fixed threads draining a shared job queue.
//!
//! The build environment is offline (no rayon/crossbeam), so the pool is
//! built from `std::sync` primitives only: a `Mutex<VecDeque>` of boxed
//! jobs and a `Condvar` to park idle workers. That is entirely adequate
//! here — weak-distance jobs run for milliseconds to seconds, so queue
//! contention is unmeasurable.
//!
//! This is the persistent-pool shape shared by campaign mode and the
//! multi-tenant analysis service (`wdm_service`), which is why it lives in
//! this base crate. The one-shot sibling — "run `n` indexed jobs over `k`
//! threads, results in index order" — is [`crate::scoped_map`], shared by
//! every parallel path in the workspace.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    state: Mutex<QueueState>,
    available: Condvar,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// A fixed-size pool of worker threads executing submitted jobs in FIFO
/// order.
///
/// # Example
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
/// use wdm_mo::WorkerPool;
///
/// let done = Arc::new(AtomicUsize::new(0));
/// let pool = WorkerPool::new(4);
/// for _ in 0..100 {
///     let done = Arc::clone(&done);
///     pool.submit(move || {
///         done.fetch_add(1, Ordering::Relaxed);
///     });
/// }
/// drop(pool); // joins the workers after the queue drains
/// assert_eq!(done.load(Ordering::Relaxed), 100);
/// ```
pub struct WorkerPool {
    queue: Arc<Queue>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns a pool with `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let queue = Arc::new(Queue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("wdm-worker-{i}"))
                    .spawn(move || worker_loop(&queue))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { queue, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job; some idle worker picks it up.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        {
            let mut state = self.queue.state.lock().expect("pool queue lock");
            state.jobs.push_back(Box::new(job));
        }
        self.queue.available.notify_one();
    }
}

impl Drop for WorkerPool {
    /// Graceful shutdown: every already-queued job still runs, then the
    /// workers exit and are joined.
    fn drop(&mut self) {
        {
            let mut state = self.queue.state.lock().expect("pool queue lock");
            state.shutdown = true;
        }
        self.queue.available.notify_all();
        for worker in self.workers.drain(..) {
            // A panicking job poisons nothing (jobs run outside the lock);
            // propagate the panic to the caller on join, as thread::scope
            // would.
            if let Err(panic) = worker.join() {
                std::panic::resume_unwind(panic);
            }
        }
    }
}

fn worker_loop(queue: &Queue) {
    loop {
        let job = {
            let mut state = queue.state.lock().expect("pool queue lock");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break Some(job);
                }
                if state.shutdown {
                    break None;
                }
                state = queue.available.wait(state).expect("pool queue wait");
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runs_every_submitted_job() {
        let counter = Arc::new(AtomicUsize::new(0));
        let pool = WorkerPool::new(4);
        for _ in 0..200 {
            let counter = Arc::clone(&counter);
            pool.submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool);
        assert_eq!(counter.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn pool_clamps_zero_threads_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        let flag = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&flag);
        pool.submit(move || {
            f.store(7, Ordering::Relaxed);
        });
        drop(pool);
        assert_eq!(flag.load(Ordering::Relaxed), 7);
    }

}
