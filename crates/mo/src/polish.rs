//! Focused local polish around a known incumbent.
//!
//! The plateau-escalation path of the adaptive portfolio hands the incumbent
//! region to a *polish slice*: Powell's conjugate-direction method (with its
//! Brent line searches) started exactly at the incumbent point instead of a
//! seed-sampled one, over dimension-wise tightened bounds
//! ([`Bounds::tightened_around`](crate::Bounds::tightened_around)). Wrapping
//! it as a [`SteppedMinimizer`] keeps the whole escalation machinery inside
//! the existing resumable-slice contract: a polish arm is sliced, paused,
//! checkpointed and restored exactly like any other backend, and sliced
//! execution is bit-identical to unsliced execution because it drives the
//! same [`PowellStep`] state machine.

use crate::checkpoint::StepCheckpoint;
use crate::powell::{Powell, PowellStep};
use crate::result::MinimizeResult;
use crate::sampling::SampleSink;
use crate::stepped::{MinimizerStep, SteppedMinimizer};
use crate::{GlobalMinimizer, Problem};

/// A deterministic local-polish backend: Powell started from a fixed point.
///
/// Unlike [`Powell`] as a global backend, the seed is *ignored* — the start
/// point is part of the configuration, so two polish arms created from the
/// same incumbent behave identically regardless of scheduling. The start
/// point is clamped into the problem bounds at `start` time.
#[derive(Debug, Clone, PartialEq)]
pub struct Polish {
    /// The underlying Powell configuration.
    pub powell: Powell,
    /// The fixed starting point (the incumbent at escalation time).
    pub x0: Vec<f64>,
}

impl Polish {
    /// Creates a polish backend starting from `x0` with default Powell
    /// settings.
    pub fn from_incumbent(x0: Vec<f64>) -> Self {
        Polish {
            powell: Powell::default(),
            x0,
        }
    }
}

impl GlobalMinimizer for Polish {
    fn minimize(
        &self,
        problem: &Problem<'_>,
        seed: u64,
        sink: &mut dyn SampleSink,
    ) -> MinimizeResult {
        crate::stepped::drive(self, problem, seed, sink)
    }

    fn backend_name(&self) -> &'static str {
        "Polish"
    }
}

impl SteppedMinimizer for Polish {
    fn start(&self, problem: &Problem<'_>, _seed: u64) -> Box<dyn MinimizerStep> {
        let x0 = problem.bounds.clamped(&self.x0);
        Box::new(PowellStep::from_x0(self.powell.clone(), problem, x0))
    }

    fn restore(
        &self,
        problem: &Problem<'_>,
        checkpoint: &StepCheckpoint,
    ) -> Option<Box<dyn MinimizerStep>> {
        // A polish run checkpoints as a plain Powell state (the fixed start
        // point only matters at `start`); delegate the re-materialization.
        self.powell.restore(problem, checkpoint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stepped::StepStatus;
    use crate::test_functions::sphere;
    use crate::{Bounds, FnObjective, NoTrace};

    fn run(polish: &Polish, problem: &Problem<'_>, slice: usize) -> (Vec<u64>, f64) {
        let mut step = polish.start(problem, 123);
        while step.step(problem, slice, &mut NoTrace) == StepStatus::Paused {}
        let r = step.result();
        (r.x.iter().map(|v| v.to_bits()).collect(), r.value)
    }

    #[test]
    fn polishes_from_the_given_incumbent() {
        let f = FnObjective::new(2, sphere);
        let p = Problem::new(&f, Bounds::symmetric(2, 10.0)).with_max_evals(20_000);
        let polish = Polish::from_incumbent(vec![0.5, -0.25]);
        let (_, value) = run(&polish, &p, usize::MAX);
        assert!(value < 1e-8, "value = {value}");
    }

    #[test]
    fn seed_is_irrelevant_and_slicing_is_invisible() {
        let f = FnObjective::new(2, |x: &[f64]| (x[0] - 1.0).abs() + (x[1] + 2.0).abs());
        let p = Problem::new(&f, Bounds::symmetric(2, 50.0)).with_max_evals(5_000);
        let polish = Polish::from_incumbent(vec![20.0, -30.0]);
        let whole = run(&polish, &p, usize::MAX);
        let sliced = run(&polish, &p, 37);
        assert_eq!(whole, sliced, "sliced polish diverged from unsliced");
        // Different seeds, same machine.
        let mut a = polish.start(&p, 1);
        let mut b = polish.start(&p, 2);
        while a.step(&p, 64, &mut NoTrace) == StepStatus::Paused {}
        while b.step(&p, 64, &mut NoTrace) == StepStatus::Paused {}
        assert_eq!(a.result().value.to_bits(), b.result().value.to_bits());
    }

    #[test]
    fn out_of_bounds_incumbent_is_clamped() {
        // An incumbent outside the box starts from the clamped point: the
        // best value can never be worse than the objective at the boundary
        // (an unclamped start at 500 would report 499.5), and the reported
        // minimizer stays inside the box.
        let f = FnObjective::new(1, |x: &[f64]| (x[0] - 0.5).abs());
        let bounds = Bounds::symmetric(1, 1.0);
        let p = Problem::new(&f, bounds.clone()).with_max_evals(2_000);
        let polish = Polish::from_incumbent(vec![500.0]);
        let mut step = polish.start(&p, 0);
        while step.step(&p, usize::MAX, &mut NoTrace) == StepStatus::Paused {}
        let r = step.result();
        assert!(r.value <= 0.5, "value = {}", r.value);
        assert!(bounds.contains(&r.x), "minimizer {:?} escaped bounds", r.x);
    }

    #[test]
    fn checkpoint_restores_as_powell_state() {
        let f = FnObjective::new(2, sphere);
        let p = Problem::new(&f, Bounds::symmetric(2, 10.0)).with_max_evals(10_000);
        let polish = Polish::from_incumbent(vec![3.0, -4.0]);
        let mut step = polish.start(&p, 0);
        let status = step.step(&p, 50, &mut NoTrace);
        let ckpt = step.checkpoint().expect("powell state checkpoints");
        let mut restored = polish
            .restore(&p, &ckpt)
            .expect("polish restores its own checkpoint");
        if status == StepStatus::Paused {
            while step.step(&p, usize::MAX, &mut NoTrace) == StepStatus::Paused {}
            while restored.step(&p, usize::MAX, &mut NoTrace) == StepStatus::Paused {}
        }
        assert_eq!(
            step.result().value.to_bits(),
            restored.result().value.to_bits()
        );
    }
}
