//! Cooperative cancellation of minimization runs.
//!
//! The token type itself lives in [`fp_runtime`] (the bottom layer of the
//! workspace) so that programs under analysis — most importantly the `fpir`
//! interpreter loop — can poll the very same token the optimization
//! backends check at every objective evaluation. This module re-exports it
//! under the historical `wdm_mo::cancel` path.
//!
//! A [`CancelToken`] threaded into [`Problem`](crate::Problem) lets the
//! parallel engine stop losing restart shards and portfolio backends at
//! their next objective evaluation without any backend-specific plumbing;
//! tokens form a tree (see [`CancelToken::child`]) so a single call can
//! cancel a whole campaign, one problem, or one shard.
//!
//! # Example
//!
//! ```
//! use wdm_mo::CancelToken;
//!
//! let campaign = CancelToken::new();
//! let shard = campaign.child();
//! assert!(!shard.is_cancelled());
//! campaign.cancel();
//! assert!(shard.is_cancelled(), "children observe ancestors");
//! ```

pub use fp_runtime::CancelToken;
