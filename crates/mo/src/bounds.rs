//! Box constraints and starting-point sampling.
//!
//! Overflow detection looks for inputs with magnitudes up to `1e308`, while
//! boundary value analysis of `sin` looks for inputs as small as `1e-8`.
//! Uniform sampling over such a wide box would almost never produce small
//! magnitudes, so [`Bounds::sample`] draws magnitudes *log-uniformly* (a
//! uniformly random exponent) which roughly matches sampling floating-point
//! numbers uniformly by representation — the behaviour the paper's random
//! starting points rely on.

use rand::Rng;
use std::fmt;

/// A per-dimension box `[lo_i, hi_i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Bounds {
    limits: Vec<(f64, f64)>,
}

impl Bounds {
    /// Creates bounds from explicit per-dimension limits.
    ///
    /// # Panics
    ///
    /// Panics if any `lo > hi` or any endpoint is NaN.
    pub fn new(limits: Vec<(f64, f64)>) -> Self {
        for &(lo, hi) in &limits {
            assert!(!lo.is_nan() && !hi.is_nan(), "bound endpoint is NaN");
            assert!(lo <= hi, "lower bound {lo} exceeds upper bound {hi}");
        }
        Bounds { limits }
    }

    /// Symmetric bounds `[-r, r]` in every dimension.
    pub fn symmetric(dim: usize, r: f64) -> Self {
        Bounds::new(vec![(-r, r); dim])
    }

    /// The whole finite binary64 box in every dimension.
    pub fn whole(dim: usize) -> Self {
        Bounds::new(vec![(-f64::MAX, f64::MAX); dim])
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.limits.len()
    }

    /// The `(lo, hi)` pair of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn limit(&self, i: usize) -> (f64, f64) {
        self.limits[i]
    }

    /// All limits.
    pub fn limits(&self) -> &[(f64, f64)] {
        &self.limits
    }

    /// Clamps `x` into the box in place; NaN components are replaced by a
    /// **finite** in-bounds fallback.
    ///
    /// The fallback is the midpoint of the dimension with each infinite
    /// endpoint first pulled in to the finite binary64 range: the naive
    /// `lo / 2 + hi / 2` is itself non-finite for half-bounded
    /// (`±inf` endpoint gives `±inf`) and unbounded (`-inf/2 + inf/2` is
    /// NaN) dimensions, which would silently feed non-finite points to the
    /// objective.
    pub fn clamp(&self, x: &mut [f64]) {
        debug_assert_eq!(x.len(), self.dim());
        for (xi, &(lo, hi)) in x.iter_mut().zip(&self.limits) {
            if xi.is_nan() {
                let lo_finite = lo.max(-f64::MAX);
                let hi_finite = hi.min(f64::MAX);
                *xi = lo_finite / 2.0 + hi_finite / 2.0;
            } else {
                *xi = xi.clamp(lo, hi);
            }
        }
    }

    /// Returns a clamped copy of `x`.
    pub fn clamped(&self, x: &[f64]) -> Vec<f64> {
        let mut y = x.to_vec();
        self.clamp(&mut y);
        y
    }

    /// Returns `true` if `x` lies inside the box.
    pub fn contains(&self, x: &[f64]) -> bool {
        x.len() == self.dim()
            && x.iter()
                .zip(&self.limits)
                .all(|(&xi, &(lo, hi))| xi >= lo && xi <= hi)
    }

    /// Draws a random point. Narrow dimensions (width below `1e6`) are
    /// sampled uniformly; wide dimensions are sampled with a log-uniform
    /// magnitude so that tiny and huge floats are both reachable.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        self.limits
            .iter()
            .map(|&(lo, hi)| Self::sample_dim(rng, lo, hi))
            .collect()
    }

    /// Draws a random value for dimension `i` alone, with the same
    /// narrow-uniform / wide-log-uniform rule as [`Bounds::sample`].
    /// Differential Evolution uses this to repair non-finite mutant
    /// components by resampling them from the bounds.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn sample_component<R: Rng + ?Sized>(&self, rng: &mut R, i: usize) -> f64 {
        let (lo, hi) = self.limits[i];
        Self::sample_dim(rng, lo, hi)
    }

    fn sample_dim<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        let width = hi - lo;
        if width.is_finite() && width <= 1.0e6 {
            return lo + rng.gen::<f64>() * width;
        }
        // Wide range: pick a sign permitted by the bounds, then a
        // log-uniform magnitude up to the largest representable endpoint.
        let max_mag = lo.abs().max(hi.abs()).min(f64::MAX);
        let max_exp = max_mag.log10();
        // Exponents from 1e-10 up to the bound magnitude.
        let exp = -10.0 + rng.gen::<f64>() * (max_exp + 10.0);
        let mag = 10.0_f64.powf(exp);
        let candidate = if lo >= 0.0 {
            mag
        } else if hi <= 0.0 {
            -mag
        } else if rng.gen::<bool>() {
            mag
        } else {
            -mag
        };
        candidate.clamp(lo, hi)
    }
}

impl fmt::Display for Bounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bounds[")?;
        for (i, (lo, hi)) in self.limits.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "[{lo}, {hi}]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    fn construction_and_accessors() {
        let b = Bounds::new(vec![(-1.0, 2.0), (0.0, 5.0)]);
        assert_eq!(b.dim(), 2);
        assert_eq!(b.limit(0), (-1.0, 2.0));
        assert_eq!(b.limits().len(), 2);
        assert!(b.contains(&[0.0, 3.0]));
        assert!(!b.contains(&[3.0, 3.0]));
        assert!(!b.contains(&[0.0]));
    }

    #[test]
    fn clamp_handles_nan_and_out_of_range() {
        let b = Bounds::symmetric(3, 1.0);
        let mut x = vec![5.0, f64::NAN, -7.0];
        b.clamp(&mut x);
        assert_eq!(x, vec![1.0, 0.0, -1.0]);
        assert_eq!(b.clamped(&[0.5, 0.5, 0.5]), vec![0.5, 0.5, 0.5]);
    }

    /// Regression: the NaN fallback used to be the raw midpoint
    /// `lo / 2 + hi / 2`, which is `±inf` for half-bounded dimensions and
    /// NaN for unbounded ones — silently feeding non-finite points to the
    /// objective. The fallback must be finite and inside the box for every
    /// permitted bound shape.
    #[test]
    fn clamp_nan_fallback_is_finite_for_infinite_limits() {
        let shapes = [
            (f64::NEG_INFINITY, f64::INFINITY), // unbounded: was NaN
            (0.0, f64::INFINITY),               // half-bounded: was +inf
            (f64::NEG_INFINITY, 5.0),           // half-bounded: was -inf
            (-f64::MAX, f64::MAX),              // whole finite range
            (1.0e308, f64::INFINITY),           // huge one-sided
        ];
        for &(lo, hi) in &shapes {
            let b = Bounds::new(vec![(lo, hi)]);
            let mut x = vec![f64::NAN];
            b.clamp(&mut x);
            assert!(
                x[0].is_finite(),
                "NaN fallback for [{lo}, {hi}] is {}",
                x[0]
            );
            assert!(
                x[0] >= lo && x[0] <= hi,
                "fallback {} escaped [{lo}, {hi}]",
                x[0]
            );
        }
        // Non-NaN components still clamp against infinite limits as before.
        let b = Bounds::new(vec![(0.0, f64::INFINITY)]);
        let mut x = vec![-3.0];
        b.clamp(&mut x);
        assert_eq!(x, vec![0.0]);
        let mut x = vec![1.0e300];
        b.clamp(&mut x);
        assert_eq!(x, vec![1.0e300]);
    }

    #[test]
    fn sample_stays_in_narrow_bounds() {
        let b = Bounds::new(vec![(-2.0, 3.0), (10.0, 11.0)]);
        let mut rng = rng_from_seed(1);
        for _ in 0..200 {
            let x = b.sample(&mut rng);
            assert!(b.contains(&x), "sample {x:?} escaped bounds");
        }
    }

    #[test]
    fn sample_covers_magnitudes_in_wide_bounds() {
        let b = Bounds::whole(1);
        let mut rng = rng_from_seed(2);
        let mut small = false;
        let mut large = false;
        let mut negative = false;
        for _ in 0..2000 {
            let x = b.sample(&mut rng)[0];
            assert!(b.contains(&[x]));
            if x.abs() < 1.0 {
                small = true;
            }
            if x.abs() > 1.0e100 {
                large = true;
            }
            if x < 0.0 {
                negative = true;
            }
        }
        assert!(small, "never sampled a small magnitude");
        assert!(large, "never sampled a large magnitude");
        assert!(negative, "never sampled a negative value");
    }

    #[test]
    fn sample_respects_one_sided_bounds() {
        let b = Bounds::new(vec![(0.0, f64::MAX)]);
        let mut rng = rng_from_seed(3);
        for _ in 0..500 {
            assert!(b.sample(&mut rng)[0] >= 0.0);
        }
    }

    #[test]
    fn sample_component_stays_in_its_dimension() {
        let b = Bounds::new(vec![(-2.0, 3.0), (0.0, f64::MAX)]);
        let mut rng = rng_from_seed(4);
        for _ in 0..300 {
            let x0 = b.sample_component(&mut rng, 0);
            let x1 = b.sample_component(&mut rng, 1);
            assert!((-2.0..=3.0).contains(&x0), "x0 = {x0}");
            assert!(x1 >= 0.0 && x1.is_finite(), "x1 = {x1}");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn rejects_inverted_bounds() {
        let _ = Bounds::new(vec![(1.0, 0.0)]);
    }
}
